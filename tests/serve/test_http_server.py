"""End-to-end serving: fit -> export -> register -> HTTP /predict.

The acceptance path for the serving subsystem: predictions returned over
HTTP must be identical to the in-memory ``AutoML.predict`` on the same
raw rows, and every endpoint must answer well-formed JSON.
"""

import threading

import numpy as np
import pytest

from repro.serve import (
    ModelRegistry,
    ModelServer,
    ServeClient,
    ServeClientError,
    build_http_server,
)


@pytest.fixture(scope="module")
def live_server(tmp_path_factory, artifact):
    registry = ModelRegistry(str(tmp_path_factory.mktemp("registry")))
    registry.register("churn", artifact)
    registry.register("churn", artifact)
    registry.promote("churn", 1, "production")
    model_server = ModelServer(registry=registry, max_batch=16,
                               max_delay_ms=2.0)
    httpd = build_http_server(model_server, port=0)  # free ephemeral port
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{httpd.server_address[1]}")
    yield client, model_server
    httpd.shutdown()
    httpd.server_close()
    model_server.close()
    thread.join(timeout=5)


class TestEndToEnd:
    def test_http_predictions_match_in_memory(self, live_server,
                                              fitted_automl, served_data):
        client, _ = live_server
        X, _ = served_data
        assert np.array_equal(
            client.predict(X[:50], model="churn"), fitted_automl.predict(X[:50])
        )

    def test_single_row_goes_through_batcher(self, live_server,
                                             fitted_automl, served_data):
        client, _ = live_server
        X, _ = served_data
        assert client.predict(X[7], model="churn") == \
            fitted_automl.predict(X[7:8])[0]

    def test_proba_matches_in_memory(self, live_server, fitted_automl,
                                     served_data):
        client, _ = live_server
        X, _ = served_data
        assert np.array_equal(
            client.predict(X[:20], model="churn", proba=True),
            fitted_automl.predict_proba(X[:20]),
        )

    def test_concurrent_single_row_clients_all_correct(self, live_server,
                                                       fitted_automl,
                                                       served_data):
        client, _ = live_server
        X, _ = served_data
        expected = fitted_automl.predict(X[:16])
        out = [None] * 16

        def go(i):
            out[i] = client.predict(X[i], model="churn")

        threads = [threading.Thread(target=go, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert np.array_equal(np.asarray(out), expected)

    def test_version_and_alias_addressing(self, live_server, served_data):
        client, _ = live_server
        X, _ = served_data
        by_alias = client.predict(X[:5], model="churn", version="production")
        by_number = client.predict(X[:5], model="churn", version=1)
        assert np.array_equal(by_alias, by_number)


class TestEndpoints:
    def test_health(self, live_server):
        client, _ = live_server
        health = client.health()
        assert health["status"] == "ok"
        assert "churn" in health["models"]

    def test_models_index(self, live_server):
        client, _ = live_server
        index = client.models()
        assert [v["version"] for v in index["churn"]["versions"]] == [1, 2]
        assert index["churn"]["aliases"] == {"latest": 2, "production": 1}

    def test_metrics_expose_latency_percentiles(self, live_server,
                                                served_data):
        client, _ = live_server
        X, _ = served_data
        client.predict(X[:5], model="churn")
        metrics = client.metrics()
        key = "churn@2"
        assert metrics[key]["requests"] >= 1
        assert "latency_ms_p99" in metrics[key]

    def test_model_optional_when_unique(self, live_server, fitted_automl,
                                        served_data):
        client, _ = live_server
        X, _ = served_data
        assert np.array_equal(
            client.predict(X[:4]), fitted_automl.predict(X[:4])
        )


class TestErrors:
    def test_unknown_model_is_404(self, live_server):
        client, _ = live_server
        with pytest.raises(ServeClientError, match="unknown model") as exc:
            client.predict(np.zeros((1, 5)), model="nope")
        assert exc.value.status == 404

    def test_wrong_feature_count_is_400(self, live_server):
        client, _ = live_server
        with pytest.raises(ServeClientError,
                           match="trained on 5 raw features") as exc:
            client.predict(np.zeros((2, 9)), model="churn")
        assert exc.value.status == 400

    def test_malformed_single_row_rejected_before_batching(self, live_server):
        # width-checked pre-enqueue: a bad row must not poison a batch
        client, _ = live_server
        with pytest.raises(ServeClientError,
                           match="trained on 5 raw features") as exc:
            client.predict(np.zeros(3), model="churn")
        assert exc.value.status == 400

    def test_fixed_artifact_mode_rejects_explicit_version(self, artifact,
                                                          served_data):
        from repro.serve import RegistryError

        X, _ = served_data
        server = ModelServer(artifacts={"solo": artifact})
        try:
            out = server.predict("solo", X[:3])  # default version ok
            assert out["version"] == "-"
            with pytest.raises(RegistryError, match="no version history"):
                server.predict("solo", X[:3], version=3)
        finally:
            server.close()

    def test_empty_batch_returns_empty_predictions(self, live_server):
        # a well-formed `rows: []` is a valid (if pointless) request:
        # answer it with an empty prediction list, not a 500
        client, _ = live_server
        out = client._request("/predict", {"model": "churn", "rows": []})
        assert out["n"] == 0
        assert out["predictions"] == []
        assert out["batched"] is False

    def test_empty_single_row_still_rejected(self, live_server):
        # `row: []` is a malformed *row*, not an empty batch: the
        # feature-count check must still reject it pre-batching
        client, _ = live_server
        with pytest.raises(ServeClientError,
                           match="trained on 5 raw features") as exc:
            client._request("/predict", {"model": "churn", "row": []})
        assert exc.value.status == 400

    def test_missing_rows_is_400(self, live_server):
        client, _ = live_server
        with pytest.raises(ServeClientError, match="'row'") as exc:
            client._request("/predict", {"model": "churn"})
        assert exc.value.status == 400

    def test_unknown_endpoint_is_404(self, live_server):
        client, _ = live_server
        with pytest.raises(ServeClientError) as exc:
            client._request("/nothing")
        assert exc.value.status == 404
