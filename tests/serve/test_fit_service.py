"""Multi-tenant fit-as-a-service: submit/status/result/cancel, tenancy.

Direct :class:`FitService` tests cover validation and budget policy;
the live-HTTP tests drive the full ``serve --fit`` path — two tenants
training concurrently over one shared pool, winners landing in the
registry under ``<tenant>.<name>``, and predictions served from them.
"""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    FitService,
    FitServiceError,
    ModelRegistry,
    ModelServer,
    ServeClient,
    ServeClientError,
    TenantBudgetExceeded,
    UnknownJobError,
    build_http_server,
)


def _toy_data(n=120, d=4, seed=0):
    r = np.random.default_rng(seed)
    X = r.standard_normal((n, d))
    y = ((X[:, 0] + X[:, 1]) > 0).astype(np.int64)
    return X, y


def _wait_terminal(service, job_id, timeout=90.0):
    deadline = time.monotonic() + timeout
    while True:
        snap = service.status(job_id)
        if snap["status"] in ("done", "failed", "cancelled"):
            return snap
        assert time.monotonic() < deadline, f"job stuck: {snap}"
        time.sleep(0.05)


class TestSubmissionValidation:
    @pytest.fixture()
    def service(self):
        with FitService(n_workers=1, max_searches=1, max_fit_rows=500) as s:
            yield s

    def test_dotted_tenant_and_name_rejected(self, service):
        X, y = _toy_data()
        for tenant, name in (("a.b", "m"), ("a", "m.n"), ("", "m"),
                             ("a/b", "m")):
            with pytest.raises(FitServiceError, match="invalid"):
                service.submit(tenant, name, X, y)

    def test_payload_shape_rejected(self, service):
        X, y = _toy_data()
        with pytest.raises(FitServiceError, match="2-D"):
            service.submit("a", "m", X[:, 0], y)  # 1-D
        with pytest.raises(FitServiceError, match="2-D"):
            service.submit("a", "m", X[:3], y[:3])  # too few rows
        with pytest.raises(FitServiceError, match="2-D"):
            service.submit("a", "m", X, y[:-1])  # label count mismatch
        with pytest.raises(FitServiceError, match="at most 500"):
            service.submit("a", "m", np.zeros((501, 2)), np.zeros(501))

    def test_bad_budget_and_payload_type(self, service):
        X, y = _toy_data()
        with pytest.raises(FitServiceError, match="time_budget"):
            service.submit("a", "m", X, y, time_budget=0)
        with pytest.raises(FitServiceError, match="invalid training payload"):
            service.submit("a", "m", [["x", object()]], [0])

    def test_unknown_job(self, service):
        with pytest.raises(UnknownJobError, match="unknown fit job"):
            service.status("nope")


class TestTenantBudget:
    def test_exhausted_tenant_is_refused_others_fine(self):
        X, y = _toy_data()
        with FitService(n_workers=2, max_searches=1,
                        tenant_time_budget=0.01) as service:
            job = service.submit("alice", "m", X, y, task="classification",
                                 time_budget=10, max_iters=2,
                                 estimators=["rf"])
            snap = _wait_terminal(service, job.job_id)
            assert snap["status"] == "done"
            assert snap["trial_seconds"] > 0  # the job was charged
            assert service.tenant_remaining("alice") == 0.0
            with pytest.raises(TenantBudgetExceeded, match="alice"):
                service.submit("alice", "m2", X, y)
            # tenancy is per tenant: bob's budget is untouched
            assert service.tenant_remaining("bob") == 0.01
            stats = service.stats()
            assert stats["tenants"]["alice"]["remaining_s"] == 0.0
            assert stats["tenant_time_budget"] == 0.01

    def test_unmetered_by_default(self):
        with FitService(n_workers=1, max_searches=1) as service:
            assert service.tenant_remaining("anyone") == float("inf")


class TestCancellation:
    def test_cancelled_job_never_registers(self, tmp_path):
        X, y = _toy_data()
        registry = ModelRegistry(str(tmp_path / "reg"))
        with FitService(registry=registry, n_workers=1,
                        max_searches=1) as service:
            # effectively unbounded search: only the cancel can end it soon
            job = service.submit("alice", "m", X, y, task="classification",
                                 time_budget=120, max_iters=100_000,
                                 estimators=["rf"])
            service.cancel(job.job_id)
            snap = _wait_terminal(service, job.job_id)
            assert snap["status"] == "cancelled"
            assert "version" not in snap
            assert registry.models() == []

    def test_cancel_terminal_job_is_a_no_op(self):
        X, y = _toy_data()
        with FitService(n_workers=1, max_searches=1) as service:
            job = service.submit("alice", "m", X, y, task="classification",
                                 time_budget=10, max_iters=2,
                                 estimators=["rf"])
            _wait_terminal(service, job.job_id)
            assert service.cancel(job.job_id)["status"] == "done"


@pytest.fixture(scope="module")
def live_fit_server(tmp_path_factory):
    registry = ModelRegistry(str(tmp_path_factory.mktemp("fitreg")))
    fit_service = FitService(registry=registry, n_workers=2, max_searches=2)
    model_server = ModelServer(fit_service=fit_service)
    httpd = build_http_server(model_server, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(f"http://127.0.0.1:{httpd.server_address[1]}",
                         timeout=120.0)
    yield client, registry
    httpd.shutdown()
    httpd.server_close()
    model_server.close()  # also closes the fit service
    thread.join(timeout=5)


class TestOverHttp:
    def test_two_tenants_train_and_serve(self, live_fit_server):
        client, registry = live_fit_server
        X, y = _toy_data(seed=1)
        jobs = [
            client.submit_fit(tenant, "churn", X, y, task="classification",
                              time_budget=60, max_iters=3,
                              estimators=["rf"])
            for tenant in ("alice", "bob")
        ]
        assert all(j["status"] in ("queued", "running") for j in jobs)
        final = [client.wait_fit(j["job_id"], timeout=90) for j in jobs]
        for snap in final:
            assert snap["status"] == "done"
            assert snap["version"] == 1
            assert snap["result"]["n_trials"] == 3
            assert snap["result"]["backend"] == "shared"
        assert sorted(registry.models()) == ["alice.churn", "bob.churn"]
        meta = registry.versions("alice.churn")[0]["metadata"]
        assert meta["tenant"] == "alice"
        assert meta["display_name"] == "churn"
        # the winner serves predictions under its per-tenant name
        pred = client.predict(X[:10], model="alice.churn")
        assert set(np.unique(pred)) <= {0, 1}

    def test_job_listing_filters_by_tenant(self, live_fit_server):
        client, _ = live_fit_server
        listed = client.fit_jobs(tenant="alice")
        assert listed and all(j["tenant"] == "alice" for j in listed)
        assert {j["tenant"] for j in client.fit_jobs()} >= {"alice", "bob"}

    def test_health_reports_fit_stats(self, live_fit_server):
        client, _ = live_fit_server
        health = client.health()
        assert health["fit"]["jobs"].get("done", 0) >= 2
        assert health["fit"]["pool"]["n_workers"] == 2

    def test_unknown_job_is_404(self, live_fit_server):
        client, _ = live_fit_server
        with pytest.raises(ServeClientError) as err:
            client.fit_status("deadbeef")
        assert err.value.status == 404

    def test_invalid_submission_is_400(self, live_fit_server):
        client, _ = live_fit_server
        X, y = _toy_data()
        with pytest.raises(ServeClientError) as err:
            client.submit_fit("dotted.tenant", "m", X, y)
        assert err.value.status == 400
        with pytest.raises(ServeClientError) as err:
            client._request("/fit", {"tenant": "a"})  # missing name/X/y
        assert err.value.status == 400

    def test_cancel_over_http(self, live_fit_server):
        client, registry = live_fit_server
        X, y = _toy_data(seed=2)
        job = client.submit_fit("cara", "slow", X, y, task="classification",
                                time_budget=120, max_iters=100_000,
                                estimators=["rf"])
        client.cancel_fit(job["job_id"])
        snap = client.wait_fit(job["job_id"], timeout=90)
        assert snap["status"] == "cancelled"
        assert "cara.slow" not in registry.models()


def test_fit_disabled_is_404(tmp_path, artifact):
    registry = ModelRegistry(str(tmp_path / "reg"))
    registry.register("m", artifact)
    model_server = ModelServer(registry=registry)
    httpd = build_http_server(model_server, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServeClient(f"http://127.0.0.1:{httpd.server_address[1]}")
        with pytest.raises(ServeClientError) as err:
            client.fit_jobs()
        assert err.value.status == 404
        assert "serve --fit" in str(err.value)
    finally:
        httpd.shutdown()
        httpd.server_close()
        model_server.close()
        thread.join(timeout=5)
