"""MicroBatcher: coalescing, correctness under concurrency, failure
propagation, and the ServingStats counters."""

import threading
import time

import numpy as np
import pytest

from repro.serve import MicroBatcher, ServingStats


def _run_concurrent(batcher, rows):
    """Submit every row from its own thread; returns results in order."""
    out = [None] * len(rows)
    errors = []

    def go(i):
        try:
            out[i] = batcher.submit(rows[i])
        except Exception as exc:  # noqa: BLE001 - collected for assertions
            errors.append(exc)

    threads = [threading.Thread(target=go, args=(i,))
               for i in range(len(rows))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return out, errors


class TestCoalescing:
    def test_concurrent_rows_share_batches(self):
        batch_sizes = []

        def fn(X):
            batch_sizes.append(len(X))
            return X[:, 0] * 2

        rows = np.random.default_rng(0).standard_normal((24, 3))
        with MicroBatcher(fn, max_batch=24, max_delay_ms=100) as mb:
            out, errors = _run_concurrent(mb, rows)
        assert not errors
        assert np.allclose(out, rows[:, 0] * 2)
        # 24 requests must not mean 24 model calls
        assert len(batch_sizes) < 24
        assert sum(batch_sizes) == 24

    def test_max_batch_is_honoured(self):
        batch_sizes = []

        def fn(X):
            batch_sizes.append(len(X))
            time.sleep(0.01)  # let the queue fill while a batch runs
            return X[:, 0]

        rows = np.random.default_rng(1).standard_normal((20, 2))
        with MicroBatcher(fn, max_batch=4, max_delay_ms=50) as mb:
            _, errors = _run_concurrent(mb, rows)
        assert not errors
        assert max(batch_sizes) <= 4
        assert sum(batch_sizes) == 20

    def test_results_map_back_to_callers(self):
        # identity on a marker column: every caller must get its own row back
        def fn(X):
            return X[:, 0]

        rows = np.arange(40, dtype=np.float64).reshape(40, 1)
        with MicroBatcher(fn, max_batch=8, max_delay_ms=20) as mb:
            out, errors = _run_concurrent(mb, rows)
        assert not errors
        assert np.array_equal(np.asarray(out), np.arange(40.0))

    def test_proba_shaped_results(self):
        def fn(X):
            p = 1 / (1 + np.exp(-X[:, 0]))
            return np.column_stack([1 - p, p])

        rows = np.random.default_rng(2).standard_normal((10, 1))
        with MicroBatcher(fn, max_batch=10, max_delay_ms=50) as mb:
            out, errors = _run_concurrent(mb, rows)
        assert not errors
        assert all(o.shape == (2,) for o in out)


class TestFailure:
    def test_predict_error_reaches_every_caller(self):
        def fn(X):
            raise ValueError("bad model")

        with MicroBatcher(fn, max_batch=4, max_delay_ms=20) as mb:
            out, errors = _run_concurrent(
                mb, np.zeros((6, 2))
            )
        assert len(errors) == 6
        assert all("bad model" in str(e) for e in errors)
        assert mb.stats.snapshot()["errors"] == 6

    def test_submit_after_close_raises(self):
        mb = MicroBatcher(lambda X: X[:, 0])
        mb.close()
        with pytest.raises(RuntimeError, match="closed"):
            mb.submit([1.0, 2.0])

    def test_close_is_idempotent(self):
        mb = MicroBatcher(lambda X: X[:, 0])
        mb.close()
        mb.close()


class TestStats:
    def test_counters_and_percentiles(self):
        with MicroBatcher(lambda X: X[:, 0], max_batch=8,
                          max_delay_ms=20) as mb:
            _run_concurrent(mb, np.zeros((16, 2)))
            snap = mb.stats.snapshot()
        assert snap["requests"] == 16
        assert snap["rows"] == 16
        assert snap["batches"] <= 16
        assert snap["mean_batch_size"] == 16 / snap["batches"]
        assert 0 <= snap["latency_ms_p50"] <= snap["latency_ms_p95"]
        assert snap["latency_ms_p95"] <= snap["latency_ms_p99"]

    def test_empty_stats_are_json_safe(self):
        snap = ServingStats().snapshot()
        assert snap["requests"] == 0
        assert "latency_ms_p50" not in snap

    def test_throughput_honest_from_the_first_request(self):
        # the span used to be first-to-last request, which is zero with
        # one request: operators saw throughput_rps=0.0 until a second
        # request arrived.  Span is now first-request-to-snapshot.
        stats = ServingStats()
        assert stats.snapshot()["throughput_rps"] == 0.0  # 0 requests

        stats.record_request(0.002)
        one = stats.snapshot()
        assert one["requests"] == 1
        assert one["throughput_rps"] > 0.0

        stats.record_request(0.002)
        two = stats.snapshot()
        assert two["requests"] == 2
        assert two["throughput_rps"] > 0.0

    def test_invalid_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(lambda X: X, max_batch=0)
