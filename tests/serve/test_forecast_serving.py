"""Serving forecasts: artifact round-trip + live HTTP H-step /predict."""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro import AutoML
from repro.data.timeseries import ForecastModel, make_timeseries
from repro.serve import (
    ModelRegistry,
    ModelServer,
    PipelineArtifact,
    ServeClient,
    ServeClientError,
    build_http_server,
)

HORIZON = 6
PERIOD = 12


@pytest.fixture(scope="module")
def series():
    return make_timeseries(n=220, seasonal_period=PERIOD, seasonal_amp=4.0,
                           ar=0.5, noise=0.4, seed=17).y


@pytest.fixture(scope="module")
def forecast_automl(series):
    automl = AutoML(seed=0, init_sample_size=120)
    automl.fit(None, series, task="forecast", horizon=HORIZON,
               seasonal_period=PERIOD, time_budget=10, max_iters=6,
               estimator_list=["lgbm"])
    return automl


@pytest.fixture(scope="module")
def forecast_artifact(forecast_automl):
    return forecast_automl.export_artifact()


@pytest.fixture(scope="module")
def live(tmp_path_factory, forecast_artifact):
    registry = ModelRegistry(str(tmp_path_factory.mktemp("fc-registry")))
    registry.register("demand", forecast_artifact)
    server = ModelServer(registry=registry)
    httpd = build_http_server(server, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    port = httpd.server_address[1]
    yield ServeClient(f"http://127.0.0.1:{port}"), port
    httpd.shutdown()
    httpd.server_close()
    server.close()
    thread.join(timeout=5)


class TestArtifactRoundTrip:
    def test_save_load_predicts_identically(self, forecast_artifact, series,
                                            tmp_path):
        path = str(tmp_path / "fc.json")
        forecast_artifact.save(path)
        again = PipelineArtifact.load(path)
        assert again.task == "forecast"
        assert isinstance(again.model, ForecastModel)
        hist = series[-60:]
        assert np.allclose(
            again.predict(hist, horizon=HORIZON),
            forecast_artifact.predict(hist, horizon=HORIZON),
        )

    def test_artifact_carries_lag_config(self, forecast_artifact,
                                         forecast_automl):
        meta = forecast_artifact.metadata
        assert meta["horizon"] == HORIZON
        assert meta["seasonal_period"] == PERIOD
        assert meta["lag_config"] == \
            forecast_automl.model.featurizer.to_dict()
        desc = forecast_artifact.describe()
        assert desc["task"] == "forecast" and "lag_config" in desc

    def test_default_horizon_comes_from_fit(self, forecast_artifact, series):
        assert forecast_artifact.predict(series[-60:]).shape == (HORIZON,)

    def test_proba_refused(self, forecast_artifact, series):
        with pytest.raises(RuntimeError, match="predict_proba"):
            forecast_artifact.predict_proba(series[-60:])

    def test_save_model_load_model_route(self, forecast_automl, series,
                                         tmp_path):
        path = str(tmp_path / "fc-model.json")
        forecast_automl.save_model(path)
        loaded = AutoML.load_model(path)
        assert np.allclose(
            loaded.predict(series[-60:], horizon=HORIZON),
            forecast_automl.predict(series[-60:], horizon=HORIZON),
        )


class TestLiveHTTP:
    def test_http_forecast_has_h_length(self, live, forecast_automl, series):
        client, _ = live
        hist = series[-80:]
        out = client.forecast(hist, horizon=HORIZON, model="demand")
        assert out.shape == (HORIZON,)
        assert np.allclose(out,
                           forecast_automl.predict(hist, horizon=HORIZON))

    def test_history_key_and_default_horizon(self, live, series):
        _, port = live
        body = json.dumps({"model": "demand",
                           "history": series[-80:].tolist()}).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/predict", data=body,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.status == 200
            out = json.loads(resp.read())
        assert out["horizon"] == HORIZON
        assert len(out["predictions"]) == HORIZON
        assert out["batched"] is False

    def test_longer_horizon_honoured(self, live, series):
        client, _ = live
        out = client.forecast(series[-80:], horizon=2 * PERIOD,
                              model="demand")
        assert out.shape == (2 * PERIOD,)

    def test_too_short_history_is_400(self, live):
        client, _ = live
        with pytest.raises(ServeClientError) as exc:
            client.forecast([1.0], model="demand")
        assert exc.value.status == 400

    def test_horizon_beyond_server_cap_is_400(self, live, series):
        # the horizon drives a recursive predict loop server-side; an
        # unbounded client value must be refused, not executed
        client, _ = live
        with pytest.raises(ServeClientError) as exc:
            client.forecast(series[-80:], horizon=10**9, model="demand")
        assert exc.value.status == 400
        assert "horizon" in str(exc.value)
        with pytest.raises(ServeClientError):
            client.forecast(series[-80:], horizon=0, model="demand")

    def test_proba_request_is_400(self, live, series):
        client, _ = live
        with pytest.raises(ServeClientError) as exc:
            client.predict(series[-80:], model="demand", proba=True)
        assert exc.value.status == 400

    def test_metrics_counted(self, live):
        client, _ = live
        stats = client.metrics()
        assert any(k.startswith("demand@") for k in stats)


class TestHorizonGuards:
    def test_horizon_on_tabular_model_is_400(self, live_tabular=None):
        # built inline: a non-forecast artifact must reject 'horizon'
        rng = np.random.default_rng(0)
        X = rng.standard_normal((200, 4))
        y = (X[:, 0] > 0).astype(np.int64)
        automl = AutoML(seed=0, init_sample_size=80)
        automl.fit(X, y, task="classification", time_budget=5, max_iters=4,
                   estimator_list=["lgbm"])
        art = automl.export_artifact()
        server = ModelServer(artifacts={"clf": art})
        with pytest.raises(ValueError, match="horizon"):
            server.predict("clf", X[:1], horizon=3)
        server.close()
