"""PipelineArtifact: export, raw-row prediction, JSON round-trip, and
the save_model/load_model path (including legacy files)."""

import json

import numpy as np
import pytest

from repro import AutoML
from repro.data.preprocessing import (
    Imputer,
    OneHotEncoder,
    StandardScaler,
    dump_preprocessor,
    load_preprocessor,
)
from repro.learners.model_io import save_model as _legacy_save
from repro.serve import PipelineArtifact, export_artifact


class TestExport:
    def test_predicts_raw_rows_like_automl(self, fitted_automl, artifact,
                                           served_data):
        X, _ = served_data
        assert np.array_equal(artifact.predict(X), fitted_automl.predict(X))
        assert np.array_equal(
            artifact.predict_proba(X), fitted_automl.predict_proba(X)
        )

    def test_single_row_accepted(self, fitted_automl, artifact, served_data):
        X, _ = served_data
        out = artifact.predict(X[3])
        assert out.shape == (1,)
        assert out[0] == fitted_automl.predict(X[3:4])[0]

    def test_metadata_captured(self, artifact):
        meta = artifact.metadata
        assert meta["learner"] == "lgbm"
        assert meta["metric"] == "roc_auc"
        assert meta["n_features_in"] == 5
        assert meta["task"] == "binary"
        fp = meta["dataset_fingerprint"]
        assert fp["n"] == 300 and fp["d"] == 5 and "crc32" in fp
        assert isinstance(meta["config"], dict)

    def test_module_level_export_matches_method(self, fitted_automl):
        via_method = fitted_automl.export_artifact()
        via_fn = export_artifact(fitted_automl)
        assert via_fn.task == via_method.task
        assert type(via_fn.model) is type(via_method.model)
        # the standalone function derives the full metadata itself
        for key in ("learner", "config", "metric", "n_features_in",
                    "dataset_fingerprint"):
            assert via_fn.metadata[key] == via_method.metadata[key]

    def test_user_metadata_wins_and_merges(self, fitted_automl):
        art = fitted_automl.export_artifact(metadata={"owner": "t",
                                                      "learner": "custom"})
        assert art.metadata["owner"] == "t"
        assert art.metadata["learner"] == "custom"
        assert art.metadata["metric"] == "roc_auc"

    def test_export_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            AutoML().export_artifact()


class TestRoundTrip:
    def test_dict_round_trip_bitwise(self, artifact, served_data):
        X, _ = served_data
        back = PipelineArtifact.from_dict(
            json.loads(json.dumps(artifact.to_dict()))
        )
        assert np.array_equal(back.predict(X), artifact.predict(X))
        assert np.array_equal(
            back.predict_proba(X), artifact.predict_proba(X)
        )

    def test_save_model_embeds_preprocessing(self, fitted_automl, served_data,
                                             tmp_path):
        X, _ = served_data
        path = str(tmp_path / "pipeline.json")
        fitted_automl.save_model(path)
        revived = AutoML.load_model(path)
        # raw rows (with NaNs) score identically: the preprocessor chain
        # travelled inside the file
        assert np.isnan(X).any()
        assert np.array_equal(revived.predict(X), fitted_automl.predict(X))

    def test_legacy_model_file_still_loads(self, fitted_automl, served_data,
                                           tmp_path):
        X, _ = served_data
        path = str(tmp_path / "legacy.json")
        _legacy_save(fitted_automl.model, path)  # old bare-estimator format
        revived = AutoML.load_model(path)
        assert revived.metadata.get("legacy_model_file")
        assert revived.task == "binary"
        # legacy files never carried preprocessing, so compare on
        # already-preprocessed rows
        Xp = fitted_automl._apply_preprocessor(X)
        assert np.array_equal(
            revived.predict(Xp), fitted_automl.model.predict(Xp)
        )

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a pipeline artifact"):
            PipelineArtifact.from_dict({"format": "something-else"})


class TestValidation:
    def test_feature_count_mismatch_is_actionable(self, artifact):
        with pytest.raises(ValueError, match="trained on 5 raw features"):
            artifact.predict(np.zeros((2, 9)))

    def test_proba_on_regression_is_actionable(self, served_data):
        X, _ = served_data
        y = X[:, 0] * 2.0 + 1.0
        automl = AutoML(seed=0, init_sample_size=100)
        automl.fit(X[:, :2], y[:], task="regression", time_budget=3,
                   max_iters=4, estimator_list=["lgbm"])
        with pytest.raises(RuntimeError, match="task='regression'"):
            automl.predict_proba(X[:, :2])
        with pytest.raises(RuntimeError, match="use predict"):
            automl.export_artifact().predict_proba(X[:5, :2])

    def test_unfitted_error_names_the_fix(self):
        with pytest.raises(RuntimeError, match=r"fit\(X_train, y_train"):
            AutoML().predict(np.zeros((1, 2)))


class TestPreprocessorSerialisation:
    def test_each_builtin_round_trips(self):
        r = np.random.default_rng(3)
        X = r.standard_normal((50, 4))
        X[::7, 1] = np.nan
        X[:, 3] = r.integers(0, 3, 50)
        for step in (Imputer("median"), StandardScaler(),
                     OneHotEncoder(columns=(3,))):
            Xt = step.fit_transform(X)
            back = load_preprocessor(
                json.loads(json.dumps(dump_preprocessor(step)))
            )
            assert np.array_equal(
                back.transform(X), Xt, equal_nan=True
            ), type(step).__name__

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            dump_preprocessor(StandardScaler())

    def test_unknown_class_raises(self):
        class Custom:
            pass

        with pytest.raises(TypeError, match="built-in preprocessors"):
            dump_preprocessor(Custom())
        with pytest.raises(ValueError, match="unknown preprocessor"):
            load_preprocessor({"class": "Custom"})
