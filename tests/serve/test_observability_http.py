"""HTTP observability: Prometheus /metrics, request ids, slow-request
logging, and the native status in /health.

The Prometheus exposition is validated line-by-line (every sample line
must be ``name{labels} value`` with a numeric value and cumulative
histogram buckets) — the contract a real scraper relies on.
"""

from __future__ import annotations

import json
import logging
import threading
import urllib.request

import pytest

from repro.serve import ModelServer, build_http_server


@pytest.fixture(scope="module")
def live(artifact):
    model_server = ModelServer(artifacts={"churn": artifact}, max_batch=8,
                               max_delay_ms=1.0)
    httpd = build_http_server(model_server, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, model_server
    httpd.shutdown()
    httpd.server_close()
    model_server.close()
    thread.join(timeout=5)


def _get(url, headers=None):
    req = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(req) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


def _predict_once(base):
    return _post(f"{base}/predict",
                 {"model": "churn", "rows": [[0.1] * 5, [0.2] * 5]})


class TestRequestIds:
    def test_every_response_carries_a_request_id(self, live):
        base, _ = live
        _, headers, _ = _get(f"{base}/health")
        assert len(headers["X-Request-Id"]) == 16
        _, headers2, _ = _predict_once(base)
        assert headers2["X-Request-Id"] != headers["X-Request-Id"]

    def test_slow_request_logged_with_its_id(self, live, caplog):
        base, model_server = live
        model_server.slow_request_ms = 0.0001  # everything is "slow"
        try:
            with caplog.at_level(logging.WARNING, logger="repro.serve"):
                _, headers, _ = _get(f"{base}/health")
        finally:
            model_server.slow_request_ms = 500.0
        wanted = [r for r in caplog.records
                  if headers["X-Request-Id"] in r.getMessage()]
        assert wanted and "slow request" in wanted[0].getMessage()

    def test_fast_requests_not_logged(self, live, caplog):
        base, _ = live
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            _get(f"{base}/health")
        assert not [r for r in caplog.records
                    if "slow request" in r.getMessage()]


class TestHealthNative:
    def test_health_reports_native_status(self, live):
        base, _ = live
        _, _, body = _get(f"{base}/health")
        native = json.loads(body)["native"]
        assert native["mode"] in ("compiled", "fallback")
        assert set(native) == {"mode", "enabled", "available", "reason"}


class TestPrometheusMetrics:
    def _parse_exposition(self, text):
        """Strict line-by-line parse; returns {sample_line_key: float}."""
        samples = {}
        types = {}
        for line in text.splitlines():
            assert line == line.rstrip()
            if not line:
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                assert kind in ("counter", "gauge", "histogram")
                types[name] = kind
                continue
            if line.startswith("# HELP "):
                continue
            assert not line.startswith("#")
            name_labels, _, value = line.rpartition(" ")
            assert name_labels, f"malformed sample line: {line!r}"
            samples[name_labels] = float(value)
        return samples, types

    def test_json_default_is_backward_compatible(self, live):
        base, _ = live
        _predict_once(base)
        status, headers, body = _get(f"{base}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        stats = json.loads(body)["churn"]
        for key in ("requests", "batches", "rows", "errors",
                    "mean_batch_size", "throughput_rps"):
            assert key in stats

    def test_prometheus_text_parses_line_by_line(self, live):
        base, _ = live
        _predict_once(base)
        status, headers, body = _get(f"{base}/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        samples, types = self._parse_exposition(body)
        assert types["repro_serving_requests_total"] == "counter"
        assert types["repro_serving_request_seconds"] == "histogram"
        assert types["repro_http_requests_total"] == "counter"
        assert samples['repro_serving_requests_total{model="churn"}'] >= 1
        # histogram invariants: cumulative buckets, +Inf == _count
        churn = 'repro_serving_request_seconds_bucket{le="+Inf",model="churn"}'
        count = 'repro_serving_request_seconds_count{model="churn"}'
        assert samples[churn] == samples[count] >= 1
        buckets = [
            (key, v) for key, v in samples.items()
            if key.startswith('repro_serving_request_seconds_bucket'
                              '{le=') and 'model="churn"' in key
            and "+Inf" not in key
        ]
        values = [v for _, v in buckets]
        assert values == sorted(values)  # cumulative => non-decreasing

    def test_accept_header_selects_prometheus(self, live):
        base, _ = live
        _, headers, body = _get(f"{base}/metrics",
                                headers={"Accept": "text/plain"})
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE" in body

    def test_http_counters_label_endpoint_and_code(self, live):
        base, _ = live
        _get(f"{base}/health")
        try:
            _get(f"{base}/nowhere-to-be-found")
        except urllib.request.HTTPError:
            pass
        _, _, body = _get(f"{base}/metrics?format=prometheus")
        samples, _ = self._parse_exposition(body)
        ok = 'repro_http_requests_total{code="200",endpoint="/health"}'
        other = 'repro_http_requests_total{code="404",endpoint="other"}'
        assert samples[ok] >= 1
        assert samples[other] >= 1
