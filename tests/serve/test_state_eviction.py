"""Serving-state hygiene under multi-tenant churn.

Tenants register models without bound, so the server's cached
artifacts / stats / batchers must be evictable (deleted or rolled-back
versions), LRU-bounded, and ``/metrics`` label cardinality must stay
fixed no matter how many models have ever served.
"""

import shutil

import numpy as np
import pytest

from repro.serve import ModelRegistry, ModelServer


@pytest.fixture()
def registry(tmp_path, artifact):
    reg = ModelRegistry(str(tmp_path / "registry"))
    for name in ("m0", "m1", "m2"):
        reg.register(name, artifact)
    return reg


@pytest.fixture()
def rows(served_data):
    X, _ = served_data
    return X[:5]


class TestExplicitEviction:
    def test_evict_and_lazy_rebuild(self, registry, rows):
        server = ModelServer(registry=registry, batching=False)
        try:
            before = server.predict("m0", rows)["predictions"]
            assert ("m0", 1) in server._loaded
            assert server.evict_model_state("m0") >= 1
            assert ("m0", 1) not in server._loaded
            assert all(not k.startswith("m0@") for k in server._stats)
            # eviction is invisible to clients: state rebuilds on demand
            after = server.predict("m0", rows)["predictions"]
            assert before == after
            assert server.evict_model_state("nope") == 0
        finally:
            server.close()

    def test_evict_single_version_keeps_the_rest(self, registry, artifact,
                                                 rows):
        registry.register("m0", artifact)  # v2
        server = ModelServer(registry=registry, batching=False)
        try:
            server.predict("m0", rows, version=1)
            server.predict("m0", rows, version=2)
            assert server.evict_model_state("m0", version=1) == 1
            assert ("m0", 1) not in server._loaded
            assert ("m0", 2) in server._loaded
        finally:
            server.close()


class TestReconcile:
    def test_quarantined_and_deleted_versions_dropped(self, registry,
                                                      rows):
        server = ModelServer(registry=registry, batching=False)
        try:
            for name in ("m0", "m1", "m2"):
                server.predict(name, rows)
            assert server.reconcile_model_state() == 0  # all still live
            registry.quarantine("m1", 1, "integrity scare")
            shutil.rmtree(registry._dir("m2"))  # model deleted outright
            assert server.reconcile_model_state() == 2
            assert ("m0", 1) in server._loaded
            assert ("m1", 1) not in server._loaded
            assert ("m2", 1) not in server._loaded
        finally:
            server.close()

    def test_fixed_artifacts_are_exempt(self, artifact, rows):
        server = ModelServer(artifacts={"pinned": artifact}, batching=False)
        try:
            server.predict("pinned", rows)
            assert server.reconcile_model_state() == 0
        finally:
            server.close()


class TestLruBound:
    def test_state_never_exceeds_max_model_state(self, registry, rows):
        server = ModelServer(registry=registry, batching=False,
                             max_model_state=2)
        try:
            for name in ("m0", "m1", "m2"):
                server.predict(name, rows)
            assert len(server._state_lru) == 2
            # least recently served went first
            assert ("m0", 1) not in server._loaded
            assert ("m1", 1) in server._loaded and ("m2", 1) in server._loaded
            # serving the evicted model again reloads it and bumps m1
            server.predict("m0", rows)
            server.predict("m2", rows)
            server.predict("m0", rows)
            assert ("m1", 1) not in server._loaded
            assert len(server._state_lru) == 2
        finally:
            server.close()

    def test_invalid_caps_rejected(self, registry):
        with pytest.raises(ValueError, match="max_model_state"):
            ModelServer(registry=registry, max_model_state=0)
        with pytest.raises(ValueError, match="max_metrics_models"):
            ModelServer(registry=registry, max_metrics_models=0)


class TestMetricsCardinality:
    def test_json_metrics_roll_up_the_tail(self, registry, rows):
        server = ModelServer(registry=registry, batching=False,
                             max_metrics_models=2)
        try:
            for name in ("m0", "m1", "m2"):
                server.predict(name, rows)
            out = server.metrics()
            per_model = [k for k in out if k != "_other"]
            assert len(per_model) == 2
            assert out["_other"]["models"] == 1
            assert out["_other"]["requests"] == 1
            assert out["_other"]["rows"] == len(rows)
        finally:
            server.close()

    def test_prometheus_label_cardinality_is_bounded(self, registry, rows):
        server = ModelServer(registry=registry, batching=False,
                             max_metrics_models=2)
        try:
            for name in ("m0", "m1", "m2"):
                server.predict(name, rows)
            text = server.prometheus_metrics()
            request_lines = [
                line for line in text.splitlines()
                if line.startswith("repro_serving_requests_total{")
            ]
            labels = {line.split("model=")[1].split('"')[1]
                      for line in request_lines}
            assert len(labels) == 3  # 2 recent models + the rollup
            assert "_other" in labels
            # the rollup conserves totals: nothing silently dropped
            total = sum(
                float(line.rsplit(" ", 1)[1]) for line in request_lines
            )
            assert total == 3.0
        finally:
            server.close()

    def test_under_the_cap_no_rollup(self, registry, rows):
        server = ModelServer(registry=registry, batching=False)
        try:
            server.predict("m0", rows)
            assert "_other" not in server.metrics()
            assert 'model="_other"' not in server.prometheus_metrics()
        finally:
            server.close()
