"""Shared serving fixtures: one quickly-fitted pipeline per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AutoML
from repro.data.preprocessing import Imputer, StandardScaler


@pytest.fixture(scope="session")
def served_data():
    r = np.random.default_rng(42)
    X = r.standard_normal((300, 5))
    X[::17, 2] = np.nan  # exercise the Imputer inside the artifact
    y = ((np.nan_to_num(X[:, 0]) + X[:, 1]) > 0).astype(np.int64)
    return X, y


@pytest.fixture(scope="session")
def fitted_automl(served_data):
    X, y = served_data
    automl = AutoML(seed=0, init_sample_size=100)
    automl.fit(
        X, y, task="classification", time_budget=5, max_iters=6,
        estimator_list=["lgbm"],
        preprocessor=[Imputer(strategy="median"), StandardScaler()],
    )
    return automl


@pytest.fixture(scope="session")
def artifact(fitted_automl):
    return fitted_automl.export_artifact()
