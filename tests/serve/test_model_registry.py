"""ModelRegistry: versioning, aliases, promote/rollback, integrity."""

import json
import os

import numpy as np
import pytest

from repro.serve import ModelRegistry, RegistryError


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(str(tmp_path / "registry"))


class TestVersioning:
    def test_versions_are_monotonic_and_latest_moves(self, registry, artifact):
        assert registry.register("churn", artifact) == 1
        assert registry.register("churn", artifact) == 2
        assert registry.register("churn", artifact) == 3
        assert registry.resolve("churn", "latest") == 3
        assert [v["version"] for v in registry.versions("churn")] == [1, 2, 3]

    def test_get_by_number_alias_and_string_digit(self, registry, artifact,
                                                  served_data):
        X, _ = served_data
        registry.register("m", artifact)
        registry.register("m", artifact)
        for version in (1, "1", "latest"):
            got = registry.get("m", version)
            assert np.array_equal(got.predict(X[:5]), artifact.predict(X[:5]))

    def test_models_listing(self, registry, artifact):
        assert registry.models() == []
        registry.register("a", artifact)
        registry.register("b", artifact)
        assert registry.models() == ["a", "b"]
        assert set(registry.index()) == {"a", "b"}

    def test_register_metadata_is_kept(self, registry, artifact):
        registry.register("m", artifact, metadata={"owner": "team-x"})
        assert registry.versions("m")[0]["metadata"] == {"owner": "team-x"}

    def test_invalid_name_rejected(self, registry, artifact):
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.register("../escape", artifact)


class TestAliases:
    def test_promote_and_resolve(self, registry, artifact):
        registry.register("m", artifact)
        registry.register("m", artifact)
        registry.promote("m", 1, "production")
        assert registry.resolve("m", "production") == 1
        assert registry.resolve("m", "latest") == 2

    def test_rollback_restores_previous_target(self, registry, artifact):
        for _ in range(3):
            registry.register("m", artifact)
        registry.promote("m", 1, "production")
        registry.promote("m", 3, "production")
        assert registry.rollback("m", "production") == 1
        assert registry.resolve("m", "production") == 1

    def test_rollback_without_history_raises(self, registry, artifact):
        registry.register("m", artifact)
        registry.promote("m", 1, "production")
        with pytest.raises(RegistryError, match="no earlier version"):
            registry.rollback("m", "production")

    def test_latest_is_reserved(self, registry, artifact):
        registry.register("m", artifact)
        with pytest.raises(RegistryError, match="managed automatically"):
            registry.promote("m", 1, "latest")

    def test_unknown_alias_and_version_are_actionable(self, registry,
                                                      artifact):
        registry.register("m", artifact)
        with pytest.raises(RegistryError, match="no alias 'staging'"):
            registry.resolve("m", "staging")
        with pytest.raises(RegistryError, match="known versions: \\[1\\]"):
            registry.resolve("m", 7)
        with pytest.raises(RegistryError, match="unknown model"):
            registry.get("nope")


class TestIntegrity:
    def test_tampered_artifact_is_refused(self, registry, artifact):
        registry.register("m", artifact)
        path = os.path.join(registry.root, "m", "v1", "artifact.json")
        with open(path) as f:
            obj = json.load(f)
        obj["task"] = "regression"  # hand-edit the deployed file
        with open(path, "w") as f:
            json.dump(obj, f)
        with pytest.raises(RegistryError, match="integrity check failed"):
            registry.get("m")

    def test_missing_artifact_file_is_reported(self, registry, artifact):
        registry.register("m", artifact)
        os.remove(os.path.join(registry.root, "m", "v1", "artifact.json"))
        with pytest.raises(RegistryError, match="missing"):
            registry.get("m")

    def test_reopened_registry_reads_same_state(self, registry, artifact,
                                                served_data):
        X, _ = served_data
        registry.register("m", artifact)
        registry.promote("m", 1, "production")
        reopened = ModelRegistry(registry.root)
        assert reopened.resolve("m", "production") == 1
        got = reopened.get("m", "production")
        assert np.array_equal(got.predict(X[:3]), artifact.predict(X[:3]))
