"""ModelRegistry: versioning, aliases, promote/rollback, integrity,
and write-lock behaviour under crashes and concurrent writers."""

import json
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.serve import ModelRegistry, RegistryError


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(str(tmp_path / "registry"))


class TestVersioning:
    def test_versions_are_monotonic_and_latest_moves(self, registry, artifact):
        assert registry.register("churn", artifact) == 1
        assert registry.register("churn", artifact) == 2
        assert registry.register("churn", artifact) == 3
        assert registry.resolve("churn", "latest") == 3
        assert [v["version"] for v in registry.versions("churn")] == [1, 2, 3]

    def test_get_by_number_alias_and_string_digit(self, registry, artifact,
                                                  served_data):
        X, _ = served_data
        registry.register("m", artifact)
        registry.register("m", artifact)
        for version in (1, "1", "latest"):
            got = registry.get("m", version)
            assert np.array_equal(got.predict(X[:5]), artifact.predict(X[:5]))

    def test_models_listing(self, registry, artifact):
        assert registry.models() == []
        registry.register("a", artifact)
        registry.register("b", artifact)
        assert registry.models() == ["a", "b"]
        assert set(registry.index()) == {"a", "b"}

    def test_register_metadata_is_kept(self, registry, artifact):
        registry.register("m", artifact, metadata={"owner": "team-x"})
        assert registry.versions("m")[0]["metadata"] == {"owner": "team-x"}

    def test_invalid_name_rejected(self, registry, artifact):
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.register("../escape", artifact)


class TestAliases:
    def test_promote_and_resolve(self, registry, artifact):
        registry.register("m", artifact)
        registry.register("m", artifact)
        registry.promote("m", 1, "production")
        assert registry.resolve("m", "production") == 1
        assert registry.resolve("m", "latest") == 2

    def test_rollback_restores_previous_target(self, registry, artifact):
        for _ in range(3):
            registry.register("m", artifact)
        registry.promote("m", 1, "production")
        registry.promote("m", 3, "production")
        assert registry.rollback("m", "production") == 1
        assert registry.resolve("m", "production") == 1

    def test_rollback_without_history_raises(self, registry, artifact):
        registry.register("m", artifact)
        registry.promote("m", 1, "production")
        with pytest.raises(RegistryError, match="no earlier version"):
            registry.rollback("m", "production")

    def test_latest_is_reserved(self, registry, artifact):
        registry.register("m", artifact)
        with pytest.raises(RegistryError, match="managed automatically"):
            registry.promote("m", 1, "latest")

    def test_unknown_alias_and_version_are_actionable(self, registry,
                                                      artifact):
        registry.register("m", artifact)
        with pytest.raises(RegistryError, match="no alias 'staging'"):
            registry.resolve("m", "staging")
        with pytest.raises(RegistryError, match="known versions: \\[1\\]"):
            registry.resolve("m", 7)
        with pytest.raises(RegistryError, match="unknown model"):
            registry.get("nope")


class TestWriteLock:
    """Version allocation is advisory-locked (fcntl): a writer killed
    mid-registration must not leave a lock that blocks everyone until
    a timeout — the kernel releases flocks on process death."""

    def test_crashed_writer_does_not_block_registration(self, registry,
                                                        artifact):
        pytest.importorskip("fcntl")
        registry.register("m", artifact)
        lock_path = os.path.join(registry.root, "m", ".lock")
        assert os.path.exists(lock_path)  # register took the lock
        # a writer grabs the lock and dies hard (SIGKILL: no finally,
        # no atexit — the old stale-lockfile failure mode)
        code = (
            "import fcntl, os\n"
            f"fd = os.open({lock_path!r}, os.O_CREAT | os.O_RDWR)\n"
            "fcntl.flock(fd, fcntl.LOCK_EX)\n"
            "print('locked', flush=True)\n"
            "os.kill(os.getpid(), 9)\n"
        )
        proc = subprocess.Popen([sys.executable, "-c", code],
                                stdout=subprocess.PIPE)
        assert proc.stdout.readline().strip() == b"locked"
        proc.wait(timeout=10)
        t0 = time.monotonic()
        assert registry.register("m", artifact) == 2
        # promptly — not after riding out the LOCK_TIMEOUT_S deadline
        assert time.monotonic() - t0 < registry.LOCK_TIMEOUT_S / 2

    def test_stale_lock_file_contents_are_harmless(self, registry,
                                                   artifact):
        os.makedirs(os.path.join(registry.root, "m"), exist_ok=True)
        with open(os.path.join(registry.root, "m", ".lock"), "w") as f:
            f.write("999999")  # a pid that is long gone
        assert registry.register("m", artifact) == 1

    def test_live_writer_times_out_with_actionable_error(self, registry,
                                                         artifact):
        fcntl = pytest.importorskip("fcntl")
        registry.register("m", artifact)
        registry.LOCK_TIMEOUT_S = 0.3  # instance override: fast test
        lock_path = os.path.join(registry.root, "m", ".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)  # per-fd, so this thread holds
            with pytest.raises(RegistryError, match="write lock"):
                registry.register("m", artifact)
        finally:
            os.close(fd)
        assert registry.register("m", artifact) == 2  # lock released

    def test_concurrent_writers_mint_distinct_versions(self, registry,
                                                       artifact):
        versions, errors = [], []

        def go():
            try:
                versions.append(registry.register("m", artifact))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=go) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert sorted(versions) == list(range(1, 9))  # no duplicates
        assert registry.resolve("m", "latest") == 8


class TestIntegrity:
    def test_tampered_artifact_is_refused(self, registry, artifact):
        registry.register("m", artifact)
        path = os.path.join(registry.root, "m", "v1", "artifact.json")
        with open(path) as f:
            obj = json.load(f)
        obj["task"] = "regression"  # hand-edit the deployed file
        with open(path, "w") as f:
            json.dump(obj, f)
        with pytest.raises(RegistryError, match="integrity check failed"):
            registry.get("m")

    def test_missing_artifact_file_is_reported(self, registry, artifact):
        registry.register("m", artifact)
        os.remove(os.path.join(registry.root, "m", "v1", "artifact.json"))
        with pytest.raises(RegistryError, match="missing"):
            registry.get("m")

    def test_reopened_registry_reads_same_state(self, registry, artifact,
                                                served_data):
        X, _ = served_data
        registry.register("m", artifact)
        registry.promote("m", 1, "production")
        reopened = ModelRegistry(registry.root)
        assert reopened.resolve("m", "production") == 1
        got = reopened.get("m", "production")
        assert np.array_equal(got.predict(X[:3]), artifact.predict(X[:3]))
