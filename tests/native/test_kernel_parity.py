"""Differential fuzz: compiled kernels vs the numpy reference, bitwise.

Every exported kernel (``build_hists``, ``best_split_scan``, the
oblivious level scorer) must return **bit-for-bit** the same floats as
:mod:`repro.native.fallback` — not ``allclose``, the identical IEEE
doubles — across hypothesis-generated workloads including empty nodes,
single-bin features, all-rows-one-leaf, and extreme float magnitudes
(overflow-to-inf sums included; comparisons go through the raw uint64
bit patterns, so even NaN-producing inf−inf cancellations must agree).

Whole-grower parity rides on top: a GradTree / oblivious-tree grown
with the native kernels equals the fallback-grown tree node for node.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.native as native_pkg
from repro.native import fallback, native_available, set_native_enabled
from repro.native.fallback import soft_threshold

pytestmark = [
    pytest.mark.skipif(
        not native_available(),
        reason="native kernels unavailable (no C compiler on this box)",
    ),
    # extreme-magnitude cases overflow/divide by design on the numpy
    # reference path; the point is that the C kernel matches bit for bit
    pytest.mark.filterwarnings("ignore::RuntimeWarning"),
]


def native():
    kernels = native_pkg._load_native()
    assert kernels is not None and kernels.is_native
    return kernels


def assert_bits_equal(a: np.ndarray, b: np.ndarray) -> None:
    """Bitwise array equality (NaN payloads included)."""
    assert a.shape == b.shape and a.dtype == b.dtype == np.float64
    assert np.array_equal(a.view(np.uint64), b.view(np.uint64))


def assert_result_equal(ra, rb) -> None:
    """(gain, j, t) equality with the gain compared at bit level."""
    assert ra[1:] == rb[1:], (ra, rb)
    assert np.float64(ra[0]).tobytes() == np.float64(rb[0]).tobytes(), (ra, rb)


# ----------------------------------------------------------------------
@st.composite
def node_cases(draw):
    """One tree node: codes, per-feature bin counts, idx subset, grads."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(1, 120))
    d = draw(st.integers(1, 6))
    dtype = draw(st.sampled_from([np.uint8, np.uint16]))
    scale = draw(st.sampled_from([1.0, 1e-3, 1e18, 1e300, 1e-300]))
    subset = draw(st.sampled_from(["empty", "all", "some"]))
    rng = np.random.default_rng(seed)
    # include single-bin features (n_bins == 1: only the missing bin)
    n_bins = rng.integers(1, 24, size=d)
    if draw(st.booleans()):
        n_bins[rng.integers(0, d)] = 1
    codes = np.empty((n, d), dtype=dtype)
    for j in range(d):
        codes[:, j] = rng.integers(0, n_bins[j], size=n)
    g = rng.standard_normal(n) * scale
    h = rng.standard_normal(n) * scale
    if draw(st.booleans()):
        h = np.abs(h) + 1e-3  # the realistic regime: positive hessians
    if subset == "empty":
        idx = np.empty(0, dtype=np.int64)
    elif subset == "all":
        idx = np.arange(n)  # all-rows-one-leaf
    else:
        idx = np.sort(rng.choice(n, rng.integers(1, n + 1), replace=False))
    if draw(st.booleans()) or d == 1:
        features = np.arange(d)
        all_features = True
    else:
        features = np.sort(
            rng.choice(d, rng.integers(1, d + 1), replace=False)
        )
        all_features = features.size == d
    return codes, n_bins.astype(np.int64), idx, g, h, features, all_features


SCAN_PARAMS = st.tuples(
    st.sampled_from([0.0, 1e-10, 0.1, 2.0]),      # reg_alpha
    st.sampled_from([0.0, 1.0, 3.0]),             # reg_lambda
    st.sampled_from([0.0, 1e-3, 2.0]),            # min_child_weight
    st.sampled_from([1, 2, 5]),                   # min_samples_leaf
)


class TestBuildHistsParity:
    @settings(max_examples=80, deadline=None)
    @given(case=node_cases(), need_cnt=st.booleans())
    def test_fuzz(self, case, need_cnt):
        codes, n_bins, idx, g, h, features, all_features = case
        nbmax = int(n_bins[features].max())
        a = fallback.build_hists(codes, g[idx], h[idx], idx, features,
                                 n_bins, nbmax, need_cnt,
                                 all_features=all_features)
        b = native().build_hists(codes, g[idx], h[idx], idx, features,
                                 n_bins, nbmax, need_cnt,
                                 all_features=all_features)
        assert_bits_equal(a, b)

    def test_large_node_branch(self):
        """Cross the fallback's 200k flat-bincount threshold: the numpy
        per-feature branch and the C loop must still agree bitwise."""
        rng = np.random.default_rng(0)
        n, d = 30_000, 7
        n_bins = np.full(d, 32, dtype=np.int64)
        codes = rng.integers(0, 32, (n, d)).astype(np.uint8)
        g = rng.standard_normal(n) * 1e6
        h = np.abs(rng.standard_normal(n))
        idx = np.arange(n)
        feats = np.arange(d)
        assert idx.size * d > 200_000
        a = fallback.build_hists(codes, g, h, idx, feats, n_bins, 32,
                                 True, all_features=True)
        b = native().build_hists(codes, g, h, idx, feats, n_bins, 32,
                                 True, all_features=True)
        assert_bits_equal(a, b)

    def test_overflowing_sums(self):
        """Sums that overflow to inf (and inf − inf = NaN downstream)
        must produce identical bit patterns."""
        n, d = 64, 2
        n_bins = np.array([3, 3], dtype=np.int64)
        codes = np.tile(np.array([[1, 2]], dtype=np.uint8), (n, 1))
        g = np.full(n, 1e308)
        g[::2] = -1e308
        h = np.full(n, 1e308)
        idx = np.arange(n)
        feats = np.arange(d)
        a = fallback.build_hists(codes, g, h, idx, feats, n_bins, 3,
                                 False, all_features=True)
        b = native().build_hists(codes, g, h, idx, feats, n_bins, 3,
                                 False, all_features=True)
        assert_bits_equal(a, b)


class TestBestSplitScanParity:
    @settings(max_examples=80, deadline=None)
    @given(case=node_cases(), params=SCAN_PARAMS)
    def test_fuzz(self, case, params):
        codes, n_bins, idx, g, h, features, all_features = case
        alpha, lam, mcw, msl = params
        nbf = n_bins[features]
        nbmax = int(nbf.max())
        if nbmax < 2:
            return  # growers never scan single-bin-only nodes
        gi, hi = g[idx], h[idx]
        G, H = float(gi.sum()), float(hi.sum())
        parent = soft_threshold(G, alpha) ** 2 / (H + lam)
        hists = fallback.build_hists(codes, gi, hi, idx, features, n_bins,
                                     nbmax, msl > 1,
                                     all_features=all_features)
        ra = fallback.best_split_scan(hists, nbf, idx.size, G, H, parent,
                                      mcw, alpha, lam, msl)
        rb = native().best_split_scan(hists, nbf, idx.size, G, H, parent,
                                      mcw, alpha, lam, msl)
        assert_result_equal(ra, rb)

    def test_nan_gain_cells_follow_numpy_argmax(self):
        """inf totals make inf − inf = NaN gains; numpy's argmax picks
        the FIRST NaN and the C scan must do the same."""
        n_bins = np.array([5, 5], dtype=np.int64)
        codes = np.repeat(
            np.array([[1, 1], [2, 2], [3, 3], [4, 4]], dtype=np.uint8),
            8, axis=0,
        )
        n = codes.shape[0]
        g = np.full(n, 1e308)
        h = np.full(n, 1.0)
        idx = np.arange(n)
        feats = np.arange(2)
        G, H = float(g.sum()), float(h.sum())
        parent = soft_threshold(G, 0.0) ** 2 / (H + 1.0)
        hists = fallback.build_hists(codes, g, h, idx, feats, n_bins, 5,
                                     False, all_features=True)
        ra = fallback.best_split_scan(hists, n_bins, n, G, H, parent,
                                      0.0, 0.0, 1.0, 1)
        rb = native().best_split_scan(hists, n_bins, n, G, H, parent,
                                      0.0, 0.0, 1.0, 1)
        assert_result_equal(ra, rb)

    def test_no_valid_split(self):
        """min_child_weight beyond every hessian sum: both sides must
        report 'no split'."""
        rng = np.random.default_rng(3)
        n_bins = np.array([8], dtype=np.int64)
        codes = rng.integers(0, 8, (40, 1)).astype(np.uint8)
        g = rng.standard_normal(40)
        h = np.full(40, 1e-6)
        idx = np.arange(40)
        feats = np.arange(1)
        G, H = float(g.sum()), float(h.sum())
        parent = soft_threshold(G, 0.0) ** 2 / (H + 1.0)
        hists = fallback.build_hists(codes, g, h, idx, feats, n_bins, 8,
                                     False, all_features=True)
        ra = fallback.best_split_scan(hists, n_bins, 40, G, H, parent,
                                      1e9, 0.0, 1.0, 1)
        rb = native().best_split_scan(hists, n_bins, 40, G, H, parent,
                                      1e9, 0.0, 1.0, 1)
        assert ra == rb == (0.0, -1, -1)


class TestObliviousScorerParity:
    @settings(max_examples=50, deadline=None)
    @given(case=node_cases(), depth=st.integers(1, 4),
           lam=st.sampled_from([0.0, 1.0, 3.0]),
           mcw=st.sampled_from([0.0, 1e-3, 1.0]))
    def test_level_by_level(self, case, depth, lam, mcw):
        codes, n_bins, _idx, g, h, features, _all = case
        cand = features
        if int(n_bins[cand].max()) < 2:
            return  # the grower returns a root-only tree before scoring
        sa = fallback.ObliviousLevelScorer(codes, cand, n_bins, g, h,
                                           mcw, lam)
        sb = native().ObliviousLevelScorer(codes, cand, n_bins, g, h,
                                           mcw, lam)
        node = np.zeros(codes.shape[0], dtype=np.int64)
        for lvl in range(depth):
            ra = sa.score_level(node, lvl)
            rb = sb.score_level(node, lvl)
            assert_result_equal(ra, rb)
            if ra[1] < 0:
                break
            f = int(cand[ra[1]])
            node |= (codes[:, f] > ra[2]).astype(np.int64) << lvl


class TestWholeGrowerParity:
    def _tree_arrays(self, tree):
        return (tree._feature, tree._threshold, tree._left, tree._right,
                tree._value)

    @pytest.mark.parametrize("kw", [
        {},
        {"leaf_wise": False, "max_depth": 4},
        {"min_samples_leaf": 4},
        {"colsample_bytree": 0.6},
        {"colsample_bylevel": 0.6},
        {"extra_random": True, "min_samples_leaf": 2},
        {"reg_alpha": 0.3, "reg_lambda": 0.0},
        {"hist_subtraction": False},
    ])
    def test_grad_tree_identical(self, kw):
        from repro.learners.tree import GradTreeGrower

        rng = np.random.default_rng(9)
        n, d = 400, 5
        X_bins = np.full(d, 17, dtype=np.int64)
        codes = rng.integers(0, 17, (n, d)).astype(np.uint8)
        g = rng.standard_normal(n)
        h = np.abs(rng.standard_normal(n)) + 0.1
        trees = {}
        for name, kernels in (("numpy", fallback), ("native", native())):
            grower = GradTreeGrower(
                max_leaves=16, rng=np.random.default_rng(0),
                kernels=kernels, **kw,
            )
            trees[name] = grower.grow(codes, g, h, X_bins)
        for a, b in zip(self._tree_arrays(trees["numpy"]),
                        self._tree_arrays(trees["native"])):
            np.testing.assert_array_equal(a, b)

    def test_catboost_engine_identical(self, binary_split):
        from repro.learners import CatBoostLikeClassifier

        Xtr, ytr, Xte, _ = binary_split
        probas = {}
        for on in (False, True):
            prev = set_native_enabled(on)
            try:
                m = CatBoostLikeClassifier(
                    n_estimators=12, early_stop_rounds=12, seed=0
                ).fit(Xtr, ytr)
                probas[on] = m.predict_proba(Xte)
            finally:
                set_native_enabled(prev)
        assert np.array_equal(probas[False], probas[True])

    def test_wide_code_dtypes_route_to_fallback(self):
        """int32/int64 codes are legal on the public grower APIs; the C
        kernels cannot stride them, so the native wrappers must hand
        those inputs to the numpy reference instead of misreading the
        buffer (regression: silent wrong trees / OOB histogram writes)."""
        from repro.learners.tree import GradTreeGrower

        rng = np.random.default_rng(2)
        n, d = 200, 4
        n_bins = np.full(d, 11, dtype=np.int64)
        base = rng.integers(0, 11, (n, d))
        g = rng.standard_normal(n)
        h = np.abs(rng.standard_normal(n)) + 0.1
        ref = GradTreeGrower(max_leaves=8, kernels=fallback,
                             rng=np.random.default_rng(0)).grow(
            base.astype(np.uint8), g, h, n_bins)
        for dtype in (np.int32, np.int64, np.uint32):
            tree = GradTreeGrower(max_leaves=8, kernels=native(),
                                  rng=np.random.default_rng(0)).grow(
                base.astype(dtype), g, h, n_bins)
            np.testing.assert_array_equal(tree._value, ref._value)
            np.testing.assert_array_equal(tree._feature, ref._feature)
        # oblivious scorer factory: same routing
        scorer = native().ObliviousLevelScorer(
            base.astype(np.int64), np.arange(d), n_bins, g, h, 1e-3, 1.0)
        assert isinstance(scorer, fallback.ObliviousLevelScorer)

    def test_gbdt_engine_identical(self, regression_split):
        from repro.learners import LGBMLikeRegressor

        Xtr, ytr, Xte, _ = regression_split
        preds = {}
        for on in (False, True):
            prev = set_native_enabled(on)
            try:
                m = LGBMLikeRegressor(
                    tree_num=10, leaf_num=12, subsample=0.8, seed=0
                ).fit(Xtr, ytr)
                preds[on] = m.predict(Xte)
            finally:
                set_native_enabled(prev)
        assert np.array_equal(preds[False], preds[True])
