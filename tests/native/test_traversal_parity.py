"""Differential fuzz for the compiled inference plane, bitwise.

The three PR-6 kernels — ``build_class_hists`` (joint (class, feature,
bin) histograms for the classification grower) and the two traversal
kernels ``ensemble_predict`` / ``oblivious_predict`` — must return
**bit-for-bit** the same float64 as :mod:`repro.native.fallback` across
hypothesis-generated packed ensembles: random tree shapes, uint8/uint16
codes, extreme leaf-value magnitudes (1e300 overflow regime included),
zero-row batches, scalar-column and whole-row (``tree_class = -1``)
accumulation, and non-zero ``out`` bases.

The fallback itself is anchored separately against the *legacy*
per-tree loops (``out += lr * tree.predict(codes)`` over
``Tree``/``ObliviousTree``), so native == fallback == historical
semantics forms one chain.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.native as native_pkg
from repro.native import fallback, native_available
from repro.learners.catboost_like import FlatOblivious, ObliviousTree
from repro.learners.tree import FlatEnsemble, Tree

pytestmark = [
    pytest.mark.skipif(
        not native_available(),
        reason="native kernels unavailable (no C compiler on this box)",
    ),
    # 1e300-scale leaves overflow by design; the point is that the C
    # kernel matches the numpy reference bit for bit anyway
    pytest.mark.filterwarnings("ignore::RuntimeWarning"),
]


def native():
    kernels = native_pkg._load_native()
    assert kernels is not None and kernels.is_native
    return kernels


def assert_bits_equal(a: np.ndarray, b: np.ndarray) -> None:
    """Bitwise array equality (NaN payloads included)."""
    assert a.shape == b.shape and a.dtype == b.dtype == np.float64
    assert np.array_equal(a.view(np.uint64), b.view(np.uint64))


def random_tree(rng, d, n_bins, n_values, scale, max_splits=6) -> Tree:
    """A random frozen binary tree grown by splitting random leaves."""
    t = Tree(n_values=n_values)
    t.add_node(rng.standard_normal(n_values) * scale)
    for _ in range(int(rng.integers(0, max_splits + 1))):
        leaves = [i for i, f in enumerate(t.feature) if f < 0]
        nid = int(rng.choice(leaves))
        lid = t.add_node(rng.standard_normal(n_values) * scale)
        rid = t.add_node(rng.standard_normal(n_values) * scale)
        t.set_split(nid, int(rng.integers(0, d)),
                    int(rng.integers(0, n_bins)), lid, rid)
    t.freeze()
    return t


# ----------------------------------------------------------------------
@st.composite
def class_hist_cases(draw):
    """One classification node: codes, gathered labels/weights, features."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(1, 120))
    d = draw(st.integers(1, 6))
    dtype = draw(st.sampled_from([np.uint8, np.uint16]))
    n_classes = draw(st.integers(2, 5))
    scale = draw(st.sampled_from([1.0, 1e-3, 1e18, 1e300]))
    subset = draw(st.sampled_from(["empty", "all", "some"]))
    weighted = draw(st.booleans())
    rng = np.random.default_rng(seed)
    nbmax = int(rng.integers(2, 24))
    codes = rng.integers(0, nbmax, size=(n, d)).astype(dtype)
    if subset == "empty":
        idx = np.empty(0, dtype=np.int64)
    elif subset == "all":
        idx = np.arange(n)
    else:
        idx = np.sort(rng.choice(n, rng.integers(1, n + 1), replace=False))
    yk = rng.integers(0, n_classes, size=idx.size)
    w = np.abs(rng.standard_normal(idx.size)) * scale if weighted else None
    if draw(st.booleans()) or d == 1:
        features = np.arange(d)
        all_features = True
    else:
        # ClassTreeGrower passes its candidate features *unsorted*
        features = rng.permutation(d)[: int(rng.integers(1, d + 1))]
        all_features = False
    return codes, yk, idx, w, features, n_classes, nbmax, all_features


class TestClassHistsParity:
    @given(case=class_hist_cases())
    @settings(max_examples=80, deadline=None)
    def test_fuzz(self, case):
        codes, yk, idx, w, features, K, nbmax, all_features = case
        ref = fallback.build_class_hists(
            codes, yk, idx, w, features, K, nbmax, all_features=all_features
        )
        got = native().build_class_hists(
            codes, yk, idx, w, features, K, nbmax, all_features=all_features
        )
        assert_bits_equal(ref, got)

    def test_empty_node_is_float64_zeros(self):
        codes = np.zeros((4, 2), dtype=np.uint8)
        idx = np.empty(0, dtype=np.int64)
        yk = np.empty(0, dtype=np.int64)
        for impl in (fallback, native()):
            out = impl.build_class_hists(
                codes, yk, idx, None, np.arange(2), 3, 8, all_features=True
            )
            assert out.dtype == np.float64 and out.shape == (3, 2, 8)
            assert not out.any()


# ----------------------------------------------------------------------
@st.composite
def ensemble_cases(draw):
    """A packed random ensemble + codes + a non-trivial out base."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(0, 60))
    d = draw(st.integers(1, 5))
    dtype = draw(st.sampled_from([np.uint8, np.uint16]))
    n_trees = draw(st.integers(1, 5))
    vector = draw(st.booleans())  # forest-probability trees (tree_class -1)
    scale = draw(st.sampled_from([1.0, 1e-3, 1e18, 1e300]))
    lr = draw(st.sampled_from([1.0, 0.1, -0.5]))
    rng = np.random.default_rng(seed)
    n_bins = int(rng.integers(2, 16))
    codes = rng.integers(0, n_bins, size=(n, d)).astype(dtype)
    if vector:
        K = int(rng.integers(2, 4))
        trees = [random_tree(rng, d, n_bins, K, scale) for _ in range(n_trees)]
        tree_class = [-1] * n_trees
    else:
        K = int(rng.integers(1, 4))
        trees = [random_tree(rng, d, n_bins, 1, scale) for _ in range(n_trees)]
        tree_class = [int(rng.integers(0, K)) for _ in range(n_trees)]
    base = rng.standard_normal((n, K)) * scale
    return trees, tree_class, codes, K, lr, base


class TestEnsemblePredictParity:
    @given(case=ensemble_cases())
    @settings(max_examples=80, deadline=None)
    def test_fuzz(self, case):
        trees, tree_class, codes, K, lr, base = case
        flat = FlatEnsemble(trees, tree_class)
        args = (flat.feature, flat.threshold, flat.left, flat.right,
                flat.value, flat.tree_offset, flat.tree_class, lr)
        ref = np.ascontiguousarray(base)
        fallback.ensemble_predict(codes, *args, ref)
        got = np.ascontiguousarray(base)
        native().ensemble_predict(codes, *args, got)
        assert_bits_equal(ref, got)

    @given(case=ensemble_cases())
    @settings(max_examples=40, deadline=None)
    def test_fallback_matches_legacy_per_tree_loop(self, case):
        trees, tree_class, codes, K, lr, base = case
        legacy = base.copy()
        for t, k in zip(trees, tree_class):
            pred = t.predict(codes)
            if k < 0:
                legacy += lr * pred
            else:
                legacy[:, k] += lr * pred
        flat = FlatEnsemble(trees, tree_class)
        got = np.ascontiguousarray(base)
        flat.predict_into(codes, lr, got, kernels=fallback)
        assert_bits_equal(legacy, got)

    def test_empty_tree_list_rejected(self):
        with pytest.raises(ValueError, match="at least one tree"):
            FlatEnsemble([])


# ----------------------------------------------------------------------
@st.composite
def oblivious_cases(draw):
    """Packed random oblivious trees (depth 0 — a single leaf — included)."""
    seed = draw(st.integers(0, 2**32 - 1))
    n = draw(st.integers(0, 60))
    d = draw(st.integers(1, 5))
    dtype = draw(st.sampled_from([np.uint8, np.uint16]))
    n_trees = draw(st.integers(1, 5))
    K = draw(st.integers(1, 3))
    scale = draw(st.sampled_from([1.0, 1e-3, 1e18, 1e300]))
    lr = draw(st.sampled_from([1.0, 0.05, -0.5]))
    rng = np.random.default_rng(seed)
    n_bins = int(rng.integers(2, 16))
    codes = rng.integers(0, n_bins, size=(n, d)).astype(dtype)
    trees, tree_class = [], []
    for _ in range(n_trees):
        depth = int(rng.integers(0, 6))
        trees.append(ObliviousTree(
            features=rng.integers(0, d, size=depth),
            thresholds=rng.integers(0, n_bins, size=depth),
            leaf_values=rng.standard_normal(1 << depth) * scale,
        ))
        tree_class.append(int(rng.integers(0, K)))
    base = rng.standard_normal((n, K)) * scale
    return trees, tree_class, codes, K, lr, base


class TestObliviousPredictParity:
    @given(case=oblivious_cases())
    @settings(max_examples=80, deadline=None)
    def test_fuzz(self, case):
        trees, tree_class, codes, K, lr, base = case
        flat = FlatOblivious(trees, tree_class)
        args = (flat.features, flat.thresholds, flat.level_offset,
                flat.leaf_values, flat.leaf_offset, flat.tree_class, lr)
        ref = np.ascontiguousarray(base)
        fallback.oblivious_predict(codes, *args, ref)
        got = np.ascontiguousarray(base)
        native().oblivious_predict(codes, *args, got)
        assert_bits_equal(ref, got)

    @given(case=oblivious_cases())
    @settings(max_examples=40, deadline=None)
    def test_fallback_matches_legacy_per_tree_loop(self, case):
        trees, tree_class, codes, K, lr, base = case
        legacy = base.copy()
        for t, k in zip(trees, tree_class):
            legacy[:, k] += lr * t.predict(codes)
        flat = FlatOblivious(trees, tree_class)
        got = np.ascontiguousarray(base)
        flat.predict_into(codes, lr, got, kernels=fallback)
        assert_bits_equal(legacy, got)

    def test_empty_tree_list_rejected(self):
        with pytest.raises(ValueError, match="at least one tree"):
            FlatOblivious([])


# ----------------------------------------------------------------------
class TestWideDtypeRouting:
    """uint32+ codes can't take the C path; the wrappers must fall back."""

    def test_ensemble_predict_uint32(self):
        rng = np.random.default_rng(3)
        trees = [random_tree(rng, 3, 8, 1, 1.0) for _ in range(3)]
        flat = FlatEnsemble(trees, [0, 1, 0])
        codes8 = rng.integers(0, 8, size=(20, 3)).astype(np.uint8)
        codes32 = codes8.astype(np.uint32)
        ref = np.zeros((20, 2))
        flat.predict_into(codes8, 0.1, ref, kernels=fallback)
        got = np.zeros((20, 2))
        flat.predict_into(codes32, 0.1, got, kernels=native())
        assert_bits_equal(ref, got)

    def test_oblivious_predict_uint32(self):
        rng = np.random.default_rng(4)
        trees = [ObliviousTree(rng.integers(0, 3, size=4),
                               rng.integers(0, 8, size=4),
                               rng.standard_normal(16)) for _ in range(2)]
        flat = FlatOblivious(trees, [0, 0])
        codes8 = rng.integers(0, 8, size=(20, 3)).astype(np.uint8)
        ref = np.zeros((20, 1))
        flat.predict_into(codes8, 0.5, ref, kernels=fallback)
        got = np.zeros((20, 1))
        flat.predict_into(codes8.astype(np.uint32), 0.5, got,
                          kernels=native())
        assert_bits_equal(ref, got)

    def test_build_class_hists_uint32(self):
        rng = np.random.default_rng(5)
        codes8 = rng.integers(0, 8, size=(30, 4)).astype(np.uint8)
        idx = np.arange(30)
        yk = rng.integers(0, 3, size=30)
        ref = fallback.build_class_hists(
            codes8, yk, idx, None, np.arange(4), 3, 8, all_features=True
        )
        got = native().build_class_hists(
            codes8.astype(np.uint32), yk, idx, None, np.arange(4), 3, 8,
            all_features=True,
        )
        assert_bits_equal(ref, got)
