"""native_status(): the one-line compiled/fallback diagnostic."""

from __future__ import annotations

import repro.native as native
from repro.native import active_kernels, native_status, set_native_enabled
from repro.obs.metrics import REGISTRY, snapshot_diff


class TestNativeStatus:
    def test_status_shape(self):
        status = native_status()
        assert set(status) == {"mode", "enabled", "available", "reason"}
        assert status["mode"] in ("compiled", "fallback")

    def test_compiled_mode_has_no_reason(self):
        if not native.native_available():  # boxes without a compiler
            assert native_status()["mode"] == "fallback"
            return
        prev = set_native_enabled(True)
        try:
            status = native_status()
            assert status == {"mode": "compiled", "enabled": True,
                              "available": True, "reason": None}
        finally:
            set_native_enabled(prev)

    def test_disabled_flag_reported_as_reason(self):
        prev = set_native_enabled(False)
        try:
            status = native_status()
            assert status["mode"] == "fallback"
            assert "disabled" in status["reason"]
        finally:
            set_native_enabled(prev)

    def test_build_failure_reported_as_reason(self, monkeypatch):
        monkeypatch.setattr(native, "_load_attempted", True)
        monkeypatch.setattr(native, "_kernels", None)
        monkeypatch.setattr(native, "_load_error", "cc: command not found")
        prev = set_native_enabled(True)
        try:
            status = native_status()
            assert status["mode"] == "fallback"
            assert not status["available"]
            assert "cc: command not found" in status["reason"]
        finally:
            set_native_enabled(prev)

    def test_dispatch_counter_tracks_bindings(self):
        was_native = native.native_enabled()
        before = REGISTRY.snapshot()
        active_kernels()  # native iff enabled AND available
        prev = set_native_enabled(False)
        try:
            assert active_kernels() is native.fallback
        finally:
            set_native_enabled(prev)
        diff = snapshot_diff(before, REGISTRY.snapshot())
        rows = {row["labels"]["kernels"]: row["value"]
                for row in diff["repro_native_dispatch_total"]["series"]}
        assert rows.get("fallback", 0) >= 1
        if was_native:
            assert rows.get("native", 0) >= 1
