"""Build-failure behaviour: no compiler must mean a silent numpy system.

A box where the C extension cannot build (no ``cc``, no CPython
headers, broken toolchain) must import, fit every grower-backed
learner, and pass through the numpy fallback — with exactly one logged
warning and zero exceptions.
"""

import logging

import numpy as np
import pytest

import repro.native as native_pkg
from repro.native import _build
from repro.native._build import NativeBuildError


@pytest.fixture
def broken_build(monkeypatch):
    """Simulate a compiler-less box: reset the one-shot load state, make
    the build raise, and restore the real state afterwards."""
    saved = (native_pkg._kernels, native_pkg._load_attempted,
             native_pkg._load_error)

    def boom(force=False):
        raise NativeBuildError("simulated: cc not found")

    monkeypatch.setattr(_build, "build", boom)
    native_pkg._reset_load_state_for_tests()
    yield
    (native_pkg._kernels, native_pkg._load_attempted,
     native_pkg._load_error) = saved


class TestBuildFallback:
    def test_falls_back_to_numpy_and_logs_once(self, broken_build, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.native"):
            assert native_pkg.native_available() is False
            assert native_pkg.active_kernels() is native_pkg.fallback
            # repeated queries must not re-attempt or re-log
            assert native_pkg.native_available() is False
            assert native_pkg.active_kernels() is native_pkg.fallback
        records = [r for r in caplog.records if r.name == "repro.native"]
        assert len(records) == 1
        assert "numpy fallback" in records[0].getMessage()
        assert "simulated: cc not found" in native_pkg.native_build_error()

    def test_enabled_flag_is_moot_without_a_build(self, broken_build):
        prev = native_pkg.set_native_enabled(True)
        try:
            assert native_pkg.native_enabled() is False
            assert native_pkg.active_kernels() is native_pkg.fallback
        finally:
            native_pkg.set_native_enabled(prev)

    def test_growers_still_work(self, broken_build, binary_split):
        """Every kernel-backed learner family fits and predicts on the
        fallback: GBDT (GradTreeGrower), CatBoost-like (oblivious),
        forests (extra-random path included)."""
        from repro.learners import (
            CatBoostLikeClassifier,
            ExtraTreesClassifier,
            LGBMLikeClassifier,
        )

        Xtr, ytr, Xte, yte = binary_split
        for cls in (LGBMLikeClassifier, CatBoostLikeClassifier,
                    ExtraTreesClassifier):
            kw = {"seed": 0}
            kw["tree_num" if cls is not CatBoostLikeClassifier
               else "n_estimators"] = 5
            model = cls(**kw).fit(Xtr, ytr)
            acc = (model.predict(Xte) == yte).mean()
            assert acc > 0.6, cls.__name__

    def test_import_error_also_falls_back(self, monkeypatch, caplog):
        """A compile that 'succeeds' but produces an unloadable object
        must degrade identically."""
        saved = (native_pkg._kernels, native_pkg._load_attempted,
                 native_pkg._load_error)

        def bad_load():
            raise NativeBuildError("compiled kernel failed to import: boom")

        monkeypatch.setattr(_build, "load", bad_load)
        native_pkg._reset_load_state_for_tests()
        try:
            with caplog.at_level(logging.WARNING, logger="repro.native"):
                assert native_pkg.native_available() is False
            assert "boom" in native_pkg.native_build_error()
        finally:
            (native_pkg._kernels, native_pkg._load_attempted,
             native_pkg._load_error) = saved

    def test_toggle_round_trip(self):
        prev = native_pkg.set_native_enabled(False)
        try:
            assert native_pkg.native_enabled() is False
            assert native_pkg.set_native_enabled(True) is False
            if native_pkg.native_available():
                assert native_pkg.native_enabled() is True
        finally:
            native_pkg.set_native_enabled(prev)

    def test_dispatch_is_bound_per_grower(self):
        """A grower keeps the kernels it was constructed with even if the
        global toggle flips mid-lifetime (dispatch once per grower)."""
        from repro.learners.tree import GradTreeGrower

        prev = native_pkg.set_native_enabled(True)
        try:
            grower = GradTreeGrower(max_leaves=4)
            bound = grower.kernels
            native_pkg.set_native_enabled(False)
            assert grower.kernels is bound
            rng = np.random.default_rng(0)
            codes = rng.integers(0, 8, (50, 3)).astype(np.uint8)
            tree = grower.grow(
                codes, rng.standard_normal(50), np.ones(50),
                np.full(3, 8, dtype=np.int64),
            )
            assert tree.n_nodes >= 1
        finally:
            native_pkg.set_native_enabled(prev)
