"""Unit + property tests for the quantile binner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners.histogram import MISSING_BIN, Binner


class TestBinnerBasics:
    def test_codes_in_range(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((200, 3))
        b = Binner(max_bins=16)
        codes = b.fit_transform(X)
        assert codes.min() >= 1  # no missing values -> no code 0
        assert (codes < b.n_bins_[None, :]).all()

    def test_missing_values_get_reserved_bin(self):
        X = np.array([[1.0], [np.nan], [2.0], [np.nan]])
        codes = Binner().fit_transform(X)
        assert codes[1, 0] == MISSING_BIN
        assert codes[3, 0] == MISSING_BIN
        assert codes[0, 0] != MISSING_BIN

    def test_monotone_codes(self):
        """Binning must preserve order of values within a feature."""
        X = np.linspace(-5, 5, 300).reshape(-1, 1)
        codes = Binner(max_bins=32).fit_transform(X)
        assert (np.diff(codes[:, 0].astype(int)) >= 0).all()

    def test_few_unique_values_get_exact_bins(self):
        X = np.array([[0.0], [1.0], [2.0], [0.0], [1.0], [2.0]])
        b = Binner(max_bins=255)
        codes = b.fit_transform(X)
        # 3 distinct values -> 3 distinct codes
        assert len(np.unique(codes)) == 3

    def test_constant_feature(self):
        X = np.full((50, 2), 3.0)
        b = Binner()
        codes = b.fit_transform(X)
        assert len(np.unique(codes[:, 0])) == 1

    def test_all_nan_feature(self):
        X = np.column_stack([np.full(20, np.nan), np.arange(20.0)])
        b = Binner()
        codes = b.fit_transform(X)
        assert (codes[:, 0] == MISSING_BIN).all()

    def test_transform_unseen_values_clamped(self):
        X = np.arange(100, dtype=float).reshape(-1, 1)
        b = Binner(max_bins=10).fit(X)
        lo = b.transform(np.array([[-1e9]]))
        hi = b.transform(np.array([[1e9]]))
        assert lo[0, 0] >= 1
        assert hi[0, 0] < b.n_bins_[0]

    def test_max_bins_respected(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((5000, 1))
        b = Binner(max_bins=8)
        b.fit(X)
        assert b.n_bins_[0] <= 8 + 1  # + missing bin

    def test_uint16_when_many_bins(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((5000, 1))
        codes = Binner(max_bins=1000).fit_transform(X)
        assert codes.dtype == np.uint16

    def test_errors(self):
        with pytest.raises(ValueError):
            Binner(max_bins=1)
        with pytest.raises(RuntimeError):
            Binner().transform(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            Binner().fit(np.zeros(3))
        b = Binner().fit(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            b.transform(np.zeros((3, 5)))


class TestBinnerProperties:
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=5, max_value=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_preserves_equality_classes(self, max_bins, n):
        """Equal input values always map to equal codes."""
        rng = np.random.default_rng(n)
        base = rng.standard_normal(max(3, n // 3))
        X = rng.choice(base, size=(n, 1))
        codes = Binner(max_bins=max_bins).fit_transform(X)
        for v in np.unique(X):
            c = codes[X[:, 0] == v, 0]
            assert len(np.unique(c)) == 1

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_train_codes_match_transform(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((60, 2))
        b = Binner(max_bins=16)
        c1 = b.fit_transform(X)
        c2 = b.transform(X)
        assert (c1 == c2).all()
