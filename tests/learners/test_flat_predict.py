"""Flattened-ensemble predict == legacy per-tree loop, bitwise.

PR 6 moved every tree learner's predict path onto packed node arrays
(:class:`~repro.learners.tree.FlatEnsemble` /
:class:`~repro.learners.catboost_like.FlatOblivious`) traversed by one
kernel call.  The refactor's contract is *bitwise* equivalence with the
historical tree-by-tree accumulation — these tests rebuild that legacy
loop from the fitted trees and compare raw uint64 bit patterns, for
every registered tree learner, under whichever kernel mode
(``REPRO_NATIVE``) the suite runs in.

model_io round-trips ride along: the flat pack is a derived cache keyed
on ``trees_`` identity, so a save/load must predict bit-identically and
a stale cache must never survive ``trees_`` rebinding.
"""

import numpy as np
import pytest

from repro.learners.boosting import (
    LGBMLikeClassifier,
    LGBMLikeRegressor,
    XGBLikeClassifier,
    XGBLikeRegressor,
    XGBLimitDepthClassifier,
    XGBLimitDepthRegressor,
)
from repro.learners.catboost_like import (
    CatBoostLikeClassifier,
    CatBoostLikeRegressor,
)
from repro.learners.forest import (
    ExtraTreesClassifier,
    ExtraTreesRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.learners.model_io import dump_model, load_model

RNG = np.random.default_rng(23)
N, D = 120, 5
X = RNG.standard_normal((N, D))
Y_BIN = (X[:, 0] - X[:, 2] + 0.4 * RNG.standard_normal(N) > 0).astype(int)
Y_MULTI = RNG.integers(0, 3, size=N)
Y_REG = X[:, 1] * 1.5 + np.sin(X[:, 3]) + 0.2 * RNG.standard_normal(N)
X_TEST = RNG.standard_normal((64, D))

GBDT_CLS = [LGBMLikeClassifier, XGBLikeClassifier, XGBLimitDepthClassifier]
GBDT_REG = [LGBMLikeRegressor, XGBLikeRegressor, XGBLimitDepthRegressor]
FOREST_CLS = [RandomForestClassifier, ExtraTreesClassifier]
FOREST_REG = [RandomForestRegressor, ExtraTreesRegressor]


def bits(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(a, dtype=np.float64)).view(
        np.uint64
    )


def assert_bitwise(a, b):
    assert a.shape == b.shape
    assert np.array_equal(bits(a), bits(b))


# ----------------------------------------------------------------------
class TestGBDTFlatVsLegacy:
    @pytest.mark.parametrize("cls", GBDT_CLS, ids=lambda c: c.__name__)
    @pytest.mark.parametrize("multiclass", [False, True])
    def test_classifier(self, cls, multiclass):
        y = Y_MULTI if multiclass else Y_BIN
        model = cls(tree_num=8, seed=1).fit(X, y)
        eng = model.engine_
        codes = eng.binner_.transform(X_TEST)
        K = eng.loss.n_scores
        if K > 1:
            legacy = np.tile(eng.base_score_, (X_TEST.shape[0], 1))
            for round_trees in eng.trees_:
                for k, tree in enumerate(round_trees):
                    legacy[:, k] += eng.learning_rate * tree.predict(codes)
        else:
            legacy = np.full(X_TEST.shape[0], eng.base_score_[0])
            for (tree,) in eng.trees_:
                legacy += eng.learning_rate * tree.predict(codes)
        assert_bitwise(legacy, eng.raw_predict(X_TEST))

    @pytest.mark.parametrize("cls", GBDT_REG, ids=lambda c: c.__name__)
    def test_regressor(self, cls):
        model = cls(tree_num=8, seed=1).fit(X, Y_REG)
        eng = model.engine_
        codes = eng.binner_.transform(X_TEST)
        legacy = np.full(X_TEST.shape[0], eng.base_score_[0])
        for (tree,) in eng.trees_:
            legacy += eng.learning_rate * tree.predict(codes)
        assert_bitwise(legacy, model.predict(X_TEST))


class TestForestFlatVsLegacy:
    @pytest.mark.parametrize("cls", FOREST_CLS, ids=lambda c: c.__name__)
    def test_classifier_proba(self, cls):
        model = cls(tree_num=7, seed=2).fit(X, Y_MULTI)
        codes = model.binner_.transform(X_TEST)
        acc = np.zeros((X_TEST.shape[0], model.n_classes_))
        for tree in model.trees_:
            acc += tree.predict(codes)
        acc /= len(model.trees_)
        assert_bitwise(acc, model.predict_proba(X_TEST))

    @pytest.mark.parametrize("cls", FOREST_REG, ids=lambda c: c.__name__)
    def test_regressor(self, cls):
        model = cls(tree_num=7, seed=2).fit(X, Y_REG)
        codes = model.binner_.transform(X_TEST)
        acc = np.zeros(X_TEST.shape[0])
        for tree in model.trees_:
            acc += tree.predict(codes)
        assert_bitwise(acc / len(model.trees_), model.predict(X_TEST))


class TestCatBoostFlatVsLegacy:
    def test_classifier(self):
        model = CatBoostLikeClassifier(
            n_estimators=10, early_stop_rounds=5, seed=3
        ).fit(X, Y_MULTI)
        eng = model.engine_
        codes = eng.binner_.transform(X_TEST)
        K = eng.loss.n_scores
        legacy = np.tile(eng.base_score_, (X_TEST.shape[0], 1))
        for round_trees in eng.trees_:
            for k, tree in enumerate(round_trees):
                legacy[:, k] += eng.learning_rate * tree.predict(codes)
        assert K > 1
        assert_bitwise(legacy, eng.raw_predict(X_TEST))

    def test_regressor(self):
        model = CatBoostLikeRegressor(
            n_estimators=10, early_stop_rounds=5, seed=3
        ).fit(X, Y_REG)
        eng = model.engine_
        codes = eng.binner_.transform(X_TEST)
        legacy = np.full(X_TEST.shape[0], eng.base_score_[0])
        for (tree,) in eng.trees_:
            legacy += eng.learning_rate * tree.predict(codes)
        assert_bitwise(legacy, model.predict(X_TEST))


# ----------------------------------------------------------------------
ALL_CLS = GBDT_CLS + FOREST_CLS + [CatBoostLikeClassifier]
ALL_REG = GBDT_REG + FOREST_REG + [CatBoostLikeRegressor]


def _small(cls, seed=5):
    kw = {"seed": seed}
    if cls in (CatBoostLikeClassifier, CatBoostLikeRegressor):
        kw.update(n_estimators=6, early_stop_rounds=3)
    else:
        kw["tree_num"] = 5
    return cls(**kw)


class TestModelIORoundTrip:
    """Save/load of the flattened form predicts bit-identically."""

    @pytest.mark.parametrize("cls", ALL_CLS, ids=lambda c: c.__name__)
    def test_classifier(self, cls):
        model = _small(cls).fit(X, Y_BIN)
        model.warm_inference()  # pack before dumping: must not leak state
        loaded = load_model(dump_model(model))
        assert_bitwise(model.predict_proba(X_TEST),
                       loaded.predict_proba(X_TEST))
        assert np.array_equal(model.predict(X_TEST), loaded.predict(X_TEST))

    @pytest.mark.parametrize("cls", ALL_REG, ids=lambda c: c.__name__)
    def test_regressor(self, cls):
        model = _small(cls).fit(X, Y_REG)
        model.warm_inference()
        loaded = load_model(dump_model(model))
        assert_bitwise(model.predict(X_TEST), loaded.predict(X_TEST))

    def test_flat_cache_invalidated_on_trees_rebinding(self):
        model = _small(RandomForestClassifier).fit(X, Y_BIN)
        before = model.predict_proba(X_TEST)  # builds + caches the pack
        model.trees_ = model.trees_[:2]  # e.g. model_io load, truncation
        after = model.predict_proba(X_TEST)
        acc = np.zeros_like(after)
        codes = model.binner_.transform(X_TEST)
        for tree in model.trees_:
            acc += tree.predict(codes)
        assert_bitwise(acc / 2, after)
        assert not np.array_equal(bits(before), bits(after))
