"""Tests for the CatBoost-like oblivious-tree booster."""

import numpy as np
import pytest

from repro.learners import CatBoostLikeClassifier, CatBoostLikeRegressor
from repro.learners.catboost_like import ObliviousTree, _grow_oblivious
from repro.learners.histogram import Binner


class TestObliviousTree:
    def test_leaf_index_bit_layout(self):
        # depth 2: level 0 on feature 0 (>2), level 1 on feature 1 (>5)
        t = ObliviousTree(
            features=[0, 1], thresholds=[2, 5],
            leaf_values=[10.0, 11.0, 12.0, 13.0],
        )
        codes = np.array([[1, 1], [9, 1], [1, 9], [9, 9]], dtype=np.uint8)
        assert np.allclose(t.predict(codes), [10, 11, 12, 13])

    def test_grown_tree_is_symmetric(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((300, 4))
        y = (X[:, 0] > 0).astype(float) + (X[:, 1] > 0)
        b = Binner(max_bins=32)
        codes = b.fit_transform(X)
        tree = _grow_oblivious(
            codes, -y, np.ones_like(y), b.n_bins_, depth=3,
            reg_lambda=1.0, min_child_weight=1.0, rng=rng,
        )
        assert len(tree.features) <= 3
        assert tree.leaf_values.size == 1 << len(tree.features)

    def test_first_level_picks_dominant_feature(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((500, 5))
        y = 100.0 * (X[:, 3] > 0)
        b = Binner(max_bins=32)
        codes = b.fit_transform(X)
        tree = _grow_oblivious(
            codes, -y, np.ones_like(y), b.n_bins_, depth=1,
            reg_lambda=1e-9, min_child_weight=1e-3, rng=rng,
        )
        assert tree.features[0] == 3


class TestCatBoostLike:
    def test_binary(self, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        m = CatBoostLikeClassifier(n_estimators=40, early_stop_rounds=15, seed=0)
        m.fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.75

    def test_multiclass(self, multiclass_split):
        Xtr, ytr, Xte, yte = multiclass_split
        m = CatBoostLikeClassifier(n_estimators=30, seed=0).fit(Xtr, ytr)
        p = m.predict_proba(Xte)
        assert p.shape == (len(Xte), 3)
        assert (m.predict(Xte) == yte).mean() > 0.5

    def test_regression(self, regression_split):
        Xtr, ytr, Xte, yte = regression_split
        m = CatBoostLikeRegressor(n_estimators=40, seed=0).fit(Xtr, ytr)
        assert np.mean((m.predict(Xte) - yte) ** 2) < np.var(yte)

    def test_early_stopping_effective(self, binary_split):
        Xtr, ytr, _, _ = binary_split
        m = CatBoostLikeClassifier(
            n_estimators=500, early_stop_rounds=5, learning_rate=0.5, seed=0
        ).fit(Xtr, ytr)
        assert len(m.engine_.trees_) < 500

    def test_cap_exit_keeps_best_holdout_iteration(self, binary_split):
        # PR 6 semantic change: hitting the iteration cap now truncates
        # to the best holdout iteration (use_best_model), exactly like
        # the early-stop exit always did.  With early stopping disabled
        # (rounds >= cap) and an aggressive learning rate, the holdout
        # optimum lands before the cap — the fitted ensemble must be the
        # truncated prefix, not all n_estimators rounds.
        Xtr, ytr, _, _ = binary_split
        cap = 60
        m = CatBoostLikeClassifier(
            n_estimators=cap, early_stop_rounds=cap, learning_rate=0.9,
            seed=0,
        ).fit(Xtr, ytr)
        n_kept = len(m.engine_.trees_)
        assert 1 <= n_kept < cap

        # and the kept prefix really is what predict uses: rebuilding
        # the accumulation from trees_ matches raw_predict (binary
        # logloss is single-score, so one tree per round)
        eng = m.engine_
        codes = eng.binner_.transform(Xtr[:16])
        legacy = np.full(16, eng.base_score_[0])
        for (tree,) in eng.trees_:
            legacy += eng.learning_rate * tree.predict(codes)
        assert np.array_equal(legacy, eng.raw_predict(Xtr[:16]))

    def test_default_cap_matches_catboost(self):
        # the paper fixes a large iteration cap and searches only
        # early_stop_rounds / learning_rate; 300 was an artificially
        # low stand-in
        assert CatBoostLikeClassifier().n_estimators == 1000

    def test_time_limit(self, binary_split):
        Xtr, ytr, _, _ = binary_split
        m = CatBoostLikeClassifier(
            n_estimators=100_000, early_stop_rounds=100_000, train_time_limit=0.3,
            seed=0,
        ).fit(Xtr, ytr)
        assert len(m.engine_.trees_) < 100_000

    def test_deterministic(self, binary_split):
        Xtr, ytr, Xte, _ = binary_split
        p1 = CatBoostLikeClassifier(n_estimators=10, seed=4).fit(Xtr, ytr).predict_proba(Xte)
        p2 = CatBoostLikeClassifier(n_estimators=10, seed=4).fit(Xtr, ytr).predict_proba(Xte)
        assert np.allclose(p1, p2)
