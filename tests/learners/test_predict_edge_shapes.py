"""Predict-path audit: 0-row and 1-row inputs across every learner.

A served model sees whatever batch shape the client POSTs — including a
well-formed empty batch (``rows: []``) and the single-row case the
micro-batcher peels off.  Every registered learner (defaults + extras)
must return correctly *shaped* outputs for both: ``predict`` a length-n
vector, ``predict_proba`` an ``(n, n_classes)`` matrix, with n = 0 or 1,
and 1-row answers must agree with the same row inside a bigger batch.
"""

import inspect

import numpy as np
import pytest

from repro.core.registry import all_learners

RNG = np.random.default_rng(17)
N, D = 48, 4
X_CLS = RNG.standard_normal((N, D))
Y_CLS = (X_CLS[:, 0] + 0.3 * RNG.standard_normal(N) > 0).astype(int)
X_REG = RNG.standard_normal((N, D))
Y_REG = X_REG[:, 1] * 2.0 + RNG.standard_normal(N)

#: keep fits fast — filtered per constructor signature
_SMALL = {
    "n_estimators": 6,
    "tree_num": 4,
    "max_iter": 60,
    "early_stop_rounds": 3,
    "train_time_limit": 5.0,
    "seed": 0,
}


def _make(cls):
    sig = inspect.signature(cls.__init__)
    return cls(**{k: v for k, v in _SMALL.items() if k in sig.parameters})


def _specs(task):
    return [
        pytest.param(spec, id=f"{name}-{task}")
        for name, spec in sorted(all_learners().items())
        if spec.supports(task)
    ]


class TestClassifierEdgeShapes:
    @pytest.mark.parametrize("spec", _specs("binary"))
    def test_zero_and_one_row(self, spec):
        model = _make(spec.classifier_cls).fit(X_CLS, Y_CLS)
        K = len(np.unique(Y_CLS))

        empty = np.empty((0, D))
        pred0 = model.predict(empty)
        assert pred0.shape == (0,)
        proba0 = model.predict_proba(empty)
        assert proba0.shape == (0, K)

        one = X_CLS[:1]
        pred1 = model.predict(one)
        assert pred1.shape == (1,)
        proba1 = model.predict_proba(one)
        assert proba1.shape == (1, K)
        assert np.isfinite(proba1).all()

        # a row answered alone must match the same row inside a batch
        # (tight tolerance, not bitwise: BLAS matmul in the linear
        # learners may re-associate sums across batch shapes)
        batch = model.predict(X_CLS[:8])
        assert np.isclose(pred1[0], batch[0], rtol=1e-12, atol=0)

    @pytest.mark.parametrize("spec", _specs("regression"))
    def test_zero_and_one_row_regression(self, spec):
        model = _make(spec.regressor_cls).fit(X_REG, Y_REG)

        pred0 = model.predict(np.empty((0, D)))
        assert pred0.shape == (0,)

        pred1 = model.predict(X_REG[:1])
        assert pred1.shape == (1,)
        assert np.isfinite(pred1).all()

        batch = model.predict(X_REG[:8])
        assert np.isclose(pred1[0], batch[0], rtol=1e-12, atol=0)
