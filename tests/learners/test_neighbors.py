"""Tests for the k-nearest-neighbour learners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners import KNeighborsClassifier, KNeighborsRegressor


class TestKNNClassifier:
    def test_learns_binary(self, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        m = KNeighborsClassifier(n_neighbors=7).fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.8

    def test_learns_multiclass(self, multiclass_split):
        Xtr, ytr, Xte, yte = multiclass_split
        m = KNeighborsClassifier(n_neighbors=7).fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.6
        p = m.predict_proba(Xte)
        assert p.shape == (len(yte), 3)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_k1_memorises_training_set(self, binary_split):
        Xtr, ytr, _, _ = binary_split
        m = KNeighborsClassifier(n_neighbors=1).fit(Xtr, ytr)
        assert (m.predict(Xtr) == ytr).all()

    def test_k_clipped_to_train_size(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        m = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        # falls back to all 3 neighbours: majority class everywhere
        assert (m.predict(np.array([[10.0]])) == 1).all()

    def test_distance_weights_break_ties_toward_closest(self):
        # two 0-labelled points far away, one 1-labelled point adjacent:
        # uniform k=3 votes 0, distance-weighted votes 1
        X = np.array([[0.0], [10.0], [10.5]])
        y = np.array([1, 0, 0])
        q = np.array([[0.1]])
        uni = KNeighborsClassifier(n_neighbors=3, weights="uniform").fit(X, y)
        dist = KNeighborsClassifier(n_neighbors=3, weights="distance").fit(X, y)
        assert uni.predict(q)[0] == 0
        assert dist.predict(q)[0] == 1

    def test_arbitrary_label_values(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array(["cat", "cat", "dog", "dog"])
        m = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert list(m.predict(np.array([[0.05], [5.05]]))) == ["cat", "dog"]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="nope")
        m = KNeighborsClassifier(n_neighbors=0)
        with pytest.raises(ValueError):
            m.fit(np.zeros((3, 1)), np.array([0, 1, 0]))

    def test_scale_invariance_via_standardisation(self, binary_split):
        """Feature scaling must not change predictions (internal z-scoring)."""
        Xtr, ytr, Xte, _ = binary_split
        scale = np.array([1.0, 1000.0, 0.001, 1.0, 50.0, 1.0])
        m1 = KNeighborsClassifier(n_neighbors=5).fit(Xtr, ytr)
        m2 = KNeighborsClassifier(n_neighbors=5).fit(Xtr * scale, ytr)
        assert (m1.predict(Xte) == m2.predict(Xte * scale)).mean() > 0.99

    def test_constant_feature_is_harmless(self):
        X = np.column_stack([np.arange(10.0), np.full(10, 3.0)])
        y = (np.arange(10) >= 5).astype(int)
        m = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert (m.predict(X) == y).all()


class TestKNNRegressor:
    def test_learns_regression(self, regression_split):
        Xtr, ytr, Xte, yte = regression_split
        m = KNeighborsRegressor(n_neighbors=5).fit(Xtr, ytr)
        pred = m.predict(Xte)
        ss_res = ((pred - yte) ** 2).sum()
        ss_tot = ((yte - yte.mean()) ** 2).sum()
        assert 1 - ss_res / ss_tot > 0.5

    def test_k1_interpolates(self, regression_split):
        Xtr, ytr, _, _ = regression_split
        m = KNeighborsRegressor(n_neighbors=1).fit(Xtr, ytr)
        assert np.allclose(m.predict(Xtr), ytr)

    def test_prediction_within_target_range(self, regression_split):
        """A neighbour mean can never leave the convex hull of y."""
        Xtr, ytr, Xte, _ = regression_split
        m = KNeighborsRegressor(n_neighbors=9).fit(Xtr, ytr)
        pred = m.predict(Xte)
        assert pred.min() >= ytr.min() - 1e-9
        assert pred.max() <= ytr.max() + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(1, 12),
        weights=st.sampled_from(["uniform", "distance"]),
        seed=st.integers(0, 1000),
    )
    def test_property_bounded_and_finite(self, k, weights, seed):
        r = np.random.default_rng(seed)
        X = r.standard_normal((40, 3))
        y = r.standard_normal(40)
        q = r.standard_normal((15, 3))
        pred = KNeighborsRegressor(n_neighbors=k, weights=weights).fit(X, y).predict(q)
        assert np.isfinite(pred).all()
        assert pred.min() >= y.min() - 1e-9 and pred.max() <= y.max() + 1e-9

    def test_get_params_roundtrip(self):
        m = KNeighborsRegressor(n_neighbors=3, weights="distance")
        p = m.get_params()
        assert p["n_neighbors"] == 3 and p["weights"] == "distance"
        m2 = KNeighborsRegressor(**p)
        assert m2.n_neighbors == 3


class TestBlockedDistances:
    def test_blocking_matches_direct(self, monkeypatch):
        """Chunked distance computation equals the un-chunked result."""
        import repro.learners.neighbors as nb

        r = np.random.default_rng(3)
        X = r.standard_normal((60, 4))
        y = r.integers(0, 2, 60)
        q = r.standard_normal((25, 4))
        big = KNeighborsClassifier(n_neighbors=5).fit(X, y).predict_proba(q)
        monkeypatch.setattr(nb, "_BLOCK_ELEMS", 100)  # force many tiny blocks
        small = KNeighborsClassifier(n_neighbors=5).fit(X, y).predict_proba(q)
        assert np.allclose(big, small)
