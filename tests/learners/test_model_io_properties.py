"""Property-based tests for model serialisation internals."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners.model_io import (
    _dump_binner,
    _dump_tree,
    _load_binner,
    _load_tree,
)
from repro.learners import Binner
from repro.learners.tree import Tree


def _random_tree(rng, n_values=1, max_depth=4):
    """Build a random but *valid* binary tree over 3 binned features."""
    tree = Tree(n_values=n_values)

    def build(depth):
        nid = tree.add_node(rng.standard_normal(n_values))
        if depth < max_depth and rng.random() < 0.6:
            f = int(rng.integers(0, 3))
            t = int(rng.integers(0, 16))
            left = build(depth + 1)
            right = build(depth + 1)
            tree.set_split(nid, f, t, left, right)
        return nid

    build(0)
    tree.freeze()
    return tree


class TestTreeRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), n_values=st.integers(1, 4))
    def test_random_tree_predicts_identically(self, seed, n_values):
        rng = np.random.default_rng(seed)
        tree = _random_tree(rng, n_values=n_values)
        codes = rng.integers(0, 16, size=(30, 3)).astype(np.int64)
        back = _load_tree(_dump_tree(tree))
        assert np.allclose(tree.predict(codes), back.predict(codes))
        assert back.n_nodes == tree.n_nodes
        assert back.n_leaves == tree.n_leaves

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_leaf_routing_preserved(self, seed):
        rng = np.random.default_rng(seed)
        tree = _random_tree(rng)
        codes = rng.integers(0, 16, size=(50, 3)).astype(np.int64)
        back = _load_tree(_dump_tree(tree))
        assert np.array_equal(tree.predict_leaf(codes), back.predict_leaf(codes))


class TestBinnerRoundtrip:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), max_bins=st.integers(2, 64),
           missing=st.floats(0.0, 0.3))
    def test_codes_identical_after_roundtrip(self, seed, max_bins, missing):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((80, 4))
        X[rng.random(X.shape) < missing] = np.nan
        binner = Binner(max_bins=max_bins).fit(X)
        back = _load_binner(_dump_binner(binner))
        Xq = rng.standard_normal((40, 4))
        assert np.array_equal(binner.transform(Xq), back.transform(Xq))
        assert np.array_equal(binner.transform(X), back.transform(X))
