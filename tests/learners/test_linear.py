"""Tests for linear learners (logistic L1/L2, ridge, lasso)."""

import numpy as np
import pytest

from repro.learners import (
    LassoRegressor,
    LogisticRegressionL1,
    LogisticRegressionL2,
    RidgeRegressor,
)


@pytest.mark.parametrize("cls", [LogisticRegressionL1, LogisticRegressionL2])
class TestLogistic:
    def test_learns_binary(self, cls, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        m = cls(C=1.0).fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.85

    def test_learns_multiclass(self, cls, multiclass_split):
        Xtr, ytr, Xte, yte = multiclass_split
        m = cls(C=1.0).fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.6
        p = m.predict_proba(Xte)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_invalid_C(self, cls):
        with pytest.raises(ValueError):
            cls(C=0.0)

    def test_weak_regularisation_fits_tighter(self, cls, binary_split):
        Xtr, ytr, _, _ = binary_split
        strong = cls(C=0.001).fit(Xtr, ytr)
        weak = cls(C=100.0).fit(Xtr, ytr)
        acc_s = (strong.predict(Xtr) == ytr).mean()
        acc_w = (weak.predict(Xtr) == ytr).mean()
        assert acc_w >= acc_s


class TestL1Sparsity:
    def test_small_C_zeroes_coefficients(self, binary_split):
        Xtr, ytr, _, _ = binary_split
        m = LogisticRegressionL1(C=0.003).fit(Xtr, ytr)
        nz_small = np.sum(np.abs(m.coef_[:-1]) > 1e-8)
        m2 = LogisticRegressionL1(C=1000.0).fit(Xtr, ytr)
        nz_big = np.sum(np.abs(m2.coef_[:-1]) > 1e-8)
        assert nz_small < nz_big

    def test_irrelevant_features_pruned(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((500, 10))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)  # only 2 informative features
        m = LogisticRegressionL1(C=0.05).fit(X, y)
        w = np.abs(m.coef_[:-1])
        assert w[0] > 1e-6 and w[1] > 1e-6
        assert np.median(w[2:]) < 1e-6


class TestRidgeLasso:
    def test_ridge_recovers_linear_signal(self, regression_split):
        Xtr, ytr, Xte, yte = regression_split
        m = RidgeRegressor(C=10.0).fit(Xtr, ytr)
        mse = np.mean((m.predict(Xte) - yte) ** 2)
        assert mse < 0.5 * np.var(yte)

    def test_lasso_sparse_recovery(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((300, 12))
        y = 3 * X[:, 2] - 2 * X[:, 7] + 0.05 * rng.standard_normal(300)
        m = LassoRegressor(C=0.5).fit(X, y)
        w = m.coef_
        assert abs(w[2]) > 1.0 and abs(w[7]) > 1.0
        others = np.delete(np.abs(w), [2, 7])
        assert others.max() < 0.3

    def test_exact_fit_noiseless(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((200, 5))
        w = np.array([1.0, -2.0, 0.5, 3.0, 0.0])
        y = X @ w + 1.7
        m = RidgeRegressor(C=1e6).fit(X, y)
        assert np.allclose(m.predict(X), y, atol=1e-3)

    @pytest.mark.parametrize("cls", [RidgeRegressor, LassoRegressor])
    def test_invalid_C(self, cls):
        with pytest.raises(ValueError):
            cls(C=-1.0)

    def test_constant_feature_no_crash(self, regression_split):
        Xtr, ytr, Xte, _ = regression_split
        Xtr = np.column_stack([Xtr, np.ones(len(Xtr))])
        Xte = np.column_stack([Xte, np.ones(len(Xte))])
        m = RidgeRegressor().fit(Xtr, ytr)
        assert np.all(np.isfinite(m.predict(Xte)))
