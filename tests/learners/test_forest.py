"""Tests for random forest / extra-trees learners."""

import numpy as np
import pytest

from repro.learners import (
    ExtraTreesClassifier,
    ExtraTreesRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
    tuned_random_forest,
)


@pytest.mark.parametrize("cls", [RandomForestClassifier, ExtraTreesClassifier])
class TestForestClassifier:
    @pytest.mark.parametrize("criterion", ["gini", "entropy"])
    def test_learns_binary(self, cls, criterion, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        m = cls(tree_num=15, criterion=criterion, seed=0).fit(Xtr, ytr)
        acc = (m.predict(Xte) == yte).mean()
        assert acc > 0.7

    def test_learns_multiclass(self, cls, multiclass_split):
        Xtr, ytr, Xte, yte = multiclass_split
        m = cls(tree_num=15, seed=0).fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.5
        p = m.predict_proba(Xte)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_max_features_subsampling(self, cls, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        m = cls(tree_num=15, max_features=0.3, seed=0).fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.6

    def test_deterministic(self, cls, binary_split):
        Xtr, ytr, Xte, _ = binary_split
        p1 = cls(tree_num=5, seed=9).fit(Xtr, ytr).predict_proba(Xte)
        p2 = cls(tree_num=5, seed=9).fit(Xtr, ytr).predict_proba(Xte)
        assert np.allclose(p1, p2)

    def test_invalid_criterion(self, cls, binary_split):
        Xtr, ytr, _, _ = binary_split
        with pytest.raises(ValueError):
            cls(tree_num=2, criterion="bogus").fit(Xtr, ytr)


@pytest.mark.parametrize("cls", [RandomForestRegressor, ExtraTreesRegressor])
class TestForestRegressor:
    def test_beats_mean(self, cls, regression_split):
        Xtr, ytr, Xte, yte = regression_split
        m = cls(tree_num=15, seed=0).fit(Xtr, ytr)
        mse = np.mean((m.predict(Xte) - yte) ** 2)
        assert mse < np.var(yte)

    def test_prediction_within_target_range(self, cls, regression_split):
        """Forest predictions are averages of training targets."""
        Xtr, ytr, Xte, _ = regression_split
        m = cls(tree_num=10, seed=0).fit(Xtr, ytr)
        pred = m.predict(Xte)
        assert pred.min() >= ytr.min() - 1e-9
        assert pred.max() <= ytr.max() + 1e-9

    def test_time_limit(self, cls, regression_split):
        Xtr, ytr, _, _ = regression_split
        m = cls(tree_num=100_000, train_time_limit=0.2, seed=0).fit(Xtr, ytr)
        assert len(m.trees_) < 100_000


class TestTunedRF:
    def test_classification_factory(self, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        m = tuned_random_forest("binary", tree_num=15)
        m.fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.7

    def test_regression_factory(self, regression_split):
        Xtr, ytr, Xte, yte = regression_split
        m = tuned_random_forest("regression", tree_num=15)
        m.fit(Xtr, ytr)
        assert np.mean((m.predict(Xte) - yte) ** 2) < np.var(yte)
