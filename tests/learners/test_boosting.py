"""Tests for the GBDT learners (LightGBM-like / XGBoost-like)."""

import numpy as np
import pytest

from repro.learners import (
    LGBMLikeClassifier,
    LGBMLikeRegressor,
    XGBLikeClassifier,
    XGBLikeRegressor,
)

CLASSIFIERS = [LGBMLikeClassifier, XGBLikeClassifier]
REGRESSORS = [LGBMLikeRegressor, XGBLikeRegressor]


@pytest.mark.parametrize("cls", CLASSIFIERS)
class TestGBDTClassifier:
    def test_beats_majority_class(self, cls, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        m = cls(tree_num=30, leaf_num=8, seed=0).fit(Xtr, ytr)
        acc = (m.predict(Xte) == yte).mean()
        base = max(np.mean(yte), 1 - np.mean(yte))
        assert acc > base + 0.05

    def test_proba_shape_and_range(self, cls, binary_split):
        Xtr, ytr, Xte, _ = binary_split
        m = cls(tree_num=10, leaf_num=4).fit(Xtr, ytr)
        p = m.predict_proba(Xte)
        assert p.shape == (len(Xte), 2)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all() and (p <= 1).all()

    def test_multiclass(self, cls, multiclass_split):
        Xtr, ytr, Xte, yte = multiclass_split
        m = cls(tree_num=25, leaf_num=8).fit(Xtr, ytr)
        p = m.predict_proba(Xte)
        assert p.shape == (len(Xte), 3)
        assert (m.predict(Xte) == yte).mean() > 0.5

    def test_arbitrary_label_values(self, cls, binary_split):
        Xtr, ytr, Xte, _ = binary_split
        labels = np.array(["neg", "pos"])
        m = cls(tree_num=5, leaf_num=4).fit(Xtr, labels[ytr])
        pred = m.predict(Xte)
        assert set(np.unique(pred)) <= {"neg", "pos"}

    def test_deterministic_given_seed(self, cls, binary_split):
        Xtr, ytr, Xte, _ = binary_split
        p1 = cls(tree_num=8, leaf_num=4, subsample=0.8, seed=3).fit(Xtr, ytr).predict_proba(Xte)
        p2 = cls(tree_num=8, leaf_num=4, subsample=0.8, seed=3).fit(Xtr, ytr).predict_proba(Xte)
        assert np.allclose(p1, p2)

    def test_more_trees_fit_train_better(self, cls, binary_split):
        Xtr, ytr, _, _ = binary_split
        small = cls(tree_num=2, leaf_num=4, learning_rate=0.3).fit(Xtr, ytr)
        big = cls(tree_num=60, leaf_num=16, learning_rate=0.3).fit(Xtr, ytr)
        acc_s = (small.predict(Xtr) == ytr).mean()
        acc_b = (big.predict(Xtr) == ytr).mean()
        assert acc_b >= acc_s

    def test_early_stopping_truncates(self, cls, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        m = cls(tree_num=200, leaf_num=4, early_stopping_rounds=5, seed=0)
        m.fit(Xtr, ytr, X_val=Xte, y_val=yte)
        assert len(m.engine_.trees_) < 200

    def test_train_time_limit(self, cls, binary_split):
        Xtr, ytr, _, _ = binary_split
        m = cls(tree_num=100_000, leaf_num=4, train_time_limit=0.2).fit(Xtr, ytr)
        assert len(m.engine_.trees_) < 100_000


@pytest.mark.parametrize("cls", REGRESSORS)
class TestGBDTRegressor:
    def test_beats_mean_predictor(self, cls, regression_split):
        Xtr, ytr, Xte, yte = regression_split
        m = cls(tree_num=40, leaf_num=8).fit(Xtr, ytr)
        mse = np.mean((m.predict(Xte) - yte) ** 2)
        assert mse < np.var(yte)

    def test_subsample_and_colsample(self, cls, regression_split):
        Xtr, ytr, Xte, yte = regression_split
        m = cls(
            tree_num=30, leaf_num=8, subsample=0.7, colsample_bytree=0.8,
            colsample_bylevel=0.8, seed=1,
        ).fit(Xtr, ytr)
        mse = np.mean((m.predict(Xte) - yte) ** 2)
        assert mse < np.var(yte)

    def test_missing_values_handled(self, cls, regression_split):
        Xtr, ytr, Xte, yte = regression_split
        Xtr = Xtr.copy()
        Xtr[::7, 0] = np.nan
        Xte = Xte.copy()
        Xte[::5, 0] = np.nan
        m = cls(tree_num=20, leaf_num=8).fit(Xtr, ytr)
        pred = m.predict(Xte)
        assert np.all(np.isfinite(pred))

    def test_get_params_roundtrip(self, cls):
        m = cls(tree_num=7, leaf_num=9, learning_rate=0.33)
        p = m.get_params()
        assert p["tree_num"] == 7 and p["leaf_num"] == 9
        m2 = cls(**p)
        assert m2.get_params() == p


class TestEngineEdgeCases:
    def test_single_feature(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((100, 1))
        y = (X[:, 0] > 0).astype(int)
        m = LGBMLikeClassifier(tree_num=5, leaf_num=4).fit(X, y)
        assert (m.predict(X) == y).mean() > 0.9

    def test_tiny_dataset(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        m = LGBMLikeClassifier(tree_num=3, leaf_num=2).fit(X, y)
        assert m.predict_proba(X).shape == (4, 2)

    def test_single_class_raises(self):
        X = np.zeros((10, 2))
        y = np.zeros(10)
        with pytest.raises(ValueError):
            LGBMLikeClassifier(tree_num=2).fit(X, y)

    def test_constant_target_regression(self):
        X = np.random.default_rng(0).standard_normal((50, 3))
        y = np.full(50, 7.0)
        m = LGBMLikeRegressor(tree_num=5, leaf_num=4).fit(X, y)
        assert np.allclose(m.predict(X), 7.0, atol=1e-6)

    def test_fractional_hyperparams_rounded(self):
        # FLOW2 proposes continuous values for integer hyperparameters.
        X = np.random.default_rng(1).standard_normal((60, 2))
        y = (X[:, 0] > 0).astype(int)
        m = LGBMLikeClassifier(tree_num=4.7, leaf_num=5.2).fit(X, y)
        assert len(m.engine_.trees_) == 5
