"""Tests for pickle-free model serialisation (repro.learners.model_io)."""

import numpy as np
import pytest

from repro.learners import (
    CatBoostLikeClassifier,
    CatBoostLikeRegressor,
    ExtraTreesRegressor,
    GaussianNB,
    KNeighborsClassifier,
    KNeighborsRegressor,
    LassoRegressor,
    LGBMLikeClassifier,
    LGBMLikeRegressor,
    LogisticRegressionL1,
    LogisticRegressionL2,
    RandomForestClassifier,
    RidgeRegressor,
    XGBLikeClassifier,
    XGBLimitDepthRegressor,
    dump_model,
    load_model,
    load_model_file,
    save_model,
)

CLS_FACTORIES = [
    lambda: LGBMLikeClassifier(tree_num=8, leaf_num=6),
    lambda: XGBLikeClassifier(tree_num=8, leaf_num=6),
    lambda: LogisticRegressionL1(C=1.0),
    lambda: LogisticRegressionL2(C=1.0),
    lambda: GaussianNB(),
    lambda: KNeighborsClassifier(n_neighbors=5),
    lambda: RandomForestClassifier(tree_num=5),
    lambda: CatBoostLikeClassifier(early_stop_rounds=10, learning_rate=0.1),
]

REG_FACTORIES = [
    lambda: LGBMLikeRegressor(tree_num=8, leaf_num=6),
    lambda: XGBLimitDepthRegressor(tree_num=8, max_depth=3),
    lambda: RidgeRegressor(C=1.0),
    lambda: LassoRegressor(C=1.0),
    lambda: KNeighborsRegressor(n_neighbors=5, weights="distance"),
    lambda: ExtraTreesRegressor(tree_num=5),
    lambda: CatBoostLikeRegressor(early_stop_rounds=10, learning_rate=0.1),
]


@pytest.mark.parametrize("factory", CLS_FACTORIES)
class TestClassifierRoundtrip:
    def test_binary_predictions_identical(self, factory, binary_split):
        Xtr, ytr, Xte, _ = binary_split
        m = factory().fit(Xtr, ytr)
        back = load_model(dump_model(m))
        assert np.array_equal(m.predict(Xte), back.predict(Xte))
        assert np.allclose(m.predict_proba(Xte), back.predict_proba(Xte))

    def test_multiclass_predictions_identical(self, factory, multiclass_split):
        Xtr, ytr, Xte, _ = multiclass_split
        m = factory().fit(Xtr, ytr)
        back = load_model(dump_model(m))
        assert np.allclose(m.predict_proba(Xte), back.predict_proba(Xte))

    def test_dump_is_json_safe(self, factory, binary_split):
        import json

        Xtr, ytr, _, _ = binary_split
        obj = dump_model(factory().fit(Xtr, ytr))
        json.dumps(obj)  # must not raise

    def test_string_labels_roundtrip(self, factory, binary_split):
        Xtr, ytr, Xte, _ = binary_split
        labels = np.array(["no", "yes"])[ytr]
        m = factory().fit(Xtr, labels)
        back = load_model(dump_model(m))
        assert set(back.predict(Xte)) <= {"no", "yes"}
        assert np.array_equal(m.predict(Xte), back.predict(Xte))


@pytest.mark.parametrize("factory", REG_FACTORIES)
class TestRegressorRoundtrip:
    def test_predictions_identical(self, factory, regression_split):
        Xtr, ytr, Xte, _ = regression_split
        m = factory().fit(Xtr, ytr)
        back = load_model(dump_model(m))
        assert np.allclose(m.predict(Xte), back.predict(Xte))

    def test_file_roundtrip(self, factory, regression_split, tmp_path):
        Xtr, ytr, Xte, _ = regression_split
        m = factory().fit(Xtr, ytr)
        path = str(tmp_path / "model.json")
        save_model(m, path)
        back = load_model_file(path)
        assert np.allclose(m.predict(Xte), back.predict(Xte))


class TestErrors:
    def test_unsupported_object_raises(self):
        with pytest.raises(TypeError, match="serialisation"):
            dump_model(object())

    def test_bad_version_rejected(self, binary_split):
        Xtr, ytr, _, _ = binary_split
        obj = dump_model(LogisticRegressionL2().fit(Xtr, ytr))
        obj["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            load_model(obj)


class TestAutoMLIntegration:
    def test_save_and_load_final_model(self, tmp_path):
        from repro import AutoML

        r = np.random.default_rng(8)
        X = r.standard_normal((300, 4))
        y = (X[:, 0] > 0).astype(int)
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, task="classification", time_budget=1.0,
                   max_iters=8, estimator_list=["lgbm"])
        path = str(tmp_path / "m.json")
        automl.save_model(path)
        back = AutoML.load_model(path)
        assert np.array_equal(automl.predict(X[:30]), back.predict(X[:30]))

    def test_save_unfitted_raises(self):
        from repro import AutoML

        with pytest.raises(RuntimeError, match="not fitted"):
            AutoML().save_model("/tmp/nope.json")
