"""Tests for the depth-wise XGBoost variant (xgb_limitdepth)."""

import numpy as np
import pytest

from repro.learners import (
    XGBLikeClassifier,
    XGBLimitDepthClassifier,
    XGBLimitDepthRegressor,
)


def _tree_depth(tree) -> int:
    """Max root-to-leaf depth of a grown Tree."""
    depth = {0: 0}
    best = 0
    for nid in range(len(tree.feature)):
        if nid not in depth:
            continue
        d = depth[nid]
        best = max(best, d)
        if tree.feature[nid] >= 0:  # internal node
            depth[int(tree.left[nid])] = d + 1
            depth[int(tree.right[nid])] = d + 1
    return best


class TestLimitDepth:
    def test_learns_binary(self, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        m = XGBLimitDepthClassifier(tree_num=30, max_depth=3).fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.8

    def test_learns_regression(self, regression_split):
        Xtr, ytr, Xte, yte = regression_split
        m = XGBLimitDepthRegressor(tree_num=40, max_depth=4).fit(Xtr, ytr)
        pred = m.predict(Xte)
        ss_res = ((pred - yte) ** 2).sum()
        ss_tot = ((yte - yte.mean()) ** 2).sum()
        assert 1 - ss_res / ss_tot > 0.5

    def test_depth_cap_enforced(self, binary_split):
        Xtr, ytr, _, _ = binary_split
        for cap in (1, 2, 4):
            m = XGBLimitDepthClassifier(tree_num=5, max_depth=cap,
                                        min_child_weight=1e-3).fit(Xtr, ytr)
            for round_trees in m.engine_.trees_:
                for tree in round_trees:
                    assert _tree_depth(tree) <= cap

    def test_depth1_stumps_underfit_vs_deeper(self, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        shallow = XGBLimitDepthClassifier(tree_num=10, max_depth=1).fit(Xtr, ytr)
        deep = XGBLimitDepthClassifier(tree_num=10, max_depth=5).fit(Xtr, ytr)
        acc_s = (shallow.predict(Xtr) == ytr).mean()
        acc_d = (deep.predict(Xtr) == ytr).mean()
        assert acc_d >= acc_s  # deeper fits training data at least as well

    def test_params_roundtrip_includes_depth(self):
        m = XGBLimitDepthClassifier(tree_num=7, max_depth=3)
        p = m.get_params()
        assert p["max_depth"] == 3 and p["tree_num"] == 7
        # full get_params round-trip, leaf_num included, must reconstruct
        m2 = XGBLimitDepthClassifier(**p)
        assert m2.max_depth == 3 and m2.leaf_num == 8

    def test_differs_from_leafwise(self, binary_split):
        """Depth-wise and leaf-wise growth produce different models."""
        Xtr, ytr, Xte, _ = binary_split
        lw = XGBLikeClassifier(tree_num=10, leaf_num=16).fit(Xtr, ytr)
        dw = XGBLimitDepthClassifier(tree_num=10, max_depth=4).fit(Xtr, ytr)
        # same leaf budget (2^4 = 16) but different growth order: the
        # predicted probabilities should not be identical
        assert not np.allclose(lw.predict_proba(Xte), dw.predict_proba(Xte))


class TestRegistryIntegration:
    def test_fit_via_estimator_list(self):
        from repro import AutoML

        r = np.random.default_rng(6)
        X = r.standard_normal((250, 4))
        y = (X[:, 0] > 0).astype(int)
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, task="classification", time_budget=1.5,
                   estimator_list=["xgb_limitdepth"], max_iters=8)
        assert automl.best_estimator == "xgb_limitdepth"
        assert "max_depth" in automl.best_config
        # the low-cost init is the shallowest depth
        assert automl.search_result.trials[0].config["max_depth"] == 1
