"""Tests for per-row sample weights across the learner families.

The contract: an integer weight w on a row behaves like duplicating that
row w times (exactly, for deterministic learners without row subsampling;
in effect, for the rest).  Upweighting a subpopulation must pull the
model toward it.
"""

import numpy as np
import pytest

from repro.learners import (
    CatBoostLikeClassifier,
    ExtraTreesRegressor,
    GaussianNB,
    KNeighborsClassifier,
    KNeighborsRegressor,
    LassoRegressor,
    LGBMLikeClassifier,
    LGBMLikeRegressor,
    LogisticRegressionL1,
    LogisticRegressionL2,
    RandomForestClassifier,
    RandomForestRegressor,
    RidgeRegressor,
    XGBLikeClassifier,
)


def _imbalanced(seed=0, n=400, minority=0.08):
    """Binary task where the minority class needs weighting to be seen."""
    r = np.random.default_rng(seed)
    n1 = int(n * minority)
    X0 = r.normal(0.0, 1.0, size=(n - n1, 2))
    X1 = r.normal(1.2, 1.0, size=(n1, 2))
    X = np.vstack([X0, X1])
    y = np.repeat([0, 1], [n - n1, n1])
    w = np.where(y == 1, (n - n1) / n1, 1.0)  # balance the classes
    return X, y, w


class TestDuplicationEquivalence:
    """Integer weight w == duplicating the row w times (deterministic
    learners, no subsampling)."""

    @pytest.mark.parametrize("cls,kw", [
        (RidgeRegressor, dict(C=1.0)),
        (LassoRegressor, dict(C=1.0)),
        (GaussianNB, dict()),
    ])
    def test_exact_equivalence(self, cls, kw):
        r = np.random.default_rng(1)
        X = r.standard_normal((60, 3))
        if cls is GaussianNB:
            y = (X[:, 0] > 0).astype(int)
        else:
            y = X[:, 0] * 2 + 0.1 * r.standard_normal(60)
        w = r.integers(1, 4, size=60).astype(float)
        X_dup = np.repeat(X, w.astype(int), axis=0)
        y_dup = np.repeat(y, w.astype(int), axis=0)
        weighted = cls(**kw).fit(X, y, sample_weight=w)
        duplicated = cls(**kw).fit(X_dup, y_dup)
        q = r.standard_normal((20, 3))
        if cls is GaussianNB:
            assert np.allclose(weighted.predict_proba(q),
                               duplicated.predict_proba(q), atol=1e-8)
        else:
            assert np.allclose(weighted.predict(q), duplicated.predict(q),
                               atol=1e-6)

    def test_gbdt_unit_weights_noop(self):
        r = np.random.default_rng(2)
        X = r.standard_normal((200, 4))
        y = (X[:, 0] > 0).astype(int)
        a = LGBMLikeClassifier(tree_num=10, leaf_num=8, seed=0).fit(X, y)
        b = LGBMLikeClassifier(tree_num=10, leaf_num=8, seed=0).fit(
            X, y, sample_weight=np.ones(200)
        )
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_forest_unit_weights_noop(self):
        r = np.random.default_rng(3)
        X = r.standard_normal((150, 3))
        y = X[:, 0] * 2
        a = RandomForestRegressor(tree_num=5, seed=0).fit(X, y)
        b = RandomForestRegressor(tree_num=5, seed=0).fit(
            X, y, sample_weight=np.ones(150)
        )
        assert np.allclose(a.predict(X), b.predict(X))


CLS_WEIGHTED = [
    lambda: LGBMLikeClassifier(tree_num=20, leaf_num=8),
    lambda: XGBLikeClassifier(tree_num=20, leaf_num=8),
    lambda: CatBoostLikeClassifier(early_stop_rounds=20, learning_rate=0.2),
    lambda: RandomForestClassifier(tree_num=10),
    lambda: LogisticRegressionL1(C=10.0),
    lambda: LogisticRegressionL2(C=10.0),
    lambda: GaussianNB(),
    lambda: KNeighborsClassifier(n_neighbors=15),
]


@pytest.mark.parametrize("factory", CLS_WEIGHTED)
class TestImbalanceCorrection:
    def test_weighting_raises_minority_recall(self, factory):
        X, y, w = _imbalanced()
        plain = factory().fit(X, y)
        weighted = factory().fit(X, y, sample_weight=w)
        minority = y == 1
        recall_plain = (plain.predict(X)[minority] == 1).mean()
        recall_weighted = (weighted.predict(X)[minority] == 1).mean()
        assert recall_weighted >= recall_plain - 1e-9
        # weighting must produce a real change on this task for at least
        # the probability mass assigned to the minority class
        p_plain = plain.predict_proba(X)[minority, 1].mean()
        p_weighted = weighted.predict_proba(X)[minority, 1].mean()
        assert p_weighted > p_plain - 1e-9


class TestRegressionWeighting:
    @pytest.mark.parametrize("factory", [
        lambda: LGBMLikeRegressor(tree_num=20, leaf_num=8),
        lambda: RandomForestRegressor(tree_num=10),
        lambda: ExtraTreesRegressor(tree_num=10),
        lambda: RidgeRegressor(C=10.0),
        lambda: KNeighborsRegressor(n_neighbors=20),
    ])
    def test_upweighted_region_fits_tighter(self, factory):
        """Two incompatible sub-populations: weighting one of them must
        shrink its errors relative to the unweighted fit."""
        r = np.random.default_rng(5)
        X = r.uniform(-1, 1, size=(300, 1))
        region = X[:, 0] > 0
        y = np.where(region, 3.0, -3.0) + 0.05 * r.standard_normal(300)
        w = np.where(region, 25.0, 1.0)
        plain = factory().fit(X, y)
        weighted = factory().fit(X, y, sample_weight=w)
        err_plain = np.abs(plain.predict(X[region]) - y[region]).mean()
        err_weighted = np.abs(weighted.predict(X[region]) - y[region]).mean()
        assert err_weighted <= err_plain + 1e-9
