"""Tests for forest feature importances (split-count based)."""

import numpy as np
import pytest

from repro.learners import (
    ExtraTreesClassifier,
    RandomForestClassifier,
    RandomForestRegressor,
)


class TestForestImportances:
    def test_classifier_finds_informative_feature(self):
        r = np.random.default_rng(0)
        X = r.standard_normal((300, 5))
        y = (X[:, 1] > 0).astype(int)
        m = RandomForestClassifier(tree_num=10).fit(X, y)
        imp = m.feature_importances_
        assert imp.shape == (5,)
        assert imp.sum() == pytest.approx(1.0)
        assert int(np.argmax(imp)) == 1

    def test_regressor_finds_informative_feature(self):
        r = np.random.default_rng(1)
        X = r.standard_normal((300, 5))
        y = X[:, 2] * 3.0
        m = RandomForestRegressor(tree_num=10, max_depth=3).fit(X, y)
        assert int(np.argmax(m.feature_importances_)) == 2

    def test_extra_trees_importances_valid(self):
        r = np.random.default_rng(2)
        X = r.standard_normal((200, 4))
        y = (X[:, 0] + X[:, 3] > 0).astype(int)
        m = ExtraTreesClassifier(tree_num=8).fit(X, y)
        imp = m.feature_importances_
        assert (imp >= 0).all()
        assert imp.sum() == pytest.approx(1.0)

    def test_pure_noise_importances_diffuse(self):
        """With zero signal, no single feature should dominate strongly."""
        r = np.random.default_rng(3)
        X = r.standard_normal((300, 6))
        y = r.integers(0, 2, 300)
        m = RandomForestClassifier(tree_num=20, max_depth=4).fit(X, y)
        assert m.feature_importances_.max() < 0.6
