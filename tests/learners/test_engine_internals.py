"""Deeper tests of the GBDT engine internals."""

import numpy as np
import pytest

from repro.learners import GBDTEngine, get_loss
from repro.learners.boosting import LGBMLikeClassifier


@pytest.fixture(scope="module")
def xy():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((400, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(np.float64)
    return X, y


class TestEngine:
    def test_base_score_is_prior_logit(self, xy):
        X, y = xy
        eng = GBDTEngine(get_loss("binary"), n_estimators=1).fit(X, y)
        from repro.learners.losses import sigmoid

        assert sigmoid(eng.base_score_)[0] == pytest.approx(y.mean(), abs=1e-9)

    def test_raw_predict_matches_training_scores(self, xy):
        """raw_predict on the training data equals the scores accumulated
        during fit (no subsampling, deterministic)."""
        X, y = xy
        eng = GBDTEngine(get_loss("binary"), n_estimators=10, max_leaves=8)
        eng.fit(X, y)
        raw1 = eng.raw_predict(X)
        raw2 = eng.raw_predict(X)
        assert np.allclose(raw1, raw2)

    def test_loss_decreases_over_iterations(self, xy):
        X, y = xy
        loss = get_loss("binary")
        prev = np.inf
        for n in (1, 5, 20):
            eng = GBDTEngine(loss, n_estimators=n, max_leaves=8,
                             learning_rate=0.3).fit(X, y)
            cur = loss.value(y, eng.raw_predict(X))
            assert cur <= prev + 1e-12
            prev = cur

    def test_multiclass_k_trees_per_round(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((300, 4))
        y = rng.integers(0, 3, 300)
        eng = GBDTEngine(get_loss("multiclass", 3), n_estimators=4).fit(X, y)
        assert len(eng.trees_) == 4
        assert all(len(r) == 3 for r in eng.trees_)

    def test_subsample_uses_fraction(self, xy):
        X, y = xy
        eng = GBDTEngine(get_loss("binary"), n_estimators=3, subsample=0.5,
                         seed=7).fit(X, y)
        # trained without error and produced trees
        assert len(eng.trees_) == 3

    def test_learning_rate_scales_updates(self, xy):
        X, y = xy
        raws = []
        for lr in (0.01, 1.0):
            eng = GBDTEngine(get_loss("binary"), n_estimators=1, max_leaves=4,
                             learning_rate=lr).fit(X, y)
            raws.append(eng.raw_predict(X) - eng.base_score_[0])
        # one tree, same structure: the update magnitudes scale with lr
        assert np.abs(raws[1]).max() > np.abs(raws[0]).max() * 50


class TestRegularisationPath:
    def test_stronger_l2_smaller_leaf_values(self, xy):
        X, y = xy
        leaves = []
        for lam in (1e-9, 100.0):
            m = LGBMLikeClassifier(tree_num=1, leaf_num=8, reg_lambda=lam)
            m.fit(X, y)
            tree = m.engine_.trees_[0][0]
            leaves.append(np.abs(tree._value).max())
        assert leaves[1] < leaves[0]

    def test_l1_zeroes_small_leaves(self, xy):
        X, y = xy
        m = LGBMLikeClassifier(tree_num=1, leaf_num=8, reg_alpha=1e6)
        m.fit(X, y)
        tree = m.engine_.trees_[0][0]
        assert np.allclose(tree._value, 0.0)

    def test_min_child_weight_limits_tree_size(self, xy):
        X, y = xy
        small = LGBMLikeClassifier(tree_num=1, leaf_num=256,
                                   min_child_weight=1e-3).fit(X, y)
        big = LGBMLikeClassifier(tree_num=1, leaf_num=256,
                                 min_child_weight=20.0).fit(X, y)
        n_small = small.engine_.trees_[0][0].n_leaves
        n_big = big.engine_.trees_[0][0].n_leaves
        assert n_big <= n_small
