"""Tests for loss gradients/hessians, including numerical-gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners.losses import (
    LogisticLoss,
    SoftmaxLoss,
    SquaredLoss,
    get_loss,
    sigmoid,
    softmax,
)


def numeric_grad(loss, y, scores, eps=1e-6):
    """Central-difference gradient of the mean loss w.r.t. scores."""
    g = np.zeros_like(scores, dtype=np.float64)
    it = np.nditer(scores, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        up, dn = scores.copy(), scores.copy()
        up[i] += eps
        dn[i] -= eps
        g[i] = (loss.value(y, up) - loss.value(y, dn)) / (2 * eps)
    return g * y.size  # loss.value averages; grad_hess is per-sample


class TestSigmoidSoftmax:
    def test_sigmoid_extremes_stable(self):
        x = np.array([-1000.0, 0.0, 1000.0])
        p = sigmoid(x)
        assert np.all(np.isfinite(p))
        assert p[0] == pytest.approx(0, abs=1e-12)
        assert p[1] == pytest.approx(0.5)
        assert p[2] == pytest.approx(1, abs=1e-12)

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        s = rng.standard_normal((50, 4)) * 100
        p = softmax(s)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    @given(st.lists(st.floats(-30, 30), min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_softmax_shift_invariant(self, row):
        s = np.array([row])
        assert np.allclose(softmax(s), softmax(s + 7.3), atol=1e-9)


class TestSquaredLoss:
    def test_grad_matches_numeric(self):
        rng = np.random.default_rng(1)
        y = rng.standard_normal(10)
        s = rng.standard_normal(10)
        loss = SquaredLoss()
        g, h = loss.grad_hess(y, s)
        assert np.allclose(g, numeric_grad(loss, y, s), atol=1e-4)
        assert np.allclose(h, 1.0)

    def test_init_score_is_mean(self):
        y = np.array([1.0, 2.0, 6.0])
        assert SquaredLoss().init_score(y)[0] == pytest.approx(3.0)


class TestLogisticLoss:
    def test_grad_matches_numeric(self):
        rng = np.random.default_rng(2)
        y = (rng.random(12) > 0.5).astype(np.float64)
        s = rng.standard_normal(12)
        loss = LogisticLoss()
        g, _ = loss.grad_hess(y, s)
        assert np.allclose(g, numeric_grad(loss, y, s), atol=1e-4)

    def test_hessian_positive(self):
        loss = LogisticLoss()
        _, h = loss.grad_hess(np.array([0.0, 1.0]), np.array([-100.0, 100.0]))
        assert (h > 0).all()

    def test_init_score_logit_of_base_rate(self):
        y = np.array([1.0, 1.0, 1.0, 0.0])
        s = LogisticLoss().init_score(y)[0]
        assert sigmoid(np.array([s]))[0] == pytest.approx(0.75)


class TestSoftmaxLoss:
    def test_grad_matches_numeric(self):
        rng = np.random.default_rng(3)
        K, n = 3, 8
        y = rng.integers(0, K, n)
        s = rng.standard_normal((n, K))
        loss = SoftmaxLoss(K)
        g, _ = loss.grad_hess(y, s)
        assert np.allclose(g, numeric_grad(loss, y, s), atol=1e-4)

    def test_grad_rows_sum_to_zero(self):
        rng = np.random.default_rng(4)
        y = rng.integers(0, 4, 20)
        s = rng.standard_normal((20, 4))
        g, _ = SoftmaxLoss(4).grad_hess(y, s)
        assert np.allclose(g.sum(axis=1), 0.0, atol=1e-12)

    def test_requires_two_classes(self):
        with pytest.raises(ValueError):
            SoftmaxLoss(1)


class TestGetLoss:
    def test_dispatch(self):
        assert isinstance(get_loss("regression"), SquaredLoss)
        assert isinstance(get_loss("binary"), LogisticLoss)
        assert isinstance(get_loss("multiclass", 5), SoftmaxLoss)

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            get_loss("ranking")
