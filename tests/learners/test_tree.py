"""Tests for the histogram tree growers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners.histogram import Binner
from repro.learners.tree import ClassTreeGrower, GradTreeGrower, Tree


def _binned(X, max_bins=32):
    b = Binner(max_bins=max_bins)
    return b.fit_transform(X), b.n_bins_


class TestTreeStructure:
    def test_single_leaf_predicts_root_value(self):
        t = Tree()
        t.add_node(np.array([2.5]))
        t.freeze()
        codes = np.zeros((5, 2), dtype=np.uint8)
        assert np.allclose(t.predict(codes), 2.5)

    def test_manual_split_routing(self):
        t = Tree()
        root = t.add_node(0.0)
        left = t.add_node(-1.0)
        right = t.add_node(1.0)
        t.set_split(root, feature=0, threshold=3, left=left, right=right)
        t.freeze()
        codes = np.array([[1, 0], [3, 0], [4, 0], [9, 0]], dtype=np.uint8)
        assert np.allclose(t.predict(codes), [-1, -1, 1, 1])

    def test_n_leaves_counts(self):
        t = Tree()
        root = t.add_node(0.0)
        l, r = t.add_node(1.0), t.add_node(2.0)
        t.set_split(root, 0, 1, l, r)
        assert t.n_leaves == 2
        assert t.n_nodes == 3

    def test_unfrozen_tree_autofreezes_on_predict(self):
        # hand-built trees used to die with a bare AttributeError when
        # predict was called before freeze()
        t = Tree()
        root = t.add_node(0.0)
        l, r = t.add_node(-1.0), t.add_node(1.0)
        t.set_split(root, 0, 1, l, r)
        codes = np.array([[0, 0], [3, 0]], dtype=np.uint8)
        assert np.allclose(t.predict(codes), [-1.0, 1.0])
        assert hasattr(t, "_feature")  # frozen as a side effect

    def test_empty_tree_predict_is_actionable_error(self):
        t = Tree()
        with pytest.raises(RuntimeError, match="empty Tree"):
            t.predict(np.zeros((2, 1), dtype=np.uint8))
        with pytest.raises(RuntimeError, match="add_node"):
            t.predict_leaf(np.zeros((2, 1), dtype=np.uint8))


class TestGradTreeGrower:
    def test_perfect_split_on_step_function(self):
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(np.float64)
        codes, n_bins = _binned(X)
        # squared loss at score 0: grad = -y, hess = 1
        tree = GradTreeGrower(max_leaves=2, reg_lambda=1e-9).grow(
            codes, -y, np.ones_like(y), n_bins
        )
        pred = tree.predict(codes)
        assert np.allclose(pred[X[:, 0] <= 0.5], 0.0, atol=1e-6)
        assert np.allclose(pred[X[:, 0] > 0.5], 1.0, atol=1e-6)

    def test_max_leaves_respected(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((300, 4))
        y = rng.standard_normal(300)
        codes, n_bins = _binned(X)
        for ml in (2, 5, 17):
            tree = GradTreeGrower(max_leaves=ml).grow(
                codes, y, np.ones_like(y), n_bins
            )
            assert tree.n_leaves <= ml

    def test_max_depth_respected(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((500, 3))
        y = rng.standard_normal(500)
        codes, n_bins = _binned(X)
        tree = GradTreeGrower(max_leaves=512, max_depth=2, leaf_wise=False).grow(
            codes, y, np.ones_like(y), n_bins
        )
        # depth-2 tree has at most 4 leaves
        assert tree.n_leaves <= 4

    def test_min_child_weight_blocks_splits(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.arange(10, dtype=float)
        codes, n_bins = _binned(X)
        tree = GradTreeGrower(max_leaves=32, min_child_weight=100.0).grow(
            codes, -y, np.ones_like(y), n_bins
        )
        assert tree.n_leaves == 1  # no split satisfies hessian constraint

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((100, 2))
        y = rng.standard_normal(100)
        codes, n_bins = _binned(X)
        tree = GradTreeGrower(max_leaves=64, min_samples_leaf=20).grow(
            codes, y, np.ones_like(y), n_bins
        )
        leaf_ids = tree.predict_leaf(codes)
        _, counts = np.unique(leaf_ids, return_counts=True)
        assert counts.min() >= 20

    def test_reg_lambda_shrinks_leaf_values(self):
        X = np.ones((50, 1))
        y = np.full(50, 4.0)
        codes, n_bins = _binned(X)
        small = GradTreeGrower(reg_lambda=1e-9).grow(codes, -y, np.ones_like(y), n_bins)
        big = GradTreeGrower(reg_lambda=1000.0).grow(codes, -y, np.ones_like(y), n_bins)
        assert abs(big.predict(codes)[0]) < abs(small.predict(codes)[0])

    def test_leafwise_prefers_high_gain_regions(self):
        """Leaf-wise growth with a tight budget should still cut the dominant
        structure (feature 0) rather than noise features."""
        rng = np.random.default_rng(3)
        X = rng.standard_normal((800, 5))
        y = 10.0 * (X[:, 0] > 0) + 0.01 * rng.standard_normal(800)
        codes, n_bins = _binned(X)
        tree = GradTreeGrower(max_leaves=2).grow(codes, -y, np.ones_like(y), n_bins)
        assert tree.feature[0] == 0

    def test_extra_random_still_reduces_error(self):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((400, 3))
        y = (X[:, 1] > 0).astype(np.float64) * 5
        codes, n_bins = _binned(X)
        tree = GradTreeGrower(max_leaves=16, extra_random=True, rng=rng).grow(
            codes, -y, np.ones_like(y), n_bins
        )
        mse = np.mean((tree.predict(codes) - y) ** 2)
        assert mse < np.var(y)

    def test_invalid_max_leaves(self):
        with pytest.raises(ValueError):
            GradTreeGrower(max_leaves=1)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_property_training_mse_no_worse_than_constant(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((120, 3))
        y = rng.standard_normal(120)
        codes, n_bins = _binned(X)
        tree = GradTreeGrower(max_leaves=8, reg_lambda=1e-9).grow(
            codes, -(y - y.mean()), np.ones_like(y), n_bins
        )
        pred = y.mean() + tree.predict(codes)
        assert np.mean((pred - y) ** 2) <= np.var(y) + 1e-9


class TestClassTreeGrower:
    @pytest.mark.parametrize("criterion", ["gini", "entropy"])
    def test_pure_split(self, criterion):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.6).astype(np.int64)
        codes, n_bins = _binned(X, max_bins=255)  # one bin per unique value
        tree = ClassTreeGrower(n_classes=2, criterion=criterion).grow(codes, y, n_bins)
        proba = tree.predict(codes)
        assert ((proba.argmax(axis=1) == y)).all()

    def test_leaf_probabilities_valid(self):
        rng = np.random.default_rng(5)
        X = rng.standard_normal((200, 4))
        y = rng.integers(0, 3, 200)
        codes, n_bins = _binned(X)
        tree = ClassTreeGrower(n_classes=3, max_depth=4).grow(codes, y, n_bins)
        proba = tree.predict(codes)
        assert proba.shape == (200, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_max_depth(self):
        rng = np.random.default_rng(6)
        X = rng.standard_normal((300, 3))
        y = rng.integers(0, 2, 300)
        codes, n_bins = _binned(X)
        tree = ClassTreeGrower(n_classes=2, max_depth=1).grow(codes, y, n_bins)
        assert tree.n_leaves <= 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ClassTreeGrower(n_classes=2, criterion="mse")
        with pytest.raises(ValueError):
            ClassTreeGrower(n_classes=1)

    def test_pure_node_not_split(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.zeros(20, dtype=np.int64)
        y[:10] = 1
        codes, n_bins = _binned(X)
        tree = ClassTreeGrower(n_classes=2).grow(codes, y, n_bins)
        # After separating the two pure halves there is nothing left to split.
        assert tree.n_leaves == 2
