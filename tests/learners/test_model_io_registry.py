"""Satellite coverage: dump_model/load_model round-trips for **every**
learner in the registry (defaults + extras), per supported task,
asserting bitwise-equal predictions after reload.

The per-family tests in test_model_io.py pin the formats; this file pins
the coverage claim itself — no registered learner may silently fall out
of the pickle-free serialisation contract, because the registry is what
``export_artifact`` and the serving layer draw from.
"""

import json

import numpy as np
import pytest

from repro.core.evaluate import _make_estimator
from repro.core.registry import all_learners
from repro.learners.model_io import dump_model, load_model

ALL = all_learners()


def _fitted(name: str, task: str, X, y):
    """Fit the learner's low-cost init config (Table 5 bold values) —
    cheap to train and exactly what the search evaluates first."""
    spec = ALL[name]
    config = spec.space_fn(len(X), task).init_config()
    model = _make_estimator(spec.estimator_cls(task), config, seed=0,
                            train_time_limit=None)
    return model.fit(X, y)


def _round_trip(model):
    # through actual JSON text, not just the dict: the on-disk format is
    # the contract
    return load_model(json.loads(json.dumps(dump_model(model))))


@pytest.mark.parametrize("name", sorted(ALL))
def test_classifier_round_trip_bitwise(name, binary_split, multiclass_split):
    if not ALL[name].supports("binary"):
        pytest.skip(f"{name} has no classifier")
    for task, split in (("binary", binary_split),
                        ("multiclass", multiclass_split)):
        Xtr, ytr, Xte, _ = split
        model = _fitted(name, task, Xtr, ytr)
        back = _round_trip(model)
        assert np.array_equal(model.predict(Xte), back.predict(Xte)), \
            f"{name}/{task}: labels differ after reload"
        assert np.array_equal(
            model.predict_proba(Xte), back.predict_proba(Xte)
        ), f"{name}/{task}: probabilities differ after reload"


@pytest.mark.parametrize("name", sorted(ALL))
def test_regressor_round_trip_bitwise(name, regression_split):
    if not ALL[name].supports("regression"):
        pytest.skip(f"{name} has no regressor")
    Xtr, ytr, Xte, _ = regression_split
    model = _fitted(name, "regression", Xtr, ytr)
    back = _round_trip(model)
    assert np.array_equal(model.predict(Xte), back.predict(Xte)), \
        f"{name}: predictions differ after reload"
