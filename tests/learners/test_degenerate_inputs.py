"""Robustness of every learner on degenerate inputs.

AutoML feeds learners whatever the sampled prefix of an ad-hoc dataset
looks like — tiny samples, constant columns, duplicated rows, huge
magnitudes.  A learner that crashes on these turns into an inf-error
trial (handled), but the *default* expectation is graceful handling:
fit + predict must succeed and produce valid, finite outputs.
"""

import numpy as np
import pytest

from repro.learners import (
    CatBoostLikeClassifier,
    CatBoostLikeRegressor,
    ExtraTreesClassifier,
    ExtraTreesRegressor,
    GaussianNB,
    KNeighborsClassifier,
    KNeighborsRegressor,
    LassoRegressor,
    LGBMLikeClassifier,
    LGBMLikeRegressor,
    LogisticRegressionL1,
    LogisticRegressionL2,
    RandomForestClassifier,
    RandomForestRegressor,
    RidgeRegressor,
    XGBLikeClassifier,
    XGBLikeRegressor,
    XGBLimitDepthClassifier,
    XGBLimitDepthRegressor,
)

CLASSIFIERS = [
    lambda: LGBMLikeClassifier(tree_num=5, leaf_num=4),
    lambda: XGBLikeClassifier(tree_num=5, leaf_num=4),
    lambda: XGBLimitDepthClassifier(tree_num=5, max_depth=2),
    lambda: CatBoostLikeClassifier(early_stop_rounds=10),
    lambda: RandomForestClassifier(tree_num=5),
    lambda: ExtraTreesClassifier(tree_num=5),
    lambda: LogisticRegressionL1(C=1.0),
    lambda: LogisticRegressionL2(C=1.0),
    lambda: KNeighborsClassifier(n_neighbors=3),
    lambda: GaussianNB(),
]

REGRESSORS = [
    lambda: LGBMLikeRegressor(tree_num=5, leaf_num=4),
    lambda: XGBLikeRegressor(tree_num=5, leaf_num=4),
    lambda: XGBLimitDepthRegressor(tree_num=5, max_depth=2),
    lambda: CatBoostLikeRegressor(early_stop_rounds=10),
    lambda: RandomForestRegressor(tree_num=5),
    lambda: ExtraTreesRegressor(tree_num=5),
    lambda: RidgeRegressor(C=1.0),
    lambda: LassoRegressor(C=1.0),
    lambda: KNeighborsRegressor(n_neighbors=3),
]

_ids_c = [f.__code__.co_consts and str(i) for i, f in enumerate(CLASSIFIERS)]


def _assert_valid_classifier_output(model, X, n_classes):
    pred = model.predict(X)
    assert pred.shape == (X.shape[0],)
    proba = model.predict_proba(X)
    assert proba.shape == (X.shape[0], n_classes)
    assert np.isfinite(proba).all()
    assert (proba >= -1e-12).all()
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-8)


@pytest.mark.parametrize("factory", CLASSIFIERS)
class TestClassifierDegenerate:
    def test_constant_features(self, factory):
        X = np.zeros((40, 3))
        y = (np.arange(40) % 2).astype(int)
        m = factory().fit(X, y)
        _assert_valid_classifier_output(m, X, 2)

    def test_tiny_sample(self, factory):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        m = factory().fit(X, y)
        _assert_valid_classifier_output(m, X, 2)

    def test_single_feature(self, factory):
        r = np.random.default_rng(0)
        X = r.standard_normal((60, 1))
        y = (X[:, 0] > 0).astype(int)
        m = factory().fit(X, y)
        _assert_valid_classifier_output(m, X, 2)

    def test_duplicate_rows(self, factory):
        X = np.tile(np.array([[1.0, 2.0], [3.0, 4.0]]), (15, 1))
        y = np.tile(np.array([0, 1]), 15)
        m = factory().fit(X, y)
        _assert_valid_classifier_output(m, X, 2)
        # duplicated separable rows should be learned (nearly) perfectly
        assert (m.predict(X) == y).mean() > 0.9

    def test_extreme_magnitudes(self, factory):
        r = np.random.default_rng(1)
        X = r.standard_normal((60, 2)) * np.array([1e12, 1e-12])
        y = (X[:, 0] > 0).astype(int)
        m = factory().fit(X, y)
        _assert_valid_classifier_output(m, X, 2)

    def test_heavily_imbalanced(self, factory):
        r = np.random.default_rng(2)
        X = r.standard_normal((100, 3))
        y = np.zeros(100, dtype=int)
        y[:3] = 1
        m = factory().fit(X, y)
        _assert_valid_classifier_output(m, X, 2)


@pytest.mark.parametrize("factory", REGRESSORS)
class TestRegressorDegenerate:
    def test_constant_target(self, factory):
        r = np.random.default_rng(3)
        X = r.standard_normal((50, 3))
        y = np.full(50, 7.5)
        m = factory().fit(X, y)
        pred = m.predict(X)
        assert np.isfinite(pred).all()
        assert np.allclose(pred, 7.5, atol=0.5)

    def test_constant_features(self, factory):
        X = np.ones((40, 2))
        y = np.linspace(0, 1, 40)
        m = factory().fit(X, y)
        pred = m.predict(X)
        assert np.isfinite(pred).all()
        # no information: any prediction inside the target range is
        # acceptable (kNN, for one, averages an arbitrary k-subset of the
        # all-identical points), but leaving the range means the learner
        # invented signal
        assert (pred >= y.min() - 0.25).all()
        assert (pred <= y.max() + 0.25).all()

    def test_tiny_sample(self, factory):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 1.0, 2.0])
        m = factory().fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    def test_extreme_targets(self, factory):
        r = np.random.default_rng(4)
        X = r.standard_normal((60, 2))
        y = X[:, 0] * 1e9
        m = factory().fit(X, y)
        pred = m.predict(X)
        assert np.isfinite(pred).all()
