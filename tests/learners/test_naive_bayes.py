"""Tests for Gaussian naive Bayes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners import GaussianNB


class TestGaussianNB:
    def test_learns_binary(self, binary_split):
        Xtr, ytr, Xte, yte = binary_split
        m = GaussianNB().fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.8

    def test_learns_multiclass(self, multiclass_split):
        Xtr, ytr, Xte, yte = multiclass_split
        m = GaussianNB().fit(Xtr, ytr)
        assert (m.predict(Xte) == yte).mean() > 0.55
        p = m.predict_proba(Xte)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()

    def test_separated_gaussians_near_perfect(self):
        r = np.random.default_rng(0)
        X0 = r.normal(-5, 1, size=(200, 2))
        X1 = r.normal(+5, 1, size=(200, 2))
        X = np.vstack([X0, X1])
        y = np.repeat([0, 1], 200)
        m = GaussianNB().fit(X, y)
        assert (m.predict(X) == y).mean() > 0.99

    def test_constant_feature_smoothing(self):
        """A zero-variance feature must not produce NaN/inf probabilities."""
        X = np.column_stack([np.arange(20.0), np.full(20, 7.0)])
        y = (np.arange(20) >= 10).astype(int)
        m = GaussianNB(var_smoothing=1e-9).fit(X, y)
        p = m.predict_proba(X)
        assert np.isfinite(p).all()
        assert (m.predict(X) == y).mean() > 0.9

    def test_prior_respected_on_uninformative_features(self):
        """With pure-noise features the prediction collapses to the prior."""
        r = np.random.default_rng(1)
        X = r.standard_normal((300, 2))
        y = (r.random(300) < 0.9).astype(int)  # 90% class 1
        m = GaussianNB().fit(X, y)
        assert (m.predict(X) == 1).mean() > 0.8

    def test_heavy_smoothing_flattens_likelihood(self):
        r = np.random.default_rng(2)
        X = np.vstack([r.normal(-2, 1, (50, 1)), r.normal(2, 1, (50, 1))])
        y = np.repeat([0, 1], 50)
        sharp = GaussianNB(var_smoothing=1e-12).fit(X, y).predict_proba(X)
        flat = GaussianNB(var_smoothing=1e3).fit(X, y).predict_proba(X)
        # massive smoothing pushes probabilities toward 0.5
        assert np.abs(flat - 0.5).mean() < np.abs(sharp - 0.5).mean()

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=-1.0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            GaussianNB().fit(np.zeros((5, 2)), np.zeros(5))

    def test_string_labels(self):
        X = np.array([[-3.0], [-2.9], [3.0], [3.1]])
        y = np.array(["a", "a", "b", "b"])
        m = GaussianNB().fit(X, y)
        assert list(m.predict(np.array([[-3.0], [3.0]]))) == ["a", "b"]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), smoothing=st.floats(1e-12, 1.0))
    def test_property_valid_probability_simplex(self, seed, smoothing):
        r = np.random.default_rng(seed)
        X = r.standard_normal((50, 3))
        y = r.integers(0, 3, 50)
        if np.unique(y).size < 2:
            y[0] = (y[0] + 1) % 3
        p = GaussianNB(var_smoothing=smoothing).fit(X, y).predict_proba(
            r.standard_normal((20, 3))
        )
        assert np.isfinite(p).all()
        assert (p >= 0).all()
        assert np.allclose(p.sum(axis=1), 1.0)
