"""Shared fixtures: small deterministic datasets for every test module."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


def _make_binary(n=400, d=6, seed=7, noise=0.2):
    r = np.random.default_rng(seed)
    X = r.standard_normal((n, d))
    w = r.standard_normal(d)
    logits = X @ w + noise * r.standard_normal(n)
    y = (logits > 0).astype(np.int64)
    return X, y


def _make_multiclass(n=400, d=6, k=3, seed=11):
    r = np.random.default_rng(seed)
    X = r.standard_normal((n, d))
    w = r.standard_normal(d)
    cuts = np.quantile(X @ w, np.linspace(0, 1, k + 1)[1:-1])
    y = np.digitize(X @ w, cuts).astype(np.int64)
    return X, y


def _make_regression(n=400, d=6, seed=13, noise=0.1):
    r = np.random.default_rng(seed)
    X = r.standard_normal((n, d))
    w = r.standard_normal(d)
    y = X @ w + np.sin(X[:, 0] * 2) + noise * r.standard_normal(n)
    return X, y


@pytest.fixture(scope="session")
def binary_data():
    return _make_binary()


@pytest.fixture(scope="session")
def multiclass_data():
    return _make_multiclass()


@pytest.fixture(scope="session")
def regression_data():
    return _make_regression()


@pytest.fixture(scope="session")
def binary_split(binary_data):
    X, y = binary_data
    return X[:300], y[:300], X[300:], y[300:]


@pytest.fixture(scope="session")
def multiclass_split(multiclass_data):
    X, y = multiclass_data
    return X[:300], y[:300], X[300:], y[300:]


@pytest.fixture(scope="session")
def regression_split(regression_data):
    X, y = regression_data
    return X[:300], y[:300], X[300:], y[300:]
