"""Tests for the extended AutoML API: warm starts, trial-log files,
per-estimator best configs, feature importances."""

import numpy as np
import pytest

from repro import AutoML
from repro.core.serialize import load_result
from repro.learners import LGBMLikeClassifier, LGBMLikeRegressor

FIT_KW = dict(time_budget=0.8, cv_instance_threshold=0)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(3)
    X = rng.standard_normal((700, 6))
    y = ((X[:, 0] + 0.5 * X[:, 1]) > 0).astype(int)
    return X, y


class TestWarmStart:
    def test_starting_point_used_as_first_trial(self, problem):
        X, y = problem
        am = AutoML(seed=0, init_sample_size=150)
        am.fit(X, y, task="binary", estimator_list=["lgbm"],
               starting_points={"lgbm": {"tree_num": 64, "leaf_num": 12}},
               **FIT_KW)
        first = am.search_result.trials[0].config
        assert first["tree_num"] == 64
        assert first["leaf_num"] == 12
        # unspecified hyperparameters keep the low-cost defaults (up to
        # unit-cube round-trip precision)
        assert first["min_child_weight"] == pytest.approx(20.0)

    def test_partial_starting_points(self, problem):
        X, y = problem
        am = AutoML(seed=0, init_sample_size=150)
        am.fit(X, y, task="binary", estimator_list=["lgbm", "rf"],
               starting_points={"rf": {"tree_num": 32}}, **FIT_KW)
        rf_trials = [t for t in am.search_result.trials if t.learner == "rf"]
        if rf_trials:  # rf may not get scheduled in a tiny budget
            assert rf_trials[0].config["tree_num"] == 32


class TestLogFile:
    def test_log_file_roundtrip(self, problem, tmp_path):
        X, y = problem
        path = str(tmp_path / "log.json")
        am = AutoML(seed=0, init_sample_size=150)
        am.fit(X, y, task="binary", estimator_list=["lgbm"],
               log_file=path, **FIT_KW)
        logged = load_result(path)
        assert logged.n_trials == am.search_result.n_trials
        assert logged.best_learner == am.best_estimator


class TestBestConfigPerEstimator:
    def test_one_entry_per_tried_learner(self, problem):
        X, y = problem
        am = AutoML(seed=0, init_sample_size=150)
        am.fit(X, y, task="binary", estimator_list=["lgbm", "rf"], **FIT_KW)
        per = am.best_config_per_estimator
        tried = {t.learner for t in am.search_result.trials}
        assert set(per) == tried
        assert per[am.best_estimator] == am.best_config

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            AutoML().best_config_per_estimator


class TestFeatureImportances:
    def test_informative_feature_ranks_first(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((500, 6))
        y = (X[:, 3] > 0).astype(int)  # only feature 3 matters
        m = LGBMLikeClassifier(tree_num=20, leaf_num=8).fit(X, y)
        imp = m.feature_importances_
        assert imp.shape == (6,)
        assert imp.sum() == pytest.approx(1.0)
        assert int(np.argmax(imp)) == 3

    def test_regressor_importances(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((500, 4))
        y = 3 * X[:, 1] + 0.01 * rng.standard_normal(500)
        m = LGBMLikeRegressor(tree_num=15, leaf_num=8).fit(X, y)
        assert int(np.argmax(m.feature_importances_)) == 1
