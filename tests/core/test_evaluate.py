"""Tests for trial execution (evaluate_config)."""

import numpy as np
import pytest

from repro.core.evaluate import TrialOutcome, evaluate_config
from repro.data import Dataset, make_classification, make_regression
from repro.learners import LGBMLikeClassifier, LGBMLikeRegressor
from repro.metrics import get_metric


@pytest.fixture(scope="module")
def clf_data():
    return make_classification(600, 5, class_sep=1.5, seed=0).shuffled(0)


@pytest.fixture(scope="module")
def reg_data():
    return make_regression(600, 5, seed=1).shuffled(0)


CFG = dict(tree_num=10, leaf_num=4)


class TestHoldout:
    def test_basic_outcome(self, clf_data):
        out = evaluate_config(
            clf_data, LGBMLikeClassifier, CFG, sample_size=400,
            resampling="holdout", metric=get_metric("roc_auc"),
        )
        assert isinstance(out, TrialOutcome)
        assert 0 <= out.error <= 1
        assert out.cost > 0
        assert out.model is not None

    def test_sample_size_respected(self, clf_data):
        """Cost grows with sample size (Observation 3)."""
        small = evaluate_config(
            clf_data, LGBMLikeClassifier, dict(tree_num=60, leaf_num=16),
            sample_size=100, resampling="holdout", metric=get_metric("roc_auc"),
        )
        big = evaluate_config(
            clf_data, LGBMLikeClassifier, dict(tree_num=60, leaf_num=16),
            sample_size=600, resampling="holdout", metric=get_metric("roc_auc"),
        )
        assert big.cost > small.cost

    def test_label_metric(self, clf_data):
        out = evaluate_config(
            clf_data, LGBMLikeClassifier, CFG, sample_size=300,
            resampling="holdout", metric=get_metric("accuracy"),
        )
        assert 0 <= out.error <= 1


class TestCV:
    def test_cv_averages_folds(self, clf_data):
        out = evaluate_config(
            clf_data, LGBMLikeClassifier, CFG, sample_size=300,
            resampling="cv", metric=get_metric("roc_auc"), n_splits=5,
        )
        assert 0 <= out.error <= 1

    def test_cv_costs_more_than_holdout(self, clf_data):
        """Observation 3: k-fold CV ≈ (k-1)/(1-rho) x holdout cost."""
        cfg = dict(tree_num=40, leaf_num=16)
        kw = dict(sample_size=600, metric=get_metric("roc_auc"))
        hold = evaluate_config(clf_data, LGBMLikeClassifier, cfg,
                               resampling="holdout", **kw)
        cv = evaluate_config(clf_data, LGBMLikeClassifier, cfg,
                             resampling="cv", n_splits=5, **kw)
        assert cv.cost > 2 * hold.cost

    def test_regression_cv(self, reg_data):
        out = evaluate_config(
            reg_data, LGBMLikeRegressor, CFG, sample_size=300,
            resampling="cv", metric=get_metric("r2"),
        )
        assert np.isfinite(out.error)


class TestRobustness:
    def test_invalid_resampling(self, clf_data):
        with pytest.raises(ValueError):
            evaluate_config(
                clf_data, LGBMLikeClassifier, CFG, sample_size=100,
                resampling="bootstrap", metric=get_metric("roc_auc"),
            )

    def test_degenerate_sample_reports_inf(self):
        """A sample too small to contain both classes must fail the trial
        gracefully (error = inf), not crash the controller."""
        X = np.random.default_rng(0).standard_normal((100, 3))
        y = np.zeros(100, dtype=int)
        y[-1] = 1  # single positive, at the tail
        data = Dataset("deg", X, y, "binary")  # NOT shuffled: prefix is pure
        out = evaluate_config(
            data, LGBMLikeClassifier, CFG, sample_size=10,
            resampling="holdout", metric=get_metric("roc_auc"),
        )
        assert out.error == np.inf
        assert out.model is None

    def test_multiclass_missing_class_in_fold(self):
        """Probability columns realign when a training split lacks a class."""
        rng = np.random.default_rng(1)
        X = rng.standard_normal((60, 3))
        y = np.array([0] * 28 + [1] * 28 + [2] * 4)
        data = Dataset("mc", X, y, "multiclass").shuffled(0)
        out = evaluate_config(
            data, LGBMLikeClassifier, CFG, sample_size=60,
            resampling="cv", metric=get_metric("log_loss"), n_splits=3,
            labels=np.unique(y),
        )
        assert np.isfinite(out.error)

    def test_time_limit_forwarded(self, clf_data):
        out = evaluate_config(
            clf_data, LGBMLikeClassifier,
            dict(tree_num=100_000, leaf_num=64), sample_size=600,
            resampling="holdout", metric=get_metric("roc_auc"),
            train_time_limit=0.3,
        )
        assert out.cost < 3.0  # the cap kept the trial bounded
