"""task="forecast" through the public AutoML API.

The acceptance bar: on a synthetic seasonal series the searched model
must beat the seasonal-naive baseline on MASE *under the same
rolling-origin CV folds* — i.e. the search earns its keep against the
standard no-model forecaster, with no temporal leakage inflating either
number.
"""

import numpy as np
import pytest

from repro import AutoML
from repro.data.timeseries import (
    ForecastModel,
    make_timeseries,
    seasonal_naive_cv_error,
)

HORIZON = 12
PERIOD = 12


@pytest.fixture(scope="module")
def seasonal_series():
    return make_timeseries(n=400, seasonal_period=PERIOD, seasonal_amp=4.0,
                           ar=0.6, noise=0.4, seed=401)


@pytest.fixture(scope="module")
def fitted(seasonal_series):
    automl = AutoML(seed=0, init_sample_size=200)
    automl.fit(
        None, seasonal_series.y, task="forecast", horizon=HORIZON,
        seasonal_period=PERIOD, time_budget=20, max_iters=25,
        estimator_list=["lgbm", "rf", "lrl1"],
    )
    return automl


class TestForecastSearch:
    def test_beats_seasonal_naive_on_mase(self, fitted, seasonal_series):
        baseline = seasonal_naive_cv_error(
            seasonal_series.y, horizon=HORIZON, m=PERIOD
        )
        assert np.isfinite(fitted.best_loss)
        assert fitted.best_loss < baseline, (
            f"searched MASE {fitted.best_loss:.3f} does not beat "
            f"seasonal-naive {baseline:.3f}"
        )

    def test_search_ran_under_temporal_cv(self, fitted):
        result = fitted.search_result
        assert result.resampling == "temporal"
        assert result.n_trials >= 2
        # featurization hyperparameters were searched with the learner's
        for trial in result.trials:
            assert {"fc_lags", "fc_window", "fc_diff"} <= set(trial.config)

    def test_final_model_and_predict(self, fitted):
        assert isinstance(fitted.model, ForecastModel)
        pred = fitted.predict()  # defaults to the fitted horizon
        assert pred.shape == (HORIZON,)
        assert np.all(np.isfinite(pred))
        assert fitted.predict(horizon=5).shape == (5,)

    def test_predict_from_explicit_history(self, fitted, seasonal_series):
        hist = seasonal_series.y[:300]
        pred = fitted.predict(hist, horizon=HORIZON)
        assert pred.shape == (HORIZON,)
        # forecasting from the training tail reproduces the default path
        assert np.allclose(
            fitted.predict(seasonal_series.y, horizon=HORIZON),
            fitted.predict(horizon=HORIZON),
        )

    def test_score_against_future_window(self, fitted, seasonal_series):
        y = seasonal_series.y
        err = fitted.score(y[:350], y[350:362])
        assert np.isfinite(err) and err >= 0

    def test_predict_proba_refused(self, fitted):
        with pytest.raises(RuntimeError, match="predict_proba"):
            fitted.predict_proba(np.zeros(10))


class TestForecastGuards:
    def test_random_resampling_refused(self, seasonal_series):
        with pytest.raises(ValueError, match="temporal"):
            AutoML().fit(None, seasonal_series.y, task="forecast",
                         resampling="cv", time_budget=1)

    def test_ensemble_refused(self, seasonal_series):
        with pytest.raises(ValueError, match="ensemble"):
            AutoML().fit(None, seasonal_series.y, task="forecast",
                         ensemble=True, time_budget=1)

    def test_preprocessor_refused(self, seasonal_series):
        from repro.data.preprocessing import StandardScaler

        with pytest.raises(ValueError, match="preprocessor"):
            AutoML().fit(None, seasonal_series.y, task="forecast",
                         preprocessor=StandardScaler(), time_budget=1)

    def test_horizon_on_non_forecast_task_refused(self, binary_split):
        X, y, _, _ = binary_split
        with pytest.raises(ValueError, match="horizon"):
            AutoML().fit(X, y, task="classification", horizon=4,
                         time_budget=1)

    def test_x_required_for_non_forecast(self):
        with pytest.raises(TypeError, match="X_train is required"):
            AutoML().fit(None, np.array([0, 1] * 20), task="classification",
                         time_budget=1)

    def test_horizon_kwarg_rejected_on_tabular_predict(self, binary_split):
        X, y, Xte, _ = binary_split
        automl = AutoML(seed=0, init_sample_size=100)
        automl.fit(X, y, task="classification", time_budget=3, max_iters=4,
                   estimator_list=["lgbm"])
        with pytest.raises(ValueError, match="horizon"):
            automl.predict(Xte, horizon=3)


class TestForecastParallelBackends:
    def test_thread_backend_forecast(self, seasonal_series):
        automl = AutoML(seed=0, init_sample_size=150)
        automl.fit(None, seasonal_series.y[:200], task="forecast",
                   horizon=6, seasonal_period=PERIOD, time_budget=8,
                   max_iters=6, n_workers=2, backend="thread",
                   estimator_list=["lgbm"])
        assert automl.search_result.backend == "thread"
        assert automl.search_result.resampling == "temporal"
        assert automl.predict(horizon=6).shape == (6,)
