"""Tests for AutoML.fit(preprocessor=...) — the footnote-2 integration."""

import numpy as np
import pytest

from repro import AutoML
from repro.data.preprocessing import Imputer, OneHotEncoder, StandardScaler

FIT_KW = dict(task="classification", time_budget=1.0, max_iters=6,
              estimator_list=["lrl1"])


@pytest.fixture()
def missing_data():
    r = np.random.default_rng(0)
    X = r.standard_normal((250, 4))
    y = (X[:, 0] > 0).astype(int)
    X[r.random(X.shape) < 0.1] = np.nan
    return X, y


class TestPreprocessorIntegration:
    def test_single_preprocessor(self, missing_data):
        X, y = missing_data
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, preprocessor=Imputer("median"), **FIT_KW)
        # predict re-applies the imputer: NaN inputs must work even for
        # the linear learner, which cannot consume NaN itself
        pred = automl.predict(X[:20])
        assert pred.shape == (20,)
        assert np.isfinite(automl.predict_proba(X[:20])).all()

    def test_preprocessor_chain(self, missing_data):
        X, y = missing_data
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, preprocessor=[Imputer(), StandardScaler()], **FIT_KW)
        assert automl.predict(X[:10]).shape == (10,)

    def test_onehot_changes_width_transparently(self):
        r = np.random.default_rng(1)
        X = np.column_stack([
            r.standard_normal(200), r.integers(0, 3, 200).astype(float)
        ])
        y = (X[:, 0] + (X[:, 1] == 1) > 0.5).astype(int)
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, preprocessor=OneHotEncoder(columns=(1,)), **FIT_KW)
        # raw 2-column input keeps working at predict time
        assert automl.predict(X[:5]).shape == (5,)

    def test_score_applies_preprocessor(self, missing_data):
        X, y = missing_data
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, preprocessor=Imputer(), **FIT_KW)
        err = automl.score(X, y)
        assert np.isfinite(err)
        assert err < 0.5  # much better than chance on this easy task

    def test_no_preprocessor_path_unchanged(self, missing_data):
        X, y = missing_data
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, task="classification", time_budget=1.0, max_iters=6,
                   estimator_list=["lgbm"])  # trees consume NaN natively
        assert automl.predict(X[:5]).shape == (5,)

    def test_refit_resets_preprocessor(self, missing_data):
        X, y = missing_data
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, preprocessor=Imputer(), **FIT_KW)
        # second fit without a preprocessor must not reuse the old one
        Xc = np.nan_to_num(X)
        automl.fit(Xc, y, **FIT_KW)
        assert automl._preprocessor == []
        assert automl.predict(Xc[:5]).shape == (5,)
