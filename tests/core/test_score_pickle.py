"""Tests for AutoML.score and model picklability (deployment path)."""

import pickle

import numpy as np
import pytest

from repro import AutoML
from repro.learners import (
    CatBoostLikeClassifier,
    LGBMLikeClassifier,
    LGBMLikeRegressor,
    LogisticRegressionL1,
    RandomForestClassifier,
)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((600, 5))
    y = (X[:, 0] > 0).astype(int)
    am = AutoML(seed=0, init_sample_size=150)
    am.fit(X, y, task="binary", time_budget=0.8, estimator_list=["lgbm"],
           cv_instance_threshold=0)
    return am, X, y


class TestScore:
    def test_default_metric(self, fitted):
        am, X, y = fitted
        err = am.score(X, y)  # 1 - auc on training data
        assert 0 <= err < 0.3

    def test_explicit_metric(self, fitted):
        am, X, y = fitted
        acc_err = am.score(X, y, metric="accuracy")
        assert 0 <= acc_err < 0.3

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            AutoML().score(np.zeros((2, 2)), np.zeros(2))


class TestPicklability:
    """Models are pure Python/NumPy, so the standard deployment path
    (pickle the fitted model, serve elsewhere) must work."""

    @pytest.mark.parametrize("cls", [
        LGBMLikeClassifier, RandomForestClassifier, LogisticRegressionL1,
        CatBoostLikeClassifier,
    ])
    def test_classifier_roundtrip(self, cls):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((200, 4))
        y = (X[:, 0] > 0).astype(int)
        kw = {"tree_num": 5} if "tree_num" in cls().get_params() else {}
        m = cls(**kw).fit(X, y)
        m2 = pickle.loads(pickle.dumps(m))
        assert np.allclose(m.predict_proba(X), m2.predict_proba(X))

    def test_regressor_roundtrip(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((200, 4))
        y = X @ rng.standard_normal(4)
        m = LGBMLikeRegressor(tree_num=5, leaf_num=4).fit(X, y)
        m2 = pickle.loads(pickle.dumps(m))
        assert np.allclose(m.predict(X), m2.predict(X))

    def test_automl_model_roundtrip(self, fitted):
        am, X, _ = fitted
        m2 = pickle.loads(pickle.dumps(am.model))
        assert np.allclose(am.predict_proba(X), m2.predict_proba(X))
