"""Tests for the §4.2 ECI₂ refinement (fitted cost-vs-sample-size model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AutoML
from repro.core.eci import CostModel, LearnerCostState, LearnerProposer


class TestCostModel:
    def test_defaults_to_linear_with_few_points(self):
        m = CostModel()
        m.observe(100, 0.1)
        m.observe(200, 0.4)
        assert m.exponent == 1.0
        assert m.growth_factor(2.0) == 2.0

    def test_recovers_linear_exponent(self):
        m = CostModel()
        for s in (100, 200, 400, 800, 1600):
            m.observe(s, 1e-4 * s)
        assert m.exponent == pytest.approx(1.0, abs=0.01)

    def test_recovers_quadratic_exponent(self):
        m = CostModel()
        for s in (100, 200, 400, 800):
            m.observe(s, 1e-8 * s**2)
        assert m.exponent == pytest.approx(2.0, abs=0.01)
        assert m.growth_factor(2.0) == pytest.approx(4.0, rel=0.05)

    def test_sublinear_cost_reduces_eci2(self):
        """A learner whose cost barely grows with s should sample-up
        eagerly: growth_factor < c."""
        m = CostModel()
        for s in (100, 400, 1600, 6400):
            m.observe(s, 0.01 * s**0.3)
        assert m.exponent == pytest.approx(0.3, abs=0.05)
        assert m.growth_factor(2.0) < 2.0

    def test_exponent_clipped(self):
        m = CostModel()
        for i, s in enumerate((100, 200, 400, 800)):
            m.observe(s, 10.0 ** (3 * i))  # absurd slope ~ 10
        assert m.exponent == 2.0  # clipped at the upper bound
        down = CostModel()
        for i, s in enumerate((100, 200, 400, 800)):
            down.observe(s, 10.0 ** (-3 * i))
        assert down.exponent == 0.25  # clipped at the lower bound

    def test_identical_sizes_fall_back_to_linear(self):
        m = CostModel()
        for _ in range(10):
            m.observe(500, np.random.default_rng(0).random() + 0.1)
        assert m.exponent == 1.0

    def test_ignores_nonpositive_observations(self):
        m = CostModel()
        m.observe(0, 1.0)
        m.observe(100, 0.0)
        m.observe(100, -1.0)
        assert m.n_observations == 0

    @settings(max_examples=25, deadline=None)
    @given(alpha=st.floats(0.3, 1.9), scale=st.floats(1e-6, 1.0),
           seed=st.integers(0, 100))
    def test_property_recovers_true_exponent(self, alpha, scale, seed):
        r = np.random.default_rng(seed)
        m = CostModel()
        for s in (128, 256, 512, 1024, 2048, 4096):
            noise = np.exp(r.normal(0.0, 0.02))
            m.observe(s, scale * s**alpha * noise)
        assert m.exponent == pytest.approx(alpha, abs=0.15)


class TestStateIntegration:
    def test_eci2_uses_model(self):
        st_lin = LearnerCostState("l")
        st_fit = LearnerCostState("l", CostModel())
        for s, cost in ((100, 0.1), (200, 0.14), (400, 0.2), (800, 0.28)):
            st_lin.update(0.5, cost, sample_size=s)
            st_fit.update(0.5, cost, sample_size=s)
        # cost ~ s**0.5: the fitted ECI2 is below the linear 2x assumption
        assert st_fit.eci2(2.0) < st_lin.eci2(2.0)

    def test_proposer_flag_wires_models(self):
        rng = np.random.default_rng(0)
        on = LearnerProposer(["lgbm", "rf"], rng, fitted_cost_model=True)
        off = LearnerProposer(["lgbm", "rf"], rng)
        assert all(s.cost_model is not None for s in on.states.values())
        assert all(s.cost_model is None for s in off.states.values())
        on.record("lgbm", 0.5, 0.1, sample_size=100)
        assert on.states["lgbm"].cost_model.n_observations == 1

    def test_automl_accepts_flag(self):
        r = np.random.default_rng(2)
        X = r.standard_normal((300, 4))
        y = (X[:, 0] > 0).astype(int)
        automl = AutoML(init_sample_size=50)
        automl.fit(X, y, task="classification", time_budget=1.5,
                   max_iters=15, estimator_list=["lgbm"],
                   fitted_cost_model=True)
        assert automl.best_estimator == "lgbm"
        # the sample-up schedule still executes under the fitted model
        sizes = {t.sample_size for t in automl.search_result.trials}
        assert min(sizes) == 50
