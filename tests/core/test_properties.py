"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eci import LearnerCostState, eci
from repro.core.flow2 import FLOW2
from repro.core.space import (
    LogRandInt,
    LogUniform,
    RandInt,
    SearchSpace,
    Uniform,
    lgbm_space,
    xgboost_space,
)


class TestFlow2Invariants:
    @given(st.integers(0, 10_000), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_proposals_always_within_domains(self, seed, d):
        space = SearchSpace(
            {f"x{i}": LogUniform(0.01, 100.0, init=0.01) for i in range(d)}
        )
        f = FLOW2(space, seed=seed)
        rng = np.random.default_rng(seed)
        for _ in range(30):
            cfg = f.propose()
            for v in cfg.values():
                assert 0.01 - 1e-9 <= v <= 100.0 + 1e-9
            f.tell(float(rng.random()))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_best_error_never_increases(self, seed):
        space = SearchSpace({"a": Uniform(0, 1, init=0.5), "b": Uniform(0, 1)})
        f = FLOW2(space, seed=seed)
        rng = np.random.default_rng(seed)
        prev = np.inf
        for _ in range(25):
            f.propose()
            f.tell(float(rng.random()))
            assert f.best_error <= prev + 1e-15
            prev = f.best_error

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_step_never_exceeds_upper_bound(self, seed):
        space = SearchSpace({f"x{i}": Uniform(0, 1) for i in range(4)})
        f = FLOW2(space, seed=seed)
        rng = np.random.default_rng(seed)
        for _ in range(40):
            f.propose()
            f.tell(float(rng.random()))
            assert f.step <= np.sqrt(4) + 1e-12


class TestECIInvariants:
    @given(
        st.lists(
            st.tuples(st.floats(0.01, 1.0), st.floats(0.001, 10.0)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_eci_always_positive(self, trials):
        state = LearnerCostState("l")
        for error, cost in trials:
            state.update(error, cost)
        v = eci(state, global_best_error=0.005, c=2.0)
        assert v > 0
        assert np.isfinite(v)

    @given(st.floats(0.0, 0.4))
    @settings(max_examples=30, deadline=None)
    def test_eci_monotone_in_gap(self, gap):
        """A learner further behind the global best has larger (or equal) ECI."""
        state = LearnerCostState("l")
        state.update(0.5, 1.0)
        state.update(0.45, 2.0)
        near = eci(state, global_best_error=0.45 - gap / 2, c=2.0)
        far = eci(state, global_best_error=0.45 - gap, c=2.0)
        assert far >= near - 1e-12

    @given(st.integers(1, 12))
    @settings(max_examples=12, deadline=None)
    def test_k_invariants_hold(self, n):
        """K2 <= K1 <= K0 after any update sequence."""
        rng = np.random.default_rng(n)
        state = LearnerCostState("l")
        for _ in range(n * 3):
            state.update(float(rng.random()), float(rng.random() + 0.01))
            assert state.K2 <= state.K1 <= state.K0 + 1e-12


class TestSpaceInvariants:
    @given(st.integers(5, 10**7))
    @settings(max_examples=25, deadline=None)
    def test_table5_caps_follow_data_size(self, n):
        for builder in (lgbm_space, xgboost_space):
            sp = builder(n, "binary")
            assert sp.domains["tree_num"].hi == min(32768, n)
            assert sp.domains["leaf_num"].hi == min(32768, n)

    @given(st.integers(0, 5000), st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_unit_roundtrip_idempotent(self, seed, u1, u2):
        """from_unit . to_unit . from_unit == from_unit (projection)."""
        rng = np.random.default_rng(seed)
        sp = SearchSpace(
            {
                "a": LogUniform(1e-3, 1e3),
                "b": RandInt(1, 100),
                "c": LogRandInt(4, 2048),
            }
        )
        cfg = sp.from_unit(np.array([u1, u2, (u1 + u2) / 2]))
        cfg2 = sp.from_unit(sp.to_unit(cfg))
        assert cfg2["b"] == cfg["b"]
        assert cfg2["c"] == cfg["c"]
        assert cfg2["a"] == pytest.approx(cfg["a"], rel=1e-9)
