"""Golden equivalence of the shared binned-data plane and native kernels.

Bit-for-bit guarantees, for every registered learner x task (incl.
forecast) x resampling under fixed seeds, each proven under **both**
kernel implementations (``REPRO_NATIVE=1`` compiled C and ``=0`` pure
numpy — the golden matrix):

1. the default trial path reproduces ``golden_trial_errors.json`` (the
   ongoing pin, regenerated only on *intended* semantics changes);
2. with the histogram sibling-subtraction trick held off, the plane
   path reproduces ``golden_trial_errors_prerefactor.json`` — errors
   captured on the commit *before* the plane refactor landed and never
   regenerated, proving plane + kernels are pure reuse;
3. plane-on and plane-off agree with each other on every case, always.

No fixture was re-pinned for the native kernels: the same hex floats
must come out with the C extension on and off.

Plus unit coverage of the plane's cache behaviour and the bounded
weakly-keyed ``_accepted_extras`` cache.
"""

import gc
import json
import weakref
from pathlib import Path

import numpy as np
import pytest

import repro.learners.tree as tree_mod
from repro.core import evaluate as evaluate_mod
from repro.core.evaluate import evaluate_config
from repro.data import plane_enabled, plane_for, set_plane_enabled
from repro.data.binned import BinnedDataset
from repro.data.dataset import Dataset
from repro.learners import Binner, LGBMLikeClassifier
from repro.learners.histogram import BinnedMatrix
from repro.metrics import get_metric
from repro.native import native_available, set_native_enabled

from .capture_golden_trials import golden_cases

HERE = Path(__file__).parent
GOLDEN = json.loads((HERE / "golden_trial_errors.json").read_text())
PRE_REFACTOR = json.loads(
    (HERE / "golden_trial_errors_prerefactor.json").read_text()
)


@pytest.fixture
def no_subtraction(monkeypatch):
    """Force scratch histogram builds (the pre-refactor split finder)."""
    monkeypatch.setattr(tree_mod, "_HIST_CACHE_BYTES", 0)


@pytest.fixture(params=["native", "numpy"])
def native_mode(request):
    """Run the depending test once per kernel implementation."""
    native = request.param == "native"
    if native and not native_available():
        pytest.skip("native kernels unavailable (no C compiler)")
    prev = set_native_enabled(native)
    yield request.param
    set_native_enabled(prev)


def run_all(plane: bool) -> dict:
    prev = set_plane_enabled(plane)
    try:
        return {key: float(run().error).hex() for key, run in golden_cases()}
    finally:
        set_plane_enabled(prev)


class TestGoldenEquivalence:
    def test_fixtures_cover_every_learner_task_combination(self):
        from repro.core.registry import all_learners

        keys = set(GOLDEN)
        assert keys == set(PRE_REFACTOR)
        for name, spec in all_learners().items():
            for task in ("binary", "multiclass", "regression"):
                if spec.supports(task):
                    assert f"{name}|{task}|cv" in keys
                    assert f"{name}|{task}|holdout" in keys
            if spec.supports("forecast"):
                assert f"{name}|forecast|temporal" in keys

    def test_default_path_matches_pinned_goldens(self, native_mode):
        assert run_all(plane=True) == GOLDEN

    def test_plane_off_matches_plane_on(self, native_mode):
        assert run_all(plane=False) == run_all(plane=True)

    def test_tracing_does_not_perturb_goldens(self, native_mode):
        """Span tracing must be timing-only: the full golden matrix is
        bit-identical with tracing enabled, plane on and off."""
        from repro.obs.trace import clear_spans, set_tracing

        prev = set_tracing(True)
        try:
            assert run_all(plane=True) == GOLDEN
            assert run_all(plane=False) == GOLDEN
        finally:
            set_tracing(prev)
            clear_spans()

    def test_plane_reproduces_prerefactor_errors_bitwise(
        self, no_subtraction, native_mode
    ):
        """With the (separately documented) sibling-subtraction tie
        reordering held off, the plane path is bit-for-bit identical to
        the pre-refactor code for every learner x task x resampling —
        under either kernel implementation."""
        assert run_all(plane=True) == PRE_REFACTOR

    def test_legacy_path_still_reproduces_prerefactor_errors(
        self, no_subtraction, native_mode
    ):
        assert run_all(plane=False) == PRE_REFACTOR


class TestPlaneCaching:
    def make_data(self, n=240, d=6, seed=3):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((n, d))
        y = (X[:, 0] - X[:, 1] > 0).astype(np.int64)
        return Dataset("plane-t", X, y, "binary").shuffled(seed)

    def test_codes_match_in_learner_binning_bitwise(self):
        data = self.make_data()
        plane = BinnedDataset(data)
        rows = np.arange(100)
        codes, n_bins, binner = plane.binned_for(rows, ("rows", 100), 64)
        ref = Binner(max_bins=64).fit_transform(data.X[rows])
        np.testing.assert_array_equal(codes, ref)
        assert not codes.flags.writeable

    def test_split_and_code_reuse_across_trials(self):
        data = self.make_data()
        metric = get_metric("log_loss")
        labels = np.unique(data.y)
        for lr in (0.05, 0.1, 0.2):
            out = evaluate_config(
                data, LGBMLikeClassifier, {"tree_num": 4, "learning_rate": lr},
                sample_size=200, resampling="cv", metric=metric, n_splits=3,
                seed=1, labels=labels, use_binned_plane=True,
            )
            assert np.isfinite(out.error)
        stats = plane_for(data).stats()
        assert stats["splits"] == 1 and stats["split_hits"] >= 2
        assert stats["binned"] == 3  # one per fold
        assert stats["binned_hits"] >= 6  # reused by the later trials
        assert stats["transform_hits"] >= 6

    def test_memoized_splits_are_identical_objects(self):
        plane = BinnedDataset(self.make_data())
        a = plane.holdout_split(0.2, 7)
        b = plane.holdout_split(0.2, 7)
        assert a[0] is b[0] and a[1] is b[1]
        assert not a[0].flags.writeable
        assert plane.kfold_split(200, 3, 7)[0][0] is \
            plane.kfold_split(200, 3, 7)[0][0]

    def test_plane_for_cached_on_dataset_and_freed_with_it(self):
        data = self.make_data()
        plane = plane_for(data)
        assert plane_for(data) is plane
        ref = weakref.ref(plane)
        del plane, data
        gc.collect()  # data <-> plane is a cycle; nothing else pins it
        assert ref() is None

    def test_dataset_stays_picklable_after_plane_attach(self):
        import pickle

        data = self.make_data()
        plane_for(data).holdout_split(0.2, 0)  # plane now attached
        clone = pickle.loads(pickle.dumps(data))
        np.testing.assert_array_equal(clone.X, data.X)
        assert not hasattr(clone, "_binned_plane")  # rebuilt per process

    def test_in_place_mutation_evicts_stale_plane(self):
        data = self.make_data()
        plane = plane_for(data)
        plane.holdout_split(0.2, 0)
        data.X[:] = data.X + 1.0  # in-place transform between fits
        fresh = plane_for(data)
        assert fresh is not plane  # stale codes/splits are not reused

    def test_code_cache_is_byte_budgeted(self):
        data = self.make_data()
        plane = BinnedDataset(data)
        plane._binned.max_bytes = 1  # force the byte bound to bind
        for mb in (8, 16, 32):
            plane.binned_for(np.arange(100), ("rows", 100), mb)
        assert len(plane._binned) == 1  # evicted down to the floor

    def test_toggle_round_trip(self):
        prev = set_plane_enabled(False)
        try:
            assert plane_enabled() is False
            assert set_plane_enabled(True) is False
            assert plane_enabled() is True
        finally:
            set_plane_enabled(prev)

    def test_binned_matrix_is_array_like(self):
        data = self.make_data()
        plane = BinnedDataset(data)
        view = plane.view(np.arange(50), ("head", 50))
        assert view.shape == (50, data.d)
        assert len(view) == 50
        np.testing.assert_array_equal(np.asarray(view), data.X[:50])

    def test_foreign_binner_transform_bypasses_cache(self):
        data = self.make_data()
        plane = BinnedDataset(data)
        foreign = Binner(max_bins=32).fit(data.X[:100])
        rows = np.arange(100, 150)
        codes = plane.transform_with(foreign, rows, ("tail", 50))
        np.testing.assert_array_equal(codes, foreign.transform(data.X[rows]))
        assert plane.stats()["transforms"] == 0


class TestAcceptedExtrasCache:
    def test_cache_is_bounded(self):
        for i in range(evaluate_mod._ACCEPTED_EXTRAS_LIMIT + 50):
            cls = type(f"Dyn{i}", (), {"__init__": lambda self, seed=0: None})
            evaluate_mod._accepted_extras(cls)
        assert (
            len(evaluate_mod._accepted_extras_cache)
            <= evaluate_mod._ACCEPTED_EXTRAS_LIMIT
        )

    def test_entries_are_weak_and_self_evicting(self):
        cls = type("Transient", (), {"__init__": lambda self: None})
        assert evaluate_mod._accepted_extras(cls) == frozenset()
        ref = weakref.ref(cls)
        key = id(cls)
        assert key in evaluate_mod._accepted_extras_cache
        del cls
        gc.collect()
        assert ref() is None  # the cache held no strong reference
        assert key not in evaluate_mod._accepted_extras_cache

    def test_results_match_signature_inspection(self):
        class Both:
            def __init__(self, seed=0, train_time_limit=None):
                pass

        class Neither:
            def __init__(self):
                pass

        class Kwargs:
            def __init__(self, **kw):
                pass

        assert evaluate_mod._accepted_extras(Both) == frozenset(
            {"seed", "train_time_limit"}
        )
        assert evaluate_mod._accepted_extras(Neither) == frozenset()
        assert evaluate_mod._accepted_extras(Kwargs) == frozenset(
            {"seed", "train_time_limit"}
        )


class TestBinnedMatrixLearnerPath:
    def test_prediction_path_equivalence(self):
        """A model fit on a BinnedMatrix predicts raw arrays identically
        to a model fit on the raw slice (binner edges are shared)."""
        rng = np.random.default_rng(5)
        X = rng.standard_normal((200, 5))
        y = (X[:, 0] > 0).astype(np.int64)
        data = Dataset("bm", X, y, "binary")
        plane = BinnedDataset(data)
        rows = np.arange(160)
        view = plane.view(rows, ("tr", 160))
        m1 = LGBMLikeClassifier(tree_num=5, leaf_num=8, seed=0).fit(view, y[rows])
        m2 = LGBMLikeClassifier(tree_num=5, leaf_num=8, seed=0).fit(X[rows], y[rows])
        np.testing.assert_array_equal(
            m1.predict_proba(X[160:]), m2.predict_proba(X[160:])
        )
