"""The temporal-CV leakage invariant, stated as a law.

For *any* feasible (series length, horizon, fold count, min_train),
every rolling-origin fold must train strictly on the past
(``max(train) < min(test)``) and the fold validation blocks must tile
the series tail exactly.  Hypothesis searches the parameter space for a
counterexample instead of trusting a handful of examples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resampling import TemporalSplitter

feasible = st.tuples(
    st.integers(min_value=1, max_value=8),    # n_splits
    st.integers(min_value=1, max_value=20),   # horizon
    st.integers(min_value=1, max_value=30),   # min_train
    st.integers(min_value=0, max_value=200),  # slack rows beyond minimum
).map(lambda t: (t[0] * t[1] + t[2] + t[3], t[0], t[1], t[2]))


@settings(max_examples=200, deadline=None)
@given(params=feasible)
def test_no_fold_ever_trains_on_the_future(params):
    n, k, h, min_train = params
    folds = TemporalSplitter(n_splits=k, horizon=h, min_train=min_train).split(n)
    assert len(folds) == k
    for train, test in folds:
        assert train.size >= min_train
        assert test.size == h
        # the leakage invariant: every training index precedes every
        # validation index
        assert train.max() < test.min()
        # train is the full past — expanding window, no gaps
        assert np.array_equal(train, np.arange(test.min()))


@settings(max_examples=200, deadline=None)
@given(params=feasible)
def test_folds_cover_the_tail_exactly(params):
    n, k, h, min_train = params
    folds = TemporalSplitter(n_splits=k, horizon=h, min_train=min_train).split(n)
    covered = np.concatenate([test for _, test in folds])
    # consecutive blocks tiling the last k*h indices, ending at n-1
    assert np.array_equal(covered, np.arange(n - k * h, n))
    assert covered[-1] == n - 1


@settings(max_examples=100, deadline=None)
@given(
    n_splits=st.integers(min_value=1, max_value=8),
    horizon=st.integers(min_value=1, max_value=20),
    min_train=st.integers(min_value=1, max_value=30),
    deficit=st.integers(min_value=1, max_value=50),
)
def test_infeasible_lengths_raise(n_splits, horizon, min_train, deficit):
    n = n_splits * horizon + min_train - deficit
    splitter = TemporalSplitter(n_splits=n_splits, horizon=horizon,
                                min_train=min_train)
    with pytest.raises(ValueError, match="rolling-origin"):
        splitter.split(n)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            TemporalSplitter(n_splits=0)
        with pytest.raises(ValueError):
            TemporalSplitter(horizon=0)
        with pytest.raises(ValueError):
            TemporalSplitter(min_train=0)

    def test_known_small_example(self):
        folds = TemporalSplitter(n_splits=2, horizon=3, min_train=2).split(10)
        (tr0, te0), (tr1, te1) = folds
        assert tr0.tolist() == [0, 1, 2, 3] and te0.tolist() == [4, 5, 6]
        assert tr1.tolist() == [0, 1, 2, 3, 4, 5, 6] \
            and te1.tolist() == [7, 8, 9]
