"""Tests for trial-log serialisation."""

import numpy as np
import pytest

from repro.core.controller import SearchResult, TrialRecord
from repro.core.serialize import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
    trial_from_dict,
    trial_to_dict,
)


def _trial(error=0.25):
    return TrialRecord(
        iteration=3, automl_time=1.5, learner="lgbm",
        config={"tree_num": np.int64(10), "learning_rate": np.float64(0.1),
                "criterion": "gini"},
        sample_size=200, resampling="cv", error=error, cost=0.33,
        kind="sample_up", improved_global=True,
        eci_snapshot={"lgbm": 0.5, "rf": np.inf},
    )


def _result():
    return SearchResult(
        best_learner="lgbm", best_config={"tree_num": 10},
        best_sample_size=200, best_error=0.25, resampling="cv",
        trials=[_trial(), _trial(np.inf)], wall_time=2.0,
    )


class TestTrialRoundtrip:
    def test_roundtrip_preserves_fields(self):
        t = _trial()
        back = trial_from_dict(trial_to_dict(t))
        assert back.learner == t.learner
        assert back.config["tree_num"] == 10
        assert back.config["criterion"] == "gini"
        assert back.error == t.error
        assert back.kind == "sample_up"
        assert back.improved_global

    def test_numpy_scalars_become_python(self):
        d = trial_to_dict(_trial())
        assert type(d["config"]["tree_num"]) is int
        assert type(d["config"]["learning_rate"]) is float

    def test_infinity_survives_json(self):
        import json

        t = _trial(error=np.inf)
        d = json.loads(json.dumps(trial_to_dict(t)))
        back = trial_from_dict(d)
        assert back.error == np.inf
        assert back.eci_snapshot["rf"] == np.inf


class TestResultRoundtrip:
    def test_roundtrip(self):
        r = _result()
        back = result_from_dict(result_to_dict(r))
        assert back.best_learner == "lgbm"
        assert back.n_trials == 2
        assert back.best_error == 0.25
        assert back.trials[1].error == np.inf

    def test_none_best_config(self):
        r = SearchResult(
            best_learner=None, best_config=None, best_sample_size=0,
            best_error=np.inf, resampling="holdout", trials=[], wall_time=0.1,
        )
        back = result_from_dict(result_to_dict(r))
        assert back.best_learner is None
        assert back.best_config is None

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "result.json")
        save_result(_result(), path)
        back = load_result(path)
        assert back.best_error == 0.25
        assert back.trials[0].eci_snapshot["lgbm"] == pytest.approx(0.5)
