"""Tests for the FLOW2 randomised direct search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow2 import FLOW2
from repro.core.space import LogRandInt, LogUniform, RandInt, SearchSpace, Uniform


def _space(d=3):
    return SearchSpace({f"x{i}": Uniform(0.0, 1.0, init=0.1) for i in range(d)})


def _sphere_error(config, target=0.7):
    return sum((v - target) ** 2 for v in config.values())


class TestFLOW2Mechanics:
    def test_first_proposal_is_init(self):
        sp = _space()
        f = FLOW2(sp, seed=0)
        cfg = f.propose()
        assert all(v == pytest.approx(0.1) for v in cfg.values())

    def test_improvement_moves_incumbent(self):
        sp = _space(2)
        f = FLOW2(sp, seed=1)
        f.propose()
        f.tell(1.0)
        before = f.best_unit.copy()
        cfg = f.propose()
        f.tell(0.5)  # improvement
        assert f.best_error == 0.5
        assert not np.allclose(f.best_unit, before)
        assert f.best_config == pytest.approx(cfg)

    def test_opposite_direction_tried_on_failure(self):
        # init at the centre so neither proposal is clipped at a boundary
        sp = SearchSpace({f"x{i}": Uniform(0.0, 1.0, init=0.5) for i in range(2)})
        f = FLOW2(sp, seed=2)
        f.propose()
        f.tell(1.0)
        c1 = sp.to_unit(f.propose())
        f.tell(2.0)  # fail
        c2 = sp.to_unit(f.propose())
        # c2 is the mirror of c1 about the incumbent
        mid = f.best_unit
        expected = np.clip(2 * mid - c1, 0, 1)
        assert np.allclose(c2, expected, atol=1e-9)

    def test_step_decreases_after_no_improvement(self):
        sp = _space(1)  # threshold = 2^0 = 1 -> decays quickly
        f = FLOW2(sp, seed=3)
        f.propose()
        f.tell(1.0)
        s0 = f.step
        for _ in range(8):
            f.propose()
            f.tell(2.0)  # never improve
        assert f.step < s0

    def test_no_adaptation_when_adapt_false(self):
        sp = _space(1)
        f = FLOW2(sp, seed=4)
        f.propose()
        f.tell(1.0, adapt=False)
        s0 = f.step
        for _ in range(20):
            f.propose()
            f.tell(2.0, adapt=False)
        assert f.step == s0

    def test_convergence_flag(self):
        sp = _space(1)
        f = FLOW2(sp, seed=5, step_lower_bound=0.5)
        f.propose()
        f.tell(1.0)
        for _ in range(60):
            if f.converged:
                break
            f.propose()
            f.tell(2.0)
        assert f.converged

    def test_restart_resets_state(self):
        sp = _space(2)
        f = FLOW2(sp, seed=6)
        f.propose()
        f.tell(0.3)
        f.restart()
        assert f.n_restarts == 1
        assert not np.isfinite(f.best_error)
        assert not f.converged

    def test_reset_baseline(self):
        sp = _space(2)
        f = FLOW2(sp, seed=7)
        f.propose()
        f.tell(0.4)
        f.reset_baseline(0.9)
        assert f.best_error == 0.9

    def test_tell_before_propose_state(self):
        sp = _space(2)
        f = FLOW2(sp, seed=8)
        with pytest.raises(AttributeError):
            f.tell(1.0)


#: randomized win/lose feedback: each element is the error fed back for
#: one proposal — decreasing values register as wins, large ones as losses
_feedback = st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1,
                     max_size=60)


class TestFLOW2StepProperties:
    """Step-size invariants under arbitrary win/lose sequences."""

    def _drive(self, f, errors):
        """Feed a feedback sequence, recording (step_before, won, step_after)."""
        transitions = []
        for err in errors:
            f.propose()
            before = f.step
            won = np.isfinite(f.best_error) and err < f.best_error
            f.tell(err)
            transitions.append((before, won, f.step))
        return transitions

    @given(st.integers(0, 10_000), _feedback)
    @settings(max_examples=40, deadline=None)
    def test_step_never_below_lower_bound(self, seed, errors):
        f = FLOW2(_space(3), seed=seed)
        floor = min(f.step, f.step_lower_bound)  # init step may start lower
        for before, _, after in self._drive(f, errors):
            assert after >= floor - 1e-15

    @given(st.integers(0, 10_000), _feedback)
    @settings(max_examples=40, deadline=None)
    def test_step_doubles_only_after_a_win(self, seed, errors):
        """The step may only ever grow on a winning comparison, by exactly
        a (capped) doubling; losses never increase it."""
        f = FLOW2(_space(2), seed=seed)
        for before, won, after in self._drive(f, errors):
            if after > before + 1e-15:
                assert won, "step grew on a non-winning trial"
                assert after == pytest.approx(min(2 * before, np.sqrt(f.dim)))
            if not won:
                assert after <= before + 1e-15

    @given(st.integers(0, 10_000), _feedback)
    @settings(max_examples=40, deadline=None)
    def test_no_growth_when_adaptation_frozen(self, seed, errors):
        f = FLOW2(_space(2), seed=seed)
        s0 = f.step
        for err in errors:
            f.propose()
            f.tell(err, adapt=False)
            assert f.step == s0

    @given(st.integers(0, 10_000), _feedback)
    @settings(max_examples=40, deadline=None)
    def test_proposals_stay_inside_the_box(self, seed, errors):
        """Every proposed config lies inside the search-space box, for
        continuous, log, and integer domains alike."""
        sp = SearchSpace(
            {
                "u": Uniform(-2.0, 3.0, init=0.0),
                "lg": LogUniform(1e-3, 1e2, init=1e-3),
                "i": RandInt(1, 9, init=1),
                "li": LogRandInt(4, 512, init=4),
            }
        )
        f = FLOW2(sp, seed=seed)
        for err in errors:
            cfg = f.propose()
            assert -2.0 - 1e-9 <= cfg["u"] <= 3.0 + 1e-9
            assert 1e-3 * (1 - 1e-9) <= cfg["lg"] <= 1e2 * (1 + 1e-9)
            assert 1 <= cfg["i"] <= 9 and isinstance(cfg["i"], int)
            assert 4 <= cfg["li"] <= 512 and isinstance(cfg["li"], int)
            f.tell(err)


class TestFLOW2Optimisation:
    @pytest.mark.parametrize("d", [1, 2, 5])
    def test_converges_toward_optimum(self, d):
        sp = _space(d)
        f = FLOW2(sp, seed=42)
        best = np.inf
        for _ in range(300):
            cfg = f.propose()
            err = _sphere_error(cfg)
            best = min(best, err)
            f.tell(err)
        # init error is d*(0.6^2); require a big improvement
        assert best < 0.25 * d * 0.36

    def test_log_domain_progress(self):
        """Optimising a log-scaled hyperparameter (like learning_rate)."""
        sp = SearchSpace({"lr": LogUniform(1e-4, 1.0, init=1e-4)})
        f = FLOW2(sp, seed=0)
        best = np.inf
        for _ in range(120):
            cfg = f.propose()
            err = abs(np.log10(cfg["lr"]) - (-2.0))  # optimum at 0.01
            best = min(best, err)
            f.tell(err)
        assert best < 0.5

    def test_cost_bounded_start(self):
        """The first proposal is the low-cost init; early proposals stay in
        its neighbourhood (bounded trial cost, Property 4)."""
        sp = SearchSpace(
            {
                "tree_num": LogUniform(4, 32768, init=4),
                "leaf_num": LogUniform(4, 32768, init=4),
            }
        )
        f = FLOW2(sp, seed=9)
        cfg0 = f.propose()
        assert cfg0["tree_num"] == pytest.approx(4)
        f.tell(0.5)
        cfg1 = f.propose()
        # one step of size ~0.1*sqrt(2) in log space: strictly bounded blowup
        assert cfg1["tree_num"] <= 4 * (32768 / 4) ** 0.25
