"""End-to-end tests of the AutoML public API (small budgets)."""

import numpy as np
import pytest

from repro import AutoML
from repro.core.automl import infer_task
from repro.core.space import LogUniform, SearchSpace
from repro.learners import LGBMLikeClassifier
from repro.metrics import roc_auc_score

BUDGET = 1.5  # seconds; enough for dozens of trials at this scale
FIT_KW = dict(
    time_budget=BUDGET,
    cv_instance_threshold=2000,
    cv_rate_threshold=1e12,
)


class TestInferTask:
    def test_explicit_passthrough(self):
        assert infer_task(np.array([0, 1]), "binary") == "binary"
        assert infer_task(np.array([0.5]), "regression") == "regression"

    def test_classification_resolution(self):
        assert infer_task(np.array([0, 1, 0]), "classification") == "binary"
        assert infer_task(np.array([0, 1, 2]), "classification") == "multiclass"

    def test_auto_detects_regression(self):
        y = np.random.default_rng(0).standard_normal(100)
        assert infer_task(y, None) == "regression"

    def test_auto_detects_strings_as_classification(self):
        assert infer_task(np.array(["a", "b", "a"]), None) == "binary"

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            infer_task(np.array([0, 1]), "ranking")


class TestInferTaskEdgeCases:
    def test_string_labels_two_vs_three_classes(self):
        two = np.array(["cat", "dog"] * 10)
        three = np.array(["cat", "dog", "bird"] * 10)
        assert infer_task(two, None) == "binary"
        assert infer_task(three, None) == "multiclass"
        # explicit task="classification" resolves the same way
        assert infer_task(two, "classification") == "binary"
        assert infer_task(three, "classification") == "multiclass"

    def test_integer_floats_at_unique_threshold(self):
        # 20 unique integer-valued floats (n small, so the threshold is
        # exactly 20): classification
        y20 = np.array([float(i) for i in range(20)] * 5)
        assert infer_task(y20, None) == "multiclass"
        # 21 unique integer-valued floats with 0.05*n < 21: regression
        y21 = np.array([float(i) for i in range(21)] * 5)
        assert infer_task(y21, None) == "regression"
        # ...but with enough rows the 5% rule raises the threshold above
        # 21 uniques, flipping the same values back to classification
        y21_big = np.array([float(i) for i in range(21)] * 40)
        assert infer_task(y21_big, None) == "multiclass"

    def test_non_integer_floats_are_regression_even_if_few(self):
        y = np.array([0.5, 1.5, 2.5] * 30)
        assert infer_task(y, None) == "regression"

    def test_explicit_classification_on_multiclass_integers(self):
        y = np.array([0, 1, 2, 3] * 25)
        assert infer_task(y, "classification") == "multiclass"
        # explicit classification overrides what auto would call it
        y_many = np.arange(60).astype(np.int64)
        assert infer_task(y_many, None) == "regression"
        assert infer_task(y_many, "classification") == "multiclass"

    def test_boolean_labels_are_binary(self):
        y = np.array([True, False] * 15)
        assert infer_task(y, None) == "binary"

    def test_datetime_labels_raise_clear_error(self):
        # previously misclassified (or crashed deep inside np.round);
        # a timestamp target must produce an actionable message instead
        y = np.array(["2021-01-01", "2021-01-02"] * 5, dtype="datetime64[D]")
        with pytest.raises(ValueError, match="datetime-like"):
            infer_task(y, None)

    def test_timedelta_labels_raise_clear_error(self):
        y = np.array([1, 2, 3] * 5, dtype="timedelta64[s]")
        with pytest.raises(ValueError, match="datetime-like"):
            infer_task(y, None)

    def test_object_dtype_labels_raise_clear_error(self):
        # object arrays (mixed python values) used to fall through to
        # "multiclass" via the OUSb branch — ambiguous, now an error
        y = np.array([1, "a", 2.5, None] * 5, dtype=object)
        with pytest.raises(ValueError, match="object-dtype"):
            infer_task(y, None)

    def test_forecast_passthrough_and_validation(self):
        assert infer_task(np.arange(30, dtype=np.float64), "forecast") \
            == "forecast"
        with pytest.raises(ValueError, match="numeric series"):
            infer_task(np.array(["a", "b"] * 5), "forecast")


@pytest.fixture(scope="module")
def clf_problem():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((1200, 8))
    w = rng.standard_normal(8)
    y = ((X @ w + 0.4 * rng.standard_normal(1200)) > 0).astype(int)
    return X[:900], y[:900], X[900:], y[900:]


@pytest.fixture(scope="module")
def fitted(clf_problem):
    Xtr, ytr, _, _ = clf_problem
    am = AutoML(seed=1, init_sample_size=200)
    am.fit(Xtr, ytr, task="classification", **FIT_KW)
    return am


class TestFitPredict:
    def test_beats_chance(self, fitted, clf_problem):
        _, _, Xte, yte = clf_problem
        auc = roc_auc_score(yte, fitted.predict_proba(Xte)[:, 1])
        assert auc > 0.8

    def test_predict_labels(self, fitted, clf_problem):
        _, _, Xte, _ = clf_problem
        pred = fitted.predict(Xte)
        assert set(np.unique(pred)) <= {0, 1}

    def test_best_attributes(self, fitted):
        assert fitted.best_estimator in (
            "lgbm", "xgboost", "extra_tree", "rf", "catboost", "lrl1"
        )
        assert 0 <= fitted.best_loss < 0.5
        assert isinstance(fitted.best_config, dict)

    def test_trial_log_populated(self, fitted):
        res = fitted.search_result
        assert res.n_trials >= 5
        # trial costs were measured
        assert all(t.cost > 0 for t in res.trials)
        # automl_time is monotone
        times = [t.automl_time for t in res.trials]
        assert times == sorted(times)

    def test_budget_respected_loosely(self, fitted):
        # search must stop near the budget (retrain excluded)
        assert fitted.search_result.wall_time < BUDGET * 2 + 1

    def test_multiple_learners_tried(self, fitted):
        tried = {t.learner for t in fitted.search_result.trials}
        assert "lgbm" in tried  # fastest learner seeds the search
        assert len(tried) >= 2


class TestRegression:
    def test_regression_fit(self):
        rng = np.random.default_rng(2)
        X = rng.random((800, 6))
        y = 10 * np.sin(np.pi * X[:, 0] * X[:, 1]) + 5 * X[:, 2]
        am = AutoML(seed=0, init_sample_size=200)
        am.fit(X[:600], y[:600], task="regression", **FIT_KW)
        pred = am.predict(X[600:])
        mse = np.mean((pred - y[600:]) ** 2)
        assert mse < np.var(y[600:])

    def test_predict_proba_rejected(self):
        rng = np.random.default_rng(3)
        X, y = rng.random((300, 3)), rng.random(300)
        am = AutoML(seed=0, init_sample_size=100)
        am.fit(X, y, task="regression", time_budget=0.5,
               estimator_list=["lgbm"])
        with pytest.raises(RuntimeError):
            am.predict_proba(X)


class TestMulticlass:
    def test_multiclass_fit(self):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((900, 6))
        w = rng.standard_normal(6)
        cuts = np.quantile(X @ w, [1 / 3, 2 / 3])
        y = np.digitize(X @ w, cuts)
        am = AutoML(seed=0, init_sample_size=200)
        am.fit(X[:700], y[:700], task="classification", **FIT_KW)
        acc = (am.predict(X[700:]) == y[700:]).mean()
        assert acc > 0.5
        proba = am.predict_proba(X[700:])
        assert proba.shape == (200, 3)


class TestAPIErrors:
    def test_unfitted_predict(self):
        with pytest.raises(RuntimeError):
            AutoML().predict(np.zeros((2, 2)))

    def test_unknown_estimator(self, clf_problem):
        Xtr, ytr, _, _ = clf_problem
        with pytest.raises(ValueError, match="unknown estimator"):
            AutoML().fit(Xtr, ytr, estimator_list=["nope"], time_budget=0.3)

    def test_lrl1_unsupported_check(self):
        # lrl1 maps to Lasso for regression, so it's supported everywhere;
        # instead verify the estimator_list filter rejects an empty list
        with pytest.raises(ValueError):
            AutoML().fit(np.zeros((10, 2)), np.zeros(10), task="regression",
                         estimator_list=[], time_budget=0.3)


class TestCustomisation:
    def test_estimator_list_restricts(self, clf_problem):
        Xtr, ytr, _, _ = clf_problem
        am = AutoML(seed=0, init_sample_size=200)
        am.fit(Xtr, ytr, estimator_list=["lgbm", "rf"], **FIT_KW)
        tried = {t.learner for t in am.search_result.trials}
        assert tried <= {"lgbm", "rf"}

    def test_custom_metric_callable(self, clf_problem):
        Xtr, ytr, _, _ = clf_problem

        def my_error(y_true, pred):  # label-based error
            return float(np.mean(y_true != pred))

        am = AutoML(seed=0, init_sample_size=200)
        am.fit(Xtr, ytr, metric=my_error, estimator_list=["lgbm"],
               time_budget=0.8)
        assert 0 <= am.best_loss <= 1

    def test_add_custom_learner(self, clf_problem):
        Xtr, ytr, Xte, _ = clf_problem

        class MyLearner(LGBMLikeClassifier):
            cost_relative2lgbm = 1.2

            @classmethod
            def search_space(cls, data_size, task):
                return SearchSpace({"learning_rate": LogUniform(0.01, 1.0, init=0.1)})

        am = AutoML(seed=0, init_sample_size=200)
        am.add_learner(learner_name="mylearner", learner_class=MyLearner)
        am.fit(Xtr, ytr, estimator_list=["mylearner"], time_budget=0.8)
        assert am.best_estimator == "mylearner"
        assert am.predict(Xte).shape == (Xte.shape[0],)

    def test_custom_learner_requires_search_space(self):
        class Bad:
            pass

        with pytest.raises(TypeError):
            AutoML().add_learner("bad", Bad)

    def test_ablation_flags(self, clf_problem):
        Xtr, ytr, _, _ = clf_problem
        am = AutoML(seed=0, init_sample_size=200)
        am.fit(Xtr, ytr, learner_selection="roundrobin", use_sampling=False,
               resampling="holdout", time_budget=1.0)
        kinds = {t.kind for t in am.search_result.trials}
        assert kinds == {"search"}  # fulldata mode never samples up
        assert am.search_result.resampling == "holdout"
