"""Tests for search-space domains and the Table 5 default spaces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.space import (
    Choice,
    LogRandInt,
    LogUniform,
    RandInt,
    SearchSpace,
    Uniform,
    catboost_space,
    lgbm_space,
    lrl1_space,
    rf_space,
    xgboost_space,
)


class TestDomains:
    def test_uniform_roundtrip(self):
        d = Uniform(2.0, 10.0)
        for v in (2.0, 5.5, 10.0):
            assert d.from_unit(d.to_unit(v)) == pytest.approx(v)

    def test_loguniform_roundtrip(self):
        d = LogUniform(1e-3, 1e3)
        for v in (1e-3, 1.0, 37.0, 1e3):
            assert d.from_unit(d.to_unit(v)) == pytest.approx(v, rel=1e-9)

    def test_randint_rounding(self):
        d = RandInt(1, 9)
        assert d.from_unit(0.0) == 1
        assert d.from_unit(1.0) == 9
        assert isinstance(d.from_unit(0.5), int)

    def test_lograndint_monotone(self):
        d = LogRandInt(4, 32768)
        vals = [d.from_unit(u) for u in np.linspace(0, 1, 20)]
        assert vals == sorted(vals)
        assert vals[0] == 4 and vals[-1] == 32768

    def test_choice_roundtrip(self):
        d = Choice(("gini", "entropy"))
        for o in d.options:
            assert d.from_unit(d.to_unit(o)) == o

    def test_choice_init_validation(self):
        with pytest.raises(ValueError):
            Choice(("a", "b"), init="c")
        with pytest.raises(ValueError):
            Choice(("only",))

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            Uniform(5, 5)
        with pytest.raises(ValueError):
            LogUniform(0.0, 1.0)
        with pytest.raises(ValueError):
            RandInt(3, 3)
        with pytest.raises(ValueError):
            LogRandInt(0, 5)

    def test_clipping_out_of_range(self):
        d = Uniform(0.0, 1.0)
        assert d.from_unit(-0.5) == 0.0
        assert d.from_unit(1.5) == 1.0

    @given(st.floats(0, 1), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_property_unit_maps_into_range(self, u, seed):
        rng = np.random.default_rng(seed)
        lo = float(rng.uniform(0.001, 10))
        hi = lo * float(rng.uniform(1.5, 100))
        for d in (Uniform(lo, hi), LogUniform(lo, hi)):
            v = d.from_unit(u)
            assert lo - 1e-9 <= v <= hi + 1e-9


class TestSearchSpace:
    def test_init_config_uses_inits(self):
        sp = SearchSpace({"a": Uniform(0, 1, init=0.25), "b": RandInt(1, 5, init=2)})
        assert sp.init_config() == {"a": 0.25, "b": 2}

    def test_vector_roundtrip(self):
        sp = SearchSpace({"a": LogUniform(0.01, 100), "b": Uniform(-1, 1)})
        cfg = {"a": 3.7, "b": 0.2}
        back = sp.from_unit(sp.to_unit(cfg))
        assert back["a"] == pytest.approx(3.7, rel=1e-9)
        assert back["b"] == pytest.approx(0.2)

    def test_sample_within_domains(self):
        sp = SearchSpace({"x": Uniform(5, 6), "k": Choice(("u", "v"))})
        rng = np.random.default_rng(0)
        for _ in range(20):
            c = sp.sample(rng)
            assert 5 <= c["x"] <= 6
            assert c["k"] in ("u", "v")

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace({})


class TestTable5Spaces:
    """The default spaces must match the paper's Table 5."""

    def test_xgboost(self):
        sp = xgboost_space(100_000, "binary")
        assert set(sp.names) == {
            "tree_num", "leaf_num", "min_child_weight", "learning_rate",
            "subsample", "reg_alpha", "reg_lambda", "colsample_bylevel",
            "colsample_bytree",
        }
        assert sp.domains["tree_num"].lo == 4
        assert sp.domains["tree_num"].hi == 32768
        init = sp.init_config()
        # bold (lowest-complexity) initialisation
        assert init["tree_num"] == 4 and init["leaf_num"] == 4
        assert init["min_child_weight"] == 20.0

    def test_lgbm_has_max_bin(self):
        sp = lgbm_space(50_000, "binary")
        assert "max_bin" in sp.names
        assert "colsample_bylevel" not in sp.names
        assert sp.domains["max_bin"].lo == 7
        assert sp.domains["max_bin"].hi == 1023

    def test_tree_num_capped_by_data_size(self):
        sp = lgbm_space(1000, "binary")
        assert sp.domains["tree_num"].hi == 1000

    def test_catboost(self):
        sp = catboost_space(10_000, "binary")
        assert set(sp.names) == {"early_stop_rounds", "learning_rate"}
        assert sp.domains["early_stop_rounds"].lo == 10
        assert sp.domains["early_stop_rounds"].hi == 150
        assert sp.domains["learning_rate"].lo == pytest.approx(0.005)
        assert sp.domains["learning_rate"].hi == pytest.approx(0.2)

    def test_rf_classification_has_criterion(self):
        sp = rf_space(10_000, "binary")
        assert set(sp.names) == {"tree_num", "max_features", "criterion"}
        assert sp.domains["criterion"].options == ("gini", "entropy")
        assert sp.domains["tree_num"].hi == 2048

    def test_rf_regression_drops_criterion(self):
        sp = rf_space(10_000, "regression")
        assert "criterion" not in sp.names

    def test_lrl1(self):
        sp = lrl1_space(10_000, "binary")
        assert sp.names == ["C"]
        assert sp.domains["C"].lo == pytest.approx(0.03125)
        assert sp.domains["C"].hi == pytest.approx(32768.0)
        assert sp.init_config()["C"] == 1.0
