"""N interleaved searches on one SharedWorkerPool reproduce themselves.

The multi-tenant promise: a search multiplexed with other tenants'
searches over one shared pool produces *bit-identical* per-search trial
logs, attempt counts, and winners versus the same search run alone —
with and without an installed fault plan (degradations and retries stay
per-search, never service-wide).

ECI-based learner selection feeds on measured trial costs, so — exactly
like the serial-vs-parallel equivalence tests — the pool's work function
is wrapped to report a deterministic cost per trial; the *logic* under
test is scheduling, commit order, and fault replay, not the timer.
"""

import threading

import pytest

import repro.exec.serial as serial_mod
from repro.core.controller import SearchController
from repro.core.evaluate import TrialOutcome
from repro.core.parallel import ParallelSearchController
from repro.core.registry import DEFAULT_LEARNERS
from repro.data import make_classification
from repro.exec import RetryPolicy, SerialExecutor, SharedWorkerPool, TrialCache
from repro.exec.base import run_spec as real_run_spec
from repro.metrics import get_metric


def _learners(names):
    return {n: DEFAULT_LEARNERS[n] for n in names}


def _det_cost(data, spec):
    """run_spec with a scheduling-independent cost (crashes propagate)."""
    out = real_run_spec(data, spec)
    return TrialOutcome(
        error=out.error,
        cost=1e-3 * spec.sample_size * (1 + len(spec.config)),
        model=out.model, failure=out.failure,
    )


def _log_fields(result):
    """The deterministic (timing-free) identity of a trial log."""
    return [
        (t.learner, tuple(sorted(t.config.items())), t.sample_size, t.kind,
         t.error, t.improved_global)
        for t in result.trials
    ]


@pytest.fixture(scope="module")
def data():
    return make_classification(500, 6, class_sep=1.2, seed=0,
                               name="mux").shuffled(0)


@pytest.fixture(scope="module")
def metric():
    return get_metric("roc_auc")


#: three tenants with distinct learner mixes and seeds
_SEARCHES = [
    ("alice", ("lgbm", "rf"), 3),
    ("bob", ("lgbm", "lrl1"), 7),
    ("cara", ("rf",), 11),
]


def _run_on_pool(data, metric, pool, tenant, names, seed,
                 retry_policy=None, trial_cache=False, max_trials=8,
                 use_sampling=True):
    """One search through a lease on ``pool``; always releases the lease."""
    lease = pool.lease(data, tenant=tenant, max_concurrent=2)
    try:
        return ParallelSearchController(
            data, _learners(names), metric,
            time_budget=1e6, n_workers=2, seed=seed,
            init_sample_size=100, resampling_override="holdout",
            use_sampling=use_sampling,
            trial_cache=trial_cache, max_trials=max_trials,
            backend="shared", executor=lease, retry_policy=retry_policy,
        ).run()
    finally:
        lease.shutdown()


def _run_multiplexed(data, metric, pool, **kw):
    """All of _SEARCHES concurrently, sharing ``pool``; results by tenant."""
    results, errors = {}, []

    def go(tenant, names, seed):
        try:
            results[tenant] = _run_on_pool(data, metric, pool, tenant,
                                           names, seed, **kw)
        except BaseException as exc:  # surface in the test, not the log
            errors.append((tenant, exc))

    threads = [threading.Thread(target=go, args=s) for s in _SEARCHES]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    return results


class TestMultiplexedEquivalence:
    def test_n_searches_match_their_run_alone_logs(self, data, metric):
        """Each tenant's multiplexed log is bit-identical to the log of
        the same search holding a pool of its own."""
        alone = {}
        for tenant, names, seed in _SEARCHES:
            with SharedWorkerPool(n_workers=2, run_fn=_det_cost) as pool:
                alone[tenant] = _run_on_pool(data, metric, pool, tenant,
                                             names, seed)
        # 3 searches x 2 wanted slots on a 3-slot pool: real contention
        with SharedWorkerPool(n_workers=3, run_fn=_det_cost) as pool:
            muxed = _run_multiplexed(data, metric, pool)
        for tenant, _, _ in _SEARCHES:
            assert muxed[tenant].backend == "shared"
            assert muxed[tenant].n_trials == 8
            assert _log_fields(muxed[tenant]) == _log_fields(alone[tenant])
            assert muxed[tenant].best_error == alone[tenant].best_error
            assert muxed[tenant].best_learner == alone[tenant].best_learner

    def test_shared_pool_matches_sequential_controller(self, data, metric,
                                                       monkeypatch):
        """The lease substrate slots into the existing equivalence chain:
        a 1-slot lease reproduces the SerialExecutor-backed controller."""
        monkeypatch.setattr(serial_mod, "run_spec", _det_cost)
        tenant, names, seed = _SEARCHES[0]
        sequential = SearchController(
            data, _learners(names), metric,
            executor=SerialExecutor(data), max_iters=8,
            time_budget=1e6, seed=seed, init_sample_size=100,
            resampling_override="holdout", trial_cache=False,
        ).run()
        with SharedWorkerPool(n_workers=1, run_fn=_det_cost) as pool:
            lease = pool.lease(data, tenant=tenant, max_concurrent=1)
            shared = ParallelSearchController(
                data, _learners(names), metric,
                time_budget=1e6, n_workers=1, seed=seed,
                init_sample_size=100, resampling_override="holdout",
                trial_cache=False, max_trials=8,
                backend="shared", executor=lease,
            ).run()
        assert _log_fields(sequential) == _log_fields(shared)
        assert sequential.best_error == shared.best_error

    def test_equivalence_holds_under_installed_fault_plan(self, data,
                                                          metric):
        """PR 9's ladders stay per-search under multiplexing: with a
        crash-injecting plan installed service-wide, every tenant's
        retried log and per-trial attempt counts match its run-alone
        execution (fault decisions are pure functions of trial identity,
        never of scheduling or co-tenancy)."""
        from repro.faults import FaultPlan, install

        retry = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)
        plan = FaultPlan.from_spec({"seed": 0, "rules": [
            {"site": "worker.crash", "probability": 0.3},
        ]})
        prev = install(plan)
        try:
            alone = {}
            for tenant, names, seed in _SEARCHES:
                with SharedWorkerPool(n_workers=2, run_fn=_det_cost) as pool:
                    alone[tenant] = _run_on_pool(
                        data, metric, pool, tenant, names, seed,
                        retry_policy=retry,
                    )
            with SharedWorkerPool(n_workers=3, run_fn=_det_cost) as pool:
                muxed = _run_multiplexed(data, metric, pool,
                                         retry_policy=retry)
        finally:
            install(prev)
        total_attempts = 0
        for tenant, _, _ in _SEARCHES:
            attempts = [t.attempts for t in alone[tenant].trials]
            assert _log_fields(muxed[tenant]) == _log_fields(alone[tenant])
            assert [t.attempts for t in muxed[tenant].trials] == attempts
            assert muxed[tenant].best_error == alone[tenant].best_error
            total_attempts += sum(attempts)
        # the plan really injected crashes somewhere across the tenants
        assert total_attempts > sum(r.n_trials for r in alone.values())


class TestCrossSearchCache:
    def test_second_tenant_rides_the_first_ones_trials(self, data, metric):
        """Identical dataset + seed through one shared TrialCache: the
        second tenant's search answers every proposal from storage —
        zero additional fits (the headline multi-tenant economy)."""
        cache = TrialCache()
        # no sampling: the proposal sequence is rng-driven only, immune
        # to the near-zero replay costs a cache hit reports
        kw = dict(trial_cache=cache, max_trials=6, use_sampling=False)
        with SharedWorkerPool(n_workers=2, run_fn=_det_cost) as pool:
            first = _run_on_pool(data, metric, pool, "alice", ("lgbm",), 5,
                                 **kw)
            hits0, misses0 = cache.hits, cache.misses
            second = _run_on_pool(data, metric, pool, "bob", ("lgbm",), 5,
                                  **kw)
        assert second.cache_hits == second.n_trials  # every trial replayed
        assert cache.hits - hits0 == second.n_trials
        assert cache.misses - misses0 == 0  # zero extra fits for bob
        assert _log_fields(first) == _log_fields(second)


class TestPerSearchDegrade:
    def test_degrade_releases_one_lease_not_the_pool(self, data):
        """A broken-substrate degradation on one tenant's engine swaps in
        a *private* serial executor and releases only that tenant's
        lease; the pool and every other lease keep serving."""
        from repro.exec import ExecutionEngine

        with SharedWorkerPool(n_workers=2, run_fn=lambda d, s: s) as pool:
            doomed = pool.lease(data, tenant="alice")
            survivor = pool.lease("B", tenant="bob")
            engine = ExecutionEngine(doomed, cache=None)
            engine._degrade("injected: substrate reported broken")
            assert engine.executor.backend == "serial"
            assert engine.executor is not doomed
            assert doomed.closed  # the lease was released ...
            assert engine.degradations == [("shared", "serial")]
            # ... while the pool still serves the other tenant
            assert survivor.submit("x").result(timeout=10) == "x"
            engine.shutdown()
