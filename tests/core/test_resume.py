"""Tests for fit(resume_from=...) — warm-resuming a search on refreshed
data (the §1 database scenario: frequent re-tuning per instance)."""

import numpy as np
import pytest

from repro import AutoML
from repro.core.automl import _starting_points_from
from repro.core.controller import SearchResult, TrialRecord


def _data(seed, n=350, drift=0.0):
    r = np.random.default_rng(seed)
    X = r.standard_normal((n, 4))
    y = (X[:, 0] + drift * X[:, 1] > 0).astype(int)
    return X, y


FIT_KW = dict(task="classification", time_budget=1.5, max_iters=10,
              estimator_list=["lgbm", "rf"])


def _fitted(seed=0):
    X, y = _data(seed)
    a = AutoML(init_sample_size=100)
    a.fit(X, y, **FIT_KW)
    return a


class TestStartingPointsFrom:
    def test_extracts_best_per_learner(self):
        def t(i, learner, err, cfg):
            return TrialRecord(iteration=i, automl_time=float(i),
                               learner=learner, config=cfg, sample_size=10,
                               resampling="cv", error=err, cost=0.1,
                               kind="search", improved_global=False)

        res = SearchResult(
            best_learner="lgbm", best_config={}, best_sample_size=10,
            best_error=0.1, resampling="cv",
            trials=[
                t(1, "lgbm", 0.3, {"tree_num": 4}),
                t(2, "lgbm", 0.1, {"tree_num": 40}),
                t(3, "rf", float("inf"), {"tree_num": 99}),  # failed: skipped
                t(4, "rf", 0.2, {"tree_num": 8}),
            ],
            wall_time=4.0,
        )
        pts = _starting_points_from(res)
        assert pts == {"lgbm": {"tree_num": 40}, "rf": {"tree_num": 8}}

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError, match="resume_from"):
            _starting_points_from(42)

    def test_accepts_fitted_automl(self):
        a = _fitted()
        pts = _starting_points_from(a)
        assert a.best_estimator in pts

    def test_accepts_log_path(self, tmp_path):
        X, y = _data(0)
        a = AutoML(init_sample_size=100)
        log = str(tmp_path / "run.json")
        a.fit(X, y, log_file=log, **FIT_KW)
        pts = _starting_points_from(log)
        assert a.best_estimator in pts


class TestResumeFit:
    def test_resume_seeds_first_trials(self):
        prev = _fitted(seed=0)
        prev_best = prev.best_config_per_estimator
        X, y = _data(1, drift=0.2)  # refreshed data, slightly drifted
        again = AutoML(init_sample_size=100)
        again.fit(X, y, resume_from=prev, **FIT_KW)
        first = {}
        for t in again.search_result.trials:
            first.setdefault(t.learner, t.config)
        seeded = 0
        for learner, cfg in prev_best.items():
            if learner in first:
                shared = {k for k in cfg if k in first[learner]}
                if shared and all(first[learner][k] == cfg[k] for k in shared):
                    seeded += 1
        assert seeded >= 1

    def test_explicit_starting_points_win(self):
        prev = _fitted(seed=0)
        X, y = _data(2)
        a = AutoML(init_sample_size=100)
        a.fit(X, y, resume_from=prev,
              starting_points={"lgbm": {"tree_num": 77}}, **FIT_KW)
        first_lgbm = next(t.config for t in a.search_result.trials
                          if t.learner == "lgbm")
        assert first_lgbm["tree_num"] == 77

    def test_resume_produces_working_model(self):
        prev = _fitted(seed=0)
        X, y = _data(3)
        a = AutoML(init_sample_size=100)
        a.fit(X, y, resume_from=prev, **FIT_KW)
        assert a.predict(X[:5]).shape == (5,)
