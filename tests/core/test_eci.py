"""Tests for ECI bookkeeping (Eq. 1) and the learner proposer."""

import numpy as np
import pytest

from repro.core.eci import (
    DEFAULT_COST_CONSTANTS,
    LearnerCostState,
    LearnerProposer,
    eci,
)


class TestLearnerCostState:
    def test_first_trial_sets_delta_to_error(self):
        st = LearnerCostState("lgbm")
        improved = st.update(error=0.3, cost=1.0)
        assert improved
        assert st.best_error == 0.3
        assert st.delta == pytest.approx(0.3)  # paper's delta=eps_l rule
        assert st.K0 == 1.0 and st.K1 == 1.0 and st.K2 == 0.0

    def test_improvement_chain(self):
        st = LearnerCostState("l")
        st.update(0.5, 1.0)
        st.update(0.4, 2.0)  # improves: K2=1, K1=3, delta=0.1
        assert st.K1 == 3.0 and st.K2 == 1.0
        assert st.delta == pytest.approx(0.1)
        st.update(0.45, 1.0)  # no improvement
        assert st.K0 == 4.0 and st.K1 == 3.0

    def test_eci1_later_improvements_cost_more(self):
        st = LearnerCostState("l")
        st.update(0.5, 1.0)
        st.update(0.4, 5.0)
        # ECI1 = max(K0-K1, K1-K2) = max(0, 5)
        assert st.eci1() == pytest.approx(5.0)
        st.update(0.42, 3.0)  # failed trial adds to K0
        assert st.eci1() == pytest.approx(5.0)  # max(K0-K1, K1-K2) = max(3, 5)
        st.update(0.41, 3.0)  # still no improvement (0.41 > 0.40)
        assert st.eci1() == pytest.approx(6.0)  # K0-K1 = 6 now dominates

    def test_eci2_scales_kappa(self):
        st = LearnerCostState("l")
        st.update(0.5, 2.0)
        assert st.eci2(c=2.0) == pytest.approx(4.0)


class TestECIFormula:
    def test_best_learner_uses_min(self):
        st = LearnerCostState("l")
        st.update(0.3, 1.0)
        st.update(0.2, 4.0)
        # l is the global best: ECI = min(ECI1, ECI2)
        v = eci(st, global_best_error=0.2, c=2.0)
        assert v == pytest.approx(min(st.eci1(), st.eci2(2.0)))

    def test_lagging_learner_pays_gap(self):
        st = LearnerCostState("l")
        st.update(0.5, 1.0)
        st.update(0.4, 1.0)  # delta=0.1, tau=K0-K2=1
        lag = eci(st, global_best_error=0.1, c=2.0)
        best = eci(st, global_best_error=0.4, c=2.0)
        assert lag > best
        # catch-up term: 2 * gap * tau / delta = 2*0.3*1/0.1 = 6
        assert lag == pytest.approx(max(6.0, min(st.eci1(), st.eci2(2.0))))

    def test_self_correcting_failed_trials_raise_eci(self):
        """Figure 4's dashed-marker scenario: a failed trial must increase
        the learner's ECI (priority drops)."""
        st = LearnerCostState("xgb")
        st.update(0.3, 1.0)
        st.update(0.25, 2.0)
        before = eci(st, 0.1, 2.0)
        st.update(0.4, 5.0)  # expensive failed trial
        after = eci(st, 0.1, 2.0)
        assert after > before


class TestLearnerProposer:
    def test_fastest_learner_goes_first(self):
        rng = np.random.default_rng(0)
        p = LearnerProposer(["catboost", "lgbm", "lrl1"], rng)
        assert p.propose() == "lgbm"  # smallest cost constant

    def test_untried_seeding_from_constants(self):
        rng = np.random.default_rng(0)
        p = LearnerProposer(["lgbm", "catboost", "lrl1"], rng)
        p.record("lgbm", error=0.3, cost=0.5)
        vals = p.eci_values()
        assert vals["catboost"] == pytest.approx(15.0 * 0.5)
        assert vals["lrl1"] == pytest.approx(160.0 * 0.5)

    def test_probability_favours_low_eci(self):
        rng = np.random.default_rng(1)
        p = LearnerProposer(["lgbm", "catboost"], rng)
        p.record("lgbm", 0.3, 0.1)
        p.record("catboost", 0.35, 5.0)
        picks = [p.propose() for _ in range(300)]
        assert picks.count("lgbm") > picks.count("catboost")

    def test_every_learner_has_a_chance(self):
        """Property 3 (FairChance): sampling, not argmin."""
        rng = np.random.default_rng(2)
        p = LearnerProposer(["lgbm", "rf"], rng)
        p.record("lgbm", 0.2, 0.1)
        p.record("rf", 0.5, 2.0)  # far worse ECI
        picks = {p.propose() for _ in range(3000)}
        assert picks == {"lgbm", "rf"}

    def test_global_best_tracking(self):
        rng = np.random.default_rng(3)
        p = LearnerProposer(["lgbm", "rf"], rng)
        assert not np.isfinite(p.global_best_error())
        p.record("lgbm", 0.4, 1.0)
        p.record("rf", 0.3, 1.0)
        assert p.global_best_error() == 0.3

    def test_empty_learner_list_rejected(self):
        with pytest.raises(ValueError):
            LearnerProposer([], np.random.default_rng(0))

    def test_constants_match_appendix(self):
        assert DEFAULT_COST_CONSTANTS == {
            "lgbm": 1.0, "xgboost": 1.6, "extra_tree": 1.9,
            "rf": 2.0, "catboost": 15.0, "lrl1": 160.0,
        }
