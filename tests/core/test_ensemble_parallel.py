"""Tests for the appendix features: stacked ensemble, parallel search
threads, and stop-at-error-target."""

import numpy as np
import pytest

from repro import AutoML
from repro.core.controller import SearchController
from repro.core.ensemble import StackedEnsemble, build_ensemble, select_ensemble_members
from repro.core.parallel import ParallelSearchController
from repro.core.registry import DEFAULT_LEARNERS
from repro.data import make_classification, make_regression
from repro.metrics import get_metric, roc_auc_score


def _learners(names):
    return {n: DEFAULT_LEARNERS[n] for n in names}


@pytest.fixture(scope="module")
def clf_data():
    return make_classification(1000, 6, class_sep=1.2, seed=0,
                               name="ens").shuffled(0)


@pytest.fixture(scope="module")
def search_result(clf_data):
    ctl = SearchController(
        clf_data, _learners(("lgbm", "rf", "lrl1")), get_metric("roc_auc"),
        time_budget=1.5, seed=0, init_sample_size=200,
        cv_instance_threshold=0,
    )
    return ctl.run()


class TestMemberSelection:
    def test_distinct_learners(self, search_result):
        members = select_ensemble_members(search_result, max_members=3)
        names = [n for n, _ in members]
        assert len(names) == len(set(names))
        assert 1 <= len(members) <= 3

    def test_ordered_by_error(self, search_result):
        members = select_ensemble_members(search_result, max_members=3)
        assert members[0][0] == search_result.best_learner


class TestStackedEnsemble:
    def test_build_and_predict(self, clf_data, search_result):
        members = select_ensemble_members(search_result, max_members=2)
        ens = build_ensemble(clf_data, members, _learners(("lgbm", "rf", "lrl1")),
                             n_splits=3, seed=0)
        assert isinstance(ens, StackedEnsemble)
        assert ens.n_members == len(members)
        proba = ens.predict_proba(clf_data.X)
        assert proba.shape == (clf_data.n, 2)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)
        acc = (ens.predict(clf_data.X) == clf_data.y).mean()
        assert acc > 0.8

    def test_regression_stack(self):
        data = make_regression(600, 5, seed=2, name="rens").shuffled(0)
        ctl = SearchController(
            data, _learners(("lgbm", "rf")), get_metric("r2"),
            time_budget=1.0, seed=0, init_sample_size=200,
            cv_instance_threshold=0,
        )
        res = ctl.run()
        members = select_ensemble_members(res, max_members=2)
        ens = build_ensemble(data, members, _learners(("lgbm", "rf")),
                             n_splits=3)
        pred = ens.predict(data.X)
        assert np.mean((pred - data.y) ** 2) < np.var(data.y)
        with pytest.raises(RuntimeError):
            ens.predict_proba(data.X)

    def test_empty_members_rejected(self, clf_data):
        with pytest.raises(ValueError):
            build_ensemble(clf_data, [], _learners(("lgbm",)))

    def test_automl_ensemble_flag(self, clf_data):
        am = AutoML(seed=0, init_sample_size=200)
        am.fit(clf_data.X, clf_data.y, task="binary", time_budget=1.0,
               estimator_list=["lgbm", "rf"], ensemble=True,
               cv_instance_threshold=0)
        assert isinstance(am.model, StackedEnsemble)
        auc = roc_auc_score(clf_data.y, am.predict_proba(clf_data.X)[:, 1])
        assert auc > 0.8


class TestParallelController:
    def test_virtual_parallel_run(self, clf_data):
        ctl = ParallelSearchController(
            clf_data, _learners(("lgbm", "rf", "lrl1")), get_metric("roc_auc"),
            time_budget=0.6, n_workers=3, seed=0, init_sample_size=200,
            cv_instance_threshold=0,
        )
        res = ctl.run()
        assert res.n_trials >= 3
        times = [t.automl_time for t in res.trials]
        assert times == sorted(times)
        assert np.isfinite(res.best_error)

    def test_more_workers_more_trials_in_virtual_time(self, clf_data):
        """With the same virtual budget, more workers complete more trials."""
        counts = {}
        for w in (1, 4):
            ctl = ParallelSearchController(
                clf_data, _learners(("lgbm", "rf")), get_metric("roc_auc"),
                time_budget=0.4, n_workers=w, seed=0, init_sample_size=200,
                cv_instance_threshold=0, max_trials=60,
            )
            counts[w] = ctl.run().n_trials
        assert counts[4] > counts[1]

    def test_invalid_workers(self, clf_data):
        with pytest.raises(ValueError):
            ParallelSearchController(
                clf_data, _learners(("lgbm",)), get_metric("roc_auc"),
                n_workers=0,
            )


class TestStopAtError:
    def test_search_stops_at_target(self, clf_data):
        ctl = SearchController(
            clf_data, _learners(("lgbm",)), get_metric("roc_auc"),
            time_budget=20.0, seed=0, init_sample_size=200,
            cv_instance_threshold=0, stop_at_error=0.45,
        )
        res = ctl.run()
        assert res.best_error <= 0.45
        assert res.wall_time < 19.0  # stopped well before the budget

    def test_automl_stop_at_error(self, clf_data):
        am = AutoML(seed=0, init_sample_size=200)
        am.fit(clf_data.X, clf_data.y, task="binary", time_budget=20.0,
               estimator_list=["lgbm"], stop_at_error=0.45,
               cv_instance_threshold=0)
        assert am.best_loss <= 0.45
