"""Tests for the top-level CLI (python -m repro)."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def train_csv(tmp_path_factory):
    r = np.random.default_rng(0)
    X = r.standard_normal((200, 3))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    lines = ["f0,f1,f2,label"] + [
        f"{a},{b},{c},{t}" for (a, b, c), t in zip(X, y)
    ]
    p = tmp_path_factory.mktemp("cli") / "train.csv"
    p.write_text("\n".join(lines) + "\n")
    return str(p)


@pytest.fixture(scope="module")
def test_csv(tmp_path_factory):
    r = np.random.default_rng(1)
    X = r.standard_normal((20, 3))
    lines = ["f0,f1,f2"] + [f"{a},{b},{c}" for a, b, c in X]
    p = tmp_path_factory.mktemp("cli") / "test.csv"
    p.write_text("\n".join(lines) + "\n")
    return str(p)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fit_defaults(self):
        args = build_parser().parse_args(["fit", "x.csv"])
        assert args.budget == 60.0
        assert args.out == "model.json"

    def test_datasets_task_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["datasets", "--task", "nope"])


class TestDatasets:
    def test_lists_suite(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "adult" in out and "bng_pbc" in out

    def test_task_filter(self, capsys):
        assert main(["datasets", "--task", "regression"]) == 0
        out = capsys.readouterr().out
        assert "houses" in out and "adult" not in out

    def test_describe(self, capsys):
        assert main(["datasets", "--describe", "phoneme"]) == 0
        out = capsys.readouterr().out
        assert "binary" in out and "minority_frac" in out

    def test_describe_unknown(self, capsys):
        assert main(["datasets", "--describe", "nope"]) == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestFitPredict:
    def test_fit_writes_model(self, train_csv, tmp_path, capsys):
        model_path = str(tmp_path / "m.json")
        rc = main(["fit", train_csv, "--label", "label", "--budget", "1.0",
                   "--max-iters", "8", "--out", model_path,
                   "--estimators", "lgbm", "--pickle"])
        assert rc == 0
        model = json.loads(open(model_path).read())
        assert model["learner"] == "lgbm"
        assert model["task"] == "binary"
        assert 0.0 <= model["best_error"] <= 1.0
        out = capsys.readouterr().out
        assert "best learner : lgbm" in out

    def test_predict_from_pickle(self, train_csv, test_csv, tmp_path, capsys):
        model_path = str(tmp_path / "m.json")
        main(["fit", train_csv, "--label", "label", "--budget", "1.0",
              "--max-iters", "8", "--out", model_path,
              "--estimators", "lgbm", "--pickle"])
        pred_path = str(tmp_path / "preds.csv")
        rc = main(["predict", model_path, test_csv, "--out", pred_path])
        assert rc == 0
        preds = open(pred_path).read().strip().splitlines()
        assert len(preds) == 20
        assert set(preds) <= {"0", "1"}

    def test_predict_proba_stdout(self, train_csv, test_csv, tmp_path, capsys):
        model_path = str(tmp_path / "m.json")
        main(["fit", train_csv, "--label", "label", "--budget", "1.0",
              "--max-iters", "8", "--out", model_path,
              "--estimators", "lgbm", "--pickle"])
        capsys.readouterr()
        rc = main(["predict", model_path, test_csv, "--proba"])
        assert rc == 0
        rows = capsys.readouterr().out.strip().splitlines()
        assert len(rows) == 20
        p = np.array([[float(c) for c in r.split(",")] for r in rows])
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_save_model_flag_and_pickleless_predict(self, train_csv, test_csv,
                                                    tmp_path, capsys):
        model_path = str(tmp_path / "m.json")
        main(["fit", train_csv, "--label", "label", "--budget", "1.0",
              "--max-iters", "8", "--out", model_path,
              "--estimators", "lgbm", "--save-model"])
        import os

        assert os.path.exists(model_path + ".model.json")
        capsys.readouterr()
        rc = main(["predict", model_path, test_csv])
        assert rc == 0
        preds = capsys.readouterr().out.strip().splitlines()
        assert len(preds) == 20

    def test_predict_retrains_without_pickle(self, train_csv, test_csv,
                                             tmp_path, capsys):
        model_path = str(tmp_path / "m.json")
        main(["fit", train_csv, "--label", "label", "--budget", "1.0",
              "--max-iters", "8", "--out", model_path,
              "--estimators", "lgbm"])
        capsys.readouterr()
        rc = main(["predict", model_path, test_csv])
        assert rc == 0
        preds = capsys.readouterr().out.strip().splitlines()
        assert len(preds) == 20

    def test_fit_missing_file_is_error(self, capsys):
        assert main(["fit", "/nonexistent.csv"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_fit_bad_label_is_error(self, train_csv, capsys):
        assert main(["fit", train_csv, "--label", "nope"]) == 2
        assert "not in header" in capsys.readouterr().err

    def test_predict_positional_label_featureonly_csv(self, train_csv,
                                                      test_csv, tmp_path,
                                                      capsys):
        """With a positional label (default -1), a feature-only test CSV is
        recognised by its width rather than misparsed."""
        model_path = str(tmp_path / "m.json")
        main(["fit", train_csv, "--budget", "1.0", "--max-iters", "8",
              "--out", model_path, "--estimators", "lgbm", "--pickle"])
        capsys.readouterr()
        rc = main(["predict", model_path, test_csv])
        assert rc == 0
        preds = capsys.readouterr().out.strip().splitlines()
        assert len(preds) == 20  # all 3 columns used as features


class TestPortfolioCommand:
    def test_build_portfolio(self, train_csv, tmp_path, capsys):
        out = str(tmp_path / "pf.json")
        rc = main(["portfolio", "build", train_csv, "--label", "label",
                   "--budget", "1.0", "--out", out])
        assert rc == 0
        pf = json.loads(open(out).read())
        assert len(pf["entries"]) == 1
        assert "best_configs" in pf["entries"][0]


class TestModuleEntry:
    def test_python_dash_m(self, tmp_path):
        import subprocess
        import sys

        r = subprocess.run(
            [sys.executable, "-m", "repro", "datasets"],
            capture_output=True, text=True, timeout=120,
        )
        assert r.returncode == 0
        assert "adult" in r.stdout
