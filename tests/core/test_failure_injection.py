"""Failure injection: buggy custom learners and degenerate data must not
kill the search loop — ECI deprioritises the offender instead."""

import numpy as np
import pytest

from repro import AutoML
from repro.core.evaluate import evaluate_config
from repro.core.registry import DEFAULT_LEARNERS, make_spec_from_class
from repro.core.space import LogUniform, SearchSpace
from repro.data import make_classification
from repro.learners import LGBMLikeClassifier
from repro.metrics import get_metric


class AlwaysCrashes(LGBMLikeClassifier):
    """A custom learner whose fit always raises."""

    @classmethod
    def search_space(cls, data_size, task):
        return SearchSpace({"learning_rate": LogUniform(0.01, 1.0)})

    def fit(self, X, y, X_val=None, y_val=None):
        raise RuntimeError("injected failure")


class CrashesSometimes(LGBMLikeClassifier):
    """Fails for certain hyperparameter values only."""

    @classmethod
    def search_space(cls, data_size, task):
        return SearchSpace({"learning_rate": LogUniform(0.01, 1.0, init=0.02)})

    def fit(self, X, y, X_val=None, y_val=None):
        if self.learning_rate > 0.1:
            raise RuntimeError("injected flaky failure")
        return super().fit(X, y, X_val, y_val)


@pytest.fixture(scope="module")
def data():
    return make_classification(800, 5, class_sep=1.2, seed=0, name="fi")


class TestEvaluateFailureHandling:
    def test_crashing_learner_reports_inf(self, data):
        out = evaluate_config(
            data.shuffled(0), AlwaysCrashes, {"learning_rate": 0.1},
            sample_size=200, resampling="holdout", metric=get_metric("roc_auc"),
        )
        assert out.error == np.inf
        assert out.model is None
        assert out.cost > 0  # the wasted time is still charged


class TestSearchSurvivesFailures:
    def test_automl_with_always_crashing_learner(self, data):
        am = AutoML(seed=0, init_sample_size=200)
        am.add_learner("crashy", AlwaysCrashes)
        am.fit(
            data.X, data.y, task="binary", time_budget=1.0,
            estimator_list=["crashy", "lgbm"], cv_instance_threshold=0,
        )
        # lgbm must win; the final model works
        assert am.best_estimator == "lgbm"
        assert np.isfinite(am.best_loss)
        assert am.predict(data.X).shape == (data.n,)

    def test_flaky_learner_partially_usable(self, data):
        am = AutoML(seed=0, init_sample_size=200)
        am.add_learner("flaky", CrashesSometimes)
        am.fit(
            data.X, data.y, task="binary", time_budget=1.0,
            estimator_list=["flaky"], cv_instance_threshold=0,
        )
        # the low-learning-rate region works, so a model exists
        assert np.isfinite(am.best_loss)
        assert am.best_config["learning_rate"] <= 0.1

    def test_all_learners_crash_raises_cleanly(self, data):
        am = AutoML(seed=0, init_sample_size=200)
        am.add_learner("crashy", AlwaysCrashes)
        with pytest.raises(RuntimeError, match="no successful trial"):
            am.fit(
                data.X, data.y, task="binary", time_budget=0.5,
                estimator_list=["crashy"], cv_instance_threshold=0,
            )

    def test_failed_trials_raise_eci(self, data):
        """A learner that keeps failing sees its selection share shrink."""
        from repro.core.controller import SearchController

        spec = make_spec_from_class("crashy", AlwaysCrashes)
        learners = {"crashy": spec, "lgbm": DEFAULT_LEARNERS["lgbm"]}
        ctl = SearchController(
            data.shuffled(0), learners, get_metric("roc_auc"),
            time_budget=1.0, seed=0, init_sample_size=200,
            cv_instance_threshold=0,
        )
        res = ctl.run()
        counts = {"crashy": 0, "lgbm": 0}
        for t in res.trials:
            counts[t.learner] += 1
        assert counts["lgbm"] > counts["crashy"]
