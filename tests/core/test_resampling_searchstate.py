"""Tests for the resampling proposer and the per-learner search thread."""

import numpy as np
import pytest

from repro.core.eci import LearnerCostState
from repro.core.resampling import choose_resampling
from repro.core.searchstate import SearchThread
from repro.core.space import SearchSpace, Uniform


class TestResamplingRule:
    def test_small_data_long_budget_cv(self):
        # 10K x 10 / 3600s ~ 28 per sec << 2778
        assert choose_resampling(10_000, 10, 3600) == "cv"

    def test_large_data_holdout(self):
        assert choose_resampling(200_000, 10, 3600) == "holdout"

    def test_tight_budget_holdout(self):
        # 90K x 100 / 60s = 150K per sec >> threshold
        assert choose_resampling(90_000, 100, 60) == "holdout"

    def test_paper_thresholds_are_defaults(self):
        # exactly at the instance threshold -> holdout
        assert choose_resampling(100_000, 1, 1e9) == "holdout"
        assert choose_resampling(99_999, 1, 1e9) == "cv"

    def test_custom_thresholds(self):
        assert choose_resampling(5000, 10, 1, instance_threshold=100,
                                 rate_threshold=1e12) == "holdout"
        assert choose_resampling(50, 10, 1, instance_threshold=100,
                                 rate_threshold=1e12) == "cv"

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            choose_resampling(100, 10, 0)


def _thread(full=1000, init=100, **kw):
    sp = SearchSpace({"a": Uniform(0, 1, init=0.2), "b": Uniform(0, 1, init=0.2)})
    return SearchThread("t", sp, full_size=full, init_sample_size=init, seed=0, **kw)


class TestSearchThread:
    def test_starts_at_init_sample_size(self):
        th = _thread()
        cfg, s, kind = th.propose(LearnerCostState("t"))
        assert s == 100
        assert kind == "search"
        assert cfg == {"a": 0.2, "b": 0.2}  # low-cost init first

    def test_sample_up_when_eci1_geq_eci2(self):
        th = _thread()
        st = LearnerCostState("t")
        cfg, s, kind = th.propose(st)
        th.tell(0.5)
        st.update(0.5, cost=1.0)
        st.update(0.4, cost=5.0)  # eci1 = 5 >= eci2 = 2*kappa = 10? no: kappa=5 -> 10
        # force the condition: make eci2 small
        st.kappa = 1.0  # eci2 = 2
        cfg, s, kind = th.propose(st)
        assert kind == "sample_up"
        assert s == 200  # doubled
        # incumbent config is retried
        assert cfg == th.flow2.best_config

    def test_sample_capped_at_full(self):
        th = _thread(full=150, init=100)
        st = LearnerCostState("t")
        th.propose(st)
        th.tell(0.5)
        st.update(0.5, 1.0)
        st.kappa = 0.01
        cfg, s, kind = th.propose(st)
        assert s == 150
        th.tell(0.45)
        assert th.at_full_size
        # once full, no more sample_up proposals
        cfg, s, kind = th.propose(st)
        assert kind == "search"

    def test_no_sampling_mode_starts_full(self):
        th = _thread(use_sampling=False)
        assert th.sample_size == 1000
        cfg, s, kind = th.propose(LearnerCostState("t"))
        assert s == 1000 and kind == "search"

    def test_sample_up_reanchors_flow2(self):
        th = _thread()
        st = LearnerCostState("t")
        th.propose(st)
        th.tell(0.5)
        st.update(0.5, 1.0)
        st.kappa = 0.01
        th.propose(st)
        th.tell(0.8)  # worse error at bigger sample: becomes the new baseline
        assert th.flow2.best_error == 0.8

    def test_restart_resets_sample_size(self):
        th = _thread(full=100, init=100)  # always at full size
        st = LearnerCostState("t")
        th.flow2.step_lower_bound = 10.0  # force instant convergence
        th.propose(st)
        th.tell(0.5)
        th.propose(st)
        th.tell(0.9)  # triggers converged -> restart
        assert th.flow2.n_restarts >= 1

    def test_tell_without_propose_raises(self):
        th = _thread()
        with pytest.raises(RuntimeError):
            th.tell(0.5)
