"""Tests for the EXTRA_LEARNERS registry and its AutoML integration."""

import numpy as np
import pytest

from repro import AutoML
from repro.core.registry import (
    DEFAULT_LEARNERS,
    EXTRA_LEARNERS,
    all_learners,
    default_estimator_list,
)
from repro.core.space import gaussian_nb_space, knn_space


@pytest.fixture(scope="module")
def xy():
    r = np.random.default_rng(9)
    X = r.standard_normal((300, 5))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    return X, y


class TestRegistry:
    def test_extras_present(self):
        assert set(EXTRA_LEARNERS) == {
            "lrl2", "kneighbor", "gaussian_nb", "xgb_limitdepth"
        }

    def test_extras_not_in_defaults(self):
        """The paper's default estimator list must stay exactly Table 5."""
        for task in ("binary", "multiclass", "regression"):
            assert not set(default_estimator_list(task)) & set(EXTRA_LEARNERS)

    def test_all_learners_merges_without_shadowing(self):
        merged = all_learners()
        for name in DEFAULT_LEARNERS:
            assert merged[name] is DEFAULT_LEARNERS[name]
        for name in EXTRA_LEARNERS:
            assert name in merged

    def test_gaussian_nb_classification_only(self):
        spec = EXTRA_LEARNERS["gaussian_nb"]
        assert spec.supports("binary") and spec.supports("multiclass")
        assert not spec.supports("regression")
        with pytest.raises(ValueError):
            spec.estimator_cls("regression")

    def test_kneighbor_supports_all_tasks(self):
        spec = EXTRA_LEARNERS["kneighbor"]
        for task in ("binary", "multiclass", "regression"):
            assert spec.supports(task)


class TestSpaces:
    def test_knn_space_caps_neighbours_by_data_size(self):
        space = knn_space(10, "binary")
        dom = space.domains["n_neighbors"]
        assert dom.hi <= 5
        assert dom.init <= dom.hi

    def test_knn_space_init_is_cheap(self):
        space = knn_space(100_000, "binary")
        cfg = space.init_config()
        assert cfg["n_neighbors"] == 5
        assert cfg["weights"] == "uniform"

    def test_nb_space_roundtrip(self):
        space = gaussian_nb_space(1000, "binary")
        cfg = space.sample(np.random.default_rng(0))
        u = space.to_unit(cfg)
        back = space.from_unit(u)
        assert back["var_smoothing"] == pytest.approx(cfg["var_smoothing"], rel=1e-9)


class TestAutoMLIntegration:
    def test_fit_with_extra_learners(self, xy):
        X, y = xy
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, task="classification", time_budget=1.5,
                   estimator_list=["kneighbor", "gaussian_nb"], max_iters=12)
        assert automl.best_estimator in ("kneighbor", "gaussian_nb")
        assert automl.predict(X[:10]).shape == (10,)
        p = automl.predict_proba(X[:10])
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_default_fit_never_uses_extras(self, xy):
        X, y = xy
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, task="classification", time_budget=0.5, max_iters=8)
        used = {t.learner for t in automl.search_result.trials}
        assert not used & set(EXTRA_LEARNERS)

    def test_extra_learner_regression(self):
        r = np.random.default_rng(4)
        X = r.standard_normal((250, 4))
        y = X[:, 0] * 2 + np.sin(X[:, 1])
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, task="regression", time_budget=1.0,
                   estimator_list=["kneighbor", "lrl2"], max_iters=10)
        assert automl.best_estimator in ("kneighbor", "lrl2")
        assert np.isfinite(automl.predict(X[:5])).all()

    def test_nb_rejected_for_regression(self, xy):
        X, _ = xy
        y = np.linspace(0.0, 1.0, X.shape[0])
        automl = AutoML()
        with pytest.raises(ValueError, match="does not support"):
            automl.fit(X, y, task="regression", time_budget=0.5,
                       estimator_list=["gaussian_nb"])
