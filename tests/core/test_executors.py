"""Controller-level tests of the pluggable execution engine: serial vs.
virtual-parallel equivalence, trial caching on search results, and real
thread/process-backed searches through the public API."""

import numpy as np
import pytest

import repro.exec.serial as serial_mod
from repro import AutoML
from repro.core.controller import SearchController
from repro.core.evaluate import TrialOutcome
from repro.core.parallel import ParallelSearchController
from repro.core.registry import DEFAULT_LEARNERS, make_spec_from_class
from repro.core.space import RandInt, SearchSpace
from repro.data import make_classification
from repro.exec import SerialExecutor, TrialCache
from repro.learners import LGBMLikeClassifier
from repro.metrics import get_metric


def _learners(names):
    return {n: DEFAULT_LEARNERS[n] for n in names}


@pytest.fixture(scope="module")
def data():
    return make_classification(500, 6, class_sep=1.2, seed=0,
                               name="engine").shuffled(0)


@pytest.fixture(scope="module")
def metric():
    return get_metric("roc_auc")


def _log_fields(result):
    """The deterministic (timing-free) identity of a trial log."""
    return [
        (t.learner, tuple(sorted(t.config.items())), t.sample_size, t.kind,
         t.error, t.improved_global)
        for t in result.trials
    ]


class TestSerialParallelEquivalence:
    def test_identical_trial_logs_with_one_worker(self, data, metric,
                                                  monkeypatch):
        """ParallelSearchController with n_workers=1 reproduces the
        SerialExecutor-backed SearchController trial-for-trial.

        ECI-based learner selection feeds on measured trial costs, so to
        compare the *logic* (not the timer) the executor's work function
        is wrapped to report a deterministic cost per trial.
        """
        real_run_spec = serial_mod.run_spec

        def deterministic_cost(d, spec):
            out = real_run_spec(d, spec)
            return TrialOutcome(
                error=out.error,
                cost=1e-3 * spec.sample_size * (1 + len(spec.config)),
                model=out.model,
            )

        monkeypatch.setattr(serial_mod, "run_spec", deterministic_cost)
        kw = dict(
            time_budget=1e6,
            seed=3,
            init_sample_size=100,
            resampling_override="holdout",
            trial_cache=False,
        )
        sequential = SearchController(
            data, _learners(("lgbm", "rf", "lrl1")), metric,
            executor=SerialExecutor(data), max_iters=12, **kw,
        ).run()
        parallel = ParallelSearchController(
            data, _learners(("lgbm", "rf", "lrl1")), metric,
            n_workers=1, backend="virtual", max_trials=12, **kw,
        ).run()
        assert sequential.n_trials == parallel.n_trials == 12
        assert _log_fields(sequential) == _log_fields(parallel)
        assert sequential.best_error == parallel.best_error
        assert sequential.best_learner == parallel.best_learner

    def test_equivalence_holds_under_injected_crashes(self, data, metric,
                                                      monkeypatch):
        """Fault decisions are pure functions of (plan seed, site, trial
        identity, attempt) — never of scheduling — so a faulted search
        with retries produces the same trial log, the same per-trial
        attempt counts, and the same best answer on the serial and the
        virtual-parallel substrate."""
        from repro.exec import RetryPolicy
        from repro.faults import FaultPlan, install

        real_run_spec = serial_mod.run_spec

        def deterministic_cost(d, spec):
            out = real_run_spec(d, spec)
            return TrialOutcome(
                error=out.error,
                cost=1e-3 * spec.sample_size * (1 + len(spec.config)),
                model=out.model, failure=out.failure,
            )

        monkeypatch.setattr(serial_mod, "run_spec", deterministic_cost)
        kw = dict(
            time_budget=1e6,
            seed=3,
            init_sample_size=100,
            resampling_override="holdout",
            trial_cache=False,
            retry_policy=RetryPolicy(max_attempts=3, backoff_base=0.0,
                                     jitter=0.0),
        )
        plan_spec = {"seed": 0, "rules": [
            {"site": "worker.crash", "probability": 0.3},
        ]}

        def faulted(controller_cls, **extra):
            prev = install(FaultPlan.from_spec(plan_spec))
            try:
                return controller_cls(
                    data, _learners(("lgbm", "rf", "lrl1")), metric,
                    **kw, **extra,
                ).run()
            finally:
                install(prev)

        sequential = faulted(SearchController,
                             executor=SerialExecutor(data), max_iters=12)
        parallel = faulted(ParallelSearchController,
                           n_workers=1, backend="virtual", max_trials=12)
        attempts = [t.attempts for t in sequential.trials]
        assert sequential.n_trials == parallel.n_trials == 12
        assert _log_fields(sequential) == _log_fields(parallel)
        assert attempts == [t.attempts for t in parallel.trials]
        assert sum(attempts) > 12  # the plan really injected crashes
        assert sequential.best_error == parallel.best_error
        assert sequential.best_learner == parallel.best_learner


class _TinyGridLearner(LGBMLikeClassifier):
    """One integer hyperparameter with 3 values: FLOW2's unit-cube steps
    round onto a tiny grid, so duplicate proposals are guaranteed."""

    @classmethod
    def search_space(cls, data_size, task):
        return SearchSpace({"tree_num": RandInt(2, 4, init=2)})


class TestTrialCacheOnSearchResult:
    def test_duplicate_proposals_short_circuited(self, data, metric):
        res = SearchController(
            data,
            {"tinygrid": make_spec_from_class("tinygrid", _TinyGridLearner)},
            metric,
            time_budget=30.0, max_iters=10, seed=0,
            init_sample_size=data.n,  # single fidelity: configs collide
            resampling_override="holdout",
        ).run()
        assert res.n_trials == 10
        # only 3 distinct configs exist, so >= 7 of 10 trials must hit
        assert res.cache_hits >= 1
        assert res.cache_hits >= res.n_trials - 3

    def test_cache_disabled(self, data, metric):
        res = SearchController(
            data,
            {"tinygrid": make_spec_from_class("tinygrid", _TinyGridLearner)},
            metric,
            time_budget=30.0, max_iters=6, seed=0,
            init_sample_size=data.n,
            resampling_override="holdout",
            trial_cache=False,
        ).run()
        assert res.cache_hits == 0

    def test_shared_cache_warm_restart(self, data, metric):
        """Re-running a search against the same TrialCache answers the
        repeated proposals from storage — re-tuning is (nearly) free."""
        cache = TrialCache()
        kw = dict(
            time_budget=30.0, max_iters=8, seed=5,
            init_sample_size=200, resampling_override="holdout",
            use_sampling=False, trial_cache=cache,
        )
        first = SearchController(
            data, _learners(("lgbm",)), metric, **kw,
        ).run()
        hits_before = cache.hits
        second = SearchController(
            data, _learners(("lgbm",)), metric, **kw,
        ).run()
        # single learner + no sampling: the proposal sequence is
        # rng-driven only, so every trial of the re-run is a cache hit
        assert cache.hits - hits_before == second.n_trials
        assert _log_fields(first) == _log_fields(second)

    def test_cache_hits_survive_serialization(self, data, metric, tmp_path):
        from repro.core.serialize import load_result, save_result

        res = SearchController(
            data,
            {"tinygrid": make_spec_from_class("tinygrid", _TinyGridLearner)},
            metric,
            time_budget=30.0, max_iters=8, seed=0,
            init_sample_size=data.n, resampling_override="holdout",
        ).run()
        path = str(tmp_path / "log.json")
        save_result(res, path)
        loaded = load_result(path)
        assert loaded.cache_hits == res.cache_hits
        assert loaded.backend == res.backend
        assert loaded.n_workers == res.n_workers


class TestRealBackendsThroughAutoML:
    def test_process_backend_acceptance(self):
        """AutoML.fit(n_workers=2, backend='process') completes a search
        on a generator dataset with a reproducible trial log."""
        d = make_classification(600, 6, class_sep=1.2, seed=2, name="gen")
        logs = []
        for _ in range(2):
            am = AutoML(seed=0, init_sample_size=150)
            am.fit(
                d.X, d.y, task="classification",
                time_budget=30.0, max_iters=6,
                n_workers=2, backend="process",
                estimator_list=["lgbm"],
                use_sampling=False,  # proposals independent of trial timing
                resampling="holdout",
                cv_instance_threshold=0,
            )
            res = am.search_result
            assert res.backend == "process" and res.n_workers == 2
            assert res.n_trials == 6
            assert np.isfinite(res.best_error)
            logs.append(_log_fields(res))
        assert logs[0] == logs[1]  # same seed -> same trial log

    def test_thread_backend_fit_predicts(self, data):
        am = AutoML(seed=1, init_sample_size=150)
        am.fit(
            data.X, data.y, task="binary", time_budget=1.0,
            n_workers=2, backend="thread",
            estimator_list=["lgbm", "rf"], cv_instance_threshold=0,
        )
        assert am.search_result.backend == "thread"
        pred = am.predict(data.X[:10])
        assert set(np.unique(pred)) <= {0, 1}

    def test_default_backend_for_multiple_workers(self, data):
        am = AutoML(seed=1, init_sample_size=150)
        am.fit(data.X, data.y, task="binary", time_budget=0.8,
               n_workers=2, estimator_list=["lgbm"], cv_instance_threshold=0)
        assert am.search_result.backend == "thread"

    def test_invalid_worker_count(self, data):
        with pytest.raises(ValueError, match="n_workers"):
            AutoML().fit(data.X, data.y, task="binary", time_budget=0.5,
                         n_workers=0)

    def test_invalid_backend(self, data):
        with pytest.raises(ValueError, match="unknown backend"):
            AutoML().fit(data.X, data.y, task="binary", time_budget=0.5,
                         n_workers=2, backend="quantum")


class TestParallelControllerOptions:
    def test_stop_at_error_real_backend(self, data, metric):
        res = ParallelSearchController(
            data, _learners(("lgbm",)), metric,
            time_budget=20.0, n_workers=2, seed=0, backend="thread",
            init_sample_size=150, resampling_override="holdout",
            stop_at_error=0.45,
        ).run()
        assert res.best_error <= 0.45
        assert res.wall_time < 19.0

    def test_roundrobin_selection(self, data, metric):
        res = ParallelSearchController(
            data, _learners(("lgbm", "rf")), metric,
            time_budget=20.0, n_workers=1, seed=0, backend="virtual",
            init_sample_size=150, resampling_override="holdout",
            learner_selection="roundrobin", max_trials=6,
        ).run()
        assert [t.learner for t in res.trials] == ["lgbm", "rf"] * 3

    def test_starting_points_respected(self, data, metric):
        start = {"lgbm": {"tree_num": 11}}
        res = ParallelSearchController(
            data, _learners(("lgbm",)), metric,
            time_budget=20.0, n_workers=1, seed=0, backend="virtual",
            init_sample_size=150, resampling_override="holdout",
            starting_points=start, max_trials=1,
        ).run()
        assert res.trials[0].config["tree_num"] == 11
