"""Further property-based tests: serialisation, resampling rule,
controller trial-log invariants, and metric/space interplay."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import SearchController, SearchResult, TrialRecord
from repro.core.registry import DEFAULT_LEARNERS
from repro.core.resampling import choose_resampling
from repro.core.serialize import result_from_dict, result_to_dict
from repro.data import Dataset
from repro.metrics import get_metric

# ------------------------------------------------------------------ strategies
_configs = st.dictionaries(
    st.sampled_from(["tree_num", "leaf_num", "learning_rate", "C"]),
    st.one_of(st.integers(1, 4096), st.floats(1e-6, 1e3,
                                              allow_nan=False)),
    max_size=4,
)

_trials = st.builds(
    TrialRecord,
    iteration=st.integers(1, 1000),
    automl_time=st.floats(0, 1e4, allow_nan=False),
    learner=st.sampled_from(list(DEFAULT_LEARNERS)),
    config=_configs,
    sample_size=st.integers(1, 10**6),
    resampling=st.sampled_from(["cv", "holdout"]),
    error=st.one_of(st.floats(0, 1, allow_nan=False), st.just(float("inf"))),
    cost=st.floats(1e-6, 1e4, allow_nan=False),
    kind=st.sampled_from(["search", "sample_up"]),
    improved_global=st.booleans(),
)


class TestSerializeProperties:
    @settings(max_examples=40, deadline=None)
    @given(trials=st.lists(_trials, max_size=8), wall=st.floats(0, 1e5))
    def test_roundtrip_any_result(self, trials, wall):
        res = SearchResult(
            best_learner=trials[0].learner if trials else None,
            best_config=dict(trials[0].config) if trials else None,
            best_sample_size=trials[0].sample_size if trials else 0,
            best_error=min((t.error for t in trials), default=float("inf")),
            resampling="cv",
            trials=trials,
            wall_time=wall,
        )
        back = result_from_dict(result_to_dict(res))
        assert back.best_learner == res.best_learner
        assert back.wall_time == pytest.approx(res.wall_time)
        assert len(back.trials) == len(res.trials)
        for a, b in zip(res.trials, back.trials):
            assert a.learner == b.learner
            assert a.sample_size == b.sample_size
            assert (a.error == b.error) or (
                a.error == pytest.approx(b.error, rel=1e-12)
            )
            for k, v in a.config.items():
                assert b.config[k] == v or b.config[k] == pytest.approx(v)


class TestResamplingRuleProperties:
    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(1, 10**7), d=st.integers(1, 10**4),
           budget=st.floats(0.1, 10**5))
    def test_rule_is_deterministic_and_binary(self, n, d, budget):
        r = choose_resampling(n, d, budget)
        assert r in ("cv", "holdout")
        assert r == choose_resampling(n, d, budget)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 10**6), d=st.integers(1, 100),
           budget=st.floats(0.1, 1e4))
    def test_more_budget_never_flips_cv_to_holdout(self, n, d, budget):
        """Property 2: larger budgets favour (never disfavour) CV."""
        if choose_resampling(n, d, budget) == "cv":
            assert choose_resampling(n, d, budget * 10) == "cv"

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 10**6), d=st.integers(1, 100),
           budget=st.floats(0.1, 1e4))
    def test_smaller_data_never_flips_cv_to_holdout(self, n, d, budget):
        """Property 2: smaller samples favour (never disfavour) CV."""
        if choose_resampling(n, d, budget) == "cv" and n > 1:
            assert choose_resampling(n // 2, d, budget) == "cv"

    def test_paper_thresholds_exact(self):
        # 100K instances boundary
        assert choose_resampling(99_999, 1, 3600) == "cv"
        assert choose_resampling(100_000, 1, 3600) == "holdout"
        # 10M per hour rate boundary: 10M features*instances at 1h budget
        assert choose_resampling(10_000, 999, 3600.0) == "cv"
        assert choose_resampling(10_000, 1001, 3600.0) == "holdout"


def _tiny_data(seed):
    r = np.random.default_rng(seed)
    X = r.standard_normal((240, 4))
    y = (X[:, 0] > 0).astype(int)
    return Dataset("tiny", X, y, "binary").shuffled(seed)


class TestControllerInvariants:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_trial_log_invariants(self, seed):
        data = _tiny_data(seed)
        metric = get_metric("roc_auc")
        learners = {n: DEFAULT_LEARNERS[n] for n in ("lgbm", "rf")}
        controller = SearchController(
            data, learners, metric, time_budget=1.0, seed=seed,
            init_sample_size=80, max_iters=10, cv_instance_threshold=0,
        )
        res = controller.run()
        assert res.n_trials >= 1
        # iteration numbering is 1..n and automl_time is monotone
        assert [t.iteration for t in res.trials] == list(
            range(1, res.n_trials + 1)
        )
        times = [t.automl_time for t in res.trials]
        assert times == sorted(times)
        # best_error equals the min over the log, and improved_global marks
        # exactly the strict-improvement prefix minima
        finite = [t.error for t in res.trials if np.isfinite(t.error)]
        assert res.best_error == pytest.approx(min(finite))
        best = np.inf
        for t in res.trials:
            assert t.improved_global == (t.error < best)
            best = min(best, t.error)
        # sample sizes never exceed the data and never go below 1
        assert all(1 <= t.sample_size <= data.n for t in res.trials)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 20))
    def test_first_trial_is_deterministic_low_cost_init(self, seed):
        """The search start is deterministic: the first trial always uses
        the learner's Table-5 low-cost init at the initial sample size.

        (Full trial sequences are *not* replay-identical by design — the
        sample-up decision compares ECIs built from measured wall-clock
        costs, so two runs may diverge once timing noise enters.  The
        hyperparameter proposals themselves are seeded; that determinism
        is covered by the FLOW2 tests.)
        """
        def first_trial():
            data = _tiny_data(seed)
            metric = get_metric("roc_auc")
            learners = {"lgbm": DEFAULT_LEARNERS["lgbm"]}
            c = SearchController(
                data, learners, metric, time_budget=30.0, seed=seed,
                init_sample_size=80, max_iters=2, cv_instance_threshold=0,
            )
            return c.run().trials[0]

        a, b = first_trial(), first_trial()
        expected = DEFAULT_LEARNERS["lgbm"].space_fn(240, "binary").init_config()
        for t in (a, b):
            assert t.sample_size == 80
            for k, v in expected.items():
                assert t.config[k] == pytest.approx(v)
        assert a.error == pytest.approx(b.error)
