"""Direct tests of the SearchController loop."""

import numpy as np
import pytest

from repro.core.controller import SearchController
from repro.core.registry import DEFAULT_LEARNERS
from repro.data import make_classification
from repro.metrics import get_metric


def _controller(**kw):
    data = make_classification(1200, 6, class_sep=1.2, seed=0,
                               name="ctl").shuffled(0)
    defaults = dict(
        data=data,
        learners={n: DEFAULT_LEARNERS[n] for n in ("lgbm", "rf", "lrl1")},
        metric=get_metric("roc_auc"),
        time_budget=1.0,
        seed=0,
        init_sample_size=150,
        cv_instance_threshold=0,  # force holdout
    )
    defaults.update(kw)
    return SearchController(**defaults)


class TestControllerLoop:
    def test_produces_trials_and_best(self):
        res = _controller().run()
        assert res.n_trials >= 3
        assert res.best_learner in ("lgbm", "rf", "lrl1")
        assert res.best_error == min(
            t.error for t in res.trials if np.isfinite(t.error)
        )

    def test_max_iters_cap(self):
        res = _controller(time_budget=30.0, max_iters=5).run()
        assert res.n_trials == 5

    def test_first_learner_is_cheapest(self):
        res = _controller().run()
        assert res.trials[0].learner == "lgbm"

    def test_trials_have_eci_snapshots(self):
        res = _controller(max_iters=4, time_budget=10.0).run()
        for t in res.trials:
            assert set(t.eci_snapshot) == {"lgbm", "rf", "lrl1"}
            assert all(v > 0 for v in t.eci_snapshot.values())

    def test_roundrobin_selection(self):
        res = _controller(learner_selection="roundrobin", max_iters=6,
                          time_budget=10.0).run()
        assert [t.learner for t in res.trials[:3]] == ["lgbm", "rf", "lrl1"]

    def test_resampling_override(self):
        res = _controller(resampling_override="cv", max_iters=2,
                          time_budget=10.0).run()
        assert res.resampling == "cv"
        assert all(t.resampling == "cv" for t in res.trials)

    def test_keep_models(self):
        res = _controller(keep_models=True, max_iters=3, time_budget=10.0).run()
        assert res.best_model is not None

    def test_budget_zero_trials_if_expired(self):
        # tiny budget can still run zero or very few trials without crashing
        res = _controller(time_budget=0.01).run()
        assert res.n_trials <= 5
        assert res.wall_time < 1.0


class TestControllerValidation:
    def test_bad_learner_selection(self):
        with pytest.raises(ValueError):
            _controller(learner_selection="greedy")

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            _controller(time_budget=0)

    def test_no_learners(self):
        with pytest.raises(ValueError):
            _controller(learners={})
