"""Tests for the meta-learning portfolio (the paper's §6 future-work item)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AutoML
from repro.core.metalearning import (
    META_FEATURE_NAMES,
    MetaPortfolio,
    PortfolioEntry,
    build_portfolio,
    meta_features,
)
from repro.data import Dataset


def _binary(n=300, d=5, seed=0):
    r = np.random.default_rng(seed)
    X = r.standard_normal((n, d))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return Dataset(f"bin{seed}", X, y, "binary")


def _regression(n=300, d=4, seed=0):
    r = np.random.default_rng(seed)
    X = r.standard_normal((n, d))
    y = X[:, 0] * 2 + np.sin(X[:, 1])
    return Dataset(f"reg{seed}", X, y, "regression")


class TestMetaFeatures:
    def test_vector_shape_and_names(self):
        v = meta_features(_binary())
        assert v.shape == (len(META_FEATURE_NAMES),)
        assert np.isfinite(v).all()

    def test_task_one_hot(self):
        vb = meta_features(_binary())
        vr = meta_features(_regression())
        names = list(META_FEATURE_NAMES)
        assert vb[names.index("is_binary")] == 1.0
        assert vb[names.index("is_regression")] == 0.0
        assert vr[names.index("is_regression")] == 1.0

    def test_size_monotone(self):
        small = meta_features(_binary(n=100))
        big = meta_features(_binary(n=10_000))
        assert big[0] > small[0]  # log_n

    def test_class_balance(self):
        r = np.random.default_rng(0)
        X = r.standard_normal((400, 3))
        y_bal = (np.arange(400) % 2).astype(int)
        y_imb = (np.arange(400) < 390).astype(int)
        i = list(META_FEATURE_NAMES).index("class_entropy_ratio")
        e_bal = meta_features(Dataset("b", X, y_bal, "binary"))[i]
        e_imb = meta_features(Dataset("i", X, y_imb, "binary"))[i]
        assert e_bal == pytest.approx(1.0, abs=1e-9)
        assert e_imb < 0.3

    def test_skew_detection(self):
        r = np.random.default_rng(1)
        X_sym = r.standard_normal((500, 4))
        X_skew = np.exp(r.standard_normal((500, 4)) * 2)
        y = (np.arange(500) % 2).astype(int)
        i = list(META_FEATURE_NAMES).index("frac_skewed_features")
        s_sym = meta_features(Dataset("s", X_sym, y, "binary"))[i]
        s_skew = meta_features(Dataset("k", X_skew, y, "binary"))[i]
        assert s_skew > s_sym

    def test_probe_caps_cost_on_wide_data(self):
        r = np.random.default_rng(2)
        X = r.standard_normal((100, 500))
        y = (np.arange(100) % 2).astype(int)
        v = meta_features(Dataset("w", X, y, "binary"), probe_cols=10)
        assert np.isfinite(v).all()

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(20, 500), d=st.integers(1, 30), seed=st.integers(0, 99))
    def test_property_always_finite(self, n, d, seed):
        r = np.random.default_rng(seed)
        X = r.standard_normal((n, d))
        y = r.integers(0, 2, n)
        if np.unique(y).size < 2:
            y[0] = 1 - y[0]
        assert np.isfinite(meta_features(Dataset("p", X, y, "binary"))).all()


def _entry(name, feats, learner="lgbm", cfg=None, err=0.1):
    return PortfolioEntry(
        dataset=name,
        features=np.asarray(feats, dtype=np.float64),
        best_configs={learner: cfg or {"tree_num": 40, "leaf_num": 12}},
        best_learner=learner,
        best_error=err,
    )


class TestMetaPortfolio:
    def test_empty_portfolio_raises(self):
        with pytest.raises(ValueError):
            MetaPortfolio().nearest(_binary())

    def test_nearest_prefers_same_task_type(self):
        fb = meta_features(_binary())
        fr = meta_features(_regression())
        p = MetaPortfolio([_entry("bin", fb, "lgbm"), _entry("reg", fr, "rf")])
        assert p.nearest(_binary(seed=5), k=1)[0].dataset == "bin"
        assert p.nearest(_regression(seed=5), k=1)[0].dataset == "reg"

    def test_suggest_nearest_wins_per_learner(self):
        fb = meta_features(_binary())
        near = _entry("near", fb, "lgbm", {"tree_num": 99})
        far = _entry("far", fb + 10.0, "lgbm", {"tree_num": 1})
        p = MetaPortfolio([far, near])
        pts = p.suggest(_binary(seed=2), k=2)
        assert pts["lgbm"]["tree_num"] == 99

    def test_suggest_merges_learners_across_neighbours(self):
        fb = meta_features(_binary())
        p = MetaPortfolio([
            _entry("a", fb, "lgbm", {"tree_num": 10}),
            _entry("b", fb + 0.01, "xgboost", {"tree_num": 20}),
        ])
        pts = p.suggest(_binary(seed=3), k=2)
        assert set(pts) == {"lgbm", "xgboost"}

    def test_estimator_priority(self):
        fb = meta_features(_binary())
        p = MetaPortfolio([
            _entry("a", fb, "lgbm"),
            _entry("b", fb + 0.01, "lgbm"),
            _entry("c", fb + 0.02, "rf"),
        ])
        prio = p.suggest_estimator_priority(_binary(seed=4), k=3)
        assert prio[0] == "lgbm"

    def test_save_load_roundtrip(self, tmp_path):
        fb = meta_features(_binary())
        p = MetaPortfolio([_entry("a", fb, "lgbm", {"tree_num": 7, "lr": 0.5})])
        path = str(tmp_path / "portfolio.json")
        p.save(path)
        q = MetaPortfolio.load(path)
        assert len(q) == 1
        assert q.entries[0].best_configs["lgbm"]["tree_num"] == 7
        assert np.allclose(q.entries[0].features, fb)

    def test_add_refreshes_normalisation(self):
        p = MetaPortfolio()
        p.add(_entry("a", meta_features(_binary()), "lgbm"))
        assert len(p) == 1
        assert p.nearest(_binary(), k=1)[0].dataset == "a"


class TestBuildAndWarmStart:
    @pytest.fixture(scope="class")
    def portfolio(self):
        corpus = [("c0", _binary(seed=10)), ("c1", _binary(seed=11))]
        return build_portfolio(
            corpus, time_budget=1.0, init_sample_size=100, max_iters=8
        )

    def test_build_harvests_entries(self, portfolio):
        assert len(portfolio) == 2
        for e in portfolio.entries:
            assert e.best_learner in e.best_configs
            assert np.isfinite(e.best_error)

    def test_suggestions_feed_fit(self, portfolio):
        data = _binary(seed=20)
        pts = portfolio.suggest(data, k=2)
        automl = AutoML(init_sample_size=100)
        automl.fit(data.X, data.y, task="binary", time_budget=1.0,
                   max_iters=6, starting_points=pts)
        # the warm-started learner's first trial uses the suggested config
        first = {}
        for t in automl.search_result.trials:
            first.setdefault(t.learner, t.config)
        for learner, cfg in pts.items():
            if learner in first:
                shared = set(cfg) & set(first[learner])
                assert shared and all(
                    first[learner][k] == cfg[k] for k in shared
                )
                break
        else:
            pytest.fail("no warm-started learner was tried")
