"""Direct tests for the shared BudgetedRunner."""

import numpy as np
import pytest

from repro.baselines import BudgetedRunner
from repro.core.registry import DEFAULT_LEARNERS
from repro.data import make_classification
from repro.metrics import get_metric


@pytest.fixture()
def runner():
    data = make_classification(500, 4, class_sep=1.5, seed=0,
                               name="br").shuffled(0)
    return BudgetedRunner(
        data,
        {"lgbm": DEFAULT_LEARNERS["lgbm"]},
        get_metric("roc_auc"),
        time_budget=5.0,
        resampling="holdout",
        seed=0,
    )


class TestBudgetedRunner:
    def test_run_trial_appends_record(self, runner):
        err = runner.run_trial("lgbm", {"tree_num": 4, "leaf_num": 4})
        assert len(runner.trials) == 1
        t = runner.trials[0]
        assert t.error == err
        assert t.learner == "lgbm"
        assert t.iteration == 1

    def test_best_tracking(self, runner):
        e1 = runner.run_trial("lgbm", {"tree_num": 4, "leaf_num": 4})
        e2 = runner.run_trial("lgbm", {"tree_num": 40, "leaf_num": 16})
        assert runner.best_error == min(e1, e2)
        res = runner.result()
        assert res.best_error == min(e1, e2)
        assert res.best_learner == "lgbm"

    def test_sample_size_defaults_to_full(self, runner):
        runner.run_trial("lgbm", {"tree_num": 4, "leaf_num": 4})
        assert runner.trials[0].sample_size == runner.data.n

    def test_explicit_sample_size(self, runner):
        runner.run_trial("lgbm", {"tree_num": 4, "leaf_num": 4}, sample_size=100)
        assert runner.trials[0].sample_size == 100

    def test_result_with_no_trials(self, runner):
        res = runner.result()
        assert res.best_learner is None
        assert res.n_trials == 0
        assert not np.isfinite(res.best_error)

    def test_out_of_budget_flag(self):
        data = make_classification(200, 3, seed=1, name="b2").shuffled(0)
        r = BudgetedRunner(
            data, {"lgbm": DEFAULT_LEARNERS["lgbm"]}, get_metric("roc_auc"),
            time_budget=1e-9, resampling="holdout",
        )
        assert r.out_of_budget
