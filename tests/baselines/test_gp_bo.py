"""Tests for the GP-EI / EIperSec baseline."""

import numpy as np
import pytest

from repro.baselines.gp_bo import GPEIBaseline, GPRegressor, expected_improvement
from repro.data import Dataset
from repro.metrics import get_metric


class TestGPRegressor:
    def test_interpolates_training_points(self):
        rng = np.random.default_rng(0)
        X = rng.random((15, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1]
        gp = GPRegressor(noise=1e-6).fit(X, y)
        mu, sd = gp.predict(X)
        assert np.allclose(mu, y, atol=1e-2)
        assert (sd < 0.2).all()

    def test_uncertainty_grows_away_from_data(self):
        X = np.array([[0.5, 0.5]])
        gp = GPRegressor().fit(X, np.array([1.0]))
        _, sd_near = gp.predict(np.array([[0.5, 0.5]]))
        _, sd_far = gp.predict(np.array([[0.0, 0.0]]))
        assert sd_far[0] > sd_near[0]

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GPRegressor().predict(np.zeros((1, 2)))


class TestExpectedImprovement:
    def test_zero_sd_point_below_best(self):
        ei = expected_improvement(np.array([0.5]), np.array([1e-9]),
                                  best=0.4)
        assert ei[0] == pytest.approx(0.0, abs=1e-6)

    def test_better_mean_higher_ei(self):
        sd = np.array([0.1, 0.1])
        ei = expected_improvement(np.array([0.2, 0.4]), sd, best=0.5)
        assert ei[0] > ei[1]

    def test_higher_uncertainty_higher_ei_at_same_mean(self):
        mu = np.array([0.5, 0.5])
        ei = expected_improvement(mu, np.array([0.3, 0.05]), best=0.5)
        assert ei[0] > ei[1]


class TestGPEIBaseline:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(7)
        X = rng.standard_normal((700, 5))
        y = ((X[:, 0] + X[:, 1] ** 2) > 0.5).astype(int)
        return Dataset("gp", X, y, "binary").shuffled(0)

    @pytest.mark.parametrize("acq", ["ei", "ei_per_sec"])
    def test_search_runs(self, acq, data):
        sys = GPEIBaseline(acquisition=acq, estimator_list=["lgbm", "rf"],
                           cv_instance_threshold=0)
        res = sys.search(data, get_metric("roc_auc"), time_budget=2.0, seed=0)
        # randomly sampled boosting configs are *expensive* (that is the
        # cost-unawareness the paper contrasts FLAML against), so only a
        # couple of trials fit in a small budget
        assert res.n_trials >= 2
        assert np.isfinite(res.best_error)

    def test_invalid_acquisition(self):
        with pytest.raises(ValueError):
            GPEIBaseline(acquisition="ucb")

    def test_names(self):
        assert GPEIBaseline("ei").name == "GP-EI"
        assert GPEIBaseline("ei_per_sec").name == "GP-EIperSec"
