"""Direct tests for the TPE sampler and grid sampling helpers."""

import numpy as np
import pytest

from repro.baselines import TPESampler, grid_sample
from repro.core.space import LogUniform, SearchSpace, Uniform


def _space():
    return SearchSpace({"a": Uniform(0.0, 1.0), "b": LogUniform(0.01, 10.0)})


class TestTPESampler:
    def test_random_until_min_points(self):
        rng = np.random.default_rng(0)
        s = TPESampler(_space(), rng, min_points=5)
        # fewer than min_points observations -> uniform sampling, all valid
        for _ in range(4):
            cfg = s.propose()
            assert 0.0 <= cfg["a"] <= 1.0
            s.observe(cfg, rng.random())

    def test_model_based_after_enough_points(self):
        rng = np.random.default_rng(1)
        space = _space()
        s = TPESampler(space, rng, min_points=8, gamma=0.3)
        # plant a clear optimum near a=0.2
        for _ in range(40):
            cfg = space.sample(rng)
            err = (cfg["a"] - 0.2) ** 2
            s.observe(cfg, err)
        proposals = [s.propose()["a"] for _ in range(20)]
        # proposals concentrate near the good region
        assert np.median(np.abs(np.array(proposals) - 0.2)) < 0.25

    def test_infinite_errors_ignored(self):
        rng = np.random.default_rng(2)
        s = TPESampler(_space(), rng)
        s.observe({"a": 0.5, "b": 1.0}, np.inf)
        assert len(s._y) == 0

    def test_kde_logpdf_peaks_at_centers(self):
        rng = np.random.default_rng(3)
        s = TPESampler(_space(), rng)
        pts = np.array([[0.5, 0.5]])
        near = s._kde_logpdf(np.array([[0.5, 0.5]]), pts)
        far = s._kde_logpdf(np.array([[0.0, 0.0]]), pts)
        assert near[0] > far[0]


class TestGridSample:
    def test_values_on_grid(self):
        rng = np.random.default_rng(0)
        space = SearchSpace({"a": Uniform(0.0, 1.0)})
        levels = set(np.linspace(0, 1, 5).round(9))
        for _ in range(30):
            v = round(grid_sample(space, rng, grid_points=5)["a"], 9)
            assert v in levels

    def test_middle_returns_center(self):
        rng = np.random.default_rng(0)
        space = SearchSpace({"a": Uniform(0.0, 1.0)})
        assert grid_sample(space, rng, grid_points=5, middle=True)["a"] == 0.5

    def test_invalid_grid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            grid_sample(_space(), rng, grid_points=1)
