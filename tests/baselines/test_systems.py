"""Tests for the comparator AutoML systems (small budgets)."""

import numpy as np
import pytest

from repro.baselines import (
    ABLATIONS,
    BOHB,
    AutoSklearnLike,
    CloudAutoMLLike,
    FLAMLSystem,
    H2OLike,
    RandomSearch,
    TPOTLike,
    make_ablation,
)
from repro.data import Dataset
from repro.metrics import get_metric

BUDGET = 1.0
NO_CV = dict(cv_instance_threshold=0)  # force holdout => fast trials


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    X = rng.standard_normal((900, 6))
    w = rng.standard_normal(6)
    y = ((X @ w + 0.3 * rng.standard_normal(900)) > 0).astype(int)
    return Dataset("t", X, y, "binary").shuffled(0)


@pytest.fixture(scope="module")
def metric():
    return get_metric("roc_auc")


ALL_SYSTEMS = [
    lambda: FLAMLSystem(init_sample_size=150, **NO_CV),
    lambda: BOHB(**NO_CV),
    lambda: AutoSklearnLike(**NO_CV),
    lambda: CloudAutoMLLike(startup_overhead=0.1, **NO_CV),
    lambda: TPOTLike(population_size=6, **NO_CV),
    lambda: H2OLike(**NO_CV),
    lambda: RandomSearch(**NO_CV),
]


@pytest.mark.parametrize("factory", ALL_SYSTEMS)
class TestSystemContract:
    def test_produces_valid_result(self, factory, data, metric):
        res = factory().search(data, metric, time_budget=BUDGET, seed=0)
        assert res.n_trials >= 1
        assert res.best_learner is not None
        assert np.isfinite(res.best_error)
        assert 0.0 <= res.best_error <= 1.0  # 1 - auc
        # trial log consistency
        for t in res.trials:
            assert t.cost > 0
            assert t.sample_size <= data.n
        times = [t.automl_time for t in res.trials]
        assert times == sorted(times)

    def test_budget_not_grossly_exceeded(self, factory, data, metric):
        res = factory().search(data, metric, time_budget=BUDGET, seed=1)
        assert res.wall_time < BUDGET * 3 + 1.0

    def test_best_error_is_min_of_trials(self, factory, data, metric):
        res = factory().search(data, metric, time_budget=BUDGET, seed=2)
        assert res.best_error == pytest.approx(min(t.error for t in res.trials))


class TestSystemSpecifics:
    def test_flaml_cost_ramp(self, data, metric):
        """FLAML's defining behaviour: early trials are cheap (small sample
        size), later trials can be expensive."""
        res = FLAMLSystem(init_sample_size=100, **NO_CV).search(
            data, metric, time_budget=2.0, seed=0
        )
        assert res.trials[0].sample_size == 100
        # either the sample size grew (ECI2 won at some point), or cheap
        # small-sample improvements kept coming the whole budget — both are
        # the intended adaptive behaviour; what must NOT happen is starting
        # at full size
        grew = max(t.sample_size for t in res.trials) > 100
        assert grew or res.n_trials >= 25

    def test_bohb_uses_subsampling_rungs(self, data, metric):
        # small bracket + cheap learner only; a generous wall-clock budget
        # with a deterministic max_trials cap guarantees the
        # successive-halving promotion happens regardless of machine load
        res = BOHB(s_max=1, min_sample=50, estimator_list=["lgbm"],
                   max_trials=10, **NO_CV).search(
            data, metric, time_budget=60.0, seed=0)
        sizes = {t.sample_size for t in res.trials}
        assert len(sizes) > 1  # successive-halving fidelities
        # the bracket starts at n / eta^s and promotes to the full size
        assert max(sizes) == data.n

    def test_max_trials_caps_all_runners(self, data, metric):
        res = RandomSearch(max_trials=3, **NO_CV).search(
            data, metric, time_budget=60.0, seed=0)
        assert res.n_trials == 3

    def test_autosklearn_warm_start_order(self, data, metric):
        res = AutoSklearnLike(**NO_CV).search(data, metric, time_budget=BUDGET, seed=0)
        # the portfolio starts with lgbm configs
        assert res.trials[0].learner == "lgbm"
        assert res.trials[0].config["tree_num"] == 100

    def test_cloud_overhead_delays_first_trial(self, data, metric):
        res = CloudAutoMLLike(startup_overhead=0.4, **NO_CV).search(
            data, metric, time_budget=BUDGET, seed=0
        )
        assert res.trials[0].automl_time >= 0.4

    def test_h2o_learner_order(self, data, metric):
        res = H2OLike(**NO_CV).search(data, metric, time_budget=BUDGET, seed=0)
        first_learner = res.trials[0].learner
        assert first_learner == "rf"  # manual order starts with forests

    def test_tpot_population_generation(self, data, metric):
        res = TPOTLike(population_size=5, **NO_CV).search(
            data, metric, time_budget=BUDGET, seed=0
        )
        assert res.n_trials >= 2


class TestAblations:
    def test_registry(self):
        assert set(ABLATIONS) == {"roundrobin", "fulldata", "cv"}

    def test_unknown_ablation(self):
        with pytest.raises(ValueError):
            make_ablation("nope")

    def test_roundrobin_cycles_learners(self, data, metric):
        sys = make_ablation("roundrobin", init_sample_size=100, **NO_CV)
        res = sys.search(data, metric, time_budget=BUDGET, seed=0)
        first_six = [t.learner for t in res.trials[:6]]
        assert len(set(first_six)) == len(first_six)  # all distinct: a cycle

    def test_fulldata_never_subsamples(self, data, metric):
        sys = make_ablation("fulldata", **NO_CV)
        res = sys.search(data, metric, time_budget=BUDGET, seed=0)
        assert all(t.sample_size == data.n for t in res.trials)

    def test_cv_forced(self, data, metric):
        sys = make_ablation("cv", init_sample_size=100)
        res = sys.search(data, metric, time_budget=BUDGET, seed=0)
        assert res.resampling == "cv"
