"""Serving-plane robustness: admission control, queue saturation,
deadlines, the HTTP 429/503 shed contract, and registry quarantine with
alias-history fallback."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultPlan, install
from repro.serve import ModelServer, build_http_server
from repro.serve.batching import BatcherSaturated, MicroBatcher
from repro.serve.registry import ModelRegistry, RegistryError
from repro.serve.server import AdmissionRejected, DeadlineExceeded


@pytest.fixture(autouse=True)
def no_leftover_plan():
    prev = install(None)
    yield
    install(prev)


ROW = [0.1, -0.2, 0.3, 0.0, 1.0]


def delay_plan(seconds=0.05):
    return FaultPlan({"http.predict": {"probability": 1.0, "mode": "delay",
                                       "param": seconds}})


class TestAdmissionControl:
    def test_inflight_cap_rejects_concurrent_excess(self, chaos_artifact):
        server = ModelServer(artifacts={"m": chaos_artifact},
                             max_batch=4, max_delay_ms=1.0, max_inflight=1)
        install(delay_plan(0.05))
        outcomes = []
        lock = threading.Lock()

        def client():
            try:
                server.predict("m", ROW)
                got = "ok"
            except AdmissionRejected:
                got = "rejected"
            with lock:
                outcomes.append(got)

        try:
            threads = [threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            install(None)
        try:
            assert "ok" in outcomes
            assert "rejected" in outcomes
            assert server.shed_counts["inflight"] >= 1
            # pressure gone: the next request is served normally
            assert server.predict("m", ROW)["n"] == 1
        finally:
            server.close()

    def test_validation(self, chaos_artifact):
        with pytest.raises(ValueError, match="max_inflight"):
            ModelServer(artifacts={"m": chaos_artifact}, max_inflight=0)
        with pytest.raises(ValueError, match="deadline_ms"):
            ModelServer(artifacts={"m": chaos_artifact}, deadline_ms=0)


class TestDeadline:
    def test_slow_predict_exceeds_deadline(self, chaos_artifact):
        server = ModelServer(artifacts={"m": chaos_artifact},
                             max_batch=4, max_delay_ms=1.0, deadline_ms=5.0)
        install(delay_plan(0.05))  # 50ms injected delay vs 5ms deadline
        try:
            with pytest.raises(DeadlineExceeded):
                server.predict("m", ROW)
            assert server.shed_counts["deadline"] >= 1
        finally:
            install(None)
            server.close()


class TestQueueSaturation:
    def test_full_queue_sheds_instead_of_blocking(self):
        """The satellite bugfix: a saturated MicroBatcher raises
        BatcherSaturated immediately — it never queues unboundedly."""
        import time

        busy = threading.Event()
        release = threading.Event()

        def slow_predict(batch):
            busy.set()
            release.wait(timeout=10)
            return batch[:, 0]

        batcher = MicroBatcher(slow_predict, max_batch=1, max_delay_ms=1.0,
                               max_queue=1)
        results = []
        t = threading.Thread(
            target=lambda: results.append(batcher.submit([1.0, 2.0]))
        )
        t.start()
        assert busy.wait(timeout=10)  # the worker is stuck in the model
        t2 = threading.Thread(
            target=lambda: results.append(batcher.submit([3.0, 4.0]))
        )
        t2.start()
        for _ in range(200):  # t2's row fills the 1-slot queue
            if batcher.queue_depth >= 1:
                break
            time.sleep(0.005)
        with pytest.raises(BatcherSaturated):
            batcher.submit([5.0, 6.0])
        assert batcher.stats.sheds == 1
        release.set()
        t.join(timeout=10)
        t2.join(timeout=10)
        batcher.close()
        assert len(results) == 2  # the accepted rows were still served

    def test_max_queue_validated(self):
        with pytest.raises(ValueError, match="max_queue"):
            MicroBatcher(lambda b: b, max_queue=0)


@pytest.fixture()
def live(chaos_artifact):
    model_server = ModelServer(artifacts={"m": chaos_artifact},
                               max_batch=4, max_delay_ms=1.0,
                               max_inflight=2, max_queue=8)
    httpd = build_http_server(model_server, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, model_server
    httpd.shutdown()
    httpd.server_close()
    model_server.close()
    thread.join(timeout=5)


def _post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


class TestHttpShedContract:
    def test_429_when_admission_rejects(self, live):
        """An occupied inflight budget surfaces as 429 + Retry-After."""
        base, server = live
        sem = server._inflight_sem
        assert sem.acquire(blocking=False) and sem.acquire(blocking=False)
        try:
            with pytest.raises(urllib.error.HTTPError) as e:
                _post(f"{base}/predict", {"model": "m", "rows": [ROW]})
        finally:
            sem.release()
            sem.release()
        assert e.value.code == 429
        assert e.value.headers["Retry-After"] is not None

    def test_503_when_batcher_saturated(self, live, monkeypatch):
        base, server = live

        def saturated(*a, **kw):
            raise BatcherSaturated("queue full")

        monkeypatch.setattr(server, "_predict_unguarded", saturated)
        with pytest.raises(urllib.error.HTTPError) as e:
            _post(f"{base}/predict", {"model": "m", "rows": [ROW]})
        assert e.value.code == 503
        assert e.value.headers["Retry-After"] is not None

    def test_500_on_injected_predict_fault(self, live):
        base, _ = live
        install(FaultPlan({"http.predict": {"probability": 1.0,
                                            "mode": "error"}}))
        try:
            with pytest.raises(urllib.error.HTTPError) as e:
                _post(f"{base}/predict", {"model": "m", "rows": [ROW]})
        finally:
            install(None)
        assert e.value.code == 500

    def test_health_reports_pressure(self, live):
        base, _ = live
        with urllib.request.urlopen(f"{base}/health") as resp:
            health = json.loads(resp.read().decode())
        assert health["queue_depth"] == 0
        assert health["inflight"] == 0
        assert set(health["sheds"]) == {"inflight", "queue", "deadline"}

    def test_shed_counter_in_prometheus(self, live, monkeypatch):
        base, server = live

        def saturated(*a, **kw):
            raise BatcherSaturated("queue full")

        monkeypatch.setattr(server, "_predict_unguarded", saturated)
        with pytest.raises(urllib.error.HTTPError):
            _post(f"{base}/predict", {"model": "m", "rows": [ROW]})
        monkeypatch.undo()
        with urllib.request.urlopen(
            f"{base}/metrics?format=prometheus"
        ) as resp:
            body = resp.read().decode()
        assert "repro_serving_shed_total" in body


class TestRegistryQuarantine:
    def _registry_with_two_versions(self, tmp_path, artifact):
        reg = ModelRegistry(str(tmp_path / "reg"))
        reg.register("m", artifact)
        v2 = reg.register("m", artifact)
        return reg, v2

    def _corrupt(self, reg, name, version):
        import os

        path = os.path.join(reg.root, name, f"v{version}", "artifact.json")
        with open(path, "ab") as f:
            f.write(b" tampered")

    def test_concrete_version_corruption_raises_and_quarantines(
            self, tmp_path, chaos_artifact):
        reg, v2 = self._registry_with_two_versions(tmp_path, chaos_artifact)
        self._corrupt(reg, "m", v2)
        with pytest.raises(RegistryError, match="integrity"):
            reg.get("m", v2)
        entry = [e for e in reg.versions("m") if e["version"] == v2][0]
        assert "sha256" in entry["quarantined"]
        # quarantine is sticky: later reads refuse without re-hashing
        with pytest.raises(RegistryError, match="no servable"):
            reg.get("m", str(v2))

    def test_alias_falls_back_along_history(self, tmp_path, chaos_artifact):
        reg, v2 = self._registry_with_two_versions(tmp_path, chaos_artifact)
        self._corrupt(reg, "m", v2)
        art = reg.get("m", "latest")  # resolves v2, serves v1
        assert art.task == chaos_artifact.task
        assert reg.resolve("m", "latest") == v2  # alias target unchanged
        entry = [e for e in reg.versions("m") if e["version"] == v2][0]
        assert entry.get("quarantined")

    def test_all_candidates_quarantined_raises(self, tmp_path,
                                               chaos_artifact):
        reg, v2 = self._registry_with_two_versions(tmp_path, chaos_artifact)
        self._corrupt(reg, "m", 1)
        self._corrupt(reg, "m", v2)
        with pytest.raises(RegistryError, match="no servable"):
            reg.get("m", "latest")

    def test_injected_registry_read_fault(self, tmp_path, chaos_artifact):
        """The registry.read site simulates corruption without touching
        the file: the version is quarantined all the same."""
        reg = ModelRegistry(str(tmp_path / "reg"))
        reg.register("m", chaos_artifact)
        install(FaultPlan({"registry.read": {"probability": 1.0,
                                             "count": 1}}))
        try:
            with pytest.raises(RegistryError, match="integrity"):
                reg.get("m", 1)
        finally:
            install(None)
        assert reg.versions("m")[0].get("quarantined")

    def test_index_surfaces_quarantine(self, tmp_path, chaos_artifact):
        reg, v2 = self._registry_with_two_versions(tmp_path, chaos_artifact)
        self._corrupt(reg, "m", v2)
        with pytest.raises(RegistryError):
            reg.get("m", v2)
        index = reg.index()
        flagged = [v for v in index["m"]["versions"]
                   if v.get("quarantined")]
        assert [v["version"] for v in flagged] == [v2]
