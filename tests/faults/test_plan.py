"""The fault plane itself: rule validation, seeded determinism, count
caps, wire-form round-trips, and the module-level install/hook API."""

import pickle

import pytest

from repro.faults import (FaultError, FaultPlan, FaultRule, InjectedCrash,
                          InjectedFault, InjectedShmError, KNOWN_SITES,
                          active, fault_hook, install, maybe_raise,
                          stable_unit)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    """Every test starts and ends with faults off."""
    prev = install(None)
    yield
    install(prev)


class TestStableUnit:
    def test_range_and_stability(self):
        keys = [0, "x", (1, "a", 2.5), ("nested", (3, 4))]
        for k in keys:
            u = stable_unit(k)
            assert 0.0 <= u < 1.0
            assert u == stable_unit(k)  # pure function of the key

    def test_distinct_keys_distinct_values(self):
        us = {stable_unit(("trial", i)) for i in range(100)}
        assert len(us) == 100


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="definitely.not.a.site")

    def test_probability_validated(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="worker.crash", probability=1.5)

    def test_dict_roundtrip(self):
        rule = FaultRule(site="worker.hang", probability=0.25, count=3,
                         after=2, param=1.5, mode="delay", hard=False)
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_every_known_site_constructs(self):
        for site in KNOWN_SITES:
            assert FaultRule(site=site).site == site


class TestFaultPlan:
    def test_dict_shorthand(self):
        plan = FaultPlan({"worker.crash": 0.5,
                          "worker.hang": {"param": 2.0}}, seed=7)
        assert plan.rules["worker.crash"].probability == 0.5
        assert plan.rules["worker.hang"].param == 2.0

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([FaultRule(site="worker.crash"),
                       FaultRule(site="worker.crash")])

    def test_spec_roundtrip_and_picklable(self):
        plan = FaultPlan({"trial.exception": {"probability": 0.3,
                                              "count": 2}}, seed=11)
        clone = FaultPlan.from_spec(plan.spec())
        assert clone.seed == plan.seed
        assert clone.rules == plan.rules
        # the spec is what rides the worker init payload
        assert pickle.loads(pickle.dumps(plan.spec())) == plan.spec()

    def test_keyed_decisions_deterministic(self):
        a = FaultPlan({"trial.exception": 0.5}, seed=3)
        b = FaultPlan({"trial.exception": 0.5}, seed=3)
        keys = [("trial", i) for i in range(50)]
        da = [a.decide("trial.exception", key=k) is not None for k in keys]
        db = [b.decide("trial.exception", key=k) is not None for k in keys]
        assert da == db
        assert any(da) and not all(da)  # p=0.5 over 50 keys

    def test_seed_changes_decisions(self):
        keys = [("trial", i) for i in range(50)]

        def fires(seed):
            plan = FaultPlan({"trial.exception": 0.5}, seed=seed)
            return [plan.decide("trial.exception", key=k) is not None
                    for k in keys]

        assert fires(0) != fires(1)

    def test_count_cap(self):
        plan = FaultPlan({"trial.exception": {"probability": 1.0,
                                              "count": 2}})
        fired = [plan.decide("trial.exception", key=("t", i)) is not None
                 for i in range(10)]
        assert sum(fired) == 2
        assert fired[:2] == [True, True]
        assert plan.fired("trial.exception") == 2

    def test_after_skips_first_checks(self):
        plan = FaultPlan({"trial.exception": {"probability": 1.0,
                                              "after": 3}})
        fired = [plan.decide("trial.exception") is not None
                 for _ in range(5)]
        assert fired == [False, False, False, True, True]

    def test_unknown_site_decide_is_none(self):
        plan = FaultPlan({"trial.exception": 1.0})
        assert plan.decide("worker.crash") is None

    def test_fired_totals(self):
        plan = FaultPlan({"trial.exception": 1.0, "worker.crash": 1.0})
        plan.decide("trial.exception")
        plan.decide("worker.crash")
        plan.decide("worker.crash", key="k2")
        assert plan.fired() == 3
        assert plan.fired("nonexistent.site") == 0


class TestModuleApi:
    def test_off_by_default(self):
        assert active() is None
        assert fault_hook("trial.exception") is None
        maybe_raise("trial.exception")  # no plan: must be a no-op

    def test_install_and_restore(self):
        plan = FaultPlan({"trial.exception": 1.0})
        prev = install(plan)
        try:
            assert active() is plan
            assert fault_hook("trial.exception", key="k") is not None
        finally:
            install(prev)
        assert active() is prev

    def test_install_accepts_spec_dict(self):
        prev = install({"seed": 5, "rules": [
            {"site": "worker.hang", "probability": 1.0, "param": 9.0},
        ]})
        try:
            plan = active()
            assert plan.seed == 5
            assert plan.rules["worker.hang"].param == 9.0
        finally:
            install(prev)

    def test_maybe_raise_types(self):
        prev = install(FaultPlan({"shm.attach": 1.0}))
        try:
            with pytest.raises(InjectedShmError) as exc_info:
                maybe_raise("shm.attach", exc_type=InjectedShmError)
        finally:
            install(prev)
        # the injected error is catchable both as OSError (the real
        # recovery paths) and as FaultError (chaos bookkeeping)
        assert isinstance(exc_info.value, OSError)
        assert isinstance(exc_info.value, FaultError)

    def test_exception_taxonomy(self):
        assert issubclass(InjectedFault, FaultError)
        assert issubclass(InjectedCrash, FaultError)
        assert not issubclass(InjectedCrash, InjectedFault)
        assert issubclass(FaultError, RuntimeError)
