"""Chaos-suite fixtures: a quickly-fitted artifact and plan hygiene."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AutoML


@pytest.fixture(scope="session")
def chaos_artifact():
    r = np.random.default_rng(7)
    X = r.standard_normal((240, 5))
    y = ((X[:, 0] + X[:, 1]) > 0).astype(np.int64)
    automl = AutoML(seed=0, init_sample_size=100)
    automl.fit(X, y, task="classification", time_budget=5, max_iters=4,
               estimator_list=["lgbm"])
    return automl.export_artifact()
