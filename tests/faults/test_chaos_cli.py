"""`python -m repro chaos` smoke: the drill passes end-to-end, twice
with the same seed, and reports machine-readable results."""

import json

import pytest

from repro import cli
from repro.faults import active, install
from repro.faults.chaos import parse_budget


@pytest.fixture(autouse=True)
def no_leftover_plan():
    prev = install(None)
    yield
    install(prev)


class TestParseBudget:
    def test_units(self):
        assert parse_budget("30s") == 30.0
        assert parse_budget("500ms") == 0.5
        assert parse_budget("2m") == 120.0
        assert parse_budget("1.5") == 1.5  # bare seconds

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="budget"):
            parse_budget("soon")


class TestChaosCommand:
    def test_drill_passes_on_thread_backend(self, capsys):
        rc = cli.main(["chaos", "--seed", "0", "--budget", "60s",
                       "--backend", "thread"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "CHAOS DRILL PASS" in out
        # the drill must not leave a fault plan installed
        assert active() is None

    def test_json_report(self, capsys):
        rc = cli.main(["chaos", "--seed", "0", "--budget", "60s",
                       "--backend", "serial", "--json"])
        out = capsys.readouterr().out
        assert rc == 0, out
        report = json.loads(out)
        assert report["passed"] is True
        assert report["seed"] == 0
        assert report["problems"] == []
        assert report["search"]["deterministic"] is True
        assert report["search"]["crashes_absorbed"] is True
        assert report["shm_leaked_segments"] == []
        assert report["registry"]["quarantined"] is True
        assert report["registry"]["fallback_served"] is True
        assert report["serving"]["recovered"] is True
        assert report["serving"]["shed"] > 0

    def test_skip_serving_omits_those_phases(self, capsys):
        rc = cli.main(["chaos", "--seed", "0", "--budget", "60s",
                       "--backend", "serial", "--skip-serving", "--json"])
        out = capsys.readouterr().out
        assert rc == 0, out
        report = json.loads(out)
        assert report["passed"] is True
        assert "serving" not in report
        assert "registry" not in report
