"""Engine retry machinery under injected faults: crashes retried with
deterministic backoff, budgets enforced, failed trials not retried,
attempt counts surfaced end-to-end, and the backend degradation ladder.
"""

import numpy as np
import pytest

from repro.core.evaluate import TrialOutcome
from repro.data import make_classification
from repro.exec import (ExecutionEngine, PoolBrokenError, RetryPolicy,
                        SerialExecutor, TrialSpec)
from repro.faults import FaultPlan, install
from repro.learners import LGBMLikeClassifier
from repro.metrics import get_metric


@pytest.fixture(autouse=True)
def no_leftover_plan():
    prev = install(None)
    yield
    install(prev)


@pytest.fixture(scope="module")
def data():
    return make_classification(300, 4, class_sep=1.3, seed=0,
                               name="retries").shuffled(0)


def make_spec(**kw):
    base = dict(
        learner="lgbm",
        estimator_cls=LGBMLikeClassifier,
        config={"tree_num": 3, "leaf_num": 4},
        sample_size=150,
        resampling="holdout",
        metric=get_metric("accuracy"),
        seed=0,
    )
    base.update(kw)
    return TrialSpec(**base)


def fast_policy(**kw):
    base = dict(max_attempts=3, backoff_base=0.0, jitter=0.0)
    base.update(kw)
    return RetryPolicy(**base)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_backoff_growth_and_cap(self):
        p = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                        backoff_max=0.3, jitter=0.0)
        assert p.backoff_for(1, "k") == pytest.approx(0.1)
        assert p.backoff_for(2, "k") == pytest.approx(0.2)
        assert p.backoff_for(3, "k") == pytest.approx(0.3)  # capped
        assert p.backoff_for(9, "k") == pytest.approx(0.3)

    def test_jitter_deterministic_per_trial(self):
        p = RetryPolicy(backoff_base=1.0, jitter=0.5)
        a, b = p.backoff_for(1, "trial-a"), p.backoff_for(1, "trial-b")
        assert a != b  # different trials jitter differently
        assert a == p.backoff_for(1, "trial-a")  # but reproducibly
        assert 0.5 <= a <= 1.0  # jitter scales into [1-j, 1]


class TestCrashRetries:
    def test_single_crash_absorbed(self, data):
        """A crash on attempt 0 is retried; the retry re-rolls its fault
        key and succeeds — the outcome matches the fault-free one."""
        spec = make_spec()
        clean = SerialExecutor(data).submit(spec).result()
        # fire exactly once: the first attempt crashes, the retry runs
        install(FaultPlan({"worker.crash": {"probability": 1.0,
                                            "count": 1}}))
        engine = ExecutionEngine(SerialExecutor(data),
                                 retry_policy=fast_policy())
        out = engine.run(spec)
        assert out.error == clean.error
        assert out.failure is None
        assert out.attempts == 2
        assert engine.retries_used == 1

    def test_attempts_exhausted_is_inf_error(self, data):
        """Every attempt crashing ends in an inf-error outcome (never an
        exception) annotated with the retry history."""
        install(FaultPlan({"worker.crash": 1.0}))
        engine = ExecutionEngine(SerialExecutor(data),
                                 retry_policy=fast_policy(max_attempts=3))
        out = engine.run(make_spec())
        assert out.error == np.inf
        assert out.attempts == 3
        assert "[retries: 3 attempts" in out.failure
        assert "InjectedCrash" in out.failure
        assert engine.retries_used == 2

    def test_no_policy_means_no_retry(self, data):
        install(FaultPlan({"worker.crash": {"probability": 1.0,
                                            "count": 1}}))
        engine = ExecutionEngine(SerialExecutor(data))
        out = engine.run(make_spec())
        assert out.error == np.inf
        assert out.attempts == 1

    def test_retry_budget_caps_total_retries(self, data):
        """The per-search budget stops retrying even when per-trial
        attempts remain."""
        install(FaultPlan({"worker.crash": 1.0}))
        engine = ExecutionEngine(
            SerialExecutor(data),
            retry_policy=fast_policy(max_attempts=10, retry_budget=3),
        )
        first = engine.run(make_spec())
        assert first.attempts == 4  # 1 initial + all 3 budgeted retries
        assert engine.retries_used == 3
        second = engine.run(make_spec(sample_size=120))
        assert second.attempts == 1  # budget spent: no retry at all

    def test_failed_trials_not_retried(self, data):
        """trial.exception yields a *failed* trial (deterministic learner
        error) — not retryable under the default policy."""
        install(FaultPlan({"trial.exception": 1.0}))
        engine = ExecutionEngine(SerialExecutor(data),
                                 retry_policy=fast_policy())
        out = engine.run(make_spec())
        assert out.error == np.inf
        assert out.attempts == 1
        assert "InjectedFault" in out.failure
        assert engine.retries_used == 0


class TestAttemptsSurfaced:
    def test_search_result_records_attempts(self, data):
        from repro.core.controller import SearchController
        from repro.core.registry import DEFAULT_LEARNERS

        install(FaultPlan({"worker.crash": {"probability": 1.0,
                                            "count": 1}}))
        res = SearchController(
            data, {"lgbm": DEFAULT_LEARNERS["lgbm"]},
            get_metric("roc_auc"),
            time_budget=30.0, max_iters=4, seed=3, init_sample_size=150,
            resampling_override="holdout",
            retry_policy=fast_policy(),
        ).run()
        attempts = [t.attempts for t in res.trials]
        assert sum(attempts) == len(attempts) + 1  # exactly one retry
        assert all(t.failure is None for t in res.trials)

    def test_attempts_survive_serialization(self, data, tmp_path):
        from repro.core.controller import SearchController
        from repro.core.registry import DEFAULT_LEARNERS
        from repro.core.serialize import load_result, save_result

        install(FaultPlan({"worker.crash": {"probability": 1.0,
                                            "count": 1}}))
        res = SearchController(
            data, {"lgbm": DEFAULT_LEARNERS["lgbm"]},
            get_metric("roc_auc"),
            time_budget=30.0, max_iters=3, seed=3, init_sample_size=150,
            resampling_override="holdout",
            retry_policy=fast_policy(),
        ).run()
        path = str(tmp_path / "log.json")
        save_result(res, path)
        loaded = load_result(path)
        assert ([t.attempts for t in loaded.trials]
                == [t.attempts for t in res.trials])

    def test_automl_fit_retries_flag(self, data):
        from repro import AutoML

        install(FaultPlan({"worker.crash": {"probability": 1.0,
                                            "count": 1}}))
        am = AutoML(seed=0, init_sample_size=150)
        am.fit(data.X, data.y, task="binary", time_budget=30.0,
               max_iters=3, estimator_list=["lgbm"], retries=2,
               resampling="holdout", cv_instance_threshold=0)
        res = am.search_result
        assert sum(t.attempts for t in res.trials) == res.n_trials + 1
        assert np.isfinite(am.best_loss)

    def test_automl_rejects_negative_retries(self, data):
        from repro import AutoML

        with pytest.raises(ValueError, match="retries"):
            AutoML().fit(data.X, data.y, task="binary", time_budget=1.0,
                         retries=-1)


class _BrokenExecutor:
    """A stub whose substrate is broken beyond repair from the start."""

    backend = "process"

    def __init__(self, data):
        self.data = data
        self.n_workers = 2

    def submit(self, spec):
        raise PoolBrokenError("stub pool died repeatedly")

    def shutdown(self):
        pass


class TestDegradationLadder:
    def test_broken_backend_degrades_and_completes(self, data):
        """PoolBrokenError at submit walks the process→thread ladder and
        the trial still resolves on the replacement backend."""
        engine = ExecutionEngine(_BrokenExecutor(data))
        out = engine.run(make_spec())
        try:
            assert np.isfinite(out.error)
            assert engine.backend == "thread"
            assert engine.degradations == [("process", "thread")]
        finally:
            engine.shutdown()

    def test_degradation_metric_incremented(self, data):
        from repro.obs.metrics import REGISTRY

        before = REGISTRY.counter(
            "repro_backend_degradations_total",
            "Engine backend degradations (process→thread→serial ladder).",
            **{"from": "process", "to": "thread"},
        ).value
        engine = ExecutionEngine(_BrokenExecutor(data))
        engine.run(make_spec())
        try:
            after = REGISTRY.counter(
                "repro_backend_degradations_total",
                "Engine backend degradations (process→thread→serial "
                "ladder).",
                **{"from": "process", "to": "thread"},
            ).value
            assert after == before + 1
        finally:
            engine.shutdown()
