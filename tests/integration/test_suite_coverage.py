"""Every suite dataset must load and be consumable by the trial machinery."""

import numpy as np
import pytest

from repro.core.evaluate import evaluate_config
from repro.data import SUITE, suite_names
from repro.learners import (
    LGBMLikeClassifier,
    LGBMLikeRegressor,
)
from repro.metrics import get_metric


@pytest.mark.parametrize("name", suite_names())
def test_every_suite_dataset_trains_one_trial(name):
    """Generation + stratified shuffle + one cheap holdout trial, for all
    53 datasets — catches degenerate generators (single-class samples,
    NaN explosions, broken categorical encodings)."""
    ds = SUITE[name].load().shuffled(0)
    metric = get_metric("auto", task=ds.task)
    cls = LGBMLikeRegressor if ds.task == "regression" else LGBMLikeClassifier
    out = evaluate_config(
        ds, cls, {"tree_num": 4, "leaf_num": 4}, sample_size=min(500, ds.n),
        resampling="holdout", metric=metric, seed=0,
    )
    assert np.isfinite(out.error), f"{name}: trial failed"
    assert out.cost > 0


def test_suite_statistics_are_diverse():
    """The suite must span sizes, class counts and feature mixes."""
    sizes = {SUITE[n].n for n in suite_names()}
    assert len(sizes) >= 8
    ks = {SUITE[n].n_classes for n in suite_names("multiclass")}
    assert len(ks) >= 3
    with_cats = [n for n in suite_names() if SUITE[n].cat_frac > 0]
    with_missing = [n for n in suite_names() if SUITE[n].missing_frac > 0]
    assert len(with_cats) >= 5
    assert len(with_missing) >= 3
