"""The no-code forecasting loop: datasets --export -> fit --task forecast
-> predict, all through ``python -m repro``'s main()."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import from_csv


@pytest.fixture(scope="module")
def series_csv(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("fc") / "series.csv")
    assert main(["datasets", "--export", "ts-seasonal", "--out", path]) == 0
    return path


@pytest.fixture(scope="module")
def fitted_files(series_csv, tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("fc-model")
    model = str(out_dir / "model.json")
    artifact = str(out_dir / "fc.artifact.json")
    code = main([
        "fit", series_csv, "--task", "forecast", "--horizon", "12",
        "--seasonal-period", "12", "--budget", "10", "--max-iters", "10",
        "--estimators", "lgbm", "--out", model, "--save-model",
        "--artifact", artifact,
    ])
    assert code == 0
    return model, artifact


def test_datasets_lists_forecast_regimes(capsys):
    assert main(["datasets", "--task", "forecast"]) == 0
    out = capsys.readouterr().out
    assert "ts-seasonal" in out and "forecast" in out


def test_exported_series_round_trips(series_csv):
    ds = from_csv(series_csv, task="forecast")
    assert ds.task == "forecast"
    assert ds.n == 400
    assert ds.y.dtype == np.float64


def test_fit_reports_baseline_comparison(series_csv, fitted_files, capsys):
    model, artifact = fitted_files
    with open(model) as f:
        payload = json.load(f)
    assert payload["task"] == "forecast"
    assert payload["horizon"] == 12
    assert payload["seasonal_period"] == 12
    assert np.isfinite(payload["best_error"])


def test_cli_predict_emits_h_forecasts(series_csv, fitted_files, tmp_path,
                                       capsys):
    model, _ = fitted_files
    # history file: the last 60 observations of the series
    ds = from_csv(series_csv, task="forecast")
    hist_csv = str(tmp_path / "history.csv")
    with open(series_csv) as f:
        lines = f.read().splitlines()
    with open(hist_csv, "w") as f:
        f.write("\n".join([lines[0]] + lines[-60:]) + "\n")
    out_csv = str(tmp_path / "preds.csv")
    code = main(["predict", model, hist_csv, "--horizon", "8",
                 "--out", out_csv])
    assert code == 0
    preds = [float(v) for v in open(out_csv).read().split()]
    assert len(preds) == 8
    assert all(np.isfinite(preds))


def test_cli_predict_proba_refused_for_forecast(series_csv, fitted_files,
                                                capsys):
    model, _ = fitted_files
    assert main(["predict", model, series_csv, "--proba"]) == 2
    assert "proba" in capsys.readouterr().err


def test_datasets_export_requires_out(capsys):
    assert main(["datasets", "--export", "ts-seasonal"]) == 2
    assert "--out" in capsys.readouterr().err


def test_forgotten_task_forecast_fails_loudly(series_csv, tmp_path, capsys):
    # --horizon without --task forecast must not silently train a
    # shuffled regression on the series
    code = main(["fit", series_csv, "--horizon", "12", "--budget", "2",
                 "--max-iters", "2",
                 "--out", str(tmp_path / "oops.json")])
    assert code == 2
    assert "task='forecast'" in capsys.readouterr().err
