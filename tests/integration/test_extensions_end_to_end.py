"""End-to-end integration of the extension features working *together*:
CSV I/O → meta-learning warm start → preprocessors → fitted cost model →
ensemble → persistence."""

import json

import numpy as np
import pytest

from repro import AutoML
from repro.core.metalearning import MetaPortfolio, build_portfolio
from repro.core.serialize import load_result
from repro.data import Dataset, from_csv, to_csv
from repro.data.preprocessing import Imputer, StandardScaler


def _task(seed, n=400):
    r = np.random.default_rng(seed)
    X = r.standard_normal((n, 5))
    y = (X[:, 0] + 0.6 * X[:, 1] ** 2 > 0.5).astype(int)
    X[r.random(X.shape) < 0.03] = np.nan
    return Dataset(f"task{seed}", X, y, "binary")


class TestFullExtensionPipeline:
    @pytest.fixture(scope="class")
    def portfolio(self):
        corpus = [(f"c{i}", _task(i).shuffled(0)) for i in range(2)]
        return build_portfolio(corpus, time_budget=1.0,
                               init_sample_size=100, max_iters=8)

    def test_csv_roundtrip_then_warm_fit_with_everything(self, portfolio,
                                                         tmp_path):
        # 1. the dataset arrives as a CSV file
        data = _task(7)
        csv_path = str(tmp_path / "train.csv")
        to_csv(data, csv_path)
        loaded = from_csv(csv_path, name="task7")
        assert loaded.task == "binary"

        # 2. warm-start suggestions from the portfolio
        points = portfolio.suggest(loaded, k=2)
        assert points  # the corpus produced at least one learner config

        # 3. fit with preprocessors + warm start + fitted cost model +
        #    trial-log persistence, all at once
        log_path = str(tmp_path / "run.json")
        automl = AutoML(init_sample_size=100)
        automl.fit(
            loaded.X, loaded.y,
            task=loaded.task,
            time_budget=2.0,
            max_iters=15,
            starting_points=points,
            fitted_cost_model=True,
            preprocessor=[Imputer("median"), StandardScaler()],
            log_file=log_path,
        )
        assert automl.best_estimator is not None
        pred = automl.predict(loaded.X[:25])
        assert pred.shape == (25,)
        assert (pred == loaded.y[:25]).mean() > 0.5

        # 4. the persisted log round-trips and matches the live result
        back = load_result(log_path)
        assert back.n_trials == automl.search_result.n_trials
        assert back.best_error == pytest.approx(automl.best_loss)

    def test_portfolio_persistence_feeds_future_sessions(self, portfolio,
                                                         tmp_path):
        path = str(tmp_path / "pf.json")
        portfolio.save(path)
        revived = MetaPortfolio.load(path)
        data = _task(9)
        assert revived.suggest(data, k=2) == portfolio.suggest(data, k=2)

    def test_ensemble_on_top_of_preprocessing(self):
        data = _task(11)
        automl = AutoML(init_sample_size=100)
        automl.fit(
            data.X, data.y,
            task="binary",
            time_budget=2.5,
            max_iters=20,
            estimator_list=["lgbm", "rf"],
            ensemble=True,
            ensemble_members=2,
            preprocessor=Imputer("mean"),
        )
        p = automl.predict_proba(data.X[:10])
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_extras_in_warm_started_search(self, portfolio):
        """EXTRA_LEARNERS + warm start + stop_at_error together."""
        data = _task(13)
        automl = AutoML(init_sample_size=100)
        automl.fit(
            data.X, data.y,
            task="binary",
            time_budget=2.0,
            max_iters=25,
            estimator_list=["lgbm", "xgb_limitdepth", "gaussian_nb"],
            starting_points=portfolio.suggest(data, k=2),
            stop_at_error=0.35,
            preprocessor=Imputer(),
        )
        assert automl.best_loss <= 0.5
        used = {t.learner for t in automl.search_result.trials}
        assert used <= {"lgbm", "xgb_limitdepth", "gaussian_nb"}
