"""Cross-module integration tests: suite datasets through the full
AutoML pipeline, and the paper's qualitative claims at miniature scale."""

import numpy as np
import pytest

from repro import AutoML
from repro.baselines import FLAMLSystem, make_ablation
from repro.bench import SCALED_THRESHOLDS, fit_final_model, raw_score
from repro.data import load_dataset, make_classification
from repro.metrics import get_metric


class TestSuiteThroughAutoML:
    @pytest.mark.parametrize("name", ["blood-transfusion", "vehicle", "houses"])
    def test_suite_dataset_fit(self, name):
        """One dataset per task type through the public API."""
        ds = load_dataset(name)
        n_tr = int(0.8 * ds.n)
        am = AutoML(seed=0, init_sample_size=150)
        am.fit(
            ds.X[:n_tr], ds.y[:n_tr], task=ds.task, time_budget=1.0,
            cv_instance_threshold=2500,
        )
        pred = am.predict(ds.X[n_tr:])
        assert pred.shape == (ds.n - n_tr,)
        assert np.isfinite(am.best_loss)

    def test_dataset_with_missing_and_categorical(self):
        ds = load_dataset("adult")  # has categoricals + missing values
        am = AutoML(seed=0, init_sample_size=200)
        am.fit(ds.X, ds.y, task="binary", time_budget=1.0,
               estimator_list=["lgbm", "rf"], cv_instance_threshold=2500)
        assert np.all(np.isfinite(am.predict_proba(ds.X)))


class TestPaperClaims:
    """Qualitative reproduction claims, checked fast at miniature scale."""

    def test_sample_size_ramps_up(self):
        """§4.2: search starts at the init sample size and grows toward
        the full data size as ECI decides it's worth it."""
        ds = make_classification(4000, 8, seed=0, name="ramp").shuffled(0)
        res = FLAMLSystem(init_sample_size=200, **SCALED_THRESHOLDS).search(
            ds, get_metric("roc_auc"), time_budget=4.0, seed=0
        )
        sizes = [t.sample_size for t in res.trials]
        assert sizes[0] == 200
        assert max(sizes) > 1000  # grew substantially

    def test_cheap_learner_first_expensive_later(self):
        """ECI constants: lgbm runs first; catboost/lrl1 appear later if
        at all."""
        ds = make_classification(2000, 6, seed=1, name="order").shuffled(0)
        res = FLAMLSystem(init_sample_size=200, **SCALED_THRESHOLDS).search(
            ds, get_metric("roc_auc"), time_budget=2.0, seed=0
        )
        assert res.trials[0].learner == "lgbm"

    def test_final_error_beats_single_default_learner(self):
        """The search must beat the cheapest learner's initial config."""
        ds = make_classification(3000, 8, structure="nonlinear", seed=2,
                                 name="gain").shuffled(0)
        metric = get_metric("roc_auc")
        res = FLAMLSystem(init_sample_size=200, **SCALED_THRESHOLDS).search(
            ds, metric, time_budget=3.0, seed=0
        )
        first_error = res.trials[0].error
        assert res.best_error < first_error

    def test_ablations_comparable_api(self):
        """All three ablations run the same interface and produce logs."""
        ds = make_classification(1500, 5, seed=3, name="abl").shuffled(0)
        metric = get_metric("roc_auc")
        for which in ("roundrobin", "fulldata", "cv"):
            sys = make_ablation(which, init_sample_size=200,
                                **({} if which == "cv" else SCALED_THRESHOLDS))
            res = sys.search(ds, metric, time_budget=0.8, seed=0)
            assert res.n_trials >= 1, which

    def test_retrained_model_scores_well(self):
        ds = make_classification(2500, 6, class_sep=1.5, seed=4,
                                 name="score")
        train, test = ds.outer_folds(5)[0]
        train_sh = train.shuffled(0)
        res = FLAMLSystem(init_sample_size=200, **SCALED_THRESHOLDS).search(
            train_sh, get_metric("roc_auc"), time_budget=2.0, seed=0
        )
        model = fit_final_model(train_sh, res)
        assert raw_score(train, test, model) > 0.8  # auc


class TestDeterminism:
    """ECI feeds on *measured* wall-clock costs, so full trial sequences are
    timing-dependent by design (the paper's self-adjusting behaviour); what
    is deterministic is everything seeded: data, first trial, FLOW2 moves."""

    def test_first_trial_deterministic(self):
        ds = make_classification(1500, 5, seed=5, name="det").shuffled(0)
        metric = get_metric("roc_auc")
        firsts = []
        for _ in range(2):
            res = FLAMLSystem(init_sample_size=200, **SCALED_THRESHOLDS).search(
                ds, metric, time_budget=0.6, seed=7
            )
            t = res.trials[0]
            firsts.append((t.learner, t.sample_size, t.config["tree_num"],
                           round(t.error, 12)))
        assert firsts[0] == firsts[1]

    def test_different_seeds_diverge(self):
        ds = make_classification(1500, 5, seed=5, name="det").shuffled(0)
        metric = get_metric("roc_auc")
        paths = []
        for seed in (1, 2):
            res = FLAMLSystem(init_sample_size=200, **SCALED_THRESHOLDS).search(
                ds, metric, time_budget=0.6, seed=seed
            )
            paths.append(tuple(round(t.error, 9) for t in res.trials[:6]))
        assert paths[0] != paths[1]
