"""Smoke checks for the example scripts.

Running every example end-to-end would add minutes to the test suite, so
here we verify each one compiles and references only the public API that
actually exists (imports resolve).  The examples themselves are exercised
manually / in the benchmark pipeline.
"""

import ast
import importlib
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # deliverable (b): quickstart + >= 2 domain


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    source = path.read_text()
    compile(source, str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every `from repro...` import in the example must resolve."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            mod = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(mod, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} does not exist"
                )


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
