"""Tests for the brier / mape / spearman / q_error_p95 metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    brier_score,
    get_metric,
    mape,
    spearman_rho,
)


class TestBrier:
    def test_perfect_predictions_zero(self):
        y = np.array([0, 1, 1, 0])
        p = np.array([0.0, 1.0, 1.0, 0.0])
        assert brier_score(y, p) == 0.0

    def test_worst_predictions_one(self):
        y = np.array([0, 1])
        p = np.array([1.0, 0.0])
        assert brier_score(y, p) == 1.0

    def test_accepts_two_column_matrix(self):
        y = np.array([0, 1, 1])
        P = np.array([[0.8, 0.2], [0.3, 0.7], [0.1, 0.9]])
        assert brier_score(y, P) == pytest.approx(
            np.mean((P[:, 1] - y) ** 2)
        )

    def test_multiclass_one_hot(self):
        y = np.array([0, 1, 2])
        P = np.eye(3)
        assert brier_score(y, P) == 0.0
        uniform = np.full((3, 3), 1 / 3)
        assert brier_score(y, uniform) == pytest.approx(2 / 3)

    def test_multiclass_shape_check(self):
        y = np.array([0, 1, 2])
        with pytest.raises(ValueError, match="probabilities"):
            brier_score(y, np.array([0.5, 0.5, 0.5]))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_bounded(self, seed):
        r = np.random.default_rng(seed)
        y = r.integers(0, 2, 40)
        if np.unique(y).size < 2:
            y[0] = 1 - y[0]
        p = r.random(40)
        assert 0.0 <= brier_score(y, p) <= 1.0


class TestMape:
    def test_exact_zero(self):
        y = np.array([1.0, 2.0, 4.0])
        assert mape(y, y) == 0.0

    def test_relative_error(self):
        y = np.array([2.0, 4.0])
        p = np.array([3.0, 6.0])  # 50% off each
        assert mape(y, p) == pytest.approx(0.5)

    def test_zero_targets_floored(self):
        y = np.array([0.0, 1.0])
        p = np.array([0.1, 1.0])
        assert np.isfinite(mape(y, p))


class TestSpearman:
    def test_perfect_monotone(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rho(y, y**3) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rho(y, -y) == pytest.approx(-1.0)

    def test_constant_input_zero(self):
        assert spearman_rho(np.ones(5), np.arange(5.0)) == 0.0

    def test_ties_handled(self):
        y = np.array([1.0, 1.0, 2.0, 3.0])
        p = np.array([1.0, 1.0, 2.0, 3.0])
        assert spearman_rho(y, p) == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_in_range_and_symmetric(self, seed):
        r = np.random.default_rng(seed)
        a, b = r.standard_normal(30), r.standard_normal(30)
        rho = spearman_rho(a, b)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9
        assert rho == pytest.approx(spearman_rho(b, a))


class TestRegistryEntries:
    def test_new_names_resolve(self):
        for name in ("brier", "mape", "spearman", "q_error_p95"):
            m = get_metric(name)
            assert m.name == name

    def test_brier_needs_proba(self):
        assert get_metric("brier").needs_proba

    def test_errors_are_minimisable(self):
        """Better predictions => lower error for each registered metric."""
        r = np.random.default_rng(0)
        y = r.integers(0, 2, 100)
        good = np.clip(y + r.normal(0, 0.1, 100), 0, 1)
        bad = r.random(100)
        m = get_metric("brier")
        assert m.error(y, good) < m.error(y, bad)
        yr = r.random(100) + 1.0
        m = get_metric("mape")
        assert m.error(yr, yr * 1.01) < m.error(yr, yr * 2.0)
        m = get_metric("spearman")
        assert m.error(yr, yr) < m.error(yr, r.random(100))
        m = get_metric("q_error_p95")
        assert m.error(yr, yr * 1.01) < m.error(yr, yr * 3.0)

    def test_automl_fit_with_brier(self):
        from repro import AutoML

        r = np.random.default_rng(7)
        X = r.standard_normal((250, 4))
        y = (X[:, 0] > 0).astype(int)
        automl = AutoML(init_sample_size=100)
        automl.fit(X, y, task="binary", metric="brier", time_budget=1.0,
                   max_iters=8, estimator_list=["lgbm"])
        assert 0.0 <= automl.best_loss <= 1.0
