"""sMAPE / MASE / pinball loss + their registry wiring."""

import numpy as np
import pytest

from repro.metrics import get_metric, mase, mase_metric, pinball_loss, smape
from repro.metrics.registry import default_metric_name


class TestSmape:
    def test_zero_on_perfect_forecast(self):
        y = np.array([1.0, 2.0, 3.0])
        assert smape(y, y) == pytest.approx(0.0)

    def test_known_value_and_bounds(self):
        # |4-2|*2 / (4+2) = 2/3 per point
        assert smape([4.0, 4.0], [2.0, 2.0]) == pytest.approx(2.0 / 3.0)
        # opposite signs saturate at the upper bound of 2
        assert smape([1.0], [-1.0]) == pytest.approx(2.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="differ in length"):
            smape([1.0, 2.0], [1.0])


class TestMase:
    def test_scales_by_history_naive_error(self):
        history = np.array([0.0, 2.0, 4.0, 6.0])  # naive(1) error = 2
        y, pred = np.array([8.0, 10.0]), np.array([7.0, 9.0])  # MAE = 1
        assert mase(y, pred, history=history, m=1) == pytest.approx(0.5)

    def test_seasonal_scale(self):
        history = np.array([0.0, 10.0, 2.0, 12.0])  # naive(2) error = 2
        y, pred = np.array([4.0]), np.array([0.0])  # MAE = 4
        assert mase(y, pred, history=history, m=2) == pytest.approx(2.0)

    def test_seasonal_naive_itself_scores_one_ish(self):
        rng = np.random.default_rng(0)
        y = rng.standard_normal(300)
        # forecasting each point by its predecessor ≈ the scale itself
        assert mase(y[1:], y[:-1], history=y, m=1) == pytest.approx(1.0,
                                                                    rel=0.15)

    def test_fallback_without_history(self):
        y, pred = np.array([1.0, 2.0, 4.0]), np.array([1.0, 2.0, 4.0])
        assert mase(y, pred) == pytest.approx(0.0)
        assert mase(y, pred + 1.0) > 0

    def test_constant_history_does_not_divide_by_zero(self):
        out = mase([5.0, 5.0], [4.0, 4.0], history=np.full(20, 5.0), m=1)
        assert np.isfinite(out)


class TestPinball:
    def test_median_is_half_mae(self):
        y, pred = np.array([3.0, 5.0]), np.array([1.0, 9.0])  # MAE = 3
        assert pinball_loss(y, pred, q=0.5) == pytest.approx(1.5)

    def test_asymmetry(self):
        # q=0.9 punishes under-forecasts 9x more than over-forecasts
        under = pinball_loss([10.0], [0.0], q=0.9)
        over = pinball_loss([0.0], [10.0], q=0.9)
        assert under == pytest.approx(9.0)
        assert over == pytest.approx(1.0)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            pinball_loss([1.0], [1.0], q=1.5)


class TestRegistryWiring:
    def test_forecast_metrics_registered(self):
        for name in ("smape", "mase", "pinball"):
            m = get_metric(name)
            assert m.name == name and not m.needs_proba
        assert get_metric("mase").needs_history
        assert not get_metric("smape").needs_history

    def test_default_metric_for_forecast(self):
        assert default_metric_name("forecast") == "mase"
        assert get_metric("auto", task="forecast").name == "mase"

    def test_mase_metric_factory(self):
        m = mase_metric(12)
        assert m.needs_history and m.name == "mase@12"
        assert mase_metric(1).name == "mase"

    def test_metric_error_interface_without_history(self):
        # Metric.error(y, pred) must work even for needs_history metrics
        m = get_metric("mase")
        assert np.isfinite(m.error(np.arange(10.0), np.arange(10.0) + 1))
