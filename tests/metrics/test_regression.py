"""Tests for regression metrics and q-error."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import mae, mse, q_error, q_error_percentile, r2_score, rmse


class TestR2:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_worse_than_mean_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.array([3.0, 2.0, 1.0])) < 0

    def test_constant_target(self):
        y = np.full(5, 4.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_r2_at_most_one(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.standard_normal(30)
        p = rng.standard_normal(30)
        assert r2_score(y, p) <= 1.0 + 1e-12


class TestBasicErrors:
    def test_mse_rmse_mae(self):
        y = np.array([0.0, 0.0])
        p = np.array([3.0, 4.0])
        assert mse(y, p) == pytest.approx(12.5)
        assert rmse(y, p) == pytest.approx(np.sqrt(12.5))
        assert mae(y, p) == pytest.approx(3.5)


class TestQError:
    def test_exact_prediction_is_one(self):
        s = np.array([0.1, 0.5, 0.9])
        assert np.allclose(q_error(s, s), 1.0)

    def test_symmetry(self):
        t = np.array([0.1])
        p = np.array([0.4])
        assert q_error(t, p) == pytest.approx(q_error(p, t))

    def test_known_value(self):
        assert q_error(np.array([0.01]), np.array([0.05]))[0] == pytest.approx(5.0)

    def test_floor_prevents_blowup(self):
        e = q_error(np.array([0.0]), np.array([0.5]), floor=1e-3)
        assert np.isfinite(e[0])
        assert e[0] == pytest.approx(500.0)

    def test_percentile(self):
        t = np.ones(100) * 0.1
        p = t.copy()
        p[-1] = 0.9  # one outlier with q-error 9
        assert q_error_percentile(t, p, 95) < 9.0
        assert q_error_percentile(t, p, 100) == pytest.approx(9.0)

    @given(st.floats(0.001, 1.0), st.floats(0.001, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_property_at_least_one(self, t, p):
        assert q_error(np.array([t]), np.array([p]))[0] >= 1.0
