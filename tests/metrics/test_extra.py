"""Tests for the additional classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    balanced_accuracy_score,
    f1_score,
    get_metric,
    precision_score,
    recall_score,
)


class TestPrecisionRecall:
    def test_known_values(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        # TP=2 FP=1 FN=1
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        assert precision_score(np.array([1, 0]), np.array([0, 0])) == 0.0

    def test_no_positives_in_truth(self):
        assert recall_score(np.array([0, 0]), np.array([1, 0])) == 0.0


class TestF1:
    def test_perfect(self):
        y = np.array([0, 1, 1, 0])
        assert f1_score(y, y) == 1.0

    def test_binary_known(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_macro_averages_classes(self):
        y_true = np.array([0, 0, 0, 1])
        y_pred = np.array([0, 0, 0, 0])
        # class 0: f1=8/7? p=3/4? -> p=0.75? no: all predicted 0 ->
        # class0: p=3/4, r=1, f1=6/7; class1: 0
        assert f1_score(y_true, y_pred, average="macro") == pytest.approx(
            0.5 * (6 / 7)
        )

    def test_micro_equals_accuracy(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 3, 60)
        y_pred = rng.integers(0, 3, 60)
        assert f1_score(y_true, y_pred, average="micro") == pytest.approx(
            np.mean(y_true == y_pred)
        )

    def test_invalid_average(self):
        with pytest.raises(ValueError):
            f1_score(np.array([0, 1]), np.array([0, 1]), average="weighted")

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_bounded(self, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 2, 30)
        y_pred = rng.integers(0, 2, 30)
        if len(np.unique(y_true)) < 2:
            return
        for avg in ("binary", "macro", "micro"):
            assert 0.0 <= f1_score(y_true, y_pred, average=avg) <= 1.0


class TestBalancedAccuracy:
    def test_balanced_case_equals_accuracy(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        # recall0 = 0.5, recall1 = 1.0
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.75)

    def test_majority_guessing_is_half(self):
        y_true = np.array([0] * 95 + [1] * 5)
        y_pred = np.zeros(100, dtype=int)
        assert balanced_accuracy_score(y_true, y_pred) == pytest.approx(0.5)


class TestRegistryIntegration:
    @pytest.mark.parametrize("name", ["f1", "macro_f1", "micro_f1",
                                      "balanced_accuracy"])
    def test_registered_as_error(self, name):
        m = get_metric(name)
        y = np.array([0, 1, 1, 0])
        assert m.error(y, y) == pytest.approx(0.0)
        assert not m.needs_proba
