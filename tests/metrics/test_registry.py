"""Tests for the metric registry / custom metric wrapping."""

import numpy as np
import pytest

from repro.metrics import Metric, default_metric_name, get_metric, make_metric


class TestRegistry:
    def test_default_per_task(self):
        assert default_metric_name("binary") == "roc_auc"
        assert default_metric_name("multiclass") == "log_loss"
        assert default_metric_name("regression") == "r2"

    def test_auto_resolution(self):
        m = get_metric("auto", task="binary")
        assert m.name == "roc_auc"
        assert m.needs_proba

    def test_auto_without_task_raises(self):
        with pytest.raises(ValueError):
            get_metric("auto")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_metric("nope")

    def test_auc_error_is_one_minus_auc(self):
        m = get_metric("roc_auc")
        y = np.array([0, 0, 1, 1])
        p = np.array([[0.9, 0.1], [0.8, 0.2], [0.2, 0.8], [0.1, 0.9]])
        assert m.error(y, p) == pytest.approx(0.0)

    def test_r2_error_is_one_minus_r2(self):
        m = get_metric("r2")
        y = np.array([1.0, 2.0, 3.0])
        assert m.error(y, y) == pytest.approx(0.0)
        assert m.error(y, np.full(3, 2.0)) == pytest.approx(1.0)

    def test_metric_passthrough(self):
        m = get_metric("mse")
        assert get_metric(m) is m


class TestCustomMetrics:
    def test_callable_is_wrapped(self):
        def my_error(y_true, pred):
            return float(np.mean(np.abs(y_true - pred)))

        m = get_metric(my_error)
        assert isinstance(m, Metric)
        assert m.name == "my_error"
        assert m.error(np.array([1.0]), np.array([3.0])) == pytest.approx(2.0)

    def test_greater_is_better_negated(self):
        score = lambda yt, p: float((yt == p).mean())
        m = make_metric(score, name="acc", greater_is_better=True)
        y = np.array([1, 1, 0])
        assert m.error(y, y) == pytest.approx(-1.0)

    def test_needs_proba_attribute_respected(self):
        def proba_metric(y_true, proba):
            return 0.0

        proba_metric.needs_proba = True
        m = get_metric(proba_metric)
        assert m.needs_proba
