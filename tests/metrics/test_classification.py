"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import accuracy_score, error_rate, log_loss, roc_auc_score


class TestRocAuc:
    def test_perfect_ranking(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, s) == 1.0

    def test_inverted_ranking(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, s) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 5000)
        s = rng.random(5000)
        assert abs(roc_auc_score(y, s) - 0.5) < 0.03

    def test_ties_handled(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc_score(y, s) == pytest.approx(0.5)

    def test_known_value(self):
        # hand-computed: pairs (neg, pos): (0.4,0.3)->0, (0.4,0.9)->1,
        # (0.2,0.3)->1, (0.2,0.9)->1 => 3/4
        y = np.array([0, 1, 0, 1])
        s = np.array([0.4, 0.3, 0.2, 0.9])
        assert roc_auc_score(y, s) == pytest.approx(0.75)

    def test_accepts_two_column_proba(self):
        y = np.array([0, 1, 1, 0])
        p = np.array([[0.8, 0.2], [0.3, 0.7], [0.1, 0.9], [0.6, 0.4]])
        assert roc_auc_score(y, p) == roc_auc_score(y, p[:, 1])

    def test_multiclass_ovr(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        p = np.eye(3)[y]  # perfect probabilities
        assert roc_auc_score(y, p) == pytest.approx(1.0)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.zeros(5), np.arange(5.0))

    def test_scale_invariant(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 200)
        s = rng.standard_normal(200)
        assert roc_auc_score(y, s) == pytest.approx(roc_auc_score(y, 100 * s + 3))

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_complement(self, seed):
        """AUC(y, s) + AUC(y, -s) == 1 (no ties)."""
        rng = np.random.default_rng(seed)
        y = np.concatenate([np.zeros(10), np.ones(10)]).astype(int)
        s = rng.permutation(np.linspace(0, 1, 20))  # distinct scores
        assert roc_auc_score(y, s) + roc_auc_score(y, -s) == pytest.approx(1.0)


class TestLogLoss:
    def test_perfect_prediction(self):
        y = np.array([0, 1])
        p = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert log_loss(y, p) == pytest.approx(0.0, abs=1e-10)

    def test_uniform_prediction(self):
        y = np.array([0, 1, 2])
        p = np.full((3, 3), 1 / 3)
        assert log_loss(y, p) == pytest.approx(np.log(3))

    def test_clipping_avoids_inf(self):
        y = np.array([1])
        p = np.array([[1.0, 0.0]])  # predicted zero probability for truth
        assert np.isfinite(log_loss(y, p))

    def test_labels_argument_for_missing_class(self):
        y = np.array([0, 0, 2])  # class 1 absent
        p = np.full((3, 3), 1 / 3)
        assert log_loss(y, p, labels=[0, 1, 2]) == pytest.approx(np.log(3))

    def test_one_dim_proba_binary(self):
        y = np.array([0, 1])
        assert log_loss(y, np.array([0.2, 0.8])) == pytest.approx(-np.log(0.8))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            log_loss(np.array([0, 1, 2]), np.full((3, 2), 0.5))


class TestAccuracy:
    def test_basic(self):
        assert accuracy_score(np.array([1, 2, 3]), np.array([1, 2, 4])) == pytest.approx(2 / 3)
        assert error_rate(np.array([1, 2, 3]), np.array([1, 2, 4])) == pytest.approx(1 / 3)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score(np.zeros(3), np.zeros(4))
