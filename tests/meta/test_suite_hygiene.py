"""Guard-rails for the test suite itself.

pytest's default (rootdir-relative) import mode derives a test module's
name from its file basename; two ``test_foo.py`` files in different
directories then collide and one silently shadows the other unless every
test directory is a package.  Both hazards have bitten this environment
before, so they are pinned here as tests (and as an explicit CI step).
"""

from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parents[1]


def _test_files() -> list[Path]:
    files = sorted(TESTS_DIR.rglob("test_*.py"))
    assert files, f"no test files found under {TESTS_DIR}"
    return files


def test_no_duplicate_test_basenames():
    by_name: dict[str, list[Path]] = {}
    for p in _test_files():
        by_name.setdefault(p.name, []).append(p)
    dups = {name: paths for name, paths in by_name.items() if len(paths) > 1}
    assert not dups, (
        "duplicate test-file basenames (pytest module-name collision "
        "hazard) — rename one of each:\n"
        + "\n".join(
            f"  {name}: " + ", ".join(str(p.relative_to(TESTS_DIR))
                                      for p in paths)
            for name, paths in sorted(dups.items())
        )
    )


def test_every_test_dir_is_a_package():
    dirs = {TESTS_DIR} | {p.parent for p in _test_files()}
    missing = sorted(
        str(d.relative_to(TESTS_DIR.parent))
        for d in dirs
        if not (d / "__init__.py").is_file()
    )
    assert not missing, (
        "test directories without __init__.py (module names degrade to "
        f"bare basenames and can collide): {missing}"
    )


def test_conftest_not_duplicated_as_test_module():
    # conftest.py files are fine (pytest special-cases them), but a
    # test_conftest.py would be collected — keep the namespace clean
    assert not list(TESTS_DIR.rglob("test_conftest.py"))
