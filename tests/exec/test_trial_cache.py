"""TrialCache round-trip fidelity and per-caller hit attribution.

Regression anchors for the multi-tenant promotion: `put` must strip only
the heavyweight payloads (model / trace / metrics) while preserving every
measurement field — `attempts` and `failure` in particular — and engines
sharing one store must report their *own* hits, never each other's.
"""

import pytest

import repro.exec.serial as serial_mod
from repro.core.evaluate import TrialOutcome
from repro.data import make_classification
from repro.exec import ExecutionEngine, SerialExecutor, TrialCache, TrialSpec
from repro.metrics import get_metric


class TestRoundTrip:
    def test_measurement_fields_survive_put_get(self):
        cache = TrialCache()
        outcome = TrialOutcome(
            error=0.21, cost=1.7, model=object(),
            failure="Traceback: worker died twice", trace={"t": 1},
            metrics={"m": 2}, attempts=3,
        )
        cache.put(("k",), outcome)
        got = cache.get(("k",))
        # heavyweight payloads stripped ...
        assert got.model is None
        assert got.trace is None
        assert got.metrics is None
        # ... every measurement field intact (the satellite-1 regression:
        # attempts/failure used to reset on the round trip)
        assert got.error == 0.21
        assert got.cost == 1.7
        assert got.attempts == 3
        assert got.failure == "Traceback: worker died twice"

    def test_put_does_not_mutate_the_original(self):
        cache = TrialCache()
        model = object()
        outcome = TrialOutcome(error=0.1, cost=0.5, model=model, attempts=2)
        cache.put(("k",), outcome)
        assert outcome.model is model
        assert outcome.attempts == 2

    def test_lru_eviction_and_counters(self):
        cache = TrialCache(maxsize=2)
        cache.put(("a",), TrialOutcome(error=0.1, cost=0.1, model=None))
        cache.put(("b",), TrialOutcome(error=0.2, cost=0.1, model=None))
        assert cache.get(("a",)) is not None  # refresh "a"
        cache.put(("c",), TrialOutcome(error=0.3, cost=0.1, model=None))
        assert cache.get(("b",)) is None  # LRU entry evicted
        assert cache.get(("a",)) is not None
        assert cache.get(("c",)) is not None
        assert cache.hits == 3 and cache.misses == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 3 and cache.misses == 1  # counters kept

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            TrialCache(maxsize=0)


class TestPerCallerAttribution:
    """Two engines over one store: `SearchResult.cache_hits` must come
    from the engine's own counters, not the store-wide aggregate."""

    @pytest.fixture()
    def data(self):
        return make_classification(60, 4, seed=0, name="attrib")

    @pytest.fixture()
    def spec(self):
        class _Stub:  # never instantiated: run_spec is stubbed below
            pass

        return TrialSpec(
            learner="stub", estimator_cls=_Stub, config={"x": 1},
            sample_size=60, resampling="holdout",
            metric=get_metric("roc_auc"),
        )

    def test_engines_count_their_own_lookups(self, data, spec, monkeypatch):
        monkeypatch.setattr(
            serial_mod, "run_spec",
            lambda d, s: TrialOutcome(error=0.3, cost=0.1, model="M",
                                      attempts=2),
        )
        store = TrialCache()
        a = ExecutionEngine(SerialExecutor(data), cache=store)
        b = ExecutionEngine(SerialExecutor(data), cache=store)
        try:
            a.run(spec)  # miss: executes, then stores
            a.run(spec)  # hit (same engine)
            out = b.run(spec)  # hit (cross-engine, via the shared store)
        finally:
            a.shutdown()
            b.shutdown()
        assert (a.cache_hits, a.cache_misses) == (1, 1)
        assert (b.cache_hits, b.cache_misses) == (1, 0)
        # the store-wide aggregate is the sum over both callers
        assert (store.hits, store.misses) == (2, 1)
        # replayed hit reports the original execution's retry history
        assert out.attempts == 2
        assert out.model is None
