"""Observability through the execution stack: failure tracebacks, engine
counters, and worker span/metric shipping on every backend.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.automl import AutoML
from repro.core.controller import SearchResult, TrialRecord
from repro.core.evaluate import evaluate_config
from repro.core.serialize import result_from_dict, result_to_dict
from repro.data import make_classification
from repro.exec import (
    ExecutionEngine,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    TrialCache,
    TrialSpec,
)
from repro.learners import LGBMLikeClassifier
from repro.metrics import get_metric
from repro.obs.metrics import REGISTRY, snapshot_diff
from repro.obs.trace import (
    clear_spans,
    drain_spans,
    set_tracing,
)


@pytest.fixture(scope="module")
def data():
    return make_classification(400, 5, class_sep=1.3, seed=0,
                               name="obs-exec").shuffled(0)


@pytest.fixture(scope="module")
def metric():
    return get_metric("roc_auc")


@pytest.fixture(autouse=True)
def quiet_tracer():
    prev = set_tracing(False)
    clear_spans()
    yield
    set_tracing(prev)
    clear_spans()


def make_spec(metric, **kw):
    base = dict(
        learner="lgbm",
        estimator_cls=LGBMLikeClassifier,
        config={"tree_num": 4, "leaf_num": 4},
        sample_size=200,
        resampling="holdout",
        metric=metric,
        seed=0,
        labels=np.array([0, 1]),
    )
    base.update(kw)
    return TrialSpec(**base)


class BrokenFitLearner(LGBMLikeClassifier):
    """Module-level (picklable) learner whose fit always raises."""

    def fit(self, X, y):
        raise ValueError("synthetic failure for the traceback test")


def _counter_delta(diff, name, **labels):
    fam = diff.get(name, {"series": []})
    want = {str(k): str(v) for k, v in labels.items()}
    return sum(
        row["value"] for row in fam["series"]
        if all(row["labels"].get(k) == v for k, v in want.items())
    )


class TestFailureTracebacks:
    def test_evaluate_config_preserves_the_traceback(self, data, metric):
        out = evaluate_config(data, BrokenFitLearner,
                              {"tree_num": 4, "leaf_num": 4}, 200,
                              "holdout", metric, labels=np.array([0, 1]))
        assert out.error == float("inf")
        assert "Traceback" in out.failure
        assert "synthetic failure for the traceback test" in out.failure
        assert "ValueError" in out.failure

    def test_successful_trial_has_no_failure(self, data, metric):
        out = evaluate_config(data, LGBMLikeClassifier,
                              {"tree_num": 4, "leaf_num": 4}, 200,
                              "holdout", metric, labels=np.array([0, 1]))
        assert out.failure is None

    def test_failure_crosses_the_process_boundary(self, data, metric):
        engine = ExecutionEngine(ProcessExecutor(data, n_workers=1),
                                 cache=None)
        try:
            out = engine.run(make_spec(metric,
                                       estimator_cls=BrokenFitLearner))
        finally:
            engine.shutdown()
        assert out.error == float("inf")
        assert "synthetic failure for the traceback test" in out.failure

    def test_timeout_failure_names_the_limit(self, data, metric):
        import time as _time

        class _Sleepy(LGBMLikeClassifier):
            def fit(self, X, y):
                _time.sleep(0.5)

        engine = ExecutionEngine(ThreadExecutor(data, n_workers=1),
                                 cache=None, trial_time_limit=0.05)
        try:
            out = engine.run(make_spec(metric, estimator_cls=_Sleepy))
        finally:
            engine.shutdown()
        assert out.error == float("inf")
        assert "time limit" in out.failure

    def test_search_result_failures_property_and_roundtrip(self):
        ok = TrialRecord(iteration=1, automl_time=0.1, learner="lgbm",
                         config={}, sample_size=10, resampling="holdout",
                         error=0.2, cost=0.1, kind="search",
                         improved_global=True)
        bad = TrialRecord(iteration=2, automl_time=0.2, learner="xgboost",
                          config={}, sample_size=10, resampling="holdout",
                          error=float("inf"), cost=0.1, kind="search",
                          improved_global=False,
                          failure="Traceback ...\nValueError: nope")
        result = SearchResult(
            best_learner="lgbm", best_config={}, best_sample_size=10,
            best_error=0.2, resampling="holdout", trials=[ok, bad],
            wall_time=0.3,
        )
        assert result.failures == [bad]
        restored = result_from_dict(result_to_dict(result))
        assert restored.failures[0].failure == bad.failure
        assert restored.trials[0].failure is None
        # successful rows stay compact: no failure key at all
        assert "failure" not in result_to_dict(result)["trials"][0]


class TestEngineCounters:
    def test_cache_and_status_counters(self, data, metric):
        engine = ExecutionEngine(SerialExecutor(data), cache=TrialCache())
        before = REGISTRY.snapshot()
        try:
            spec = make_spec(metric)
            engine.run(spec)
            engine.run(spec)  # identical spec: served by the cache
            engine.run(make_spec(metric, estimator_cls=BrokenFitLearner,
                                 learner="broken"))
        finally:
            engine.shutdown()
        diff = snapshot_diff(before, REGISTRY.snapshot())
        assert _counter_delta(diff, "repro_trial_cache_total",
                              result="hit") == 1
        assert _counter_delta(diff, "repro_trial_cache_total",
                              result="miss") == 2
        assert _counter_delta(diff, "repro_trials_total", status="ok",
                              backend="serial") == 1
        assert _counter_delta(diff, "repro_trials_total", status="failed",
                              backend="serial") == 1
        assert _counter_delta(diff, "repro_trials_total",
                              status="cache-hit") == 1
        wait = [row for row in
                diff["repro_exec_queue_wait_seconds"]["series"]
                if row["labels"] == {"backend": "serial"}]
        assert wait and wait[0]["count"] == 2  # cache hits skip the queue


class TestSpanCollection:
    def test_thread_backend_spans_land_locally(self, data):
        set_tracing(True)
        automl = AutoML(seed=0, init_sample_size=100)
        automl.fit(data.X, data.y, task="classification", time_budget=30,
                   max_iters=4, n_workers=2, backend="thread",
                   estimator_list=["lgbm"])
        spans = drain_spans()
        trials = [s for s in spans if s["name"] == "trial"]
        assert len(trials) >= 4
        assert all(s["pid"] == os.getpid() for s in spans)
        names = {s["name"] for s in spans}
        assert {"trial.fit", "trial.score", "trial.metric"} <= names

    def test_process_workers_ship_their_buffers(self, data):
        set_tracing(True)
        before = REGISTRY.snapshot()
        automl = AutoML(seed=0, init_sample_size=100)
        automl.fit(data.X, data.y, task="classification", time_budget=60,
                   max_iters=4, n_workers=2, backend="process",
                   estimator_list=["lgbm"])
        spans = drain_spans()
        trials = [s for s in spans if s["name"] == "trial"]
        assert len(trials) >= 4  # no trial's spans were lost
        # shipped spans keep the *worker* pid and intact parent links
        assert {s["pid"] for s in trials} and all(
            s["pid"] != os.getpid() for s in trials
        )
        by_id = {s["span"]: s for s in spans}
        children = [s for s in spans if s["parent"] is not None]
        assert children
        assert all(s["parent"] in by_id for s in children)
        # the workers' metric deltas were merged too
        diff = snapshot_diff(before, REGISTRY.snapshot())
        assert _counter_delta(diff, "repro_trials_total", status="ok",
                              backend="process") >= 4

    def test_disabled_tracing_ships_nothing(self, data, metric):
        engine = ExecutionEngine(ProcessExecutor(data, n_workers=1),
                                 cache=None)
        try:
            out = engine.run(make_spec(metric))
        finally:
            engine.shutdown()
        assert out.trace is None and out.metrics is None
        assert drain_spans() == []
