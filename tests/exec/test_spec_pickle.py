"""Every TrialSpec must survive pickling — the process backend's wire
contract.

This box's process pool has silently regressed on unpicklable specs
before: a spec that cannot be pickled (or a payload builder that drops a
field) turns every process-backend trial into an inf-error without any
loud failure.  These tests pin the contract for every registered learner
and task, including the forecast trials' new context fields.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core.registry import EXTRA_LEARNERS, all_learners, forecast_spec
from repro.exec.base import TrialSpec
from repro.exec.process import _spec_from_payload, _spec_payload
from repro.metrics.forecast import mase_metric
from repro.metrics.registry import _REGISTRY, default_metric_name, get_metric

TASKS = ("binary", "multiclass", "regression", "forecast")


def _specs():
    """One representative TrialSpec per (learner, supported task)."""
    out = []
    for name, spec in all_learners().items():
        for task in TASKS:
            if not spec.supports(task):
                continue
            lspec = forecast_spec(spec) if task == "forecast" else spec
            space = lspec.space_fn(500, task)
            config = space.init_config()
            labels = (np.array([0, 1, 2]) if task == "multiclass"
                      else np.array([0, 1]) if task == "binary" else None)
            out.append(
                TrialSpec(
                    learner=name,
                    estimator_cls=lspec.estimator_cls(task),
                    config=config,
                    sample_size=200,
                    resampling=("temporal" if task == "forecast" else "cv"),
                    metric=get_metric(default_metric_name(task)),
                    n_splits=3,
                    holdout_ratio=0.2,
                    seed=7,
                    train_time_limit=1.5,
                    labels=labels,
                    horizon=6 if task == "forecast" else 1,
                    seasonal_period=12 if task == "forecast" else None,
                )
            )
    return out


SPECS = _specs()
SPEC_IDS = [f"{s.learner}-{s.resampling}-{s.metric.name}" for s in SPECS]


def _assert_specs_equal(a: TrialSpec, b: TrialSpec) -> None:
    for f in dataclasses.fields(TrialSpec):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if f.name == "metric":
            assert vb.name == va.name and vb.needs_proba == va.needs_proba
        elif isinstance(va, np.ndarray):
            assert np.array_equal(va, vb)
        else:
            assert va == vb, f.name
    assert a.cache_key() == b.cache_key()


def test_covers_forecast_trials():
    assert any(s.resampling == "temporal" for s in SPECS)


@pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
def test_spec_payload_round_trips_through_pickle(spec):
    """The exact bytes the process backend ships: payload -> pickle ->
    unpickle -> spec, losing nothing."""
    payload = _spec_payload(spec)
    wire = pickle.loads(pickle.dumps(payload))
    _assert_specs_equal(spec, _spec_from_payload(wire))


def test_payload_covers_every_trialspec_field():
    """A field added to TrialSpec must reach the worker: the payload is
    built by introspection, and this guard fails if that ever changes."""
    payload = _spec_payload(SPECS[0])
    field_names = {f.name for f in dataclasses.fields(TrialSpec)}
    assert set(payload) == (field_names - {"metric"}) | {"metric_ref"}


def test_registry_metrics_travel_by_name():
    """Registry metrics (lambda error_fns — unpicklable) must be sent as
    references, and custom metrics must be picklable objects."""
    for spec in SPECS:
        kind, value = _spec_payload(spec)["metric_ref"]
        assert kind == "registry" and value in _REGISTRY


def test_seasonal_mase_metric_is_picklable():
    # AutoML substitutes mase_metric(m) for seasonal fits; it is not a
    # registry object, so it must pickle directly (partial of a
    # module-level function, never a lambda/closure)
    m = mase_metric(12)
    again = pickle.loads(pickle.dumps(m))
    yt, yp = np.arange(24.0), np.arange(24.0) + 1.0
    hist = np.arange(48.0)
    assert again.error_fn(yt, yp, hist) == m.error_fn(yt, yp, hist)


def test_whole_spec_pickles_directly():
    """Belt and braces: a spec whose metric is replaced by a picklable
    one round-trips as a single object (thread-to-process handoff)."""
    for spec in SPECS:
        clone = dataclasses.replace(spec, metric=mase_metric(1))
        _assert_specs_equal(clone, pickle.loads(pickle.dumps(clone)))
