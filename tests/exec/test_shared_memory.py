"""Shared-memory dataset plane of the process backend.

The executor must (a) ship only O(1) metadata to workers — never a
pickle of the feature matrix, (b) actually share memory (a worker-side
attach sees writes through the parent's segment), and (c) unlink every
segment on shutdown, including after worker crashes and pool rebuilds —
repeated fits must not accumulate ``/dev/shm`` blocks.
"""

import gc
import glob
import os

import numpy as np
import pytest

from repro.data import make_classification
from repro.data.dataset import Dataset
from repro.exec import ProcessExecutor, TrialSpec
from repro.exec import process as process_mod
from repro.learners import LGBMLikeClassifier
from repro.metrics import get_metric


@pytest.fixture(scope="module")
def data():
    return make_classification(300, 4, class_sep=1.3, seed=0,
                               name="shm").shuffled(0)


def make_spec(config=None, **kw):
    base = dict(
        learner="lgbm",
        estimator_cls=LGBMLikeClassifier,
        config=config or {"tree_num": 3, "leaf_num": 4},
        sample_size=150,
        resampling="holdout",
        metric=get_metric("accuracy"),
        seed=0,
        labels=np.array([0, 1]),
    )
    base.update(kw)
    return TrialSpec(**base)


class ExitingLearner(LGBMLikeClassifier):
    """Kills its worker process outright (picklable, module-level)."""

    def fit(self, X, y):
        os._exit(17)


def shm_files() -> set:
    return set(glob.glob("/dev/shm/" + process_mod.SHM_PREFIX + "*"))


class TestZeroCopyInit:
    def test_init_payload_is_metadata_not_arrays(self, data):
        with ProcessExecutor(data, n_workers=1) as ex:
            payload = ex._init_payload
            assert "dataset" not in payload
            for field in ("X", "y"):
                meta = payload[field]
                assert set(meta) == {"shm", "shape", "dtype"}
                assert meta["shm"].startswith(process_mod.SHM_PREFIX)
            # the wire form is tiny: names + shapes, not 300x4 floats
            import pickle

            assert len(pickle.dumps(payload)) < 2000

    def test_worker_attach_shares_memory(self, data):
        """An attach (as the worker initializer does it) must observe
        writes made through the parent's segment — proof the matrix is
        mapped, not copied."""
        saved_data = process_mod._WORKER_DATA
        saved_segs = list(process_mod._WORKER_SEGMENTS)
        ex = ProcessExecutor(data, n_workers=1)
        try:
            process_mod._WORKER_SEGMENTS.clear()
            process_mod._init_worker(ex._init_payload)
            worker_data = process_mod._WORKER_DATA
            assert isinstance(worker_data, Dataset)
            np.testing.assert_array_equal(worker_data.X, data.X)
            np.testing.assert_array_equal(worker_data.y, data.y)
            assert not worker_data.X.flags.writeable
            # write through the parent's own segment view
            parent_view = np.ndarray(
                data.X.shape, dtype=np.float64, buffer=ex._segments[0].buf
            )
            before = worker_data.X[0, 0]
            parent_view[0, 0] = before + 1.0
            assert worker_data.X[0, 0] == before + 1.0
            parent_view[0, 0] = before
        finally:
            for shm in process_mod._WORKER_SEGMENTS:
                shm.close()
            process_mod._WORKER_SEGMENTS[:] = saved_segs
            process_mod._WORKER_DATA = saved_data
            ex.shutdown()

    def test_process_trial_matches_serial(self, data):
        from repro.exec import SerialExecutor

        spec = make_spec()
        serial = SerialExecutor(data).submit(spec).result()
        with ProcessExecutor(data, n_workers=1) as ex:
            remote = ex.submit(spec).result(timeout=120)
        assert remote.error == serial.error
        assert remote.model is None

    def test_object_dtype_labels_fall_back_to_pickle(self):
        X = np.random.default_rng(0).standard_normal((40, 3))
        y = np.array(["a", "b"] * 20, dtype=object)
        data = Dataset("obj", X, y, "binary")
        ex = ProcessExecutor(data, n_workers=1)
        try:
            assert "dataset" in ex._init_payload
            assert ex._segments == []
        finally:
            ex.shutdown()


class TestWorkerPlaneWarmup:
    """`_init_worker` pre-computes the default splits/codes (ROADMAP
    open item): the first trial a worker runs must hit warm plane
    caches, not build them inside its measured wall-clock."""

    WARMUP = {"resampling": "holdout", "holdout_ratio": 0.1, "seed": 0,
              "n_splits": 5, "sample_size": 150}

    def _init_in_this_process(self, ex):
        saved = (process_mod._WORKER_DATA,
                 list(process_mod._WORKER_SEGMENTS))
        process_mod._WORKER_SEGMENTS.clear()
        process_mod._init_worker(ex._init_payload)
        return saved

    def _restore(self, saved):
        data_saved, segs_saved = saved
        for shm in process_mod._WORKER_SEGMENTS:
            shm.close()
        process_mod._WORKER_SEGMENTS[:] = segs_saved
        process_mod._WORKER_DATA = data_saved

    def test_executor_ships_warmup_context(self, data):
        with ProcessExecutor(data, n_workers=1, warmup=self.WARMUP) as ex:
            assert ex._init_payload["warmup"] == self.WARMUP

    def test_first_trial_hits_warm_caches(self, data):
        from repro.data import plane_for
        from repro.exec.base import run_spec

        ex = ProcessExecutor(data, n_workers=1, warmup=self.WARMUP)
        saved = self._init_in_this_process(ex)
        try:
            worker_data = process_mod._WORKER_DATA
            plane = plane_for(worker_data)
            warmed = plane.stats()
            assert warmed["splits"] == 1  # the holdout indices
            assert warmed["binned"] >= 1  # default-max_bins code sets
            # the first trial (same resampling/seed/sample_size the
            # warmup described) computes NO new splits or codes
            out = run_spec(worker_data, make_spec())
            assert np.isfinite(out.error)
            after = plane.stats()
            assert after["splits"] == warmed["splits"]
            assert after["binned"] == warmed["binned"]
            assert after["split_hits"] > warmed["split_hits"]
            assert after["binned_hits"] > warmed["binned_hits"]
        finally:
            self._restore(saved)
            ex.shutdown()

    def test_no_warmup_means_cold_plane(self, data):
        from repro.data import plane_for

        ex = ProcessExecutor(data, n_workers=1)
        saved = self._init_in_this_process(ex)
        try:
            assert "warmup" not in ex._init_payload
            stats = plane_for(process_mod._WORKER_DATA).stats()
            assert stats["splits"] == 0 and stats["binned"] == 0
        finally:
            self._restore(saved)
            ex.shutdown()

    def test_warm_plane_cv_keys_match_trial_path(self, data):
        """CV warmup must produce exactly the fold/code entries a CV
        trial looks up (key-format drift would silently de-warm)."""
        from repro.data import plane_for, warm_plane
        from repro.exec.base import run_spec

        clone = Dataset(data.name, data.X.copy(), data.y.copy(), data.task,
                        data.categorical)
        warm_plane(clone, resampling="cv", seed=0, n_splits=3,
                   sample_size=120)
        plane = plane_for(clone)
        warmed = plane.stats()
        # one fold-set; 3 folds x 3 default max_bins code sets
        assert warmed["splits"] == 1 and warmed["binned"] == 9
        out = run_spec(clone, make_spec(resampling="cv", n_splits=3,
                                        sample_size=120))
        assert np.isfinite(out.error)
        after = plane.stats()
        assert after["splits"] == warmed["splits"]
        assert after["binned"] == warmed["binned"]
        assert after["binned_hits"] > warmed["binned_hits"]

    def test_warmup_never_breaks_init(self, data, monkeypatch):
        """A failing warmup must leave a usable (cold) worker."""
        import repro.data.binned as binned_mod

        def boom(*a, **kw):
            raise RuntimeError("warmup exploded")

        monkeypatch.setattr(binned_mod, "warm_plane", boom)
        ex = ProcessExecutor(data, n_workers=1, warmup=self.WARMUP)
        saved = self._init_in_this_process(ex)
        try:
            assert process_mod._WORKER_DATA is not None
        finally:
            self._restore(saved)
            ex.shutdown()

    def test_controller_process_backend_passes_warmup(self, data):
        """The parallel controller hands its search context to the
        process executor as the warmup payload."""
        from repro.core.parallel import ParallelSearchController
        from repro.core.registry import DEFAULT_LEARNERS
        from repro.metrics import get_metric

        learners = {"lgbm": DEFAULT_LEARNERS["lgbm"]}
        ctl = ParallelSearchController(
            data, learners, get_metric("log_loss"), time_budget=1.0,
            n_workers=1, backend="process", seed=3, init_sample_size=100,
        )
        try:
            warmup = ctl.engine.executor._warmup
            assert warmup is not None
            assert warmup["resampling"] == ctl.resampling
            assert warmup["seed"] == 3
            assert warmup["sample_size"] <= data.n
        finally:
            ctl.engine.shutdown()


def _attach_worker(ex):
    """Run ``_init_worker`` in this process (the established pattern for
    inspecting worker-side state); returns the saved globals."""
    saved = (process_mod._WORKER_DATA, list(process_mod._WORKER_SEGMENTS))
    process_mod._WORKER_SEGMENTS.clear()
    process_mod._init_worker(ex._init_payload)
    return saved


def _detach_worker(saved):
    data_saved, segs_saved = saved
    for shm in process_mod._WORKER_SEGMENTS:
        shm.close()
    process_mod._WORKER_SEGMENTS[:] = segs_saved
    process_mod._WORKER_DATA = data_saved


class TestCodesPlane:
    """The large-n code-shipping plane: workers get the pre-binned
    uint8/uint16 sketch-grid matrix over shm instead of float64 X.
    Legal only because codes are fold-independent
    (tests/data/test_fold_independence.py); these tests cover the
    transport: export/attach, dtype handling, fallbacks, teardown, and
    the loud failure when a non-plane learner lands on a codes worker.
    """

    def _big(self, seed=0, n=3000, name="shm-codes"):
        return make_classification(n, 6, class_sep=1.2, seed=seed,
                                   name=name).shuffled(seed)

    def test_codes_payload_replaces_float_matrix(self, monkeypatch):
        from repro.data.binned import BinnedDataset

        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        data = self._big()
        with ProcessExecutor(data, n_workers=1, ship_codes=True) as ex:
            payload = ex._init_payload
            assert ex.ship_mode == "codes"
            assert "X" not in payload and "dataset" not in payload
            assert np.dtype(payload["codes"]["dtype"]) == np.uint8
            assert tuple(payload["x_shape"]) == (data.n, data.d)
            float_bytes = data.n * data.d * 8
            # uint8 codes + float64 y: ~(d + 8) / 8d of the float plane
            assert ex.shipped_bytes <= float_bytes / 3

    def test_worker_adopts_codes_and_stubs_x(self, monkeypatch):
        from repro.data import plane_for
        from repro.data.binned import BinnedDataset

        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        data = self._big(seed=1, name="shm-codes-adopt")
        ex = ProcessExecutor(data, n_workers=1, ship_codes=True)
        saved = _attach_worker(ex)
        try:
            wd = process_mod._WORKER_DATA
            assert wd._codes_only
            # the feature matrix is a zero-byte broadcast stub
            assert wd.X.shape == (data.n, data.d)
            assert wd.X.strides == (0, 0)
            assert not wd.X.flags.writeable
            stats = plane_for(wd).stats()
            assert stats["adopted_codes"] and stats["sketch"]
            assert stats["base_codes_bytes"] == data.n * data.d
        finally:
            _detach_worker(saved)
            ex.shutdown()

    def test_codes_trial_equals_float_trial_equals_serial(self, monkeypatch):
        """The load-bearing equality: the same spec evaluated on a
        codes-only worker, a float-shm worker, and serially in the
        parent produces the identical error."""
        from repro.data.binned import BinnedDataset
        from repro.exec import SerialExecutor
        from repro.exec.base import run_spec

        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        data = self._big(seed=2, name="shm-codes-eq")
        spec = make_spec(sample_size=2000)
        serial = SerialExecutor(data).submit(spec).result()

        errors = {}
        for mode, ship in (("codes", True), ("float", False)):
            ex = ProcessExecutor(data, n_workers=1, ship_codes=ship)
            saved = _attach_worker(ex)
            try:
                assert ex.ship_mode == mode
                errors[mode] = run_spec(process_mod._WORKER_DATA, spec).error
            finally:
                _detach_worker(saved)
                ex.shutdown()
        assert errors["codes"] == serial.error
        assert errors["float"] == serial.error

    def test_real_subprocess_codes_trial(self, monkeypatch):
        """End-to-end through a real worker process: the grid state must
        survive pickling and the trial must match the parent's sketch
        evaluation."""
        from repro.data.binned import BinnedDataset
        from repro.exec import SerialExecutor

        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        data = self._big(seed=3, name="shm-codes-e2e")
        spec = make_spec(sample_size=2000)
        serial = SerialExecutor(data).submit(spec).result()
        with ProcessExecutor(data, n_workers=1, ship_codes=True) as ex:
            remote = ex.submit(spec).result(timeout=120)
        assert remote.failure is None
        assert remote.error == serial.error

    def test_uint16_grid_roundtrip(self, monkeypatch):
        """A base grid past 256 codes ships and attaches as uint16."""
        from repro.data import plane_for
        from repro.data.binned import BinnedDataset

        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        monkeypatch.setattr(BinnedDataset, "SKETCH_BASE_BINS", 300)
        data = self._big(seed=4, name="shm-codes-u16")
        ex = ProcessExecutor(data, n_workers=1, ship_codes=True)
        saved = _attach_worker(ex)
        try:
            assert np.dtype(ex._init_payload["codes"]["dtype"]) == np.uint16
            wd = process_mod._WORKER_DATA
            worker_plane = plane_for(wd)
            parent_plane = plane_for(data)
            rows = np.arange(0, data.n, 11)
            a = worker_plane._base_codes_rows(rows)
            b = parent_plane._base_codes_rows(rows)
            assert a.dtype == np.uint16
            assert a.tobytes() == b.tobytes()
        finally:
            _detach_worker(saved)
            ex.shutdown()

    def test_auto_resolution_needs_plane_only_learners(self, monkeypatch):
        from repro.data.binned import BinnedDataset

        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        data = self._big(seed=5, name="shm-codes-auto")
        warm = {"resampling": "holdout", "holdout_ratio": 0.1, "seed": 0,
                "sample_size": 500, "plane_learners_only": True}
        with ProcessExecutor(data, n_workers=1, warmup=warm) as ex:
            assert ex.ship_mode == "codes"
        mixed = dict(warm, plane_learners_only=False)
        with ProcessExecutor(data, n_workers=1, warmup=mixed) as ex:
            assert ex.ship_mode == "float"
        # explicit opt-out always wins
        with ProcessExecutor(data, n_workers=1, warmup=warm,
                             ship_codes=False) as ex:
            assert ex.ship_mode == "float"

    def test_auto_stays_float_below_exact_limit(self):
        data = self._big(seed=6, name="shm-codes-small")
        warm = {"resampling": "holdout", "holdout_ratio": 0.1, "seed": 0,
                "sample_size": 500, "plane_learners_only": True}
        with ProcessExecutor(data, n_workers=1, warmup=warm) as ex:
            assert ex.ship_mode == "float"  # exact path stays bitwise

    def test_object_labels_fall_back_to_pickle(self):
        X = np.random.default_rng(0).standard_normal((300, 3))
        y = np.array(["a", "b"] * 150, dtype=object)
        data = Dataset("obj-codes", X, y, "binary")
        ex = ProcessExecutor(data, n_workers=1, ship_codes=True)
        try:
            assert ex.ship_mode == "pickle"
            assert "dataset" in ex._init_payload
            assert ex._segments == []
        finally:
            ex.shutdown()

    def test_non_plane_learner_fails_loudly(self, monkeypatch):
        """A learner that needs raw features must surface an inf-error
        trial with an explanatory failure, never fit the NaN stub."""
        from repro.data.binned import BinnedDataset
        from repro.exec.base import run_spec
        from repro.learners import LogisticRegressionL1

        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        data = self._big(seed=7, name="shm-codes-guard")
        ex = ProcessExecutor(data, n_workers=1, ship_codes=True)
        saved = _attach_worker(ex)
        try:
            spec = make_spec(estimator_cls=LogisticRegressionL1,
                             learner="lrl1", config={"C": 1.0},
                             sample_size=2000)
            out = run_spec(process_mod._WORKER_DATA, spec)
            assert out.error == np.inf
            assert out.failure is not None
            assert "not binned-plane aware" in out.failure
        finally:
            _detach_worker(saved)
            ex.shutdown()

    def test_codes_segments_unlinked_on_shutdown(self, monkeypatch):
        from multiprocessing import shared_memory

        from repro.data.binned import BinnedDataset

        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        before = shm_files()
        data = self._big(seed=8, name="shm-codes-teardown")
        ex = ProcessExecutor(data, n_workers=1, ship_codes=True)
        names = [s.name for s in ex._segments]
        assert len(names) == 2  # y and codes
        ex.submit(make_spec(sample_size=2000)).result(timeout=120)
        ex.shutdown()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert shm_files() == before

    def test_crash_rebuild_leaks_nothing(self, monkeypatch):
        from repro.data.binned import BinnedDataset

        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        before = shm_files()
        data = self._big(seed=9, name="shm-codes-crash")
        ex = ProcessExecutor(data, n_workers=1, ship_codes=True)
        crash = make_spec(estimator_cls=ExitingLearner, learner="exit",
                          sample_size=2000)
        with pytest.raises(Exception):
            ex.submit(crash).result(timeout=120)
        out = ex.submit(make_spec(sample_size=2000)).result(timeout=120)
        assert np.isfinite(out.error)
        ex.shutdown()
        assert shm_files() == before


class TestTeardown:
    def test_shutdown_unlinks_all_segments(self, data):
        from multiprocessing import shared_memory

        before = shm_files()
        ex = ProcessExecutor(data, n_workers=1)
        names = [s.name for s in ex._segments]
        assert len(names) == 2  # X and y
        ex.submit(make_spec()).result(timeout=120)
        ex.shutdown()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert shm_files() == before

    def test_repeated_fit_cycles_leak_nothing(self, data):
        before = shm_files()
        for _ in range(3):
            with ProcessExecutor(data, n_workers=1) as ex:
                ex.submit(make_spec()).result(timeout=120)
        assert shm_files() == before

    def test_shutdown_idempotent(self, data):
        ex = ProcessExecutor(data, n_workers=1)
        ex.shutdown()
        ex.shutdown()  # second call must not raise

    def test_finalizer_backstop_unlinks_dropped_executor(self, data):
        before = shm_files()
        ex = ProcessExecutor(data, n_workers=1)
        assert shm_files() != before
        pool = ex._pool
        del ex
        gc.collect()
        pool.shutdown(wait=False, cancel_futures=True)
        assert shm_files() == before

    def test_worker_crash_pool_rebuild_then_clean_shutdown(self, data):
        """A hard worker death must not orphan segments: the rebuilt pool
        reattaches the same segments and shutdown still unlinks them."""
        before = shm_files()
        ex = ProcessExecutor(data, n_workers=1)
        names = [s.name for s in ex._segments]
        crash = make_spec(estimator_cls=ExitingLearner, learner="exit")
        handle = ex.submit(crash)
        with pytest.raises(Exception):
            handle.result(timeout=120)
        # pool is broken now; next submit rebuilds it against the same
        # shared segments and the trial succeeds
        out = ex.submit(make_spec()).result(timeout=120)
        assert np.isfinite(out.error)
        assert [s.name for s in ex._segments] == names
        ex.shutdown()
        assert shm_files() == before


class TestInjectedShmFaults:
    """The ``shm.attach`` fault site drives both shared-memory recovery
    paths: a parent-side export failure degrades to the pickled-dataset
    init immediately, and worker-side attach failures (workers dying
    during pool spin-up) trip the rebuild circuit breaker into the same
    degradation — in both cases with zero leaked segments."""

    @pytest.fixture(autouse=True)
    def no_leftover_plan(self):
        from repro.faults import install

        prev = install(None)
        yield
        install(prev)

    def test_export_fault_falls_back_to_pickle(self, data):
        from repro.faults import FaultPlan, install

        before = shm_files()
        install(FaultPlan({"shm.attach": {"probability": 1.0,
                                          "mode": "export"}}))
        ex = ProcessExecutor(data, n_workers=1)
        try:
            assert ex.ship_mode == "pickle"
            assert "dataset" in ex._init_payload
            assert ex._segments == []
            assert shm_files() == before  # half-exports unlinked too
            out = ex.submit(make_spec()).result(timeout=120)
            assert np.isfinite(out.error)
        finally:
            ex.shutdown()
        assert shm_files() == before

    def test_attach_faults_trip_breaker_into_pickle_degrade(self, data):
        """Workers dying at attach break the pool during spin-up; after
        ``REBUILDS_TO_PICKLE`` consecutive rebuilds the executor swaps
        the init payload for the pickled dataset, unlinks the now-unused
        segments mid-search, and trials start succeeding."""
        from repro.faults import FaultPlan, install

        before = shm_files()
        install(FaultPlan({"shm.attach": {"probability": 1.0,
                                          "mode": "attach"}}))
        ex = ProcessExecutor(data, n_workers=1)
        try:
            assert ex.ship_mode == "float"  # export itself is untouched
            assert len(ex._segments) == 2
            rebuilds = 0
            out = None
            for _ in range(ex.REBUILDS_TO_PICKLE + 2):
                try:
                    out = ex.submit(make_spec()).result(timeout=120)
                    break
                except Exception:
                    rebuilds += 1
            assert out is not None and np.isfinite(out.error)
            assert ex.ship_mode == "pickle"
            assert ex._segments == []  # unlinked at degradation time
        finally:
            ex.shutdown()
        assert shm_files() == before

    def test_hard_midsearch_kill_retried_with_zero_leaks(self, data):
        """A ``hard`` worker.crash is a real ``os._exit`` inside the
        worker (skips atexit, like a segfault).  The engine retries on
        the rebuilt pool and the search moves on; shutdown leaves no
        segment behind."""
        from repro.exec import ExecutionEngine, RetryPolicy
        from repro.faults import FaultPlan, install

        before = shm_files()
        install(FaultPlan({"worker.crash": {"probability": 1.0,
                                            "hard": True}}))
        engine = ExecutionEngine(
            ProcessExecutor(data, n_workers=1),
            retry_policy=RetryPolicy(max_attempts=2, backoff_base=0.0,
                                     jitter=0.0),
        )
        try:
            handle = engine.submit(make_spec())
            # lift the plan before the retry: the rebuilt pool re-ships
            # the *current* plan, so the second attempt runs clean —
            # exactly one real SIGKILL-style death mid-search
            install(None)
            out = handle.outcome(timeout=120)
            assert np.isfinite(out.error)
            assert out.attempts == 2
            assert engine.retries_used == 1
        finally:
            engine.shutdown()
        assert shm_files() == before
