"""Shared-memory dataset plane of the process backend.

The executor must (a) ship only O(1) metadata to workers — never a
pickle of the feature matrix, (b) actually share memory (a worker-side
attach sees writes through the parent's segment), and (c) unlink every
segment on shutdown, including after worker crashes and pool rebuilds —
repeated fits must not accumulate ``/dev/shm`` blocks.
"""

import gc
import glob
import os

import numpy as np
import pytest

from repro.data import make_classification
from repro.data.dataset import Dataset
from repro.exec import ProcessExecutor, TrialSpec
from repro.exec import process as process_mod
from repro.learners import LGBMLikeClassifier
from repro.metrics import get_metric


@pytest.fixture(scope="module")
def data():
    return make_classification(300, 4, class_sep=1.3, seed=0,
                               name="shm").shuffled(0)


def make_spec(config=None, **kw):
    base = dict(
        learner="lgbm",
        estimator_cls=LGBMLikeClassifier,
        config=config or {"tree_num": 3, "leaf_num": 4},
        sample_size=150,
        resampling="holdout",
        metric=get_metric("accuracy"),
        seed=0,
        labels=np.array([0, 1]),
    )
    base.update(kw)
    return TrialSpec(**base)


class ExitingLearner(LGBMLikeClassifier):
    """Kills its worker process outright (picklable, module-level)."""

    def fit(self, X, y):
        os._exit(17)


def shm_files() -> set:
    return set(glob.glob("/dev/shm/" + process_mod.SHM_PREFIX + "*"))


class TestZeroCopyInit:
    def test_init_payload_is_metadata_not_arrays(self, data):
        with ProcessExecutor(data, n_workers=1) as ex:
            payload = ex._init_payload
            assert "dataset" not in payload
            for field in ("X", "y"):
                meta = payload[field]
                assert set(meta) == {"shm", "shape", "dtype"}
                assert meta["shm"].startswith(process_mod.SHM_PREFIX)
            # the wire form is tiny: names + shapes, not 300x4 floats
            import pickle

            assert len(pickle.dumps(payload)) < 2000

    def test_worker_attach_shares_memory(self, data):
        """An attach (as the worker initializer does it) must observe
        writes made through the parent's segment — proof the matrix is
        mapped, not copied."""
        saved_data = process_mod._WORKER_DATA
        saved_segs = list(process_mod._WORKER_SEGMENTS)
        ex = ProcessExecutor(data, n_workers=1)
        try:
            process_mod._WORKER_SEGMENTS.clear()
            process_mod._init_worker(ex._init_payload)
            worker_data = process_mod._WORKER_DATA
            assert isinstance(worker_data, Dataset)
            np.testing.assert_array_equal(worker_data.X, data.X)
            np.testing.assert_array_equal(worker_data.y, data.y)
            assert not worker_data.X.flags.writeable
            # write through the parent's own segment view
            parent_view = np.ndarray(
                data.X.shape, dtype=np.float64, buffer=ex._segments[0].buf
            )
            before = worker_data.X[0, 0]
            parent_view[0, 0] = before + 1.0
            assert worker_data.X[0, 0] == before + 1.0
            parent_view[0, 0] = before
        finally:
            for shm in process_mod._WORKER_SEGMENTS:
                shm.close()
            process_mod._WORKER_SEGMENTS[:] = saved_segs
            process_mod._WORKER_DATA = saved_data
            ex.shutdown()

    def test_process_trial_matches_serial(self, data):
        from repro.exec import SerialExecutor

        spec = make_spec()
        serial = SerialExecutor(data).submit(spec).result()
        with ProcessExecutor(data, n_workers=1) as ex:
            remote = ex.submit(spec).result(timeout=120)
        assert remote.error == serial.error
        assert remote.model is None

    def test_object_dtype_labels_fall_back_to_pickle(self):
        X = np.random.default_rng(0).standard_normal((40, 3))
        y = np.array(["a", "b"] * 20, dtype=object)
        data = Dataset("obj", X, y, "binary")
        ex = ProcessExecutor(data, n_workers=1)
        try:
            assert "dataset" in ex._init_payload
            assert ex._segments == []
        finally:
            ex.shutdown()


class TestWorkerPlaneWarmup:
    """`_init_worker` pre-computes the default splits/codes (ROADMAP
    open item): the first trial a worker runs must hit warm plane
    caches, not build them inside its measured wall-clock."""

    WARMUP = {"resampling": "holdout", "holdout_ratio": 0.1, "seed": 0,
              "n_splits": 5, "sample_size": 150}

    def _init_in_this_process(self, ex):
        saved = (process_mod._WORKER_DATA,
                 list(process_mod._WORKER_SEGMENTS))
        process_mod._WORKER_SEGMENTS.clear()
        process_mod._init_worker(ex._init_payload)
        return saved

    def _restore(self, saved):
        data_saved, segs_saved = saved
        for shm in process_mod._WORKER_SEGMENTS:
            shm.close()
        process_mod._WORKER_SEGMENTS[:] = segs_saved
        process_mod._WORKER_DATA = data_saved

    def test_executor_ships_warmup_context(self, data):
        with ProcessExecutor(data, n_workers=1, warmup=self.WARMUP) as ex:
            assert ex._init_payload["warmup"] == self.WARMUP

    def test_first_trial_hits_warm_caches(self, data):
        from repro.data import plane_for
        from repro.exec.base import run_spec

        ex = ProcessExecutor(data, n_workers=1, warmup=self.WARMUP)
        saved = self._init_in_this_process(ex)
        try:
            worker_data = process_mod._WORKER_DATA
            plane = plane_for(worker_data)
            warmed = plane.stats()
            assert warmed["splits"] == 1  # the holdout indices
            assert warmed["binned"] >= 1  # default-max_bins code sets
            # the first trial (same resampling/seed/sample_size the
            # warmup described) computes NO new splits or codes
            out = run_spec(worker_data, make_spec())
            assert np.isfinite(out.error)
            after = plane.stats()
            assert after["splits"] == warmed["splits"]
            assert after["binned"] == warmed["binned"]
            assert after["split_hits"] > warmed["split_hits"]
            assert after["binned_hits"] > warmed["binned_hits"]
        finally:
            self._restore(saved)
            ex.shutdown()

    def test_no_warmup_means_cold_plane(self, data):
        from repro.data import plane_for

        ex = ProcessExecutor(data, n_workers=1)
        saved = self._init_in_this_process(ex)
        try:
            assert "warmup" not in ex._init_payload
            stats = plane_for(process_mod._WORKER_DATA).stats()
            assert stats["splits"] == 0 and stats["binned"] == 0
        finally:
            self._restore(saved)
            ex.shutdown()

    def test_warm_plane_cv_keys_match_trial_path(self, data):
        """CV warmup must produce exactly the fold/code entries a CV
        trial looks up (key-format drift would silently de-warm)."""
        from repro.data import plane_for, warm_plane
        from repro.exec.base import run_spec

        clone = Dataset(data.name, data.X.copy(), data.y.copy(), data.task,
                        data.categorical)
        warm_plane(clone, resampling="cv", seed=0, n_splits=3,
                   sample_size=120)
        plane = plane_for(clone)
        warmed = plane.stats()
        # one fold-set; 3 folds x 3 default max_bins code sets
        assert warmed["splits"] == 1 and warmed["binned"] == 9
        out = run_spec(clone, make_spec(resampling="cv", n_splits=3,
                                        sample_size=120))
        assert np.isfinite(out.error)
        after = plane.stats()
        assert after["splits"] == warmed["splits"]
        assert after["binned"] == warmed["binned"]
        assert after["binned_hits"] > warmed["binned_hits"]

    def test_warmup_never_breaks_init(self, data, monkeypatch):
        """A failing warmup must leave a usable (cold) worker."""
        import repro.data.binned as binned_mod

        def boom(*a, **kw):
            raise RuntimeError("warmup exploded")

        monkeypatch.setattr(binned_mod, "warm_plane", boom)
        ex = ProcessExecutor(data, n_workers=1, warmup=self.WARMUP)
        saved = self._init_in_this_process(ex)
        try:
            assert process_mod._WORKER_DATA is not None
        finally:
            self._restore(saved)
            ex.shutdown()

    def test_controller_process_backend_passes_warmup(self, data):
        """The parallel controller hands its search context to the
        process executor as the warmup payload."""
        from repro.core.parallel import ParallelSearchController
        from repro.core.registry import DEFAULT_LEARNERS
        from repro.metrics import get_metric

        learners = {"lgbm": DEFAULT_LEARNERS["lgbm"]}
        ctl = ParallelSearchController(
            data, learners, get_metric("log_loss"), time_budget=1.0,
            n_workers=1, backend="process", seed=3, init_sample_size=100,
        )
        try:
            warmup = ctl.engine.executor._warmup
            assert warmup is not None
            assert warmup["resampling"] == ctl.resampling
            assert warmup["seed"] == 3
            assert warmup["sample_size"] <= data.n
        finally:
            ctl.engine.shutdown()


class TestTeardown:
    def test_shutdown_unlinks_all_segments(self, data):
        from multiprocessing import shared_memory

        before = shm_files()
        ex = ProcessExecutor(data, n_workers=1)
        names = [s.name for s in ex._segments]
        assert len(names) == 2  # X and y
        ex.submit(make_spec()).result(timeout=120)
        ex.shutdown()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        assert shm_files() == before

    def test_repeated_fit_cycles_leak_nothing(self, data):
        before = shm_files()
        for _ in range(3):
            with ProcessExecutor(data, n_workers=1) as ex:
                ex.submit(make_spec()).result(timeout=120)
        assert shm_files() == before

    def test_shutdown_idempotent(self, data):
        ex = ProcessExecutor(data, n_workers=1)
        ex.shutdown()
        ex.shutdown()  # second call must not raise

    def test_finalizer_backstop_unlinks_dropped_executor(self, data):
        before = shm_files()
        ex = ProcessExecutor(data, n_workers=1)
        assert shm_files() != before
        pool = ex._pool
        del ex
        gc.collect()
        pool.shutdown(wait=False, cancel_futures=True)
        assert shm_files() == before

    def test_worker_crash_pool_rebuild_then_clean_shutdown(self, data):
        """A hard worker death must not orphan segments: the rebuilt pool
        reattaches the same segments and shutdown still unlinks them."""
        before = shm_files()
        ex = ProcessExecutor(data, n_workers=1)
        names = [s.name for s in ex._segments]
        crash = make_spec(estimator_cls=ExitingLearner, learner="exit")
        handle = ex.submit(crash)
        with pytest.raises(Exception):
            handle.result(timeout=120)
        # pool is broken now; next submit rebuilds it against the same
        # shared segments and the trial succeeds
        out = ex.submit(make_spec()).result(timeout=120)
        assert np.isfinite(out.error)
        assert [s.name for s in ex._segments] == names
        ex.shutdown()
        assert shm_files() == before
