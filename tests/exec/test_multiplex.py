"""SharedWorkerPool scheduling semantics, isolated from real training.

The pool's ``run_fn`` is injectable, so these tests drive the dispatcher
with sentinel datasets/specs and observe the exact grant order: weighted
round-robin fairness, per-lease concurrency caps, cancellation, lease
release, and pool lifecycle.
"""

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.exec import SharedWorkerPool


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


class TestWeightedRoundRobin:
    def test_weight_2_tenant_gets_consecutive_grants(self):
        """At capacity 1 with weights 2:1 the grant order is A,A,B —
        a naive one-grant-per-visit rotation would give A,B,A,B."""
        order = []
        started = threading.Event()
        gate = threading.Event()

        def run_fn(data, spec):
            order.append(data)
            if spec == "plug":
                started.set()
                gate.wait(10)  # hold the only slot until everything queues
            return spec

        with SharedWorkerPool(n_workers=1, run_fn=run_fn) as pool:
            a = pool.lease("A", tenant="alice", weight=2)
            b = pool.lease("B", tenant="bob", weight=1)
            handles = [a.submit("plug")]
            _wait_until(started.is_set)
            # everything below queues while the plug occupies the slot
            handles += [a.submit(f"a{i}") for i in range(3)]
            handles += [b.submit(f"b{i}") for i in range(2)]
            gate.set()
            for h in handles:
                h.result(timeout=10)
        # plug+a0 is alice's first turn (2 grants), then bob's 1, ...
        assert order == ["A", "A", "B", "A", "A", "B"]

    def test_idle_tenant_forfeits_its_turn(self):
        """A lease with an empty queue never blocks the busy one."""
        order = []

        def run_fn(data, spec):
            order.append(data)
            return spec

        with SharedWorkerPool(n_workers=1, run_fn=run_fn) as pool:
            a = pool.lease("A", tenant="alice", weight=1)
            pool.lease("B", tenant="bob", weight=5)  # never submits
            handles = [a.submit(i) for i in range(4)]
            for h in handles:
                h.result(timeout=10)
        assert order == ["A"] * 4


class TestConcurrencyCaps:
    def test_max_concurrent_caps_a_single_lease(self):
        running = threading.Event()
        gate = threading.Event()

        def run_fn(data, spec):
            running.set()
            gate.wait(10)
            return spec

        with SharedWorkerPool(n_workers=4, run_fn=run_fn) as pool:
            lease = pool.lease("A", tenant="alice", max_concurrent=1)
            handles = [lease.submit(i) for i in range(3)]
            _wait_until(running.is_set)
            stats = pool.stats()
            assert stats["active"] == 1  # 3 free slots, but the cap holds
            (entry,) = stats["leases"]
            assert entry["running"] == 1
            assert entry["queued"] == 2
            assert entry["max_concurrent"] == 1
            gate.set()
            assert [h.result(timeout=10) for h in handles] == [0, 1, 2]

    def test_cap_clamped_to_pool_size(self):
        with SharedWorkerPool(n_workers=2) as pool:
            lease = pool.lease("A", max_concurrent=99)
            assert lease.max_concurrent == 2
            assert lease.n_workers == 2  # what the engine sees


class TestCancellation:
    def test_queued_ticket_cancels_dispatched_does_not(self):
        entered = threading.Event()
        gate = threading.Event()

        def run_fn(data, spec):
            entered.set()
            gate.wait(10)
            return spec

        with SharedWorkerPool(n_workers=1, run_fn=run_fn) as pool:
            lease = pool.lease("A")
            running = lease.submit("running")
            _wait_until(entered.is_set)
            queued = lease.submit("queued")
            assert queued.cancel() is True
            assert running.cancel() is False  # already on a thread
            with pytest.raises(CancelledError):
                queued.result(timeout=1)
            gate.set()
            assert running.result(timeout=10) == "running"

    def test_release_cancels_queued_lets_running_finish(self):
        entered = threading.Event()
        gate = threading.Event()

        def run_fn(data, spec):
            entered.set()
            gate.wait(10)
            return spec

        with SharedWorkerPool(n_workers=1, run_fn=run_fn) as pool:
            doomed = pool.lease("A", tenant="alice")
            survivor = pool.lease("B", tenant="bob")
            running = doomed.submit("running")
            _wait_until(entered.is_set)
            queued = doomed.submit("queued")
            doomed.shutdown()  # = pool.release(doomed)
            with pytest.raises(CancelledError):
                queued.result(timeout=1)
            gate.set()
            # the already-dispatched trial still completes ...
            assert running.result(timeout=10) == "running"
            # ... the pool still serves other tenants ...
            assert survivor.submit("later").result(timeout=10) == "later"
            # ... and the closed lease refuses new work
            with pytest.raises(RuntimeError, match="lease is closed"):
                doomed.submit("nope")
            doomed.shutdown()  # idempotent

    def test_release_accounts_trial_seconds(self):
        def run_fn(data, spec):
            time.sleep(0.02)
            return spec

        with SharedWorkerPool(n_workers=2, run_fn=run_fn) as pool:
            lease = pool.lease("A", tenant="alice")
            for h in [lease.submit(i) for i in range(3)]:
                h.result(timeout=10)
            assert lease.trial_seconds >= 0.06
            lease.shutdown()
            assert lease.trial_seconds >= 0.06  # survives release


class TestLifecycle:
    def test_shutdown_is_idempotent_and_final(self):
        pool = SharedWorkerPool(n_workers=2, run_fn=lambda d, s: s)
        lease = pool.lease("A")
        assert lease.submit(1).result(timeout=10) == 1
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            lease.submit(2)
        with pytest.raises(RuntimeError, match="shut down"):
            pool.lease("B")

    def test_stats_shape(self):
        with SharedWorkerPool(n_workers=3, run_fn=lambda d, s: s) as pool:
            pool.lease("A", tenant="alice", weight=2, max_concurrent=1)
            stats = pool.stats()
            assert stats["n_workers"] == 3
            assert stats["active"] == 0
            (entry,) = stats["leases"]
            assert entry == {
                "tenant": "alice", "weight": 2, "max_concurrent": 1,
                "queued": 0, "running": 0, "trial_seconds": 0.0,
            }

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            SharedWorkerPool(n_workers=0)
