"""Tests for the trial-execution backends (repro.exec)."""

import time

import numpy as np
import pytest

from repro.core.evaluate import TrialOutcome, evaluate_config
from repro.core.registry import DEFAULT_LEARNERS
from repro.data import make_classification
from repro.exec import (
    ExecutionEngine,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    TrialCache,
    TrialSpec,
    make_executor,
)
from repro.learners import LGBMLikeClassifier
from repro.metrics import get_metric


@pytest.fixture(scope="module")
def data():
    return make_classification(400, 5, class_sep=1.3, seed=0,
                               name="exec").shuffled(0)


@pytest.fixture(scope="module")
def metric():
    return get_metric("roc_auc")


def make_spec(metric, config=None, sample_size=200, seed=0, **kw):
    base = dict(
        learner="lgbm",
        estimator_cls=LGBMLikeClassifier,
        config=config or {"tree_num": 4, "leaf_num": 4},
        sample_size=sample_size,
        resampling="holdout",
        metric=metric,
        seed=seed,
        labels=np.array([0, 1]),
    )
    base.update(kw)
    return TrialSpec(**base)


class CrashingLearner(LGBMLikeClassifier):
    """Module-level (hence picklable) learner whose fit always raises."""

    def fit(self, X, y):
        raise RuntimeError("boom")


class SleepyLearner(LGBMLikeClassifier):
    """Learner that ignores its advisory limit and sleeps."""

    def fit(self, X, y):
        time.sleep(1.0)
        return super().fit(X, y)


class TestSerialExecutor:
    def test_submit_is_done_immediately(self, data, metric):
        ex = SerialExecutor(data)
        h = ex.submit(make_spec(metric))
        assert h.done()
        out = h.result()
        assert np.isfinite(out.error) and out.cost > 0

    def test_matches_direct_evaluation(self, data, metric):
        spec = make_spec(metric)
        out = SerialExecutor(data).submit(spec).result()
        direct = evaluate_config(
            data, spec.estimator_cls, spec.config,
            sample_size=spec.sample_size, resampling=spec.resampling,
            metric=spec.metric, seed=spec.seed, labels=spec.labels,
        )
        assert out.error == direct.error


class TestThreadExecutor:
    def test_concurrent_submissions(self, data, metric):
        with ThreadExecutor(data, n_workers=2) as ex:
            handles = [ex.submit(make_spec(metric, seed=s)) for s in range(4)]
            outs = [h.result(timeout=30) for h in handles]
        assert all(np.isfinite(o.error) for o in outs)

    def test_worker_count_validated(self, data):
        with pytest.raises(ValueError):
            ThreadExecutor(data, n_workers=0)


class TestProcessExecutor:
    def test_runs_in_worker_process(self, data, metric):
        with ProcessExecutor(data, n_workers=2) as ex:
            out = ex.submit(make_spec(metric)).result(timeout=60)
        assert np.isfinite(out.error)
        # fitted models stay in the worker
        assert out.model is None

    def test_crash_isolated_inside_worker(self, data, metric):
        spec = make_spec(metric, estimator_cls=CrashingLearner)
        with ProcessExecutor(data, n_workers=1) as ex:
            out = ex.submit(spec).result(timeout=60)
        assert out.error == np.inf

    def test_registry_metric_travels_by_name(self, data):
        # log_loss's error_fn is a lambda: only name-based transport works
        spec = make_spec(get_metric("log_loss"))
        with ProcessExecutor(data, n_workers=1) as ex:
            out = ex.submit(spec).result(timeout=60)
        assert np.isfinite(out.error)


class TestMakeExecutor:
    def test_factory_backends(self, data):
        assert isinstance(make_executor("serial", data), SerialExecutor)
        th = make_executor("thread", data, n_workers=2)
        assert isinstance(th, ThreadExecutor) and th.n_workers == 2
        th.shutdown()
        pr = make_executor("process", data, n_workers=2)
        assert isinstance(pr, ProcessExecutor)
        pr.shutdown()

    def test_unknown_backend(self, data):
        with pytest.raises(ValueError, match="unknown backend"):
            make_executor("gpu", data)


class TestTrialCache:
    def test_hit_and_miss_counters(self, metric):
        cache = TrialCache()
        key = make_spec(metric).cache_key()
        assert cache.get(key) is None
        cache.put(key, TrialOutcome(error=0.25, cost=1.0, model=object()))
        hit = cache.get(key)
        assert hit.error == 0.25
        assert hit.model is None  # models are stripped before storage
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self, metric):
        cache = TrialCache(maxsize=2)
        keys = [make_spec(metric, seed=s).cache_key() for s in range(3)]
        for k in keys:
            cache.put(k, TrialOutcome(error=0.1, cost=0.1, model=None))
        assert cache.get(keys[0]) is None  # oldest entry evicted
        assert cache.get(keys[1]) is not None
        assert cache.get(keys[2]) is not None

    def test_key_distinguishes_trial_identity(self, metric):
        base = make_spec(metric)
        assert base.cache_key() == make_spec(metric).cache_key()
        for variant in (
            make_spec(metric, sample_size=100),
            make_spec(metric, seed=7),
            make_spec(metric, config={"tree_num": 8, "leaf_num": 4}),
            make_spec(metric, resampling="cv"),
            make_spec(metric, learner="other"),
        ):
            assert variant.cache_key() != base.cache_key()

    def test_key_ignores_time_limits(self, metric):
        a = make_spec(metric, train_time_limit=1.0)
        b = make_spec(metric, train_time_limit=99.0)
        assert a.cache_key() == b.cache_key()


class TestExecutionEngine:
    def test_duplicate_proposals_are_free(self, data, metric):
        engine = ExecutionEngine(SerialExecutor(data), cache=TrialCache())
        first = engine.run(make_spec(metric))
        handle = engine.submit(make_spec(metric))
        assert handle.cache_hit and handle.done()
        second = handle.outcome()
        assert second.error == first.error
        assert second.cost < first.cost  # lookup, not training
        assert engine.cache_hits == 1

    def test_timeout_records_inf_error(self, data, metric):
        spec = make_spec(metric, estimator_cls=SleepyLearner,
                         train_time_limit=0.01)
        engine = ExecutionEngine(
            ThreadExecutor(data, n_workers=1), cache=TrialCache(),
            trial_time_limit=0.05,
        )
        out = engine.run(spec)
        engine.shutdown()
        assert out.error == np.inf

    def test_timed_out_trials_are_not_cached(self, data, metric):
        spec = make_spec(metric, estimator_cls=SleepyLearner,
                         train_time_limit=0.01)
        cache = TrialCache()
        engine = ExecutionEngine(ThreadExecutor(data, n_workers=1),
                                 cache=cache, trial_time_limit=0.05)
        engine.run(spec)
        engine.shutdown()
        assert len(cache) == 0

    def test_broken_submit_becomes_failed_trial(self, data, metric):
        class ExplodingExecutor(SerialExecutor):
            def submit(self, spec):
                raise OSError("no workers left")

        engine = ExecutionEngine(ExplodingExecutor(data), cache=None)
        out = engine.run(make_spec(metric))
        assert out.error == np.inf

    def test_cache_scoped_to_dataset(self, data, metric):
        """A cache shared across engines never replays outcomes measured
        on different (e.g. refreshed) data."""
        other = make_classification(400, 5, class_sep=1.3, seed=99,
                                    name="exec").shuffled(0)
        cache = TrialCache()
        ExecutionEngine(SerialExecutor(data), cache=cache).run(make_spec(metric))
        handle = ExecutionEngine(SerialExecutor(other), cache=cache).submit(
            make_spec(metric)
        )
        assert not handle.cache_hit
        assert cache.hits == 0
        # the same data does hit
        assert ExecutionEngine(
            SerialExecutor(data), cache=cache
        ).submit(make_spec(metric)).cache_hit

    def test_failed_trials_never_cached(self, data, metric):
        cache = TrialCache()
        engine = ExecutionEngine(SerialExecutor(data), cache=cache)
        out = engine.run(make_spec(metric, estimator_cls=CrashingLearner))
        assert out.error == np.inf
        assert len(cache) == 0  # an inf trial must not poison the cache

    def test_no_cache_mode(self, data, metric):
        engine = ExecutionEngine(SerialExecutor(data), cache=None)
        engine.run(make_spec(metric))
        engine.run(make_spec(metric))
        assert engine.cache_hits == 0
