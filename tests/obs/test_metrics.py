"""Metrics registry: counters, histograms, diff/merge, Prometheus text.

The merge/diff pair is the wire protocol process workers use to ship
their per-trial metric deltas; the Prometheus renderer is what
``/metrics?format=prometheus`` serves — both are exercised against a
line-by-line parse here.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    render_prometheus,
    snapshot_diff,
)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_thread_safety(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestHistogram:
    def test_bucketing_uses_inclusive_upper_bounds(self):
        h = Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(v)
        # le-semantics: 1.0 lands in the first bucket, 2.0 in the second
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(104.0)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestRegistry:
    def test_get_or_create_per_label_set(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", result="hit")
        b = reg.counter("hits", result="miss")
        assert a is not b
        assert reg.counter("hits", result="hit") is a

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="counter"):
            reg.histogram("x")

    def test_snapshot_is_json_safe_and_detached(self):
        import json

        reg = MetricsRegistry()
        reg.counter("n", "help text", kind="a").inc(3)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        reg.counter("n", kind="a").inc()  # mutating after must not alter it
        assert snap["n"]["series"][0]["value"] == 3
        assert snap["lat"]["series"][0]["counts"] == [1, 0, 0]

    def test_merge_adds_counts(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(5)
        b.histogram("lat", buckets=(1.0,)).observe(0.5)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["n"]["series"][0]["value"] == 7
        assert snap["lat"]["series"][0]["counts"] == [1, 0]

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("lat", buckets=(5.0, 9.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket"):
            a.merge(b.snapshot())


class TestSnapshotDiff:
    def test_diff_is_the_delta_and_omits_zero_series(self):
        reg = MetricsRegistry()
        reg.counter("n", task="x").inc(2)
        reg.counter("n", task="y").inc(1)
        before = reg.snapshot()
        reg.counter("n", task="x").inc(3)
        reg.histogram("lat").observe(0.01)
        diff = snapshot_diff(before, reg.snapshot())
        rows = diff["n"]["series"]
        assert rows == [{"labels": {"task": "x"}, "value": 3}]
        assert diff["lat"]["series"][0]["count"] == 1

    def test_empty_diff_for_identical_snapshots(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        snap = reg.snapshot()
        assert snapshot_diff(snap, snap) == {}

    def test_roundtrip_merge_of_a_diff(self):
        """The process-worker protocol: parent.merge(worker diff)."""
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("n").inc(10)
        worker.counter("n").inc(100)  # worker pre-existing count
        before = worker.snapshot()
        worker.counter("n").inc(4)  # what the trial did
        worker.histogram("lat", buckets=(1.0,)).observe(2.0)
        parent.merge(snapshot_diff(before, worker.snapshot()))
        snap = parent.snapshot()
        assert snap["n"]["series"][0]["value"] == 14  # 10 + 4, not +104
        assert snap["lat"]["series"][0]["counts"] == [0, 1]


class TestPrometheusRendering:
    def _parse(self, text):
        """Line-by-line structural parse of exposition 0.0.4."""
        samples = {}
        for line in text.splitlines():
            assert line == line.strip() and line
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert " " in line
            name_labels, value = line.rsplit(" ", 1)
            float(value.replace("+Inf", "inf"))  # numeric
            samples[name_labels] = value
        return samples

    def test_counter_and_histogram_families(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", code="200").inc(7)
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(50.0)
        text = render_prometheus(reg.snapshot())
        samples = self._parse(text)
        assert samples['req_total{code="200"}'] == "7"
        # buckets are cumulative, +Inf equals _count
        assert samples['lat_seconds_bucket{le="0.1"}'] == "1"
        assert samples['lat_seconds_bucket{le="1"}'] == "2"
        assert samples['lat_seconds_bucket{le="+Inf"}'] == "3"
        assert samples["lat_seconds_count"] == "3"
        assert float(samples["lat_seconds_sum"]) == pytest.approx(50.55)
        assert "# TYPE req_total counter" in text
        assert "# TYPE lat_seconds histogram" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("n", label='a"b\\c\nd').inc()
        text = render_prometheus(reg.snapshot())
        assert r'label="a\"b\\c\nd"' in text

    def test_duplicate_family_across_snapshots_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc()
        b.counter("n").inc()
        with pytest.raises(ValueError, match="duplicate"):
            render_prometheus(a.snapshot(), b.snapshot())
