"""Tracer contracts: nesting, thread isolation, merging, disabled-mode.

The tracer underwrites the per-trial attribution numbers in the README
and the <5% overhead gate in CI, so its invariants get direct tests:
spans must nest correctly per thread, worker buffers must merge without
loss, and the disabled path must be a true no-op (asserted via the
spans-started counter, not timing).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.trace import (
    NOOP_SPAN,
    _reset_for_tests,
    clear_spans,
    drain_spans,
    ingest_spans,
    set_trace_sink,
    set_tracing,
    snapshot_spans,
    spans_started,
    trace_context,
    trace_span,
    tracer_stats,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def fresh_tracer(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    _reset_for_tests()
    yield
    _reset_for_tests()


class TestDisabledMode:
    def test_off_by_default(self):
        assert not tracing_enabled()

    def test_disabled_span_is_the_shared_noop_singleton(self):
        assert trace_span("anything", a=1) is NOOP_SPAN
        assert trace_span("other") is NOOP_SPAN

    def test_disabled_spans_start_nothing(self):
        before = spans_started()
        for _ in range(100):
            with trace_span("hot.loop", i=1):
                pass
        assert spans_started() == before
        assert snapshot_spans() == []

    def test_noop_span_supports_set(self):
        with trace_span("x") as span:
            assert span.set(result=3) is span

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        _reset_for_tests()
        assert tracing_enabled()

    def test_set_tracing_returns_previous(self):
        assert set_tracing(True) is False
        assert set_tracing(False) is True


class TestNesting:
    def test_parent_child_links(self):
        set_tracing(True)
        with trace_span("outer"):
            with trace_span("inner"):
                pass
        inner, outer = drain_spans()  # completion order: inner first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["span"]
        assert inner["trace"] == outer["trace"] == outer["span"]
        assert outer["parent"] is None

    def test_siblings_share_parent_not_each_other(self):
        set_tracing(True)
        with trace_span("root"):
            with trace_span("a"):
                pass
            with trace_span("b"):
                pass
        a, b, root = drain_spans()
        assert a["parent"] == b["parent"] == root["span"]

    def test_attrs_and_error_recorded(self):
        set_tracing(True)
        with pytest.raises(ValueError):
            with trace_span("boom", learner="lgbm"):
                raise ValueError("no")
        (rec,) = drain_spans()
        assert rec["attrs"] == {"learner": "lgbm"}
        assert rec["error"] == "ValueError"

    def test_nesting_is_per_thread(self):
        """Concurrent threads must not see each other's span stacks."""
        set_tracing(True)
        ready = threading.Barrier(2)
        errors = []

        def worker(name):
            try:
                for _ in range(50):
                    with trace_span(f"{name}.outer") as outer:
                        ready.wait(timeout=5) if _ == 0 else None
                        with trace_span(f"{name}.inner") as inner:
                            assert inner.parent_id == outer.span_id
                        assert outer.parent_id is None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in ("t1", "t2")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        spans = drain_spans()
        assert len(spans) == 200
        by_id = {s["span"]: s for s in spans}
        for s in spans:
            if s["parent"] is not None:  # inner: parent in same thread
                assert by_id[s["parent"]]["thread"] == s["thread"]

    def test_trace_context_tags_roots(self):
        set_tracing(True)
        with trace_context("req-42"):
            with trace_span("http.request"):
                with trace_span("child"):
                    pass
        child, root = drain_spans()
        assert root["trace"] == "req-42"
        assert child["trace"] == "req-42"


class TestBuffering:
    def test_drain_clears_and_preserves_order(self):
        set_tracing(True)
        for i in range(5):
            with trace_span(f"s{i}"):
                pass
        spans = drain_spans()
        assert [s["name"] for s in spans] == [f"s{i}" for i in range(5)]
        assert drain_spans() == []

    def test_ingest_merges_without_loss(self):
        """A worker-shipped buffer lands intact alongside local spans,
        keeping its own pids and parent links."""
        set_tracing(True)
        with trace_span("local"):
            pass
        shipped = [
            {"name": "trial", "t": 1.0, "dur": 0.5, "pid": 99999,
             "thread": "MainThread", "span": "99999-1", "parent": None,
             "trace": "99999-1"},
            {"name": "trial.fit", "t": 1.1, "dur": 0.4, "pid": 99999,
             "thread": "MainThread", "span": "99999-2",
             "parent": "99999-1", "trace": "99999-1"},
        ]
        assert ingest_spans(shipped) == 2
        spans = snapshot_spans()
        assert len(spans) == 3
        merged = {s["span"]: s for s in spans}
        assert merged["99999-2"]["parent"] == "99999-1"
        assert tracer_stats()["ingested"] == 2
        # merging foreign spans never consumes local span ids
        assert spans_started() == 1

    def test_clear_spans(self):
        set_tracing(True)
        with trace_span("x"):
            pass
        clear_spans()
        assert snapshot_spans() == []
        assert spans_started() == 1  # the counter survives


class TestSink:
    def test_sink_receives_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        set_tracing(True)
        set_trace_sink(str(path))
        with trace_span("a", k="v"):
            pass
        with trace_span("b"):
            pass
        set_trace_sink(None)
        lines = [json.loads(line)
                 for line in path.read_text().splitlines() if line]
        assert [r["name"] for r in lines] == ["a", "b"]
        assert lines[0]["attrs"] == {"k": "v"}

    def test_sink_swap_returns_previous_path(self, tmp_path):
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert set_trace_sink(str(p1)) is None
        assert set_trace_sink(str(p2)) == str(p1)
        assert set_trace_sink(None) == str(p2)

    def test_ingested_spans_reach_the_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        set_tracing(True)
        set_trace_sink(str(path))
        ingest_spans([{"name": "trial", "t": 0.0, "dur": 1.0, "pid": 1,
                       "thread": "x", "span": "1-1", "parent": None,
                       "trace": "1-1"}])
        set_trace_sink(None)
        assert json.loads(path.read_text())["name"] == "trial"
