"""Per-phase attribution: self-time accounting and the summary table."""

from __future__ import annotations

import json

import pytest

from repro.obs.summarize import (
    PHASES,
    attribute,
    format_table,
    load_spans,
    summarize_file,
)


def _span(name, dur, span, parent=None, pid=1):
    return {"name": name, "t": 0.0, "dur": dur, "pid": pid, "thread": "t",
            "span": span, "parent": parent, "trace": "tr"}


class TestAttribute:
    def test_phases_and_other_sum_to_wall(self):
        spans = [
            _span("trial", 1.0, "1-1"),
            _span("trial.bin", 0.1, "1-2", parent="1-1"),
            _span("trial.fit", 0.6, "1-3", parent="1-1"),
            _span("trial.score", 0.1, "1-4", parent="1-1"),
            _span("trial.metric", 0.05, "1-5", parent="1-1"),
        ]
        att = attribute(spans)
        assert att["trials"] == 1
        assert att["wall_s"] == pytest.approx(1.0)
        total = sum(att["phases"][p]["seconds"] for p in PHASES)
        assert total + att["other_s"] == pytest.approx(1.0)
        assert att["other_s"] == pytest.approx(0.15)
        assert att["coverage"] == pytest.approx(0.85)

    def test_nested_plane_span_charges_bin_not_fit(self):
        """A lazy plane code-build inside model.fit is self-time-charged
        to the bin phase and subtracted from fit — no double counting."""
        spans = [
            _span("trial", 1.0, "1-1"),
            _span("trial.fit", 0.8, "1-2", parent="1-1"),
            _span("plane.codes", 0.3, "1-3", parent="1-2"),
        ]
        att = attribute(spans)
        assert att["phases"]["fit"]["seconds"] == pytest.approx(0.5)
        assert att["phases"]["bin"]["seconds"] == pytest.approx(0.3)
        # the trial's own self-time is wall minus its direct children
        assert att["other_s"] == pytest.approx(0.2)

    def test_spans_outside_trials_grouped_as_extra(self):
        spans = [
            _span("trial", 0.5, "1-1"),
            _span("trial.fit", 0.5, "1-2", parent="1-1"),
            _span("http.request", 0.2, "1-9"),
        ]
        att = attribute(spans)
        assert att["wall_s"] == pytest.approx(0.5)  # http not trial wall
        assert att["extra"]["http.request"]["calls"] == 1

    def test_multi_pid_traces_counted(self):
        spans = [
            _span("trial", 0.5, "1-1", pid=1),
            _span("trial", 0.5, "2-1", pid=2),
        ]
        att = attribute(spans)
        assert att["trials"] == 2
        assert att["pids"] == 2

    def test_empty_trace(self):
        att = attribute([])
        assert att["wall_s"] == 0.0
        assert att["coverage"] == 0.0


class TestTable:
    def test_format_table_lists_every_phase(self):
        spans = [
            _span("trial", 1.0, "1-1"),
            _span("trial.fit", 0.9, "1-2", parent="1-1"),
        ]
        table = format_table(attribute(spans))
        for phase in PHASES:
            assert phase in table
        assert "(other)" in table
        assert "coverage" in table

    def test_summarize_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        spans = [
            _span("trial", 2.0, "1-1"),
            _span("trial.fit", 1.5, "1-2", parent="1-1"),
        ]
        path.write_text("".join(json.dumps(s) + "\n" for s in spans))
        att, table = summarize_file(str(path))
        assert att["phases"]["fit"]["seconds"] == pytest.approx(1.5)
        assert "fit" in table
        assert load_spans(str(path)) == spans
