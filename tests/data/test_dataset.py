"""Tests for the Dataset container and resampling utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset, holdout_indices, kfold_indices, stratified_shuffle


def _toy(task="binary", n=100, d=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d))
    if task == "regression":
        y = rng.standard_normal(n)
    else:
        k = 2 if task == "binary" else 4
        y = rng.integers(0, k, n)
    return Dataset("toy", X, y, task)


class TestDataset:
    def test_basic_properties(self):
        ds = _toy()
        assert ds.n == 100 and ds.d == 3
        assert ds.is_classification
        assert ds.n_classes == 2

    def test_invalid_task(self):
        with pytest.raises(ValueError):
            Dataset("x", np.zeros((3, 2)), np.zeros(3), "ranking")

    def test_row_mismatch(self):
        with pytest.raises(ValueError):
            Dataset("x", np.zeros((3, 2)), np.zeros(4), "binary")

    def test_head_prefix(self):
        ds = _toy()
        h = ds.head(10)
        assert h.n == 10
        assert np.allclose(h.X, ds.X[:10])

    def test_head_clamps(self):
        assert _toy(n=20).head(500).n == 20

    def test_shuffled_is_permutation(self):
        ds = _toy()
        sh = ds.shuffled(1)
        assert sorted(sh.y.tolist()) == sorted(ds.y.tolist())
        assert not np.allclose(sh.X, ds.X)  # overwhelmingly likely

    def test_outer_folds_partition(self):
        ds = _toy(n=200)
        folds = ds.outer_folds(10)
        assert len(folds) == 10
        total = sum(te.n for _, te in folds)
        assert total == 200


class TestStratifiedShuffle:
    def test_is_permutation(self):
        y = np.array([0] * 30 + [1] * 10)
        idx = stratified_shuffle(y, np.random.default_rng(0))
        assert sorted(idx.tolist()) == list(range(40))

    def test_prefix_class_balance(self):
        """Every reasonable prefix should roughly match the class prior —
        the property FLAML's prefix-sampling relies on."""
        rng = np.random.default_rng(1)
        y = np.array([0] * 900 + [1] * 100)
        idx = stratified_shuffle(y, rng)
        for s in (50, 100, 200, 500):
            frac = y[idx[:s]].mean()
            assert abs(frac - 0.1) < 0.05, f"prefix {s}: {frac}"

    def test_rare_class_in_small_prefix(self):
        rng = np.random.default_rng(2)
        y = np.array([0] * 990 + [1] * 10)
        idx = stratified_shuffle(y, rng)
        # the first tenth must contain at least one rare-class example
        assert y[idx[:100]].sum() >= 1

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_permutation(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 3, 57)
        idx = stratified_shuffle(y, rng)
        assert np.array_equal(np.sort(idx), np.arange(57))


class TestKFold:
    def test_partition(self):
        folds = kfold_indices(100, 5)
        all_val = np.concatenate([v for _, v in folds])
        assert np.array_equal(np.sort(all_val), np.arange(100))

    def test_train_val_disjoint(self):
        for tr, va in kfold_indices(50, 5):
            assert not set(tr) & set(va)
            assert len(tr) + len(va) == 50

    def test_stratified_folds_balanced(self):
        y = np.array([0] * 80 + [1] * 20)
        rng = np.random.default_rng(0)
        for _, va in kfold_indices(100, 5, y=y, rng=rng):
            assert 0.05 <= y[va].mean() <= 0.4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kfold_indices(10, 1)
        with pytest.raises(ValueError):
            kfold_indices(3, 5)


class TestHoldout:
    def test_sizes(self):
        tr, va = holdout_indices(100, 0.1)
        assert len(va) == 10 and len(tr) == 90

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            holdout_indices(10, 0.0)
        with pytest.raises(ValueError):
            holdout_indices(10, 1.5)

    def test_stratified(self):
        y = np.array([0] * 90 + [1] * 10)
        tr, va = holdout_indices(100, 0.2, y=y, rng=np.random.default_rng(0))
        assert y[va].sum() >= 1  # rare class represented
