"""Tests for synthetic generators and the 53-dataset suite registry."""

import numpy as np
import pytest

from repro.data import SUITE, load_dataset, make_classification, make_regression, suite_names
from repro.data.generators import CLASSIFICATION_STRUCTURES, REGRESSION_STRUCTURES


class TestMakeClassification:
    @pytest.mark.parametrize("structure", CLASSIFICATION_STRUCTURES)
    def test_structures_learnable_shape(self, structure):
        ds = make_classification(300, 6, structure=structure, seed=1)
        assert ds.X.shape == (300, 6)
        assert set(np.unique(ds.y)) == {0, 1}

    def test_multiclass_counts(self):
        ds = make_classification(600, 8, n_classes=5, structure="clusters", seed=2)
        assert ds.task == "multiclass"
        assert np.unique(ds.y).size == 5

    def test_deterministic(self):
        a = make_classification(100, 4, seed=7)
        b = make_classification(100, 4, seed=7)
        assert np.array_equal(
            np.nan_to_num(a.X, nan=-1), np.nan_to_num(b.X, nan=-1)
        )
        assert np.array_equal(a.y, b.y)

    def test_imbalance(self):
        ds = make_classification(2000, 5, imbalance=0.8, flip_y=0.0, seed=3)
        assert ds.y.mean() < 0.2

    def test_categorical_columns_are_integers(self):
        ds = make_classification(300, 10, cat_frac=0.5, seed=4)
        assert len(ds.categorical) == 5
        for j in ds.categorical:
            col = ds.X[:, j]
            col = col[~np.isnan(col)]
            assert np.allclose(col, np.round(col))

    def test_missing_fraction(self):
        ds = make_classification(500, 8, missing_frac=0.1, seed=5)
        frac = np.isnan(ds.X).mean()
        assert 0.05 < frac < 0.15

    def test_class_sep_monotone_difficulty(self):
        """Larger separation => a linear rule achieves higher accuracy."""
        accs = []
        for sep in (0.2, 3.0):
            ds = make_classification(3000, 6, structure="linear",
                                     class_sep=sep, flip_y=0.0, seed=6)
            # cheap proxy: best single-threshold accuracy on the best feature
            best = 0.5
            for j in range(ds.d):
                thr = np.median(ds.X[:, j])
                acc = max(
                    ((ds.X[:, j] > thr) == ds.y).mean(),
                    ((ds.X[:, j] <= thr) == ds.y).mean(),
                )
                best = max(best, acc)
            accs.append(best)
        assert accs[1] > accs[0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_classification(10, 3, structure="weird")
        with pytest.raises(ValueError):
            make_classification(10, 3, n_classes=1)


class TestMakeRegression:
    @pytest.mark.parametrize("structure", REGRESSION_STRUCTURES)
    def test_structures(self, structure):
        ds = make_regression(200, 10, structure=structure, seed=1)
        assert ds.task == "regression"
        assert ds.X.shape[0] == 200
        assert np.std(ds.y) > 0

    def test_invalid_structure(self):
        with pytest.raises(ValueError):
            make_regression(10, 3, structure="weird")

    def test_deterministic(self):
        a = make_regression(100, 6, seed=9)
        b = make_regression(100, 6, seed=9)
        assert np.array_equal(a.y, b.y)


class TestSuite:
    def test_counts(self):
        assert len(SUITE) == 53
        assert len(suite_names("binary")) == 22
        assert len(suite_names("multiclass")) == 17
        assert len(suite_names("regression")) == 14

    def test_size_ordering(self):
        names = suite_names("binary")
        sizes = [SUITE[n].size for n in names]
        assert sizes == sorted(sizes)
        assert names[0] == "blood-transfusion"  # paper: smallest binary
        assert names[-1] == "riccardo"  # paper: largest binary

    def test_all_load_and_are_bounded(self):
        for name in suite_names():
            spec = SUITE[name]
            assert 1000 <= spec.n <= 8000, name
            assert spec.d <= 48, name

    @pytest.mark.parametrize("name", ["adult", "car", "fried", "Dionis"])
    def test_load_dataset_shapes(self, name):
        ds = load_dataset(name)
        spec = SUITE[name]
        assert ds.n == spec.n
        assert ds.d == spec.d
        assert ds.task == spec.task

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            load_dataset("not-a-dataset")

    def test_class_counts_capped(self):
        ds = load_dataset("Dionis")  # 355 classes in the paper, capped
        assert 2 < ds.n_classes <= 12
