"""Tests for the feature preprocessors (paper §3 footnote 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.preprocessing import Imputer, OneHotEncoder, Pipeline, StandardScaler
from repro.learners import LogisticRegressionL1


class TestImputer:
    def test_mean_imputation(self):
        X = np.array([[1.0, 10.0], [np.nan, 20.0], [3.0, np.nan]])
        out = Imputer("mean").fit_transform(X)
        assert out[1, 0] == pytest.approx(2.0)
        assert out[2, 1] == pytest.approx(15.0)
        assert not np.isnan(out).any()

    def test_median_and_mode(self):
        X = np.array([[1.0], [1.0], [5.0], [np.nan]])
        assert Imputer("median").fit_transform(X)[3, 0] == pytest.approx(1.0)
        assert Imputer("most_frequent").fit_transform(X)[3, 0] == pytest.approx(1.0)

    def test_all_nan_column(self):
        X = np.array([[np.nan], [np.nan]])
        out = Imputer("mean").fit_transform(X)
        assert (out == 0).all()

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            Imputer("magic")

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            Imputer().transform(np.zeros((2, 2)))

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_property_no_nans_out(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.standard_normal((30, 4))
        X[rng.random((30, 4)) < 0.3] = np.nan
        assert not np.isnan(Imputer("mean").fit_transform(X)).any()


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((500, 3)) * 7 + 4
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1, atol=1e-9)

    def test_constant_column_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        out = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(out))

    def test_nan_aware_stats(self):
        X = np.array([[1.0], [np.nan], [3.0]])
        sc = StandardScaler().fit(X)
        assert sc.mu_[0] == pytest.approx(2.0)


class TestOneHotEncoder:
    def test_basic_encoding(self):
        X = np.array([[0.0, 5.0], [1.0, 6.0], [0.0, 7.0]])
        out = OneHotEncoder(columns=(0,)).fit_transform(X)
        # column 1 kept + 2 one-hot columns
        assert out.shape == (3, 3)
        assert np.array_equal(out[:, 1:], np.array([[1, 0], [0, 1], [1, 0]]))

    def test_unseen_category_all_zero(self):
        X = np.array([[0.0], [1.0]])
        enc = OneHotEncoder(columns=(0,)).fit(X)
        out = enc.transform(np.array([[9.0]]))
        assert out.sum() == 0

    def test_nan_is_a_category(self):
        X = np.array([[0.0], [np.nan], [1.0]])
        out = OneHotEncoder(columns=(0,)).fit_transform(X)
        assert out.shape == (3, 3)
        assert out.sum(axis=1).tolist() == [1, 1, 1]


class TestPipeline:
    def test_end_to_end_with_linear_learner(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((400, 4))
        X[rng.random((400, 4)) < 0.05] = np.nan
        cat = rng.integers(0, 3, 400).astype(float)
        X = np.column_stack([X, cat])
        y = ((np.nan_to_num(X[:, 0]) + (cat == 2)) > 0.5).astype(int)
        pipe = Pipeline(
            [OneHotEncoder(columns=(4,)), Imputer("mean"), StandardScaler()],
            LogisticRegressionL1(C=1.0),
        )
        pipe.fit(X, y)
        acc = (pipe.predict(X) == y).mean()
        assert acc > 0.8
        assert pipe.predict_proba(X).shape == (400, 2)

    def test_empty_steps_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([], LogisticRegressionL1())
