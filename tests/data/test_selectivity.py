"""Tests for the selectivity-estimation substrate."""

import numpy as np
import pytest

from repro.data import (
    MANUAL_CONFIG,
    SELECTIVITY_DATASETS,
    load_selectivity,
    make_table,
    make_workload,
    selectivity_to_dataset,
)


class TestTables:
    @pytest.mark.parametrize("kind", ["forest", "power", "higgs", "weather", "tpch"])
    def test_shapes(self, kind):
        t = make_table(kind, dim=3, n=500, seed=0)
        assert t.shape == (500, 3)
        assert np.all(np.isfinite(t))

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_table("zipf", 2, 10)

    def test_power_is_skewed(self):
        t = make_table("power", dim=1, n=5000, seed=1)
        col = t[:, 0]
        assert np.mean(col) > np.median(col) * 1.3  # right skew


class TestWorkload:
    def test_selectivity_labels_exact(self):
        wl = make_workload("forest", dim=2, n_rows=1000, n_queries=50, seed=0)
        # recompute selectivity for a few queries by brute force
        for i in (0, 10, 25):
            lo = wl.queries[i, 0::2]
            hi = wl.queries[i, 1::2]
            inside = ((wl.table >= lo) & (wl.table <= hi)).all(axis=1).mean()
            assert wl.selectivity[i] == pytest.approx(max(inside, 1e-3))

    def test_selectivity_in_unit_interval(self):
        wl = make_workload("power", dim=3, n_rows=800, n_queries=100, seed=2)
        assert (wl.selectivity > 0).all()
        assert (wl.selectivity <= 1).all()

    def test_queries_are_valid_boxes(self):
        wl = make_workload("tpch", dim=2, n_rows=500, n_queries=40, seed=3)
        lo = wl.queries[:, 0::2]
        hi = wl.queries[:, 1::2]
        assert (hi >= lo).all()

    def test_to_dataset(self):
        wl = make_workload("higgs", dim=2, n_rows=400, n_queries=30, seed=4)
        ds = selectivity_to_dataset(wl)
        assert ds.task == "regression"
        assert ds.X.shape == (30, 4)
        assert np.allclose(ds.y, np.log(wl.selectivity))


class TestRegistry:
    def test_ten_table4_datasets(self):
        assert len(SELECTIVITY_DATASETS) == 10
        assert "10D-Forest" in SELECTIVITY_DATASETS

    def test_load_by_name(self):
        wl = load_selectivity("2D-TPCH", n_rows=500, n_queries=40)
        assert wl.dim == 2
        assert wl.name == "2D-TPCH"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_selectivity("3D-Mars")

    def test_manual_config_matches_paper(self):
        assert MANUAL_CONFIG == {"tree_num": 16, "leaf_num": 16}
