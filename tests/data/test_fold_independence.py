"""Fold-independence proof for the dataset-level sketch grid.

The entire codes-over-shm design rests on one claim: once the grid is
fit at dataset level, the codes of any row subset are a pure *slice* of
the full code matrix — no per-fold refit ever disagrees.  These tests
state that claim as byte-identity across every splitter the search
uses (holdout, k-fold, rolling-origin temporal) and across every way
of producing the codes (float transform of the subset, gather of the
full matrix, the plane's ``binned_for`` path).

If any of these breaks, shipping one pre-binned matrix to workers and
slicing it per fold silently changes trial errors — so they must be
*byte*-identical, not allclose.
"""

import numpy as np
import pytest

from repro.core.resampling import TemporalSplitter
from repro.data import make_classification, plane_for
from repro.data.binned import BinnedDataset
from repro.data.dataset import holdout_indices, kfold_indices


@pytest.fixture()
def sketch_plane(monkeypatch):
    """A plane forced onto the sketch path at test-friendly n."""
    monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
    data = make_classification(3000, 6, class_sep=1.1, seed=0,
                               name="foldind").shuffled(0)
    # fresh plane (the class-attr patch must be visible at build time)
    data.__dict__.pop("_binned_plane", None)
    plane = plane_for(data)
    assert plane.sketch and not plane.exact
    return data, plane


def _full_and_binner(plane, max_bins):
    binner = plane.global_binner(max_bins)
    full = binner.codes_from_base(
        plane._base_codes_rows(np.arange(plane.data.n))
    )
    return binner, full


@pytest.mark.parametrize("max_bins", [255, 64, 8])
class TestSliceEqualsSubsetTransform:
    def test_holdout(self, sketch_plane, max_bins):
        data, plane = sketch_plane
        binner, full = _full_and_binner(plane, max_bins)
        tr, va = holdout_indices(data.n, 0.1, y=data.y,
                                 rng=np.random.default_rng(0))
        for rows in (tr, va, tr[:500]):  # incl. a sample-size prefix
            sliced = full[rows]
            direct = binner.transform(data.X[rows])
            assert sliced.dtype == direct.dtype
            assert sliced.tobytes() == direct.tobytes()

    def test_kfold(self, sketch_plane, max_bins):
        data, plane = sketch_plane
        binner, full = _full_and_binner(plane, max_bins)
        folds = kfold_indices(data.n, 5, y=data.y,
                              rng=np.random.default_rng(3))
        for tr, va in folds:
            assert full[tr].tobytes() == binner.transform(data.X[tr]).tobytes()
            assert full[va].tobytes() == binner.transform(data.X[va]).tobytes()

    def test_temporal(self, sketch_plane, max_bins):
        data, plane = sketch_plane
        binner, full = _full_and_binner(plane, max_bins)
        for tr, va in TemporalSplitter(n_splits=4, horizon=50).split(data.n):
            assert full[tr].tobytes() == binner.transform(data.X[tr]).tobytes()
            assert full[va].tobytes() == binner.transform(data.X[va]).tobytes()


class TestPlanePathsAgree:
    """The plane's own serving paths (cached gather, prefix buffer) must
    produce the same bytes as a direct subset transform."""

    def test_binned_for_equals_subset_transform(self, sketch_plane):
        data, plane = sketch_plane
        tr, _ = plane.holdout_split(0.1, 0)
        s = 800
        key = ("ho-tr", 0.1, 0, s)
        codes, n_bins, binner = plane.binned_for(tr[:s], key, 255)
        direct = binner.transform(data.X[tr[:s]])
        assert codes.tobytes() == direct.tobytes()
        np.testing.assert_array_equal(n_bins, binner.n_bins_)

    def test_growing_prefixes_are_nested(self, sketch_plane):
        """The schedule's s, 2s, 4s requests serve views of one buffer:
        a smaller prefix is literally the head of a larger one."""
        data, plane = sketch_plane
        tr, _ = plane.holdout_split(0.1, 0)
        small, _, _ = plane.binned_for(
            tr[:300], ("ho-tr", 0.1, 0, 300), 64)
        big, _, _ = plane.binned_for(
            tr[:1200], ("ho-tr", 0.1, 0, 1200), 64)
        assert big[:300].tobytes() == small.tobytes()

    def test_validation_transform_matches_slice(self, sketch_plane):
        data, plane = sketch_plane
        tr, va = plane.holdout_split(0.1, 0)
        _, _, binner = plane.binned_for(
            tr[:500], ("ho-tr", 0.1, 0, 500), 255)
        served = plane.transform_with(binner, va, ("ho-va", 0.1, 0))
        _, full = _full_and_binner(plane, 255)
        assert served.tobytes() == full[va].tobytes()

    def test_grid_is_process_independent(self, sketch_plane):
        """A second plane over a byte-copy of the data (what a worker
        fitting from scratch would see) derives the identical grid."""
        data, plane = sketch_plane
        from repro.data.dataset import Dataset

        clone = Dataset(data.name, data.X.copy(), data.y.copy(), data.task,
                        data.categorical)
        other = plane_for(clone)
        assert other.sketch
        a = plane.global_binner(64)
        b = other.global_binner(64)
        rows = np.arange(0, data.n, 7)
        ca = a.codes_from_base(plane._base_codes_rows(rows))
        cb = b.codes_from_base(other._base_codes_rows(rows))
        assert ca.tobytes() == cb.tobytes()
