"""Tests for dataset persistence (NPZ and CSV round-trips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset, from_csv, load_npz, save_npz, to_csv


def _mixed_dataset(seed=0, n=60):
    r = np.random.default_rng(seed)
    X = r.standard_normal((n, 4))
    X[:, 2] = r.integers(0, 3, n)  # categorical codes
    X[r.random((n, 4)) < 0.05] = np.nan
    X[:, 2] = np.nan_to_num(X[:, 2])  # keep the cat column complete
    y = (np.nan_to_num(X[:, 0]) > 0).astype(np.int64)
    return Dataset("mixed", X, y, "binary", categorical=(2,))


class TestNpz:
    def test_roundtrip_binary(self, tmp_path):
        ds = _mixed_dataset()
        path = str(tmp_path / "ds.npz")
        save_npz(ds, path)
        back = load_npz(path)
        assert back.name == "mixed"
        assert back.task == "binary"
        assert back.categorical == (2,)
        assert np.array_equal(back.y, ds.y)
        assert np.allclose(back.X, ds.X, equal_nan=True)

    def test_roundtrip_regression(self, tmp_path):
        r = np.random.default_rng(1)
        ds = Dataset("reg", r.standard_normal((30, 2)), r.standard_normal(30),
                      "regression")
        path = str(tmp_path / "r.npz")
        save_npz(ds, path)
        back = load_npz(path)
        assert back.task == "regression"
        assert np.allclose(back.y, ds.y)

    def test_roundtrip_string_labels(self, tmp_path):
        X = np.arange(8.0).reshape(4, 2)
        ds = Dataset("s", X, np.array(["a", "b", "a", "b"]), "binary")
        path = str(tmp_path / "s.npz")
        save_npz(ds, path)
        assert list(load_npz(path).y) == ["a", "b", "a", "b"]


class TestCsvRoundtrip:
    def test_roundtrip_preserves_shape_and_labels(self, tmp_path):
        ds = _mixed_dataset()
        path = str(tmp_path / "ds.csv")
        to_csv(ds, path)
        back = from_csv(path, name="mixed")
        assert back.n == ds.n and back.d == ds.d
        assert back.task == "binary"
        assert np.array_equal(back.y, ds.y)
        assert np.allclose(back.X, ds.X, equal_nan=True, atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 200), n=st.integers(5, 80))
    def test_property_csv_roundtrip(self, tmp_path_factory, seed, n):
        ds = _mixed_dataset(seed=seed, n=n)
        path = str(tmp_path_factory.mktemp("csv") / "p.csv")
        to_csv(ds, path)
        back = from_csv(path)
        assert np.allclose(back.X, ds.X, equal_nan=True, atol=1e-12)
        assert np.array_equal(back.y, ds.y)


class TestCsvParsing:
    def _write(self, tmp_path, text):
        p = tmp_path / "in.csv"
        p.write_text(text)
        return str(p)

    def test_label_by_name_and_position(self, tmp_path):
        path = self._write(tmp_path, "a,b,target\n1,2,0\n3,4,1\n5,6,0\n7,8,1\n")
        by_name = from_csv(path, label="target")
        by_pos = from_csv(path, label=2)
        assert np.array_equal(by_name.y, by_pos.y)
        assert by_name.d == 2

    def test_label_in_middle(self, tmp_path):
        path = self._write(tmp_path, "a,cls,b\n1,0,2\n3,1,4\n5,0,6\n7,1,8\n")
        ds = from_csv(path, label="cls")
        assert ds.d == 2
        assert np.allclose(ds.X[0], [1, 2])

    def test_string_features_become_categorical(self, tmp_path):
        path = self._write(
            tmp_path, "color,size,y\nred,1,0\nblue,2,1\nred,3,0\ngreen,4,1\n"
        )
        ds = from_csv(path)
        assert ds.categorical == (0,)
        # ordinal codes by sorted label: blue=0, green=1, red=2
        assert list(ds.X[:, 0]) == [2.0, 0.0, 2.0, 1.0]

    def test_missing_cells_are_nan(self, tmp_path):
        path = self._write(tmp_path, "a,b,y\n1,,0\n?,4,1\nNA,6,0\n7,8,1\n")
        ds = from_csv(path)
        assert np.isnan(ds.X[0, 1])
        assert np.isnan(ds.X[1, 0])
        assert np.isnan(ds.X[2, 0])

    def test_string_labels_classification(self, tmp_path):
        path = self._write(tmp_path, "a,y\n1,cat\n2,dog\n3,cat\n4,dog\n")
        ds = from_csv(path)
        assert ds.task == "binary"
        assert set(ds.y) == {"cat", "dog"}

    def test_regression_inference(self, tmp_path):
        rows = "\n".join(f"{i},{i * 0.37 + 0.001}" for i in range(30))
        path = self._write(tmp_path, "a,y\n" + rows + "\n")
        assert from_csv(path).task == "regression"

    def test_task_override(self, tmp_path):
        path = self._write(tmp_path, "a,y\n1,0\n2,1\n3,2\n4,0\n5,1\n6,2\n")
        assert from_csv(path).task == "multiclass"
        ds = from_csv(path, task="regression")
        assert ds.task == "regression"
        assert ds.y.dtype == np.float64

    def test_errors(self, tmp_path):
        empty = self._write(tmp_path, "a,b,y\n")
        with pytest.raises(ValueError, match="no data rows"):
            from_csv(empty)
        ragged = tmp_path / "r.csv"
        ragged.write_text("a,b,y\n1,2,0\n1,2\n")
        with pytest.raises(ValueError, match="differing width"):
            from_csv(str(ragged))
        bad_label = self._write(tmp_path, "a,b,y\n1,2,0\n3,4,1\n")
        with pytest.raises(ValueError, match="not in header"):
            from_csv(bad_label, label="nope")
        missing_y = tmp_path / "m.csv"
        missing_y.write_text("a,y\n1,0\n2,\n")
        with pytest.raises(ValueError, match="label column contains missing"):
            from_csv(str(missing_y))

    def test_fit_from_csv_end_to_end(self, tmp_path):
        """CSV -> Dataset -> AutoML is the downstream user's whole loop."""
        from repro import AutoML

        r = np.random.default_rng(5)
        X = r.standard_normal((200, 3))
        y = (X[:, 0] > 0).astype(int)
        lines = ["f0,f1,f2,label"] + [
            f"{a},{b},{c},{t}" for (a, b, c), t in zip(X, y)
        ]
        p = tmp_path / "train.csv"
        p.write_text("\n".join(lines) + "\n")
        ds = from_csv(str(p), label="label")
        automl = AutoML(init_sample_size=100)
        automl.fit(ds.X, ds.y, task=ds.task, time_budget=1.0, max_iters=6)
        assert automl.predict(ds.X[:5]).shape == (5,)
