"""Exclusive feature bundling: conflict-free merge, transparent unbundle.

A one-hot block is the canonical bundle: its columns are mutually
exclusive by construction, so merging them into one coded feature is
lossless.  The contract tested here:

* ``find_bundles`` packs exclusive sparse columns and *never* bundles
  columns that conflict on even one row;
* ``BundleLayout.apply`` is invertible — every original (column, code)
  is recoverable from the bundled code via the member intervals;
* ``split_sources`` translates any bundled-feature threshold back to
  original-column code ranges that select exactly the same rows;
* the plane engages bundling end-to-end on one-hot-shaped data and
  trial evaluation still works.
"""

import numpy as np
import pytest

from repro.data import OneHotEncoder, make_classification, plane_for
from repro.data.binned import BinnedDataset
from repro.data.bundling import (
    MAX_BUNDLE_CODES,
    BundleLayout,
    BundledBinner,
    find_bundles,
)
from repro.data.dataset import Dataset
from repro.learners.histogram import Binner


def _onehot_codes(n: int, k: int, seed: int = 0):
    """Codes of a k-wide one-hot block plus one dense column in front.

    One-hot column j is "hot" (code 2) on rows where category == j,
    default (code 1) elsewhere; the dense column uses codes 1..9.
    """
    rng = np.random.default_rng(seed)
    cat = rng.integers(0, k, size=n)
    codes = np.ones((n, k + 1), dtype=np.uint8)
    codes[:, 0] = rng.integers(1, 10, size=n)
    for j in range(k):
        codes[cat == j, j + 1] = 2
    n_bins = np.array([10] + [3] * k)
    defaults = np.array([0] + [1] * k)  # dense col default never dominant
    return codes, n_bins, defaults, cat


class TestFindBundles:
    def test_onehot_block_is_bundled(self):
        codes, n_bins, defaults, _ = _onehot_codes(500, 6)
        bundles = find_bundles(codes, n_bins, defaults)
        assert bundles == [[1, 2, 3, 4, 5, 6]]  # the dense col stays out

    def test_single_row_conflict_rejected(self):
        codes, n_bins, defaults, cat = _onehot_codes(500, 4)
        # corrupt exclusivity: one row hot in two columns
        r = int(np.flatnonzero(cat == 0)[0])
        codes[r, 2] = 2
        bundles = find_bundles(codes, n_bins, defaults)
        for b in bundles:
            assert not (1 in b and 2 in b)

    def test_dense_columns_never_bundle(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(1, 5, size=(400, 5)).astype(np.uint8)
        n_bins = np.full(5, 6)
        defaults = np.array([np.bincount(codes[:, j]).argmax()
                             for j in range(5)])
        assert find_bundles(codes, n_bins, defaults) == []

    def test_respects_code_budget(self):
        codes, n_bins, defaults, _ = _onehot_codes(600, 3)
        n_bins = np.array([10, MAX_BUNDLE_CODES - 1, 3, 3])
        bundles = find_bundles(codes, n_bins, defaults)
        for b in bundles:
            assert sum(int(n_bins[j]) for j in b) <= MAX_BUNDLE_CODES

    def test_deterministic(self):
        codes, n_bins, defaults, _ = _onehot_codes(500, 8, seed=5)
        assert (find_bundles(codes, n_bins, defaults)
                == find_bundles(codes.copy(), n_bins, defaults))


class TestBundleLayout:
    def _layout(self, k=6, n=400, seed=0):
        # k >= 6 keeps every one-hot column's active fraction safely
        # below 1 - MIN_DEFAULT_FRAC, so the whole block is a candidate
        codes, n_bins, defaults, cat = _onehot_codes(n, k, seed)
        bundles = find_bundles(codes, n_bins, defaults)
        assert bundles
        return BundleLayout(n_bins, defaults, bundles), codes, cat

    def test_geometry(self):
        layout, codes, _ = self._layout(k=6)
        assert layout.d_in == 7 and layout.d_out == 2
        assert layout.singles == [0]
        assert layout.source_of(0) == [0]
        assert sorted(layout.source_of(1)) == [1, 2, 3, 4, 5, 6]
        # member intervals tile [1, n_bins) disjointly
        ivs = sorted(layout.member_interval(1, j)
                     for j in layout.source_of(1))
        assert ivs[0][0] == 1
        for (alo, ahi), (blo, bhi) in zip(ivs, ivs[1:]):
            assert ahi == blo
        assert ivs[-1][1] == int(layout.n_bins_[1])

    def test_apply_is_invertible(self):
        layout, codes, _ = self._layout(k=6)
        out = layout.apply(codes)
        members = layout.source_of(1)
        for row in range(codes.shape[0]):
            c = int(out[row, 1])
            if c == 0:  # every member at its default
                for j in members:
                    assert codes[row, j] == layout.defaults[j]
                continue
            owners = [j for j in members
                      if layout.member_interval(1, j)[0] <= c
                      < layout.member_interval(1, j)[1]]
            assert len(owners) == 1
            j = owners[0]
            lo, _ = layout.member_interval(1, j)
            assert codes[row, j] == c - lo  # interval start == offset
            for other in members:
                if other != j:
                    assert codes[row, other] == layout.defaults[other]

    def test_split_sources_select_same_rows(self):
        """code <= t on the bundled feature == union of the translated
        per-member intervals (with non-members at default)."""
        layout, codes, _ = self._layout(k=6, n=600, seed=2)
        out = layout.apply(codes)
        members = layout.source_of(1)
        for t in range(int(layout.n_bins_[1])):
            left = out[:, 1] <= t
            rebuilt = np.zeros(codes.shape[0], dtype=bool)
            # code 0 rows (all-default) always travel left
            alldef = np.ones(codes.shape[0], dtype=bool)
            for j in members:
                alldef &= codes[:, j] == layout.defaults[j]
            rebuilt |= alldef
            for j, lo, hi in layout.split_sources(1, t):
                sel = (codes[:, j] >= lo) & (codes[:, j] < hi) \
                    & (codes[:, j] != layout.defaults[j])
                rebuilt |= sel
            np.testing.assert_array_equal(left, rebuilt)

    def test_split_sources_single_feature_passthrough(self):
        layout, _, _ = self._layout()
        assert layout.split_sources(0, 3) == [(0, 0, 4)]

    def test_uint16_when_bundle_exceeds_uint8(self):
        n_bins = np.array([200, 200])
        defaults = np.array([1, 1])
        layout = BundleLayout(n_bins, defaults, [[0, 1]])
        assert int(layout.n_bins_[0]) == 401
        codes = np.ones((10, 2), dtype=np.uint8)
        codes[3, 1] = 150
        out = layout.apply(codes)
        assert out.dtype == np.uint16
        assert int(out[3, 0]) == 201 + 150  # offset of member 1 is 201

    def test_unbundle_counts(self):
        layout, _, _ = self._layout(k=6)
        per = np.array([6.0, 9.0])
        back = layout.unbundle_counts(per)
        assert back[0] == 6.0
        assert np.allclose(back[1:], 1.5)  # 9 split over 6 members
        assert np.isclose(back.sum(), per.sum())

    def test_rejects_overlapping_bundles(self):
        with pytest.raises(ValueError):
            BundleLayout(np.array([3, 3, 3]), np.array([1, 1, 1]),
                         [[0, 1], [1, 2]])


class TestBundledBinner:
    def test_transform_matches_layout_apply(self):
        rng = np.random.default_rng(0)
        cat = rng.integers(0, 8, size=500)
        X = np.column_stack(
            [rng.standard_normal(500)]
            + [(cat == j).astype(float) for j in range(8)]
        )
        inner = Binner(max_bins=255).fit(X)
        raw = inner.transform(X)
        defaults = np.array([np.bincount(raw[:, j]).argmax()
                             for j in range(9)])
        bundles = find_bundles(raw, inner.n_bins_, defaults)
        assert bundles
        layout = BundleLayout(inner.n_bins_, defaults, bundles)
        bb = BundledBinner(inner, layout)
        assert bb.transform(X).tobytes() == layout.apply(raw).tobytes()
        np.testing.assert_array_equal(bb.n_bins_, layout.n_bins_)
        assert len(bb.bin_edges_) == layout.d_out
        assert bb.total_bins == int(layout.n_bins_.max())


class TestOneHotOutputBlocks:
    def test_blocks_locate_the_encoded_columns(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([
            rng.standard_normal(200),
            rng.integers(0, 3, size=200).astype(float),
            rng.standard_normal(200),
            rng.integers(0, 5, size=200).astype(float),
        ])
        enc = OneHotEncoder(columns=(1, 3))
        out = enc.fit_transform(X)
        blocks = enc.output_blocks(X.shape[1])
        assert [b[0] for b in blocks] == [1, 3]
        assert blocks[0][1] == 2  # after the two passthrough columns
        assert blocks[-1][2] == out.shape[1]
        for j, start, stop in blocks:
            width = stop - start
            assert width == enc.categories_[j].size
            # each block row is one-hot over the encoded column
            assert (out[:, start:stop].sum(axis=1) == 1.0).all()

    def test_blocks_require_fit(self):
        with pytest.raises(RuntimeError):
            OneHotEncoder(columns=(0,)).output_blocks(3)


class TestPlaneIntegration:
    def _onehot_dataset(self, n=3000, k=8, seed=0):
        base = make_classification(n, 3, class_sep=1.2, seed=seed,
                                   name="efb").shuffled(seed)
        enc = OneHotEncoder(columns=(2,))
        rng = np.random.default_rng(seed + 1)
        X = base.X.copy()
        X[:, 2] = rng.integers(0, k, size=n)
        Xt = enc.fit_transform(X)
        return Dataset("efb", Xt, base.y, base.task)

    def test_plane_bundles_onehot_block(self, monkeypatch):
        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        data = self._onehot_dataset()
        plane = plane_for(data)
        assert plane.sketch
        st = plane.sketch_state()
        assert st["bundles"], "one-hot block must produce a bundle"
        binner = plane.global_binner(255)
        assert isinstance(binner, BundledBinner)
        d_out = len(binner.n_bins_)
        assert d_out < data.d  # columns actually merged
        codes, n_bins, _ = plane.binned_for(
            np.arange(data.n), ("all",), 255)
        assert codes.shape == (data.n, d_out)
        assert plane.stats()["bundles"] == len(st["bundles"])

    def test_bundled_codes_match_direct_transform(self, monkeypatch):
        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        data = self._onehot_dataset(seed=3)
        plane = plane_for(data)
        binner = plane.global_binner(64)
        rows = np.arange(0, data.n, 3)
        via_plane = binner.codes_from_base(plane._base_codes_rows(rows))
        via_float = binner.transform(data.X[rows])
        assert via_plane.tobytes() == via_float.tobytes()

    def test_bundling_toggle_off(self, monkeypatch):
        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        monkeypatch.setenv("REPRO_FEATURE_BUNDLING", "0")
        data = self._onehot_dataset(seed=4)
        plane = plane_for(data)
        assert plane.sketch_state()["bundles"] == []
        binner = plane.global_binner(255)
        assert not isinstance(binner, BundledBinner)
        assert len(binner.n_bins_) == data.d

    def test_trial_runs_on_bundled_plane(self, monkeypatch):
        from repro.exec import SerialExecutor, TrialSpec
        from repro.learners import LGBMLikeClassifier
        from repro.metrics import get_metric

        monkeypatch.setattr(BinnedDataset, "EXACT_ROW_LIMIT", 100)
        data = self._onehot_dataset(seed=5)
        plane = plane_for(data)
        assert plane.sketch_state()["bundles"]
        spec = TrialSpec(
            learner="lgbm", estimator_cls=LGBMLikeClassifier,
            config={"tree_num": 4, "leaf_num": 6}, sample_size=2000,
            resampling="holdout", metric=get_metric("accuracy"), seed=0,
            labels=np.unique(data.y),
        )
        out = SerialExecutor(data).submit(spec).result()
        assert out.failure is None
        assert np.isfinite(out.error) and 0.0 <= out.error <= 1.0
