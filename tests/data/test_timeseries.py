"""The forecasting substrate: featurizer, model wrapper, generators."""

import numpy as np
import pytest

from repro.data.timeseries import (
    FORECAST_CONFIG_KEYS,
    TIMESERIES_REGIMES,
    ForecastModel,
    LagFeaturizer,
    featurizer_from_config,
    load_forecast_dataset,
    make_timeseries,
    seasonal_naive_cv_error,
    seasonal_naive_forecast,
    split_forecast_config,
)


class TestLagFeaturizer:
    def test_supervised_matrix_values(self):
        y = np.arange(10, dtype=np.float64)  # 0..9
        feat = LagFeaturizer(n_lags=2)
        F, target = feat.make_supervised(y)
        # row i describes index 2+i: features are y[t-1], y[t-2]
        assert F.shape == (8, 2)
        assert np.array_equal(target, y[2:])
        assert np.array_equal(F[:, 0], y[1:9])
        assert np.array_equal(F[:, 1], y[0:8])

    def test_seasonal_and_rolling_columns(self):
        y = np.arange(20, dtype=np.float64)
        feat = LagFeaturizer(n_lags=1, seasonal_period=4, rolling_window=3)
        F, target = feat.make_supervised(y)
        p = feat.context  # max(1, 4, 3) = 4
        assert p == 4
        assert F.shape == (16, 3)
        t = np.arange(4, 20)
        assert np.array_equal(F[:, 0], y[t - 1])
        assert np.array_equal(F[:, 1], y[t - 4])
        expected_roll = np.array([y[i - 3:i].mean() for i in t])
        assert np.allclose(F[:, 2], expected_roll)

    def test_difference_mode(self):
        y = np.array([1.0, 3.0, 6.0, 10.0, 15.0])  # diffs: 2,3,4,5
        feat = LagFeaturizer(n_lags=1, difference=True)
        F, target = feat.make_supervised(y)
        assert np.array_equal(target, [3.0, 4.0, 5.0])
        assert np.array_equal(F[:, 0], [2.0, 3.0, 4.0])
        assert feat.min_history == 2

    def test_feature_row_matches_supervised(self):
        y = np.sin(np.arange(30) / 3.0)
        feat = LagFeaturizer(n_lags=3, seasonal_period=5, rolling_window=4)
        F, _ = feat.make_supervised(y)
        # the last supervised row predicts y[-1] from y[:-1]
        assert np.allclose(feat.feature_row(y[:-1]), F[-1])

    def test_too_short_series_raises(self):
        with pytest.raises(ValueError, match="too short"):
            LagFeaturizer(n_lags=5).make_supervised(np.arange(5.0))
        with pytest.raises(ValueError, match="trailing values"):
            LagFeaturizer(n_lags=5).feature_row(np.arange(3.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            LagFeaturizer(n_lags=0)
        with pytest.raises(ValueError):
            LagFeaturizer(rolling_window=-1)

    def test_dict_round_trip(self):
        feat = LagFeaturizer(n_lags=4, rolling_window=8, seasonal_period=12,
                             difference=True)
        again = LagFeaturizer.from_dict(feat.to_dict())
        assert again == feat


class TestConfigSplit:
    def test_split_forecast_config(self):
        cfg = {"tree_num": 8, "fc_lags": 5, "fc_window": 4, "fc_diff": 1,
               "learning_rate": 0.1}
        base, fc = split_forecast_config(cfg)
        assert base == {"tree_num": 8, "learning_rate": 0.1}
        assert fc == {"fc_lags": 5, "fc_window": 4, "fc_diff": 1}
        assert set(fc) == set(FORECAST_CONFIG_KEYS)

    def test_featurizer_from_config(self):
        feat = featurizer_from_config(
            {"fc_lags": 6, "fc_window": 8, "fc_diff": 1}, seasonal_period=12
        )
        assert feat == LagFeaturizer(n_lags=6, rolling_window=8,
                                     seasonal_period=12, difference=True)
        # defaults apply when the config carries no fc_* keys
        assert featurizer_from_config({}).n_lags == 3


class _MeanRegressor:
    """Predicts the training-target mean — enough to test the wrapper."""

    def fit(self, X, y):
        self.mean_ = float(np.mean(y))
        return self

    def predict(self, X):
        return np.full(np.atleast_2d(X).shape[0], self.mean_)


class TestForecastModel:
    def test_fit_forecast_shapes_and_tail(self):
        y = np.arange(50, dtype=np.float64)
        model = ForecastModel(_MeanRegressor(), LagFeaturizer(n_lags=3),
                              horizon=4).fit(y)
        assert model.tail_.tolist() == [47.0, 48.0, 49.0]
        assert model.forecast().shape == (4,)
        assert model.forecast(7).shape == (7,)

    def test_difference_integrates_back(self):
        # a perfect one-step model on a diffed linear trend extrapolates it
        y = 2.0 * np.arange(40, dtype=np.float64)
        feat = LagFeaturizer(n_lags=2, difference=True)
        model = ForecastModel(_MeanRegressor(), feat, horizon=3).fit(y)
        assert np.allclose(model.forecast(3), [80.0, 82.0, 84.0])

    def test_explicit_history(self):
        y = np.arange(40, dtype=np.float64)
        model = ForecastModel(_MeanRegressor(), LagFeaturizer(n_lags=2),
                              horizon=2).fit(y)
        out = model.forecast(2, history=np.arange(100, 110, dtype=np.float64))
        assert out.shape == (2,)
        with pytest.raises(ValueError, match="at least"):
            model.forecast(2, history=[1.0])

    def test_unfitted_and_bad_horizon(self):
        model = ForecastModel(_MeanRegressor(), LagFeaturizer())
        with pytest.raises(RuntimeError, match="not fitted"):
            model.forecast(1)
        with pytest.raises(ValueError):
            ForecastModel(_MeanRegressor(), LagFeaturizer(), horizon=0)


class TestBaselines:
    def test_seasonal_naive_repeats_cycle(self):
        hist = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        out = seasonal_naive_forecast(hist, horizon=5, m=3)
        assert out.tolist() == [4.0, 5.0, 6.0, 4.0, 5.0]
        # m=1: repeat the last value
        assert seasonal_naive_forecast(hist, 3, m=1).tolist() == [6.0] * 3

    def test_seasonal_naive_validation(self):
        with pytest.raises(ValueError):
            seasonal_naive_forecast([1.0], horizon=2, m=5)
        with pytest.raises(ValueError):
            seasonal_naive_forecast([1.0, 2.0], horizon=0)

    def test_cv_error_is_zero_on_pure_cycle(self):
        y = np.tile([1.0, 5.0, 3.0, 8.0], 30)  # exact period 4
        err = seasonal_naive_cv_error(y, horizon=4, n_splits=3, m=4)
        assert err == pytest.approx(0.0, abs=1e-9)

    def test_cv_error_positive_on_noise(self):
        rng = np.random.default_rng(3)
        err = seasonal_naive_cv_error(rng.standard_normal(120), horizon=6,
                                      n_splits=4, m=1)
        assert err > 0.0


class TestGenerators:
    def test_deterministic_and_task_tagged(self):
        a = make_timeseries(n=100, seasonal_period=12, seasonal_amp=2.0,
                            seed=5)
        b = make_timeseries(n=100, seasonal_period=12, seasonal_amp=2.0,
                            seed=5)
        assert a.task == "forecast"
        assert a.n == 100 and a.d == 1
        assert np.array_equal(a.y, b.y)
        c = make_timeseries(n=100, seasonal_period=12, seasonal_amp=2.0,
                            seed=6)
        assert not np.array_equal(a.y, c.y)

    def test_trend_regime_actually_trends(self):
        ds = make_timeseries(n=300, trend=0.5, noise=0.1, seed=0)
        assert ds.y[200:].mean() > ds.y[:100].mean() + 20

    def test_every_regime_loads(self):
        for name in TIMESERIES_REGIMES:
            ds = load_forecast_dataset(name)
            assert ds.task == "forecast"
            assert ds.n == TIMESERIES_REGIMES[name]["n"]

    def test_unknown_regime(self):
        with pytest.raises(ValueError, match="unknown forecast dataset"):
            load_forecast_dataset("nope")
