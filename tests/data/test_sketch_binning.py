"""Property + regression tests for the large-n sketch binning grid.

The sketch path (``repro.learners.histogram.SketchBinner`` +
``DerivedBinner``) is what lets the data plane bin 10^5..10^6-row
datasets once, dataset-level, and serve every fold and every searched
``max_bin`` as a gather.  Its contract is stated in four properties:

* fitted edges are strictly increasing per feature;
* codes stay within per-feature bounds (``0 <= c < n_bins_[j]`` and
  ``n_bins_[j] <= max_bins + 1``);
* when the sketch covers the data (``sketch_size >= n``) the fit is
  *exactly* ``Binner(max_bins).fit`` — the sketch is a strict
  generalisation, not a different binner;
* the sketch is a pure function of ``(n, sketch_size, seed)`` — two
  processes fitting the same data get byte-identical grids.

Plus the derived-grid theorem the shm code plane rests on: remapping
base codes equals transforming the raw floats.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learners.histogram import (
    MISSING_BIN,
    Binner,
    DerivedBinner,
    SketchBinner,
    code_dtype,
)


def _make_X(seed: int, n: int, d: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d))
    # mixed regimes: a low-cardinality column and some missing values
    X[:, -1] = rng.integers(0, 7, size=n)
    X[rng.random((n, d)) < 0.05] = np.nan
    return X


def _sketch_counts(base: SketchBinner, X: np.ndarray) -> list:
    rows = base.sketch_rows(X.shape[0])
    sk = base.transform(X[rows])
    return [
        np.bincount(sk[:, j], minlength=int(base.n_bins_[j]))
        for j in range(X.shape[1])
    ]


class TestSketchBinnerProperties:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_edges_strictly_increasing(self, seed, max_bins):
        X = _make_X(seed, 400)
        b = SketchBinner(max_bins=max_bins, sketch_size=128, seed=0).fit(X)
        for e in b.bin_edges_:
            assert (np.diff(e) > 0).all()

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_codes_within_bounds(self, seed, max_bins):
        X = _make_X(seed, 500)
        b = SketchBinner(max_bins=max_bins, sketch_size=128, seed=0).fit(X)
        codes = b.transform(X)
        assert codes.min() >= 0
        assert (codes < b.n_bins_[None, :]).all()
        assert (b.n_bins_ <= max_bins + 1).all()

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_exact_parity_when_sketch_covers_data(self, seed, max_bins):
        """sketch_size >= n  =>  the fit equals a plain Binner fit."""
        X = _make_X(seed, 300)
        sk = SketchBinner(max_bins=max_bins, sketch_size=1000, seed=7).fit(X)
        ex = Binner(max_bins=max_bins).fit(X)
        assert len(sk.bin_edges_) == len(ex.bin_edges_)
        for a, b in zip(sk.bin_edges_, ex.bin_edges_):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(sk.n_bins_, ex.n_bins_)
        np.testing.assert_array_equal(sk.transform(X), ex.transform(X))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_seed_determinism(self, seed):
        """Two independent fits of the same data are byte-identical —
        the property that lets parent and worker agree on a grid."""
        X = _make_X(seed, 700)
        b1 = SketchBinner(max_bins=31, sketch_size=200, seed=3).fit(X)
        b2 = SketchBinner(max_bins=31, sketch_size=200, seed=3).fit(X.copy())
        for a, b in zip(b1.bin_edges_, b2.bin_edges_):
            np.testing.assert_array_equal(a, b)
        c1, c2 = b1.transform(X), b2.transform(X)
        assert c1.tobytes() == c2.tobytes()
        np.testing.assert_array_equal(
            b1.sketch_rows(700), b2.sketch_rows(700)
        )

    def test_different_seed_different_sketch(self):
        b1 = SketchBinner(max_bins=255, sketch_size=50, seed=0)
        b2 = SketchBinner(max_bins=255, sketch_size=50, seed=1)
        assert not np.array_equal(b1.sketch_rows(1000), b2.sketch_rows(1000))

    def test_sketch_rows_are_sorted_subset(self):
        rows = SketchBinner(sketch_size=100, seed=0).sketch_rows(5000)
        assert rows.size == 100
        assert (np.diff(rows) > 0).all()  # sorted, no repeats
        assert rows.min() >= 0 and rows.max() < 5000

    def test_small_n_is_identity_sketch(self):
        rows = SketchBinner(sketch_size=131_072).sketch_rows(50)
        np.testing.assert_array_equal(rows, np.arange(50))

    def test_rejects_degenerate_sketch_size(self):
        with pytest.raises(ValueError):
            SketchBinner(sketch_size=1)


class TestDerivedBinnerProperties:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_remap_equals_float_transform(self, seed, max_bins):
        """The load-bearing theorem: gathering base codes through the
        remap gives exactly the codes of transforming the raw floats —
        so a worker holding only uint8 base codes loses nothing."""
        X = _make_X(seed, 600)
        base = SketchBinner(max_bins=255, sketch_size=10_000, seed=0).fit(X)
        der = DerivedBinner(base, _sketch_counts(base, X), max_bins)
        via_remap = der.codes_from_base(base.transform(X))
        via_float = der.transform(X)
        assert via_remap.dtype == via_float.dtype
        assert via_remap.tobytes() == via_float.tobytes()

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=2, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_derived_edges_subset_of_base(self, seed, max_bins):
        X = _make_X(seed, 500)
        base = SketchBinner(max_bins=255, sketch_size=10_000, seed=0).fit(X)
        der = DerivedBinner(base, _sketch_counts(base, X), max_bins)
        for e, be in zip(der.bin_edges_, base.bin_edges_):
            assert np.isin(e, be).all()
            assert (np.diff(e) > 0).all()
            assert e.size + 2 <= max_bins + 2  # n_bins <= max_bins + 1

    def test_coarsening_is_monotone(self):
        """Derived codes preserve value order (they are a grouping of
        ordered base bins, never a shuffle)."""
        X = np.linspace(-4, 4, 1000).reshape(-1, 1)
        base = SketchBinner(max_bins=255, sketch_size=10_000, seed=0).fit(X)
        der = DerivedBinner(base, _sketch_counts(base, X), 8)
        codes = der.codes_from_base(base.transform(X))
        assert (np.diff(codes[:, 0].astype(int)) >= 0).all()

    def test_missing_bin_is_preserved(self):
        X = np.array([[np.nan], [1.0], [np.nan], [2.0], [3.0]])
        base = SketchBinner(max_bins=255).fit(X)
        der = DerivedBinner(base, _sketch_counts(base, X), 2)
        codes = der.codes_from_base(base.transform(X))
        assert codes[0, 0] == MISSING_BIN and codes[2, 0] == MISSING_BIN
        assert (codes[[1, 3, 4], 0] != MISSING_BIN).all()

    def test_requires_fitted_base(self):
        with pytest.raises(RuntimeError):
            DerivedBinner(Binner(), [], 8)


class TestCodeDtype:
    """The uint8/uint16 boundary: 256 codes (255 value bins + missing)
    is exactly uint8's range; promoting at 256 instead of 257 used to
    double every code matrix shipped at the default max_bins."""

    def test_boundary(self):
        assert code_dtype(256) == np.uint8
        assert code_dtype(257) == np.uint16
        assert code_dtype(2) == np.uint8
        assert code_dtype(65_536) == np.uint16

    def test_default_binner_stays_uint8(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((5000, 2))  # > 255 distinct values
        b = Binner(max_bins=255)
        codes = b.fit_transform(X)
        assert int(b.n_bins_.max()) == 256
        assert codes.dtype == np.uint8
        assert codes.max() == 255  # the full range is actually used

    def test_many_bins_promote_to_uint16_without_truncation(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((5000, 1))
        b = Binner(max_bins=300)
        codes = b.fit_transform(X)
        assert codes.dtype == np.uint16
        assert int(codes.max()) > 255  # codes beyond uint8 survive intact
        assert int(codes.max()) < int(b.n_bins_[0])

    def test_constant_column_at_scale(self):
        X = np.column_stack([np.full(4000, 7.5),
                             np.random.default_rng(2).standard_normal(4000)])
        b = SketchBinner(max_bins=255, sketch_size=512, seed=0).fit(X)
        codes = b.transform(X)
        assert len(np.unique(codes[:, 0])) == 1
        assert codes[0, 0] != MISSING_BIN
        assert int(b.n_bins_[0]) == 2  # missing + the single value bin

    def test_all_nan_column_at_scale(self):
        X = np.column_stack([np.full(4000, np.nan),
                             np.random.default_rng(3).standard_normal(4000)])
        b = SketchBinner(max_bins=255, sketch_size=512, seed=0).fit(X)
        codes = b.transform(X)
        assert (codes[:, 0] == MISSING_BIN).all()
        # empty edges: the missing bin plus one (never-hit) value slot
        assert int(b.n_bins_[0]) == 2
        # and the derived grid tolerates the degenerate feature
        der = DerivedBinner(b, _sketch_counts(b, X), 4)
        dc = der.codes_from_base(codes)
        assert (dc[:, 0] == MISSING_BIN).all()
