"""Test package (unique module names: avoids pytest basename collisions)."""
