"""Tests for Dataset.describe()."""

import numpy as np
import pytest

from repro.data import Dataset


class TestDescribe:
    def test_classification_fields(self):
        r = np.random.default_rng(0)
        X = r.standard_normal((100, 3))
        X[0, 0] = np.nan
        y = (np.arange(100) < 80).astype(int)
        d = Dataset("t", X, y, "binary", categorical=(2,)).describe()
        assert d["task"] == "binary"
        assert d["n"] == 100 and d["d"] == 3
        assert d["n_categorical"] == 1
        assert d["missing_frac"] == pytest.approx(1 / 300)
        assert d["n_classes"] == 2
        assert d["minority_frac"] == pytest.approx(0.2)

    def test_regression_fields(self):
        r = np.random.default_rng(1)
        X = r.standard_normal((50, 2))
        y = np.linspace(-1, 1, 50)
        d = Dataset("r", X, y, "regression").describe()
        assert "n_classes" not in d
        assert d["y_mean"] == pytest.approx(0.0, abs=1e-9)
        assert d["y_std"] > 0

    def test_describe_json_safe(self):
        import json

        r = np.random.default_rng(2)
        X = r.standard_normal((30, 2))
        y = (X[:, 0] > 0).astype(int)
        json.dumps(Dataset("j", X, y, "binary").describe())
