"""Tests for the text renderers of the paper's tables/figures."""

import numpy as np
import pytest

from repro.bench import (
    RunRecord,
    format_ablation_curves,
    format_boxplot_summary,
    format_budget_table,
    format_qerror_table,
    format_radar_table,
    format_trial_table,
    summarize_score_differences,
)
from repro.core.controller import SearchResult, TrialRecord


def _trial(i, learner="lgbm", error=0.1, cost=0.5):
    return TrialRecord(
        iteration=i, automl_time=i * 1.0, learner=learner,
        config={"tree_num": 10, "learning_rate": 0.123456},
        sample_size=100, resampling="holdout", error=error, cost=cost,
        kind="search", improved_global=False,
    )


def _result(n=3):
    trials = [_trial(i + 1) for i in range(n)]
    return SearchResult(
        best_learner="lgbm", best_config={"tree_num": 10}, best_sample_size=100,
        best_error=0.1, resampling="holdout", trials=trials, wall_time=n * 1.0,
    )


def _record(dataset, system, budget, score, task="binary"):
    return RunRecord(
        dataset=dataset, task=task, system=system, budget=budget, fold=0,
        raw_score=score, scaled_score=score, best_error=1 - score, n_trials=5,
        wall_time=budget,
    )


class TestTrialTable:
    def test_contains_rows_and_config(self):
        text = format_trial_table(_result(3), "FLAML")
        assert "FLAML trial log" in text
        assert "tree_num: 10" in text
        assert text.count("\n") >= 4

    def test_truncation(self):
        text = format_trial_table(_result(40), "X", max_rows=5)
        assert "more trials" in text

    def test_failed_trial_marked(self):
        res = _result(1)
        res.trials[0].error = np.inf
        assert "fail" in format_trial_table(res, "X")


class TestRadarTable:
    def test_best_starred(self):
        records = [
            _record("d1", "FLAML", 1.0, 0.9),
            _record("d1", "TPOT", 1.0, 0.7),
        ]
        text = format_radar_table(records)
        line = [ln for ln in text.splitlines() if ln.startswith("d1")][0]
        # FLAML's 0.900 column carries the star
        assert "0.900*" in line.replace(" ", "")

    def test_task_filter(self):
        records = [
            _record("bin-ds", "FLAML", 1.0, 0.9, task="binary"),
            _record("reg-ds", "FLAML", 1.0, 0.8, task="regression"),
        ]
        text = format_radar_table(records, task="regression")
        assert "reg-ds" in text and "bin-ds" not in text


class TestScoreDifferences:
    def test_positive_diff_means_flaml_better(self):
        records = [
            _record("d1", "FLAML", 1.0, 0.9),
            _record("d1", "TPOT", 1.0, 0.7),
            _record("d2", "FLAML", 1.0, 0.5),
            _record("d2", "TPOT", 1.0, 0.6),
        ]
        stats = summarize_score_differences(records)
        assert stats["TPOT"]["n"] == 2
        assert stats["TPOT"]["median"] == pytest.approx(0.05)
        assert stats["TPOT"]["frac_positive"] == 0.5

    def test_smaller_budget_comparison(self):
        records = [
            _record("d1", "FLAML", 1.0, 0.9),
            _record("d1", "TPOT", 1.0, 0.5),
            _record("d1", "FLAML", 3.0, 0.95),
            _record("d1", "TPOT", 3.0, 0.85),
        ]
        stats = summarize_score_differences(records, ref_budget=1.0,
                                            other_budget=3.0)
        # FLAML@1s (0.9) vs TPOT@3s (0.85)
        assert stats["TPOT"]["median"] == pytest.approx(0.05)

    def test_boxplot_rendering(self):
        stats = {"TPOT": {"median": 0.1, "q1": 0.0, "q3": 0.2, "min": -0.1,
                          "max": 0.3, "frac_positive": 0.8, "n": 10}}
        text = format_boxplot_summary(stats, "test title")
        assert "test title" in text
        assert "TPOT" in text
        assert "80%" in text


class TestBudgetTable:
    def test_win_percentages(self):
        records = [
            _record("d1", "FLAML", 1.0, 0.9),
            _record("d1", "TPOT", 3.0, 0.7),
            _record("d2", "FLAML", 1.0, 0.5),
            _record("d2", "TPOT", 3.0, 0.9),
        ]
        text = format_budget_table(records, pairs=[(1.0, 3.0)])
        row = [ln for ln in text.splitlines() if "TPOT" in ln][0]
        assert "50%" in row

    def test_tolerance_counts_ties(self):
        records = [
            _record("d1", "FLAML", 1.0, 0.9),
            _record("d1", "TPOT", 3.0, 0.9005),  # within 0.1% tolerance
        ]
        text = format_budget_table(records, pairs=[(1.0, 3.0)])
        assert "100%" in text


class TestQErrorTable:
    def test_column_order_flaml_first_manual_last(self):
        results = {"2D-X": {"Manual": 2.0, "FLAML": 1.5, "TPOT": 3.0}}
        text = format_qerror_table(results)
        header = text.splitlines()[1]
        assert header.index("FLAML") < header.index("TPOT") < header.index("Manual")

    def test_missing_method_shows_na(self):
        results = {"2D-X": {"FLAML": 1.5}, "2D-Y": {"FLAML": 1.2, "TPOT": 9.9}}
        text = format_qerror_table(results)
        assert "N/A" in text


class TestAblationCurves:
    def test_grid_rendering(self):
        curves = {
            "flaml": [(0.1, 0.5), (1.0, 0.3)],
            "fulldata": [(0.5, 0.6), (1.0, 0.4)],
        }
        text = format_ablation_curves(curves, "ds", "1-auc")
        assert "ds" in text and "flaml" in text and "fulldata" in text
        # before fulldata's first trial the column shows a dash
        assert "-" in text

    def test_empty_curves(self):
        assert "no trials" in format_ablation_curves({"a": []}, "ds", "m")
