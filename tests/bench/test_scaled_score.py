"""Tests for benchmark scoring (scaled scores) and the harness."""

import numpy as np
import pytest

from repro.bench import (
    ComparisonHarness,
    constant_predictor_score,
    default_systems,
    fit_final_model,
    raw_score,
    rf_reference_score,
    scale_score,
    score_table,
)
from repro.data import Dataset, make_classification, make_regression
from repro.learners import LGBMLikeClassifier


@pytest.fixture(scope="module")
def splits():
    ds = make_classification(600, 5, structure="linear", class_sep=1.5, seed=0)
    folds = ds.outer_folds(5)
    return folds[0]


class TestScaleScore:
    def test_anchors(self):
        assert scale_score(0.5, const_score=0.5, rf_score=0.9) == 0.0
        assert scale_score(0.9, const_score=0.5, rf_score=0.9) == 1.0

    def test_above_one_means_beat_rf(self):
        assert scale_score(0.95, 0.5, 0.9) > 1.0

    def test_degenerate_reference(self):
        assert scale_score(0.6, 0.5, 0.5) == 1.0
        assert scale_score(0.4, 0.5, 0.5) == 0.0


class TestRawAndReferenceScores:
    def test_binary_constant_is_half(self, splits):
        train, test = splits
        assert constant_predictor_score(train, test) == 0.5

    def test_multiclass_constant_is_prior_logloss(self):
        ds = make_classification(400, 4, n_classes=3, structure="clusters", seed=1)
        train, test = ds.outer_folds(4)[0]
        s = constant_predictor_score(train, test)
        assert -np.log(3) - 0.5 < s < 0  # near -log(K) for balanced priors

    def test_regression_constant_near_zero(self):
        ds = make_regression(500, 5, seed=2)
        train, test = ds.outer_folds(5)[0]
        assert abs(constant_predictor_score(train, test)) < 0.1

    def test_rf_reference_beats_constant(self, splits):
        train, test = splits
        rf = rf_reference_score(train, test, tree_num=20, train_time_limit=5.0)
        assert rf > constant_predictor_score(train, test)

    def test_raw_score_binary_auc(self, splits):
        train, test = splits
        m = LGBMLikeClassifier(tree_num=20, leaf_num=8).fit(train.X, train.y)
        s = raw_score(train, test, m)
        assert 0.5 < s <= 1.0


class TestHarness:
    def test_end_to_end_records(self):
        ds = make_classification(500, 4, structure="linear", class_sep=1.5,
                                 seed=3, name="tiny")
        h = ComparisonHarness(
            systems=default_systems(flaml_init_sample=100, include=("FLAML",)),
            budgets=(0.5,),
            n_folds=1,
        )
        records = h.run_dataset("tiny", dataset=ds)
        assert len(records) == 1
        r = records[0]
        assert r.system == "FLAML"
        assert r.dataset == "tiny"
        assert np.isfinite(r.scaled_score)
        assert r.n_trials >= 1

    def test_score_table_shape(self):
        ds = make_classification(500, 4, structure="linear", class_sep=1.5,
                                 seed=3, name="tiny")
        h = ComparisonHarness(
            systems=default_systems(flaml_init_sample=100,
                                    include=("FLAML", "H2OAutoML")),
            budgets=(0.4, 0.8),
            n_folds=1,
        )
        records = h.run_dataset("tiny", dataset=ds)
        table = score_table(records)
        assert set(table) == {0.4, 0.8}
        assert set(table[0.4]["tiny"]) == {"FLAML", "H2OAutoML"}

    def test_fit_final_model_roundtrip(self):
        ds = make_classification(400, 4, seed=5, name="t").shuffled(0)
        from repro.baselines import FLAMLSystem
        from repro.metrics import get_metric

        res = FLAMLSystem(init_sample_size=100, cv_instance_threshold=0).search(
            ds, get_metric("roc_auc"), time_budget=0.5, seed=0
        )
        model = fit_final_model(ds, res)
        assert model is not None
        assert model.predict_proba(ds.X).shape == (ds.n, 2)

    def test_default_systems_roster(self):
        roster = default_systems()
        assert set(roster) == {
            "FLAML", "Auto-sklearn", "Cloud-automl", "HpBandSter",
            "H2OAutoML", "TPOT",
        }
        sub = default_systems(include=("FLAML",))
        assert set(sub) == {"FLAML"}
