"""Tests for the anytime-performance utilities (time_to_error,
anytime_average_error)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import anytime_average_error, time_to_error
from repro.core.controller import TrialRecord


def _trial(i, t, err, cost=0.1, learner="lgbm"):
    return TrialRecord(
        iteration=i, automl_time=t, learner=learner, config={},
        sample_size=100, resampling="cv", error=err, cost=cost,
        kind="search", improved_global=False,
    )


LOG = [
    _trial(1, 1.0, 0.5),
    _trial(2, 2.0, 0.3),
    _trial(3, 4.0, 0.4),   # no improvement
    _trial(4, 8.0, 0.1),
]


class TestTimeToError:
    def test_reaches_targets_at_right_times(self):
        assert time_to_error(LOG, 0.5) == 1.0
        assert time_to_error(LOG, 0.3) == 2.0
        assert time_to_error(LOG, 0.2) == 8.0
        assert time_to_error(LOG, 0.05) == float("inf")

    def test_loose_target_hits_first_trial(self):
        assert time_to_error(LOG, 0.9) == 1.0

    def test_empty_log(self):
        assert time_to_error([], 0.5) == float("inf")

    def test_inf_errors_skipped(self):
        log = [_trial(1, 1.0, float("inf")), _trial(2, 3.0, 0.2)]
        assert time_to_error(log, 0.2) == 3.0


class TestAnytimeAverageError:
    def test_step_function_integral(self):
        # best-so-far: 0.5 on [1,2), 0.3 on [2,8), 0.1 on [8,10];
        # the wait [0,1) is charged at 0.5
        avg = anytime_average_error(LOG, horizon=10.0)
        expected = (0.5 * 1 + 0.5 * 1 + 0.3 * 6 + 0.1 * 2) / 10.0
        assert avg == pytest.approx(expected)

    def test_horizon_before_first_model(self):
        assert anytime_average_error(LOG, horizon=0.5) == float("inf")

    def test_early_improvement_beats_late(self):
        """Same final error, but improving early wins the anytime average."""
        fast = [_trial(1, 0.5, 0.4), _trial(2, 1.0, 0.1)]
        slow = [_trial(1, 0.5, 0.4), _trial(2, 9.0, 0.1)]
        assert anytime_average_error(fast, 10.0) < anytime_average_error(
            slow, 10.0
        )

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            anytime_average_error(LOG, 0.0)

    @settings(max_examples=30, deadline=None)
    @given(
        errs=st.lists(st.floats(0.01, 1.0), min_size=1, max_size=12),
        horizon=st.floats(5.0, 50.0),
    )
    def test_property_bounded_by_error_range(self, errs, horizon):
        log = [_trial(i + 1, i + 1.0, e) for i, e in enumerate(errs)
               if i + 1.0 <= horizon]
        if not log:
            return
        avg = anytime_average_error(log, horizon)
        assert min(errs) - 1e-12 <= avg <= max(errs) + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(errs=st.lists(st.floats(0.01, 1.0), min_size=2, max_size=10))
    def test_property_dominated_run_never_wins(self, errs):
        """Uniformly lowering every error can only lower the average."""
        base = [_trial(i + 1, i + 1.0, e) for i, e in enumerate(errs)]
        better = [_trial(i + 1, i + 1.0, e / 2) for i, e in enumerate(errs)]
        h = len(errs) + 2.0
        assert anytime_average_error(better, h) <= anytime_average_error(
            base, h
        ) + 1e-12
