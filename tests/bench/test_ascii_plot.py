"""Tests for the ASCII plot renderers."""

import numpy as np
import pytest

from repro.bench.ascii_plot import ascii_multi_series, ascii_scatter


class TestAsciiScatter:
    def test_basic_render(self):
        x = np.array([1.0, 10.0, 100.0])
        y = np.array([0.1, 0.01, 0.001])
        out = ascii_scatter(x, y, title="t", xlabel="cost", ylabel="regret")
        assert "t" in out
        plot_rows = [ln for ln in out.splitlines() if ln.startswith("|")]
        assert sum(r.count("o") for r in plot_rows) == 3
        assert "cost" in out and "regret" in out

    def test_extreme_points_at_corners(self):
        x = np.array([1.0, 1000.0])
        y = np.array([1.0, 1000.0])
        out = ascii_scatter(x, y, width=20, height=5, marker="X")
        rows = [ln for ln in out.splitlines() if ln.startswith("|")]
        assert rows[-1][1] == "X"  # min-x/min-y: bottom-left
        assert rows[0][-2] == "X"  # max-x/max-y: top-right

    def test_empty_series(self):
        assert "(no data)" in ascii_scatter(np.array([]), np.array([]), title="e")

    def test_constant_values_safe(self):
        out = ascii_scatter(np.ones(5), np.ones(5))
        assert "o" in out

    def test_overlay_via_grid(self):
        cells = [[" "] * 30 for _ in range(8)]
        a = ascii_scatter(np.array([1.0, 2.0]), np.array([1.0, 2.0]),
                          marker="a", width=30, height=8, grid=cells)
        assert a.count("a") == 2


class TestMultiSeries:
    def test_legend_and_markers(self):
        series = {
            "FLAML": (np.array([1.0, 10.0]), np.array([0.1, 0.01])),
            "BOHB": (np.array([5.0, 50.0]), np.array([0.2, 0.05])),
        }
        out = ascii_multi_series(series, title="fig1")
        assert "o=FLAML" in out
        assert "*=BOHB" in out
        assert out.count("o") >= 2  # legend 'o' + points

    def test_shared_axes(self):
        series = {
            "a": (np.array([1.0]), np.array([1.0])),
            "b": (np.array([100.0]), np.array([100.0])),
        }
        out = ascii_multi_series(series, width=20, height=5)
        assert "[1 .. 100]" in out

    def test_empty(self):
        assert "(no data)" in ascii_multi_series({})
