"""Tests for trajectory analysis utilities."""

import numpy as np
import pytest

from repro.bench import best_so_far, error_at_time, per_learner_best, regret_series
from repro.core.controller import TrialRecord


def _trial(i, t, learner, error, cost=0.1, s=100):
    return TrialRecord(
        iteration=i, automl_time=t, learner=learner, config={},
        sample_size=s, resampling="holdout", error=error, cost=cost,
        kind="search", improved_global=False,
    )


@pytest.fixture
def trials():
    return [
        _trial(1, 0.1, "lgbm", 0.5),
        _trial(2, 0.3, "rf", 0.4),
        _trial(3, 0.6, "lgbm", 0.45),
        _trial(4, 1.0, "lgbm", 0.2),
        _trial(5, 1.5, "rf", np.inf),  # failed trial
        _trial(6, 2.0, "rf", 0.3),
    ]


class TestBestSoFar:
    def test_monotone_nonincreasing(self, trials):
        curve = best_so_far(trials)
        errs = [e for _, e in curve]
        assert all(a >= b for a, b in zip(errs, errs[1:]))
        assert errs[-1] == 0.2

    def test_failed_trials_ignored(self, trials):
        curve = best_so_far(trials)
        assert curve[4][1] == 0.2  # inf trial does not regress the curve

    def test_empty(self):
        assert best_so_far([]) == []


class TestErrorAtTime:
    def test_before_first_trial(self, trials):
        assert error_at_time(trials, 0.05) == np.inf

    def test_midway(self, trials):
        assert error_at_time(trials, 0.7) == 0.4

    def test_after_all(self, trials):
        assert error_at_time(trials, 10.0) == 0.2


class TestRegretSeries:
    def test_regret_reference_is_run_best(self, trials):
        pts = regret_series(trials)
        assert min(p.error for p in pts) == 0.0
        assert len(pts) == 5  # inf trial dropped

    def test_explicit_reference(self, trials):
        pts = regret_series(trials, best_error=0.1)
        assert min(p.error for p in pts) == pytest.approx(0.1)

    def test_fields_carried(self, trials):
        pts = regret_series(trials)
        assert pts[0].learner == "lgbm"
        assert pts[0].cost == 0.1

    def test_empty(self):
        assert regret_series([]) == []


class TestPerLearnerBest:
    def test_curves_split_by_learner(self, trials):
        curves = per_learner_best(trials)
        assert set(curves) == {"lgbm", "rf"}
        # lgbm best-so-far: 0.5, 0.45, 0.2
        assert [e for _, e in curves["lgbm"]] == [0.5, 0.45, 0.2]
        assert [e for _, e in curves["rf"]] == [0.4, 0.3]
