"""Tests for the suite comparison harness."""

import numpy as np
import pytest

from repro.baselines import FLAMLSystem, RandomSearch
from repro.bench import SCALED_THRESHOLDS
from repro.bench.harness import (
    ComparisonHarness,
    default_systems,
    fit_final_model,
    score_table,
)
from repro.data import Dataset


@pytest.fixture(scope="module")
def small_dataset():
    r = np.random.default_rng(3)
    X = r.standard_normal((400, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return Dataset("toy", X, y, "binary")


class TestDefaultSystems:
    def test_paper_roster(self):
        roster = default_systems()
        assert set(roster) == {
            "FLAML", "Auto-sklearn", "Cloud-automl", "HpBandSter",
            "H2OAutoML", "TPOT",
        }

    def test_include_filter(self):
        roster = default_systems(include=("FLAML", "TPOT"))
        assert set(roster) == {"FLAML", "TPOT"}

    def test_scaled_thresholds_applied(self):
        roster = default_systems()
        assert roster["FLAML"].cv_instance_threshold == 2_500


class TestHarnessRun:
    @pytest.fixture(scope="class")
    def records(self, small_dataset):
        systems = {
            "FLAML": FLAMLSystem(init_sample_size=100, **SCALED_THRESHOLDS),
            "RandomSearch": RandomSearch(
                estimator_list=["lgbm"], **SCALED_THRESHOLDS
            ),
        }
        harness = ComparisonHarness(
            systems=systems, budgets=(0.8,), n_folds=2, seed=0,
            rf_time_limit=3.0,
        )
        return harness.run_dataset("toy", dataset=small_dataset)

    def test_record_grid_complete(self, records):
        # 2 systems x 1 budget x 2 folds
        assert len(records) == 4
        assert {r.system for r in records} == {"FLAML", "RandomSearch"}
        assert {r.fold for r in records} == {0, 1}

    def test_scores_finite_and_ordered(self, records):
        for r in records:
            assert np.isfinite(r.scaled_score)
            assert np.isfinite(r.raw_score)
            assert r.n_trials >= 1
            assert r.wall_time > 0

    def test_easy_task_beats_constant_predictor(self, records):
        """Scaled score 0 = constant predictor; any learner should beat it
        on a linearly separable task."""
        assert max(r.scaled_score for r in records) > 0.0

    def test_score_table_shape(self, records):
        table = score_table(records)
        assert set(table) == {0.8}
        assert set(table[0.8]) == {"toy"}
        assert set(table[0.8]["toy"]) == {"FLAML", "RandomSearch"}
        # fold scores averaged into one number
        for v in table[0.8]["toy"].values():
            assert isinstance(v, float)


class TestFitFinalModel:
    def test_retrains_best_config(self, small_dataset):
        sys = FLAMLSystem(init_sample_size=100, **SCALED_THRESHOLDS)
        from repro.metrics import get_metric

        res = sys.search(small_dataset.shuffled(0), get_metric("roc_auc"),
                         time_budget=0.8, seed=0)
        model = fit_final_model(small_dataset, res)
        assert model is not None
        pred = model.predict(small_dataset.X[:10])
        assert pred.shape == (10,)

    def test_none_when_no_successful_trial(self, small_dataset):
        from repro.core.controller import SearchResult

        empty = SearchResult(
            best_learner=None, best_config=None, best_sample_size=0,
            best_error=float("inf"), resampling="cv", trials=[],
            wall_time=0.0,
        )
        assert fit_final_model(small_dataset, empty) is None
