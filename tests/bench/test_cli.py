"""Tests for the repro.bench CLI."""

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.budgets == [1.0, 3.0]
        assert args.folds == 1

    def test_budgets_parsed_as_floats(self):
        args = build_parser().parse_args(["--budgets", "0.5", "2"])
        assert args.budgets == [0.5, 2.0]


class TestMain:
    def test_list_exits_zero(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "blood-transfusion" in out
        assert "bng_pbc" in out

    def test_list_task_filter(self, capsys):
        assert main(["--list", "--task", "regression"]) == 0
        out = capsys.readouterr().out
        assert "fried" in out
        assert "adult" not in out

    def test_unknown_dataset_rejected(self, capsys):
        assert main(["--datasets", "not-a-dataset"]) == 2

    def test_unknown_system_rejected(self, capsys):
        assert main(["--systems", "NotASystem", "--datasets", "phoneme"]) == 2

    @pytest.mark.slow
    def test_tiny_run(self, capsys):
        rc = main([
            "--datasets", "blood-transfusion",
            "--budgets", "0.3",
            "--systems", "FLAML",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "blood-transfusion" in out
        assert "FLAML" in out
