"""Figure 1 + Table 3: FLAML vs HpBandSter case study in the same space.

Reproduces the paper's headline contrast on one binary task:

* (a) per-trial (cost, regret) scatter — FLAML makes fewer expensive
  high-error trials;
* (b) per-trial (automl_time, cost) — FLAML's trial cost *ramps up* with
  elapsed time, HpBandSter's does not;
* (c) per-trial (automl_time, regret) — FLAML leads early and late;
* Table 3: the trial-by-trial configuration listing for both systems.
"""

from __future__ import annotations

import numpy as np

from _common import SCALE, make_case_study_dataset, save_text
from repro.baselines import BOHB, FLAMLSystem
from repro.bench import SCALED_THRESHOLDS, format_trial_table, regret_series
from repro.bench.ascii_plot import ascii_multi_series
from repro.metrics import get_metric

DATASET = "adult-large"
BUDGET = 15.0 * SCALE


def run_case_study():
    data = make_case_study_dataset(DATASET).shuffled(0)
    metric = get_metric("auto", task=data.task)
    flaml = FLAMLSystem(init_sample_size=1000, **SCALED_THRESHOLDS)
    bohb = BOHB(min_sample=1000, **SCALED_THRESHOLDS)
    res_f = flaml.search(data, metric, time_budget=BUDGET, seed=0)
    res_b = bohb.search(data, metric, time_budget=BUDGET, seed=0)
    return res_f, res_b


def render(res_f, res_b) -> str:
    # shared regret reference: best error across both runs
    best = min(res_f.best_error, res_b.best_error)
    pts_f = regret_series(res_f.trials, best_error=best)
    pts_b = regret_series(res_b.trials, best_error=best)
    lines = [f"### Figure 1 case study on '{DATASET}' (budget {BUDGET:g}s)"]

    def xy(pts, xf, yf):
        return (np.array([xf(p) for p in pts]), np.array([yf(p) for p in pts]))

    eps = 1e-4  # regret floor for the log axis
    for sub, xf, yf, xl, yl in (
        ("(a) regret vs trial cost", lambda p: p.cost,
         lambda p: p.error + eps, "cost (s)", "regret"),
        ("(b) trial cost vs automl time", lambda p: p.automl_time,
         lambda p: p.cost, "automl time (s)", "cost (s)"),
        ("(c) regret vs automl time", lambda p: p.automl_time,
         lambda p: p.error + eps, "automl time (s)", "regret"),
    ):
        lines.append("")
        lines.append(
            ascii_multi_series(
                {"FLAML": xy(pts_f, xf, yf), "HpBandSter": xy(pts_b, xf, yf)},
                title=sub, xlabel=xl, ylabel=yl,
            )
        )
    for name, pts in (("FLAML", pts_f), ("HpBandSter", pts_b)):
        lines.append(f"\n--- {name}: (automl_time, trial cost, regret) series ---")
        lines.append(f"{'time(s)':>9}{'cost(s)':>9}{'regret':>10}  learner")
        for p in pts:
            lines.append(
                f"{p.automl_time:>9.2f}{p.cost:>9.3f}{p.error:>10.4f}  {p.learner}"
                f" (s={p.sample_size})"
            )
    # Figure 1(b)'s claim, quantified: the most expensive trial FLAML has
    # run grows with elapsed time, while BOHB spends big from the start.
    def max_cost_by_third(pts):
        cut1, cut2 = BUDGET / 3, 2 * BUDGET / 3
        thirds = ([], [], [])
        for p in pts:
            i = 0 if p.automl_time < cut1 else (1 if p.automl_time < cut2 else 2)
            thirds[i].append(p.cost)
        return [max(c) if c else 0.0 for c in thirds]

    lines.append("\n--- cost-ramp check: max trial cost per third of the run ---")
    for name, pts in (("FLAML", pts_f), ("HpBandSter", pts_b)):
        a, b, c = max_cost_by_third(pts)
        lines.append(
            f"{name:<11}: {a:7.3f}s | {b:7.3f}s | {c:7.3f}s"
            + ("   (paper: grows gradually, stays bounded)" if name == "FLAML"
               else "   (paper: unbounded expensive trials)")
        )
    lines.append(
        f"max single-trial cost: FLAML {max(p.cost for p in pts_f):.2f}s, "
        f"HpBandSter {max(p.cost for p in pts_b):.2f}s"
    )
    lines.append("\n### Table 3: trial listings")
    lines.append(format_trial_table(res_f, "FLAML"))
    lines.append("")
    lines.append(format_trial_table(res_b, "HpBandSter"))
    return "\n".join(lines)


def test_fig1_table3_case_study(benchmark):
    res_f, res_b = benchmark.pedantic(run_case_study, rounds=1, iterations=1)
    save_text("fig1_table3_case_study.txt", render(res_f, res_b))
    # reproduction assertions (shape, not absolute numbers):
    assert res_f.n_trials > res_b.n_trials  # FLAML starts cheap => more trials
    assert res_f.best_error <= res_b.best_error * 1.5
