"""Serving bench: micro-batched vs. unbatched single-row prediction.

The serving subsystem's claim (repro.serve.batching): the learners are
vectorised, so per-call overhead dominates at batch size 1, and
coalescing concurrent single-row requests into batched ``predict``
calls multiplies throughput without unbounded latency (the coalescing
window caps the wait).  This bench drives the same concurrent
single-row workload through a :class:`ModelServer` twice —

* **unbatched** — ``batching=False``: every request runs its own
  1-row model call (a naive request-per-predict server);
* **micro-batched** — ``batching=True``: requests coalesce up to
  ``max_batch`` rows per model call

— and reports throughput, mean batch size, and p50/p95/p99 latency.

Acceptance targets (in-process, full load): batching must halve p99
latency — one model call per coalesced batch instead of N GIL-contended
single-row calls collapses the tail in every kernel mode — and on the
numpy fallback, where per-call overhead still dominates single-row
predicts, batched throughput must stay >= 2x unbatched.  With the
compiled traversal plane a single-row predict is sub-0.1 ms, so the
throughput multiplier no longer applies there (the tail win does).
Set ``REPRO_BENCH_SERVE_HTTP=1`` to run the same comparison over the
real HTTP server (adds socket overhead to both sides).

The bench also drives an **overload leg** (always in-process, always
gated — the injected model delay dominates, so the numbers are not
runner-noise): a server with admission control (``max_inflight``),
a bounded predict queue (``max_queue``) and an injected per-predict
delay (the ``http.predict`` fault site) is hit by more concurrency than
it admits.  It must shed the excess (the 429/503 surface:
``AdmissionRejected`` / ``BatcherSaturated`` / ``DeadlineExceeded``),
keep the *accepted* requests' p99 bounded (load shedding is precisely
the trade of availability-for-everyone into latency-for-the-admitted),
and serve normally again the moment the load stops.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time

import numpy as np

from _common import save_text
from repro import AutoML
from repro.native import native_enabled
from repro.serve import ModelRegistry, ModelServer, ServeClient, build_http_server

N_CLIENTS = 16
REQUESTS_PER_CLIENT = 40
MAX_BATCH = 64
MAX_DELAY_MS = 5.0
HTTP = os.environ.get("REPRO_BENCH_SERVE_HTTP", "0") == "1"

# overload leg: 8 clients against a 2-slot admission budget, every
# predict slowed by an injected 20 ms — deterministic pressure
OVERLOAD_CLIENTS = 8
OVERLOAD_REQUESTS = 6
OVERLOAD_INFLIGHT = 2
OVERLOAD_QUEUE = 4
OVERLOAD_DELAY_S = 0.02
#: accepted requests ride one injected delay + batching window + slack;
#: an unbounded queue would instead stack (clients/inflight) delays
OVERLOAD_P99_SLO_MS = 250.0


def make_artifact():
    r = np.random.default_rng(7)
    X = r.standard_normal((2000, 10))
    y = ((X[:, 0] + X[:, 1] * X[:, 2]) > 0).astype(np.int64)
    automl = AutoML(seed=0, init_sample_size=500)
    automl.fit(X, y, task="classification", time_budget=6, max_iters=10,
               estimator_list=["lgbm"])
    return automl.export_artifact(), X


def drive(predict_one, rows) -> float:
    """N_CLIENTS threads, each firing REQUESTS_PER_CLIENT single rows;
    returns wall-clock seconds for the whole workload."""
    done = threading.Barrier(N_CLIENTS + 1)

    def client(cid: int):
        base = cid * REQUESTS_PER_CLIENT
        done.wait()  # fire together: batch-heavy load, not a trickle
        for i in range(REQUESTS_PER_CLIENT):
            predict_one(rows[(base + i) % len(rows)])

    threads = [threading.Thread(target=client, args=(c,))
               for c in range(N_CLIENTS)]
    for t in threads:
        t.start()
    done.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    return time.perf_counter() - t0


def bench_mode(artifact, rows, batching: bool) -> dict:
    server = ModelServer(
        artifacts={"bench": artifact}, max_batch=MAX_BATCH,
        max_delay_ms=MAX_DELAY_MS, batching=batching,
    )
    if HTTP:
        httpd = build_http_server(server, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{httpd.server_address[1]}")
        predict_one = lambda row: client.predict(row, model="bench")  # noqa: E731
    else:
        predict_one = lambda row: server.predict("bench", row)  # noqa: E731
    elapsed = drive(predict_one, rows)
    snap = server.metrics()["bench"]
    if HTTP:
        httpd.shutdown()
        httpd.server_close()
    server.close()
    n = N_CLIENTS * REQUESTS_PER_CLIENT
    return {
        "throughput_rps": n / elapsed,
        "elapsed_s": elapsed,
        "mean_batch": snap["mean_batch_size"],
        "p50": snap.get("latency_ms_p50", float("nan")),
        "p95": snap.get("latency_ms_p95", float("nan")),
        "p99": snap.get("latency_ms_p99", float("nan")),
    }


def bench_overload(artifact, rows) -> dict:
    """Overload the admission-controlled server; measure shed/accepted
    split, accepted-request p99, and post-load recovery."""
    from repro.faults import FaultPlan, install
    from repro.serve.batching import BatcherSaturated
    from repro.serve.server import AdmissionRejected, DeadlineExceeded

    server = ModelServer(
        artifacts={"bench": artifact}, max_batch=MAX_BATCH,
        max_delay_ms=MAX_DELAY_MS,
        max_inflight=OVERLOAD_INFLIGHT, max_queue=OVERLOAD_QUEUE,
    )
    prev = install(FaultPlan({"http.predict": {
        "probability": 1.0, "mode": "delay", "param": OVERLOAD_DELAY_S,
    }}))
    counts = {"ok": 0, "shed": 0, "error": 0}
    accepted_lat: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(OVERLOAD_CLIENTS)

    def client(cid: int):
        barrier.wait()
        for i in range(OVERLOAD_REQUESTS):
            t0 = time.perf_counter()
            try:
                server.predict("bench", rows[(cid + i) % len(rows)])
            except (AdmissionRejected, BatcherSaturated, DeadlineExceeded):
                with lock:
                    counts["shed"] += 1
                continue
            except Exception:
                with lock:
                    counts["error"] += 1
                continue
            dt = time.perf_counter() - t0
            with lock:
                counts["ok"] += 1
                accepted_lat.append(dt)

    try:
        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(OVERLOAD_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        install(prev)
    # the load is gone: the very next request must be served normally
    try:
        server.predict("bench", rows[0])
        recovered = True
    except Exception:
        recovered = False
    server.close()
    p99 = (float(np.percentile(accepted_lat, 99)) * 1e3
           if accepted_lat else float("nan"))
    return {
        **counts,
        "accepted_p99_ms": p99,
        "recovered": recovered,
        "shed_by_reason": dict(server.shed_counts),
    }


def main() -> None:
    global N_CLIENTS, REQUESTS_PER_CLIENT
    ap = argparse.ArgumentParser(
        description="micro-batched vs unbatched single-row serving bench"
    )
    ap.add_argument("--out", default=None,
                    help="also write the numbers as a JSON record")
    ap.add_argument("--quick", action="store_true",
                    help="smaller load for CI smoke (skips the >=2x "
                         "speedup assert; the record is the product)")
    args = ap.parse_args()
    if args.quick:
        N_CLIENTS, REQUESTS_PER_CLIENT = 8, 12
    artifact, X = make_artifact()
    rows = X[:256]
    # warm both paths once so first-call setup is not measured
    unbatched = bench_mode(artifact, rows, batching=False)
    batched = bench_mode(artifact, rows, batching=True)
    speedup = batched["throughput_rps"] / unbatched["throughput_rps"]
    lines = [
        f"serving bench ({'HTTP' if HTTP else 'in-process'}): "
        f"{N_CLIENTS} clients x {REQUESTS_PER_CLIENT} single-row requests, "
        f"max_batch={MAX_BATCH}, max_delay={MAX_DELAY_MS}ms",
        "",
        f"{'mode':<14} {'rps':>9} {'mean batch':>11} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}",
    ]
    for label, m in (("unbatched", unbatched), ("micro-batched", batched)):
        lines.append(
            f"{label:<14} {m['throughput_rps']:>9.1f} {m['mean_batch']:>11.2f} "
            f"{m['p50']:>8.2f} {m['p95']:>8.2f} {m['p99']:>8.2f}"
        )
    p99_ratio = (unbatched["p99"] / batched["p99"]
                 if batched["p99"] > 0 else float("inf"))
    lines += [
        "",
        f"micro-batching throughput: {speedup:.2f}x"
        + ("" if HTTP or native_enabled()
           else " (fallback target: >= 2x at batch-heavy load)"),
        f"micro-batching p99 improvement: {p99_ratio:.1f}x"
        + ("" if HTTP else " (target: >= 2x)"),
    ]
    overload = bench_overload(artifact, rows)
    lines += [
        "",
        f"overload ({OVERLOAD_CLIENTS} clients, max_inflight="
        f"{OVERLOAD_INFLIGHT}, max_queue={OVERLOAD_QUEUE}, injected "
        f"{OVERLOAD_DELAY_S * 1e3:.0f}ms/predict): "
        f"ok={overload['ok']} shed={overload['shed']} "
        f"accepted p99={overload['accepted_p99_ms']:.1f}ms "
        f"(SLO {OVERLOAD_P99_SLO_MS:.0f}ms) "
        f"recovered={overload['recovered']}",
    ]
    save_text("serving.txt", "\n".join(lines))
    if args.out:
        record = {
            "bench": "serving",
            "transport": "http" if HTTP else "in-process",
            "native_kernels": native_enabled(),
            "quick": args.quick,
            "n_clients": N_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "max_batch": MAX_BATCH,
            "max_delay_ms": MAX_DELAY_MS,
            "unbatched": unbatched,
            "batched": batched,
            "speedup": speedup,
            "p99_improvement": p99_ratio,
            "overload": overload,
        }
        with open(args.out, "w") as f:
            json.dump(record, f, indent=2)
        print(f"record written to {args.out}")
    # the overload gates hold in --quick too: the injected delay (not
    # the runner) sets the timescale, so sheds and the accepted-p99
    # bound are deterministic properties of the admission machinery
    assert overload["shed"] > 0, "overload shed zero requests"
    assert overload["ok"] > 0, "overload starved every request"
    assert overload["error"] == 0, (
        f"{overload['error']} overload requests failed with a non-shed "
        "error"
    )
    assert overload["recovered"], "server did not recover after overload"
    assert overload["accepted_p99_ms"] <= OVERLOAD_P99_SLO_MS, (
        f"accepted p99 {overload['accepted_p99_ms']:.1f}ms blew the "
        f"{OVERLOAD_P99_SLO_MS:.0f}ms SLO — admitted requests are "
        "queueing behind shed-worthy load"
    )
    if not HTTP and not args.quick:
        # the acceptance targets apply to the in-process path, where the
        # model call is the cost being measured; over HTTP on one core,
        # per-connection socket overhead dominates both sides.  Quick
        # (CI-smoke) runs upload the record for trend tracking instead of
        # gating on a noisy shared runner.
        assert p99_ratio >= 2.0, (
            f"micro-batching only improved p99 by {p99_ratio:.2f}x "
            f"({unbatched['p99']:.2f}ms -> {batched['p99']:.2f}ms)"
        )
        if not native_enabled():
            # on the fallback, single-row per-call overhead is still the
            # dominant cost — coalescing must keep multiplying throughput
            assert speedup >= 2.0, (
                f"micro-batched throughput only {speedup:.2f}x the "
                "unbatched fallback path"
            )


if __name__ == "__main__":
    main()
