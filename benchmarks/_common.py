"""Shared configuration for the benchmark targets.

Each ``bench_*.py`` regenerates one table/figure of the paper.  Budgets
and dataset rosters are scaled for a 1-core laptop run (DESIGN.md §2);
set ``REPRO_BENCH_FULL=1`` for the full 53-dataset suite with three
budgets (several hours), and ``REPRO_BENCH_SCALE=<float>`` to stretch
every budget.

Results are printed and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path

from repro.bench import ComparisonHarness, RunRecord, default_systems
from repro.data import suite_names

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: budget ladder: stands in for the paper's 1m / 10m / 1h.  The pure-NumPy
#: learners are ~2 orders of magnitude slower than the C++ libraries the
#: paper uses, so budget seconds here are chosen to give trial-count-to-
#: budget ratios comparable to the paper's, not to match wall-clock.
BUDGETS = tuple(b * SCALE for b in ((2.0, 6.0, 18.0) if FULL else (2.0, 6.0)))

#: quick roster: 3 datasets per task type spanning the size range
QUICK_DATASETS = [
    "blood-transfusion", "phoneme", "adult",            # binary
    "vehicle", "segment", "connect-4",                  # multiclass
    "houses", "fried", "bng_pbc",                       # regression
]


def comparison_datasets() -> list[str]:
    return suite_names() if FULL else QUICK_DATASETS


def save_text(name: str, text: str) -> None:
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(text)
    print(f"[saved to {path}]")


def make_case_study_dataset(which: str):
    """Paper-scale datasets for the Figure 1/4/7 case studies.

    The suite's stand-ins are ~40x downscaled, which also shrinks trial
    cost — but Figures 1 and 7 are *about* trial cost, so their datasets
    must be large enough that a full-data trial is expensive relative to
    the budget (the originals are 48K-1M rows).  Generated on the fly.
    """
    from repro.data import make_classification, make_regression

    if which == "adult-large":  # Fig 1/4: binary, mixed features
        return make_classification(
            60_000, 16, structure="nonlinear", class_sep=1.0, cat_frac=0.3,
            seed=42, name="adult-large",
        )
    if which == "MiniBooNE":  # binary, 130K x 50 in the paper
        return make_classification(
            60_000, 24, structure="nonlinear", class_sep=1.2, seed=118,
            name="MiniBooNE",
        )
    if which == "Dionis":  # multiclass, 416K x 60, many classes
        return make_classification(
            30_000, 20, n_classes=8, structure="clusters", class_sep=1.0,
            seed=214, name="Dionis",
        )
    if which == "bng_pbc":  # regression, 1M x 18
        return make_regression(
            80_000, 18, structure="friedman1", noise=2.0, seed=312,
            name="bng_pbc",
        )
    raise ValueError(f"unknown case-study dataset {which!r}")


_RECORDS_CACHE: list[RunRecord] | None = None


def get_comparison_records() -> list[RunRecord]:
    """The Figure 5/6 + Table 9 run, computed once per session and cached
    to disk so the three bench targets share it."""
    global _RECORDS_CACHE
    if _RECORDS_CACHE is not None:
        return _RECORDS_CACHE
    cache_file = RESULTS_DIR / "comparison_records.json"
    if cache_file.exists():
        raw = json.loads(cache_file.read_text())
        if raw.get("budgets") == list(BUDGETS) and raw.get("full") == FULL:
            _RECORDS_CACHE = [RunRecord(**r) for r in raw["records"]]
            return _RECORDS_CACHE
    harness = ComparisonHarness(
        systems=default_systems(), budgets=BUDGETS, n_folds=1, seed=0
    )
    _RECORDS_CACHE = harness.run(comparison_datasets())
    payload = {
        "budgets": list(BUDGETS),
        "full": FULL,
        "records": [
            {k: v for k, v in asdict(r).items() if k != "result"}
            for r in _RECORDS_CACHE
        ],
    }
    cache_file.write_text(json.dumps(payload))
    return _RECORDS_CACHE
