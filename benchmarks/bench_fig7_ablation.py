"""Figure 7: ablation study — FLAML vs roundrobin / fulldata / cv on the
paper's three example datasets (MiniBooNE, Dionis, bng_pbc stand-ins),
best-so-far validation error vs wall-clock time."""

from __future__ import annotations

from _common import SCALE, make_case_study_dataset, save_text
from repro.baselines import FLAMLSystem, make_ablation
from repro.bench import SCALED_THRESHOLDS, best_so_far, error_at_time, format_ablation_curves
from repro.metrics import get_metric

# paper's three example datasets (paper-scale stand-ins; see _common)
DATASETS = {
    "MiniBooNE": "1-auc",
    "Dionis": "logloss",
    "bng_pbc": "1-r2",
}
BUDGET = 10.0 * SCALE
KW = dict(init_sample_size=1000, **SCALED_THRESHOLDS)


def run_ablation():
    out = {}
    for name in DATASETS:
        data = make_case_study_dataset(name).shuffled(0)
        metric = get_metric("auto", task=data.task)
        variants = {
            "flaml": FLAMLSystem(**KW),
            "roundrobin": make_ablation("roundrobin", **KW),
            "fulldata": make_ablation("fulldata", cv_instance_threshold=SCALED_THRESHOLDS["cv_instance_threshold"]),
            "cv": make_ablation("cv", init_sample_size=1000),
        }
        out[name] = {
            vname: v.search(data, metric, time_budget=BUDGET, seed=0)
            for vname, v in variants.items()
        }
    return out


def test_fig7_ablation_curves(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    sections = []
    for name, metric_name in DATASETS.items():
        curves = {v: best_so_far(r.trials) for v, r in results[name].items()}
        sections.append(format_ablation_curves(curves, name, metric_name))
    save_text("fig7_ablation.txt", "\n\n".join(sections))

    # reproduction shape: early in the search, full FLAML is at least as
    # good as the fulldata variant on a majority of the three datasets
    # (cheap small-sample trials produce models sooner)
    early_wins = 0
    for name in DATASETS:
        t_early = BUDGET / 6
        flaml_err = error_at_time(results[name]["flaml"].trials, t_early)
        full_err = error_at_time(results[name]["fulldata"].trials, t_early)
        if flaml_err <= full_err * 1.05:
            early_wins += 1
    assert early_wins >= 2, f"FLAML beat fulldata early on only {early_wins}/3"
