"""Figure 8: scaled-score differences between FLAML and its own ablated
variants (rr / fulldata / cv) over a spread of suite datasets."""

from __future__ import annotations

from _common import FULL, SCALE, save_text
from repro.baselines import FLAMLSystem, make_ablation
from repro.bench import (
    SCALED_THRESHOLDS,
    ComparisonHarness,
    format_boxplot_summary,
    summarize_score_differences,
)
from repro.data import suite_names

DATASETS = (
    suite_names()
    if FULL
    else ["blood-transfusion", "phoneme", "segment", "connect-4", "houses", "fried"]
)
BUDGET = 2.0 * SCALE
KW = dict(init_sample_size=250, **SCALED_THRESHOLDS)


def run_suite():
    systems = {
        "FLAML": FLAMLSystem(**KW),
        "rr": make_ablation("roundrobin", **KW),
        "fulldata": make_ablation(
            "fulldata",
            cv_instance_threshold=SCALED_THRESHOLDS["cv_instance_threshold"],
        ),
        "cv": make_ablation("cv", init_sample_size=250),
    }
    harness = ComparisonHarness(systems=systems, budgets=(BUDGET,), n_folds=1, seed=0)
    return harness.run(DATASETS)


def test_fig8_ablation_suite(benchmark):
    records = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    stats = summarize_score_differences(
        records, ref_budget=BUDGET, other_budget=BUDGET
    )
    save_text(
        "fig8_ablation_suite.txt",
        format_boxplot_summary(stats, f"FLAML vs own variants, {BUDGET:g}s"),
    )
    # reproduction shape: removing a strategy component does not help on
    # the median dataset (median difference >= 0 for most variants)
    medians = [st["median"] for st in stats.values()]
    assert sum(m >= -0.005 for m in medians) >= 2
