"""Table 4: selectivity estimation (paper §5.3).

For each of the ten workloads: train a regression model mapping range
queries to log-selectivity with a one-minute-analog budget, and report the
95th-percentile q-error on held-out queries for FLAML, Auto-sklearn-like,
TPOT-like, and the Manual configuration (XGBoost, 16 trees / 16 leaves)
recommended by Dutt et al.
"""

from __future__ import annotations

import numpy as np

from _common import FULL, SCALE, save_text
from repro.baselines import AutoSklearnLike, FLAMLSystem, TPOTLike
from repro.bench import SCALED_THRESHOLDS, fit_final_model
from repro.data import (
    MANUAL_CONFIG,
    SELECTIVITY_DATASETS,
    load_selectivity,
    selectivity_to_dataset,
)
from repro.learners import XGBLikeRegressor
from repro.metrics import get_metric, q_error_percentile

BUDGET = 3.0 * SCALE
N_ROWS = 8_000 if not FULL else 20_000
N_QUERIES = 1_200 if not FULL else 2_000


def _qerr(model, test_X, true_sel):
    pred = np.exp(model.predict(test_X))
    return q_error_percentile(true_sel, pred, 95.0)


def run_table4():
    metric = get_metric("mse")
    systems = {
        "FLAML": FLAMLSystem(init_sample_size=250, **SCALED_THRESHOLDS),
        "Auto-sk.": AutoSklearnLike(**SCALED_THRESHOLDS),
        "TPOT": TPOTLike(**SCALED_THRESHOLDS),
    }
    results: dict[str, dict[str, float]] = {}
    for name in SELECTIVITY_DATASETS:
        wl = load_selectivity(name, n_rows=N_ROWS, n_queries=N_QUERIES)
        ds = selectivity_to_dataset(wl)
        # 80/20 query train/test split
        n_tr = int(0.8 * ds.n)
        train, test = ds.head(n_tr), ds.subset(np.arange(n_tr, ds.n))
        true_sel = np.exp(test.y)
        row: dict[str, float] = {}
        train_sh = train.shuffled(0)
        for sys_name, system in systems.items():
            res = system.search(train_sh, metric, time_budget=BUDGET, seed=0)
            model = fit_final_model(train_sh, res, seed=0, time_limit=BUDGET)
            row[sys_name] = (
                _qerr(model, test.X, true_sel) if model is not None else float("inf")
            )
        manual = XGBLikeRegressor(**MANUAL_CONFIG, seed=0).fit(train.X, train.y)
        row["Manual"] = _qerr(manual, test.X, true_sel)
        results[name] = row
    return results


def test_table4_selectivity(benchmark):
    from repro.bench import format_qerror_table

    results = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    save_text("table4_selectivity.txt", format_qerror_table(results))
    # Reproduction shape: FLAML beats the Manual configuration on a
    # majority of workloads (the paper's headline for §5.3), and across
    # the ten workloads its geometric-mean q-error is within a small
    # factor of every AutoML baseline's (the paper's clean sweep needs
    # the 1-minute/LightGBM-speed regime).
    names = list(results)
    flaml_vs_manual = sum(
        results[n]["FLAML"] <= results[n]["Manual"] * 1.05 for n in names
    )
    assert flaml_vs_manual >= len(names) / 2, f"vs Manual: {flaml_vs_manual}/10"

    def geo_mean(method):
        vals = [results[n][method] for n in names]
        return float(np.exp(np.mean(np.log(np.maximum(vals, 1.0)))))

    g_flaml = geo_mean("FLAML")
    for baseline in ("Auto-sk.", "TPOT", "Manual"):
        assert g_flaml <= geo_mean(baseline) * 1.25, (
            f"FLAML geo-mean {g_flaml:.2f} vs {baseline} {geo_mean(baseline):.2f}"
        )
