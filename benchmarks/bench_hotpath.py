"""Hot-path benchmark: trials/sec across the trial-path optimisation axes.

Measures the **trial-execution** hot path on a fixed, realistic trial
workload.  Per dataset:

1. one fixed-iteration FLAML search runs on the serial backend purely
   to *record* the TrialSpecs it proposes — the representative mix of
   learners, configs, sample sizes and resampling a real search
   executes;
2. that exact spec list is replayed three times — ``legacy`` (binned
   plane off, native kernels off: the pre-PR-4 trial path), ``plane``
   (plane on, kernels off) and ``native`` (plane on, compiled kernels
   on: the default path) — and trials/sec is reported for each.

The replays must produce **identical per-trial error sequences**
(asserted): plane and kernels are pure reuse / bitwise-equal rewrites,
so the only thing allowed to change is wall-clock.

Why replay rather than time the search loop itself?  FLAML's proposer
is cost-aware by design (ECI steers learner choice and the sample-size
schedule by observed trial *cost*), so making trials faster changes
what a live search proposes — two live runs would execute different
trials and their wall-clocks would not be comparable.  Replaying pins
the workload.

Methodology notes:

* each replay runs against a fresh copy of the dataset, so the plane
  run starts cold and fills its caches inside the measured window —
  the reported speedup includes the cache-build cost;
* the legacy replay goes first, so OS/CPU warm-up favours the
  *baseline*;
* trial time limits in the recorded specs are effectively infinite
  (the recording search gets an unbounded budget), so no trial is
  clock-truncated in either replay.

Results are printed and written to ``BENCH_hotpath.json`` at the repo
root (committed — the perf record future PRs compare against).  The CI
perf-smoke job runs a tiny-budget version and fails only on gross
slowdowns (``--fail-below``).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.controller import SearchController
from repro.core.registry import DEFAULT_LEARNERS
from repro.data import Dataset, load_dataset, set_plane_enabled
from repro.exec.serial import SerialExecutor
from repro.exec.base import run_spec
from repro.metrics.registry import default_metric_name, get_metric
from repro.native import native_available, native_enabled, set_native_enabled

#: one small suite dataset per task type plus one large-n regression
#: set — large enough that trials do real work, small enough for a
#: 1-core run of 3 x max_iters trials each
DEFAULT_DATASETS = ["blood-transfusion", "vehicle", "houses", "bng_pbc"]

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


class RecordingExecutor(SerialExecutor):
    """Serial executor that records every spec it actually executes."""

    def __init__(self, data):
        super().__init__(data)
        self.specs = []

    def submit(self, spec):
        self.specs.append(spec)
        return super().submit(spec)


def collect_specs(data, max_iters: int, seed: int):
    """Record the trial specs a real fixed-iteration search executes."""
    learners = {
        n: s for n, s in DEFAULT_LEARNERS.items() if s.supports(data.task)
    }
    metric = get_metric(default_metric_name(data.task))
    recorder = RecordingExecutor(data)
    SearchController(
        data,
        learners,
        metric,
        time_budget=1e9,  # never the binding constraint: max_iters is
        max_iters=max_iters,
        seed=seed,
        init_sample_size=128,
        executor=recorder,
    ).run()
    return recorder.specs


#: replay modes: (binned plane, native kernels); ``native`` is the
#: system default path, ``legacy`` the pre-PR-4 one
MODES = {
    "legacy": (False, False),
    "plane": (True, False),
    "native": (True, True),
}


def replay(data, specs, plane: bool, native: bool):
    """Execute ``specs`` against a fresh dataset copy; (wall, errors).

    The copy guarantees a cold plane (planes are keyed by dataset
    object identity), so cache-build cost lands inside the timing.
    """
    clone = Dataset(data.name, data.X.copy(), data.y.copy(), data.task,
                    data.categorical)
    prev_plane = set_plane_enabled(plane)
    prev_native = set_native_enabled(native)
    try:
        start = time.perf_counter()
        errors = [run_spec(clone, spec).error for spec in specs]
        wall = time.perf_counter() - start
    finally:
        set_plane_enabled(prev_plane)
        set_native_enabled(prev_native)
    return wall, errors


def bench_dataset(name: str, max_iters: int, seed: int, repeats: int = 1,
                  modes=tuple(MODES)) -> dict:
    """Record a search's specs, then time one replay per mode.

    With ``repeats > 1`` each mode keeps its best (minimum) wall — the
    standard defence against scheduler noise on a shared 1-core box.
    The least-optimised mode replays first, so OS/CPU warm-up favours
    the *baseline*.
    """
    data = load_dataset(name).shuffled(seed)
    specs = collect_specs(data, max_iters, seed)
    walls, errors = {}, {}
    for mode in modes:
        plane, native = MODES[mode]
        walls[mode], errors[mode] = replay(data, specs, plane, native)
    for _ in range(repeats - 1):
        for mode in modes:
            plane, native = MODES[mode]
            walls[mode] = min(walls[mode],
                              replay(data, specs, plane, native)[0])
    base = errors[modes[0]]
    identical = all(errors[m] == base for m in modes)
    out = {
        "task": data.task,
        "n": data.n,
        "d": data.d,
        "trials": len(specs),
        "errors_identical": identical,
    }
    for mode in modes:
        out[f"wall_{mode}_s"] = round(walls[mode], 4)
        out[f"trials_per_sec_{mode}"] = round(len(specs) / walls[mode], 3)
    if "plane" in walls:
        out["speedup_plane"] = round(walls["legacy"] / walls["plane"], 3)
    if "native" in walls:
        # full-path speedup vs the pre-PR-4 trial path, and the
        # kernels' own contribution on top of the plane
        out["speedup"] = round(walls["legacy"] / walls["native"], 3)
        out["speedup_kernel"] = round(walls["plane"] / walls["native"], 3)
    else:
        out["speedup"] = out.get("speedup_plane")
    return out


def traced_replay(name: str, max_iters: int, seed: int, repeats: int,
                  mode: str, trace_path: str):
    """Replay one dataset's workload untraced, then with span tracing on.

    The first traced replay tees its spans to ``trace_path`` (JSONL);
    later repeats keep tracing on but ring-only, so the min-wall
    comparison measures the tracing overhead itself, not sink I/O.
    Returns ``(wall_off, wall_on, errors_identical, n_trials)``.
    """
    from repro.obs.trace import clear_spans, set_trace_sink, set_tracing

    data = load_dataset(name).shuffled(seed)
    specs = collect_specs(data, max_iters, seed)
    plane, native = MODES[mode]
    wall_off, base_errors = replay(data, specs, plane, native)
    for _ in range(repeats - 1):
        wall_off = min(wall_off, replay(data, specs, plane, native)[0])
    prev_on = set_tracing(True)
    prev_sink = set_trace_sink(trace_path)
    try:
        wall_on, traced_errors = replay(data, specs, plane, native)
        set_trace_sink(prev_sink)
        for _ in range(repeats - 1):
            wall_on = min(wall_on, replay(data, specs, plane, native)[0])
    finally:
        set_tracing(prev_on)
        set_trace_sink(prev_sink)
        clear_spans()
    return wall_off, wall_on, traced_errors == base_errors, len(specs)


# ------------------------------------------------------------- large-n --
#: default row counts of the million-row tier (``--large-n``)
LARGE_N_DEFAULT_ROWS = (100_000, 1_000_000)


def make_large_n_dataset(n: int, seed: int = 0) -> Dataset:
    """Synthetic regression at ``n`` rows: 8 dense Friedman features plus
    a 10-category one-hot block, so the tier exercises both the sketch
    grid and exclusive feature bundling.  Generated directly — the
    curated suite caps rows at 8000 by design."""
    from repro.data import OneHotEncoder, make_regression

    base = make_regression(n, 8, seed=seed, name=f"large-{n}")
    rng = np.random.default_rng(seed + 1)
    cat = rng.integers(0, 10, size=n).astype(np.float64)
    y = base.y + 0.5 * cat
    raw = np.column_stack([base.X, cat])
    X = OneHotEncoder(columns=(8,)).fit_transform(raw)
    return Dataset(f"large-{n}", X, y, "regression")


def large_n_specs(data: Dataset, seed: int = 0) -> list:
    """A hand-built trial ladder standing in for a recorded search.

    Recording a real search at 10^6 rows would take longer than the
    bench itself, so the tier replays the shape the controller actually
    produces: a geometric sample-size schedule (s, 4s, 16s, ..., 0.9n)
    across two histogram-learner families at their default ``max_bin``.
    """
    from repro.exec.base import TrialSpec

    metric = get_metric(default_metric_name(data.task))
    cap = int(data.n * 0.9)
    ladder, s = [], 16_384
    while s < cap:
        ladder.append(s)
        s *= 4
    ladder.append(cap)
    families = [
        ("lgbm", {"tree_num": 8, "leaf_num": 16, "learning_rate": 0.2}),
        ("rf", {"tree_num": 6, "max_depth": 8, "min_samples_leaf": 16}),
    ]
    specs = []
    for size in ladder:
        for lname, config in families:
            specs.append(TrialSpec(
                learner=lname,
                estimator_cls=DEFAULT_LEARNERS[lname].estimator_cls(data.task),
                config=config,
                sample_size=size,
                resampling="holdout",
                metric=metric,
                seed=seed,
            ))
    return specs


def _counter_total(snap: dict, name: str) -> float:
    fam = snap.get(name)
    if not fam:
        return 0.0
    return float(sum(row["value"] for row in fam["series"]))


def _peak_rss_bytes() -> int:
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def bench_large_n_rows(n: int, seed: int, modes) -> dict:
    """One row-count of the large-n tier.

    Per mode (``plane``/``native`` — the legacy path is out of scope
    here: above the exact-binning limit the sketch grid is an intended
    semantic change, so a plane-off replay produces *different* errors
    by design and would be timing a different computation):

    * rows/s — training rows consumed per second over the replay
      (sum of trial sample sizes / wall);
    * plane_bytes — the shared plane's cached-code footprint after the
      replay (codes caches + prefix buffers);
    * base_rows_binned — the schedule-proof counter: rows actually
      pushed through the base binner.  A geometric schedule must bin
      O(max sample) rows per grid, not O(sum of samples).

    Then the worker-shipping comparison: the same dataset exported to a
    process worker as pre-binned codes vs float64, with one identical
    trial run against each.  The codes plane must cut shipped bytes by
    >= 3x and leave the trial error untouched — both asserted.
    """
    from repro.data import plane_for
    from repro.exec.process import ProcessExecutor
    from repro.obs.metrics import REGISTRY

    data = make_large_n_dataset(n, seed)
    specs = large_n_specs(data, seed)
    rows_requested = sum(int(s.sample_size) for s in specs)
    out = {
        "n": data.n,
        "d": data.d,
        "trials": len(specs),
        "rows_requested": rows_requested,
        "modes": {},
    }
    errors = {}
    for mode in modes:
        plane_on, native_on = MODES[mode]
        clone = Dataset(data.name, data.X.copy(), data.y.copy(), data.task,
                        data.categorical)
        prev_plane = set_plane_enabled(plane_on)
        prev_native = set_native_enabled(native_on)
        before = REGISTRY.snapshot()
        try:
            start = time.perf_counter()
            errors[mode] = [run_spec(clone, spec).error for spec in specs]
            wall = time.perf_counter() - start
        finally:
            set_plane_enabled(prev_plane)
            set_native_enabled(prev_native)
        after = REGISTRY.snapshot()
        stats = plane_for(clone).stats()
        base_rows = _counter_total(
            after, "repro_plane_base_rows_binned_total"
        ) - _counter_total(before, "repro_plane_base_rows_binned_total")
        out["modes"][mode] = {
            "wall_s": round(wall, 4),
            "rows_per_sec": round(rows_requested / wall, 1),
            "plane_bytes": int(stats["plane_bytes"]),
            "plane_mb": round(stats["plane_bytes"] / 2**20, 2),
            "base_rows_binned": int(base_rows),
            "bundles": int(stats["bundles"]),
            "peak_rss_mb": round(_peak_rss_bytes() / 2**20, 1),
        }
        assert np.isfinite(errors[mode]).all(), f"{mode}: non-finite errors"
    base_mode = modes[0]
    out["errors_identical"] = all(
        errors[m] == errors[base_mode] for m in modes
    )
    assert out["errors_identical"], (
        f"sketch-path modes disagree at n={n}: "
        + ", ".join(f"{m}={errors[m]}" for m in modes)
    )

    # worker-shipping comparison: codes vs float64 over shm, same trial
    ship_spec = specs[min(2, len(specs) - 1)]
    ship = {}
    for label, ship_codes in (("codes", True), ("float", False)):
        ex = ProcessExecutor(data, n_workers=1, ship_codes=ship_codes)
        try:
            trial = ex.submit(ship_spec).result(timeout=600)
            assert trial.failure is None, f"{label} worker: {trial.failure}"
            ship[label] = {
                "shipped_bytes": int(ex.shipped_bytes),
                "shipped_mb": round(ex.shipped_bytes / 2**20, 2),
                "error": float(trial.error),
            }
        finally:
            ex.shutdown()
    cut = ship["float"]["shipped_bytes"] / ship["codes"]["shipped_bytes"]
    out["ship"] = {
        "codes_mb": ship["codes"]["shipped_mb"],
        "float_mb": ship["float"]["shipped_mb"],
        "cut": round(cut, 2),
        "errors_equal": ship["codes"]["error"] == ship["float"]["error"],
    }
    assert cut >= 3.0, f"code shipping cut {cut:.2f}x < 3x at n={n}"
    assert out["ship"]["errors_equal"], (
        f"codes vs float worker errors differ at n={n}: "
        f"{ship['codes']['error']} != {ship['float']['error']}"
    )
    return out


def run_large_n(args, modes) -> dict:
    """The ``--large-n`` tier: bench each row count, print the table,
    merge the results into the existing BENCH JSON under ``large_n``."""
    tier = {
        "methodology": (
            "synthetic regression (8 dense features + 10-category "
            "one-hot block), hand-built geometric sample-size ladder "
            "replayed serially per mode. Modes share the sketch grid "
            "and must produce identical per-trial errors (asserted); "
            "the legacy plane-off path is intentionally absent - above "
            "EXACT_ROW_LIMIT the sketch grid is a semantic change. "
            "rows/s = sum of trial sample sizes / wall. The ship "
            "comparison exports the dataset to one process worker as "
            "pre-binned codes vs float64 and runs the same trial "
            "against each; 'cut' is float/codes shipped bytes "
            "(>= 3x asserted, errors equal asserted)."
        ),
        "modes": list(modes),
        "rows": {},
    }
    header = (f"{'n':>9}  {'trials':>6}  "
              + "  ".join(f"{m + ' rows/s':>14}" for m in modes)
              + f"  {'plane MB':>9}  {'ship cut':>8}  {'peak RSS MB':>11}")
    print("\nlarge-n tier")
    print(header)
    for n in args.large_rows:
        r = bench_large_n_rows(int(n), args.seed, modes)
        tier["rows"][str(n)] = r
        rates = "  ".join(
            f"{r['modes'][m]['rows_per_sec']:>14,.0f}" for m in modes
        )
        last = r["modes"][modes[-1]]
        print(f"{r['n']:>9}  {r['trials']:>6}  {rates}  "
              f"{last['plane_mb']:>9.1f}  {r['ship']['cut']:>7.2f}x  "
              f"{last['peak_rss_mb']:>11.1f}")
    tier["peak_rss_mb"] = round(_peak_rss_bytes() / 2**20, 1)
    if args.large_mem_limit_mb is not None:
        if tier["peak_rss_mb"] > args.large_mem_limit_mb:
            raise SystemExit(
                f"FAIL: peak RSS {tier['peak_rss_mb']} MB > "
                f"--large-mem-limit-mb {args.large_mem_limit_mb}"
            )
        print(f"peak RSS {tier['peak_rss_mb']} MB <= "
              f"{args.large_mem_limit_mb} MB ceiling")
    return tier


def main(argv=None) -> int:
    p = argparse.ArgumentParser(
        prog="python benchmarks/bench_hotpath.py",
        description="Measure trials/sec with the binned-data plane off vs on.",
    )
    p.add_argument("--datasets", nargs="*", default=DEFAULT_DATASETS)
    p.add_argument("--max-iters", type=int, default=40,
                   help="trials per search (default 40)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--repeats", type=int, default=2,
                   help="replays per mode, best wall kept (default 2)")
    p.add_argument("--out", type=Path, default=OUT_PATH,
                   help=f"output JSON (default {OUT_PATH})")
    p.add_argument("--fail-below", type=float, default=None, metavar="X",
                   help="exit 1 if aggregate speedup < X (CI smoke uses "
                        "0.33: fail only on gross slowdowns)")
    p.add_argument("--trace", default=None, metavar="JSONL",
                   help="also run a traced replay of the default mode, "
                        "writing its spans to this JSONL file and printing "
                        "the per-phase attribution table")
    p.add_argument("--trace-overhead", type=float, default=None, metavar="X",
                   help="exit 1 if the traced replay is more than X "
                        "(fraction, e.g. 0.05) slower than untraced "
                        "(requires --trace)")
    p.add_argument("--large-n", action="store_true",
                   help="run the million-row tier instead of the suite "
                        "replay: rows/s + memory footprint at --large-rows, "
                        "plus the codes-vs-float worker shipping "
                        "comparison; merges into the BENCH JSON under "
                        "'large_n'")
    p.add_argument("--large-rows", nargs="*", type=int,
                   default=list(LARGE_N_DEFAULT_ROWS),
                   help="row counts for --large-n "
                        f"(default {list(LARGE_N_DEFAULT_ROWS)})")
    p.add_argument("--large-mem-limit-mb", type=float, default=None,
                   metavar="MB",
                   help="with --large-n: exit 1 if process peak RSS "
                        "exceeds this many MB (the CI memory ceiling)")
    args = p.parse_args(argv)
    if args.trace_overhead is not None and args.trace is None:
        p.error("--trace-overhead requires --trace")

    if args.large_n:
        modes = ("plane", "native") if native_enabled() else ("plane",)
        tier = run_large_n(args, modes)
        record = {}
        if args.out.exists():
            record = json.loads(args.out.read_text())
        record["large_n"] = tier
        args.out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"[saved to {args.out}]")
        return 0

    # compile the kernels before any timed window (build is cached; a
    # box without a compiler — or REPRO_NATIVE=0 — honestly benches the
    # numpy-only modes)
    modes = tuple(MODES) if native_enabled() else ("legacy", "plane")
    if "native" not in modes:
        print("note: native kernels disabled or unavailable; "
              "benching legacy/plane only")

    per_dataset = {}
    for name in args.datasets:
        per_dataset[name] = bench_dataset(
            name, args.max_iters, args.seed, repeats=max(1, args.repeats),
            modes=modes,
        )
        r = per_dataset[name]
        rates = "  ".join(
            f"{m} {r[f'trials_per_sec_{m}']:>7.2f}/s" for m in modes
        )
        print(f"{name:<20} {r['trials']:>3} trials  {rates}  "
              f"speedup {r['speedup']:.2f}x  "
              f"errors_identical={r['errors_identical']}")

    total_trials = sum(r["trials"] for r in per_dataset.values())
    wall = {
        m: sum(r[f"wall_{m}_s"] for r in per_dataset.values())
        for m in modes
    }
    aggregate = {
        "trials": total_trials,
        "errors_identical": all(
            r["errors_identical"] for r in per_dataset.values()
        ),
    }
    for m in modes:
        aggregate[f"trials_per_sec_{m}"] = round(total_trials / wall[m], 3)
    aggregate["speedup_plane"] = round(wall["legacy"] / wall["plane"], 3)
    if "native" in modes:
        aggregate["speedup"] = round(wall["legacy"] / wall["native"], 3)
        aggregate["speedup_kernel"] = round(
            wall["plane"] / wall["native"], 3
        )
    else:
        aggregate["speedup"] = aggregate["speedup_plane"]

    trace_record = None
    if args.trace:
        from repro.obs.summarize import summarize_file

        mode = "native" if "native" in modes else "plane"
        Path(args.trace).write_text("")  # one run per trace file
        t_off = t_on = 0.0
        t_identical = True
        t_trials = 0
        for name in args.datasets:
            off, on, same, n = traced_replay(
                name, args.max_iters, args.seed, max(1, args.repeats),
                mode, args.trace,
            )
            t_off += off
            t_on += on
            t_identical = t_identical and same
            t_trials += n
        overhead = (t_on / t_off - 1.0) if t_off else 0.0
        att, table = summarize_file(args.trace)
        print(f"\ntraced replay ({mode}, {t_trials} trials): tracing "
              f"overhead {100 * overhead:+.1f}% (untraced {t_off:.3f}s -> "
              f"traced {t_on:.3f}s), errors_identical={t_identical}, "
              f"phase coverage {100 * att['coverage']:.1f}%")
        print(table)
        trace_record = {
            "mode": mode,
            "trace_file": str(args.trace),
            "trials": t_trials,
            "wall_untraced_s": round(t_off, 4),
            "wall_traced_s": round(t_on, 4),
            "overhead": round(overhead, 4),
            "errors_identical": t_identical,
            "coverage": round(att["coverage"], 4),
            "phases": {
                phase: round(row["seconds"], 4)
                for phase, row in att["phases"].items()
            },
        }

    record = {
        "benchmark": "hotpath",
        "created_unix": int(time.time()),
        "methodology": (
            "fixed spec workload recorded from a real search, replayed "
            "against a cold dataset copy per mode; legacy = binned-data "
            "plane AND native kernels off (the pre-PR-4 trial path); "
            "plane = plane on, kernels off; native = plane + compiled "
            "kernels (the default path). 'speedup' is legacy->native "
            "(full trial path), 'speedup_kernel' is plane->native (the "
            "C kernels' own contribution). All modes must produce "
            "identical per-trial error sequences - the kernels are "
            "bitwise-equal rewrites, not approximations."
        ),
        "config": {
            "datasets": list(args.datasets),
            "max_iters": args.max_iters,
            "seed": args.seed,
            "repeats": max(1, args.repeats),
            "backend": "serial",
            "modes": list(modes),
            "native_available": native_available(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "datasets": per_dataset,
        "aggregate": aggregate,
    }
    if trace_record is not None:
        record["trace"] = trace_record
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    rates = " -> ".join(
        f"{aggregate[f'trials_per_sec_{m}']:.2f}" for m in modes
    )
    print(f"aggregate speedup {aggregate['speedup']:.2f}x "
          f"({rates} trials/s"
          + (f", kernel alone {aggregate['speedup_kernel']:.2f}x"
             if "speedup_kernel" in aggregate else "")
          + f"), errors_identical={aggregate['errors_identical']}")
    print(f"[saved to {args.out}]")
    if not aggregate["errors_identical"]:
        print("FAIL: an optimised mode changed trial errors")
        return 1
    if args.fail_below is not None and aggregate["speedup"] < args.fail_below:
        print(f"FAIL: speedup {aggregate['speedup']} < {args.fail_below}")
        return 1
    if trace_record is not None and not trace_record["errors_identical"]:
        print("FAIL: the traced replay changed trial errors")
        return 1
    if (args.trace_overhead is not None
            and trace_record["overhead"] > args.trace_overhead):
        print(f"FAIL: tracing overhead {trace_record['overhead']:.4f} > "
              f"{args.trace_overhead}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
