"""Hot-path benchmark: trials/sec with the shared binned-data plane off/on.

Measures the **trial-execution** hot path on a fixed, realistic trial
workload.  Per dataset:

1. one fixed-iteration FLAML search runs on the serial backend purely
   to *record* the TrialSpecs it proposes — the representative mix of
   learners, configs, sample sizes and resampling a real search
   executes;
2. that exact spec list is replayed twice — once with the binned-data
   plane disabled (the legacy path: every trial re-bins its training
   slice and re-computes its split indices) and once enabled — and
   trials/sec is reported for both.

The replays must produce **identical per-trial error sequences**
(asserted): the plane is pure reuse, so the only thing allowed to
change is wall-clock.

Why replay rather than time the search loop itself?  FLAML's proposer
is cost-aware by design (ECI steers learner choice and the sample-size
schedule by observed trial *cost*), so making trials faster changes
what a live search proposes — two live runs would execute different
trials and their wall-clocks would not be comparable.  Replaying pins
the workload.

Methodology notes:

* each replay runs against a fresh copy of the dataset, so the plane
  run starts cold and fills its caches inside the measured window —
  the reported speedup includes the cache-build cost;
* the legacy replay goes first, so OS/CPU warm-up favours the
  *baseline*;
* trial time limits in the recorded specs are effectively infinite
  (the recording search gets an unbounded budget), so no trial is
  clock-truncated in either replay.

Results are printed and written to ``BENCH_hotpath.json`` at the repo
root (committed — the perf record future PRs compare against).  The CI
perf-smoke job runs a tiny-budget version and fails only on gross
slowdowns (``--fail-below``).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.controller import SearchController
from repro.core.registry import DEFAULT_LEARNERS
from repro.data import Dataset, load_dataset, set_plane_enabled
from repro.exec.serial import SerialExecutor
from repro.exec.base import run_spec
from repro.metrics.registry import default_metric_name, get_metric

#: one small suite dataset per task type plus one large-n regression
#: set — large enough that trials do real work, small enough for a
#: 1-core run of 3 x max_iters trials each
DEFAULT_DATASETS = ["blood-transfusion", "vehicle", "houses", "bng_pbc"]

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


class RecordingExecutor(SerialExecutor):
    """Serial executor that records every spec it actually executes."""

    def __init__(self, data):
        super().__init__(data)
        self.specs = []

    def submit(self, spec):
        self.specs.append(spec)
        return super().submit(spec)


def collect_specs(data, max_iters: int, seed: int):
    """Record the trial specs a real fixed-iteration search executes."""
    learners = {
        n: s for n, s in DEFAULT_LEARNERS.items() if s.supports(data.task)
    }
    metric = get_metric(default_metric_name(data.task))
    recorder = RecordingExecutor(data)
    SearchController(
        data,
        learners,
        metric,
        time_budget=1e9,  # never the binding constraint: max_iters is
        max_iters=max_iters,
        seed=seed,
        init_sample_size=128,
        executor=recorder,
    ).run()
    return recorder.specs


def replay(data, specs, plane: bool):
    """Execute ``specs`` against a fresh dataset copy; (wall, errors).

    The copy guarantees a cold plane (planes are keyed by dataset
    object identity), so cache-build cost lands inside the timing.
    """
    clone = Dataset(data.name, data.X.copy(), data.y.copy(), data.task,
                    data.categorical)
    prev = set_plane_enabled(plane)
    try:
        start = time.perf_counter()
        errors = [run_spec(clone, spec).error for spec in specs]
        wall = time.perf_counter() - start
    finally:
        set_plane_enabled(prev)
    return wall, errors


def bench_dataset(name: str, max_iters: int, seed: int,
                  repeats: int = 1) -> dict:
    """Record a search's specs, then time legacy vs plane replays.

    With ``repeats > 1`` each mode keeps its best (minimum) wall — the
    standard defence against scheduler noise on a shared 1-core box.
    """
    data = load_dataset(name).shuffled(seed)
    specs = collect_specs(data, max_iters, seed)
    wall_legacy, errors_legacy = replay(data, specs, plane=False)
    wall_plane, errors_plane = replay(data, specs, plane=True)
    for _ in range(repeats - 1):
        wall_legacy = min(wall_legacy, replay(data, specs, plane=False)[0])
        wall_plane = min(wall_plane, replay(data, specs, plane=True)[0])
    identical = errors_legacy == errors_plane
    return {
        "task": data.task,
        "n": data.n,
        "d": data.d,
        "trials": len(specs),
        "wall_legacy_s": round(wall_legacy, 4),
        "wall_plane_s": round(wall_plane, 4),
        "trials_per_sec_legacy": round(len(specs) / wall_legacy, 3),
        "trials_per_sec_plane": round(len(specs) / wall_plane, 3),
        "speedup": round(wall_legacy / wall_plane, 3),
        "errors_identical": identical,
    }


def main(argv=None) -> int:
    p = argparse.ArgumentParser(
        prog="python benchmarks/bench_hotpath.py",
        description="Measure trials/sec with the binned-data plane off vs on.",
    )
    p.add_argument("--datasets", nargs="*", default=DEFAULT_DATASETS)
    p.add_argument("--max-iters", type=int, default=40,
                   help="trials per search (default 40)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--repeats", type=int, default=2,
                   help="replays per mode, best wall kept (default 2)")
    p.add_argument("--out", type=Path, default=OUT_PATH,
                   help=f"output JSON (default {OUT_PATH})")
    p.add_argument("--fail-below", type=float, default=None, metavar="X",
                   help="exit 1 if aggregate speedup < X (CI smoke uses "
                        "0.33: fail only on gross slowdowns)")
    args = p.parse_args(argv)

    per_dataset = {}
    for name in args.datasets:
        per_dataset[name] = bench_dataset(
            name, args.max_iters, args.seed, repeats=max(1, args.repeats)
        )
        r = per_dataset[name]
        print(f"{name:<20} {r['trials']:>3} trials  "
              f"legacy {r['trials_per_sec_legacy']:>7.2f}/s  "
              f"plane {r['trials_per_sec_plane']:>7.2f}/s  "
              f"speedup {r['speedup']:.2f}x  "
              f"errors_identical={r['errors_identical']}")

    total_trials = sum(r["trials"] for r in per_dataset.values())
    wall_legacy = sum(r["wall_legacy_s"] for r in per_dataset.values())
    wall_plane = sum(r["wall_plane_s"] for r in per_dataset.values())
    aggregate = {
        "trials": total_trials,
        "trials_per_sec_legacy": round(total_trials / wall_legacy, 3),
        "trials_per_sec_plane": round(total_trials / wall_plane, 3),
        "speedup": round(wall_legacy / wall_plane, 3),
        "errors_identical": all(
            r["errors_identical"] for r in per_dataset.values()
        ),
    }
    record = {
        "benchmark": "hotpath",
        "created_unix": int(time.time()),
        "methodology": (
            "fixed spec workload recorded from a real search, replayed "
            "against a cold dataset copy per mode; legacy = shared "
            "binned-data plane disabled (per-trial binning + split "
            "computation, the pre-refactor trial path); plane = default "
            "path. Both modes share this PR's grower optimisations "
            "(vectorised oblivious trees, fused single-bincount "
            "histograms, sibling subtraction), so the end-to-end speedup "
            "vs the pre-PR commit is larger than the plane column alone "
            "- see README 'Performance'."
        ),
        "config": {
            "datasets": list(args.datasets),
            "max_iters": args.max_iters,
            "seed": args.seed,
            "repeats": max(1, args.repeats),
            "backend": "serial",
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "datasets": per_dataset,
        "aggregate": aggregate,
    }
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"aggregate speedup {aggregate['speedup']:.2f}x "
          f"({aggregate['trials_per_sec_legacy']:.2f} -> "
          f"{aggregate['trials_per_sec_plane']:.2f} trials/s), "
          f"errors_identical={aggregate['errors_identical']}")
    print(f"[saved to {args.out}]")
    if not aggregate["errors_identical"]:
        print("FAIL: plane changed trial errors")
        return 1
    if args.fail_below is not None and aggregate["speedup"] < args.fail_below:
        print(f"FAIL: speedup {aggregate['speedup']} < {args.fail_below}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
