"""Design-choice ablations beyond the paper's Figure 7 (DESIGN.md §4).

FLAML's §4.2 argues for three specific design decisions; each gets an
ablated variant here:

* *randomised* ECI sampling (Property 3 FairChance) vs deterministic
  argmin-ECI;
* low-cost initialisation (Table 5 bold values) vs random FLOW2 starts;
* sample-growth factor c=2 (the paper's choice) vs c=4;
* the linear ECI₂ assumption vs the fitted cost-vs-sample-size model
  (the refinement §4.2 suggests "when the complexity of the training
  procedure is known with respect to sample size").
"""

from __future__ import annotations

from _common import SCALE, make_case_study_dataset, save_text
from repro.baselines import FLAMLSystem
from repro.bench import SCALED_THRESHOLDS, best_so_far, format_ablation_curves
from repro.metrics import get_metric

BUDGET = 8.0 * SCALE
KW = dict(init_sample_size=1000, **SCALED_THRESHOLDS)

VARIANTS = {
    "flaml": dict(),
    "argmin-eci": dict(learner_selection="eci-argmin"),
    "random-init": dict(random_init=True),
    "c=4": dict(sample_growth=4.0),
    "fitted-cost": dict(fitted_cost_model=True),
}


def run_design_ablation():
    data = make_case_study_dataset("adult-large").shuffled(0)
    metric = get_metric("auto", task=data.task)
    out = {}
    for name, overrides in VARIANTS.items():
        system = FLAMLSystem(**{**KW, **overrides})
        out[name] = system.search(data, metric, time_budget=BUDGET, seed=0)
    return out


def test_design_ablations(benchmark):
    results = benchmark.pedantic(run_design_ablation, rounds=1, iterations=1)
    curves = {name: best_so_far(r.trials) for name, r in results.items()}
    text = format_ablation_curves(curves, "adult-large (design choices)", "1-auc")
    lines = [text, "", "final best error per variant:"]
    for name, r in results.items():
        lines.append(f"  {name:<12} {r.best_error:.4f}  ({r.n_trials} trials)")
    save_text("ablation_design.txt", "\n".join(lines))

    # shape: the full design is at least competitive with every ablation
    flaml_final = results["flaml"].best_error
    others = [n for n in results if n != "flaml"]
    beats = sum(flaml_final <= results[n].best_error * 1.10 for n in others)
    assert beats >= len(others) - 1, (
        f"full FLAML competitive with only {beats}/{len(others)} variants"
    )
    # random-init must start from a more expensive/less reliable region:
    # its first trial error is typically no better than the low-cost init's
    assert results["flaml"].trials[0].cost <= results["random-init"].trials[0].cost * 5
