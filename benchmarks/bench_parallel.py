"""Appendix extension bench: parallel search threads (virtual workers).

The appendix sketches FLAML's parallel mode: whenever a resource is free,
sample another learner by ECI (possibly a second thread of the same
learner from a different starting point); feedback becomes visible when a
trial finishes.  ``repro.core.parallel`` simulates this with virtual
workers (DESIGN.md §2 substitution: multi-core hardware → virtual-time
scheduler over the identical proposer logic).

This bench runs the same search with 1 / 2 / 4 virtual workers on a
paper-scale task and reports anytime curves in *virtual wall-clock* time.
Shape claims:

* more workers reach any fixed error level no later (virtual speedup);
* the anytime average error over the virtual budget does not degrade;
* worker count never changes the *kind* of configs searched (the spaces
  and proposers are shared logic), only their timing.
"""

from __future__ import annotations

from _common import SCALE, make_case_study_dataset, save_text
from repro.bench import (
    SCALED_THRESHOLDS,
    anytime_average_error,
    best_so_far,
    format_ablation_curves,
    time_to_error,
)
from repro.core.parallel import ParallelSearchController
from repro.core.registry import DEFAULT_LEARNERS
from repro.metrics import get_metric

VIRTUAL_BUDGET = 6.0 * SCALE
WORKERS = (1, 2, 4)


def run_parallel_sweep():
    data = make_case_study_dataset("adult-large").shuffled(0)
    metric = get_metric("auto", task=data.task)
    learners = {
        n: DEFAULT_LEARNERS[n] for n in ("lgbm", "xgboost", "rf")
    }
    out = {}
    for w in WORKERS:
        controller = ParallelSearchController(
            data, learners, metric,
            time_budget=VIRTUAL_BUDGET, n_workers=w, seed=0,
            init_sample_size=1000, max_trials=200,
            **SCALED_THRESHOLDS,
        )
        out[w] = controller.run()
    return out


def test_parallel_workers(benchmark):
    results = benchmark.pedantic(run_parallel_sweep, rounds=1, iterations=1)
    curves = {f"{w} worker(s)": best_so_far(r.trials)
              for w, r in results.items()}
    lines = [format_ablation_curves(curves, "adult-large (virtual time)",
                                    "error"), ""]
    # pick the serial run's final error as the common target
    target = results[1].best_error * 1.02
    lines.append(f"time to reach error <= {target:.4f} (virtual seconds):")
    for w, r in results.items():
        t = time_to_error(r.trials, target)
        avg = anytime_average_error(r.trials, VIRTUAL_BUDGET)
        lines.append(
            f"  workers={w}:  time_to_target={t:7.2f}s  "
            f"anytime_avg={avg:.4f}  trials={r.n_trials}  "
            f"final={r.best_error:.4f}"
        )
    save_text("parallel_workers.txt", "\n".join(lines))

    # shape: 4 workers never reach the serial target later than 1 worker
    # does, within noise (ECI feedback is delayed under parallelism, so a
    # small overshoot is tolerated; a large one means the scheduler is
    # broken)
    t1 = time_to_error(results[1].trials, target)
    t4 = time_to_error(results[4].trials, target)
    assert t4 <= t1 * 1.5 + 0.5, f"4 workers slower than serial: {t4} vs {t1}"
    # every run produced a usable model and trial counts grow with workers
    for w, r in results.items():
        assert r.best_learner is not None
    assert results[4].n_trials >= results[1].n_trials


if __name__ == "__main__":  # pragma: no cover
    class _Noop:
        def pedantic(self, fn, rounds=1, iterations=1):
            return fn()

    test_parallel_workers(_Noop())
