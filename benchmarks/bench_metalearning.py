"""Future-work extension bench: meta-learning portfolio warm starts (§6).

The paper names meta-learning in FLAML's cost-optimising framework as
future work.  DESIGN.md's extension implements it as per-learner FLOW2
starting points retrieved by nearest-neighbour search over dataset
meta-features (``repro.core.metalearning``).  This bench quantifies the
effect the way the paper's own ablations do — anytime error curves on
held-out tasks — and checks the robustness claim that motivated leaving
meta-learning out: the warm start must *help or tie*, never wreck the
cold-start behaviour, because it only moves the search's initial point.
"""

from __future__ import annotations

import numpy as np

from _common import SCALE, save_text
from repro.baselines import FLAMLSystem
from repro.bench import SCALED_THRESHOLDS, best_so_far, format_ablation_curves
from repro.core.metalearning import build_portfolio
from repro.data import load_dataset, suite_names
from repro.metrics import get_metric

BUDGET = 4.0 * SCALE
CORPUS_BUDGET = 3.0 * SCALE
KW = dict(init_sample_size=1000, **SCALED_THRESHOLDS)

#: offline corpus / held-out split: small+mid binary tasks train the
#: portfolio, different binary tasks evaluate it
CORPUS = ["blood-transfusion", "phoneme", "kc1", "sylvine"]
HELD_OUT = ["credit-g", "kr-vs-kp", "adult"]


class WarmFLAML(FLAMLSystem):
    """FLAML with portfolio starting points injected per dataset."""

    name = "FLAML+meta"

    def __init__(self, portfolio, **kw):
        super().__init__(name="FLAML+meta", **kw)
        self.portfolio = portfolio

    def search(self, data, metric, time_budget, seed=0):
        from repro.core.controller import SearchController

        controller = SearchController(
            data,
            self._learners(data.task, self.estimator_list),
            metric,
            time_budget=time_budget,
            seed=seed,
            init_sample_size=self.init_sample_size,
            sample_growth=self.sample_growth,
            cv_instance_threshold=self.cv_instance_threshold,
            cv_rate_threshold=self.cv_rate_threshold,
            starting_points=self.portfolio.suggest(data, k=3),
        )
        return controller.run()


def run_metalearning():
    corpus = [(n, load_dataset(n).shuffled(0)) for n in CORPUS]
    portfolio = build_portfolio(
        corpus, time_budget=CORPUS_BUDGET, init_sample_size=1000
    )
    out = {}
    for name in HELD_OUT:
        data = load_dataset(name).shuffled(0)
        metric = get_metric("auto", task=data.task)
        cold = FLAMLSystem(**KW).search(data, metric, BUDGET, seed=0)
        warm = WarmFLAML(portfolio, **KW).search(data, metric, BUDGET, seed=0)
        out[name] = {"cold": cold, "warm": warm}
    return out


def test_metalearning_warm_start(benchmark):
    results = benchmark.pedantic(run_metalearning, rounds=1, iterations=1)
    lines = []
    wins, ties, losses = 0, 0, 0
    for name, r in results.items():
        curves = {k: best_so_far(v.trials) for k, v in r.items()}
        lines.append(format_ablation_curves(curves, name, "error"))
        cold, warm = r["cold"].best_error, r["warm"].best_error
        rel = (cold - warm) / max(cold, 1e-12)
        verdict = "warm" if rel > 0.01 else ("tie" if rel > -0.05 else "cold")
        wins += verdict == "warm"
        ties += verdict == "tie"
        losses += verdict == "cold"
        lines.append(
            f"  {name:<14} cold {cold:.4f}  warm {warm:.4f}  -> {verdict}"
        )
        # anytime view: error of the best model at 1/4 of the budget
        for k, v in r.items():
            early = [t.error for t in v.trials if t.automl_time <= BUDGET / 4]
            if early:
                lines.append(f"    {k:>5} @ budget/4: {np.min(early):.4f}")
    lines.append(f"\nsummary over {len(results)} held-out tasks: "
                 f"{wins} warm wins, {ties} ties, {losses} regressions")
    save_text("metalearning_warm_start.txt", "\n".join(lines))

    # Shape claim: warm starts never wreck robustness — at most a mild
    # regression on a minority of tasks (the §6 concern this design answers).
    assert losses <= len(results) // 2, (
        f"warm start regressed on {losses}/{len(results)} tasks"
    )


if __name__ == "__main__":  # pragma: no cover
    class _Noop:
        def pedantic(self, fn, rounds=1, iterations=1):
            return fn()

    test_metalearning_warm_start(_Noop())
