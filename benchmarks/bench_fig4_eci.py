"""Figure 4: ECI-based prioritisation illustration.

Reproduces the two panels as text: per-learner best-error-vs-time curves
(top) and the per-learner search trajectory (bottom), plus ECI snapshots
over time showing the self-adjusting prioritisation (a learner that fails
to improve sees its ECI grow and its selection probability drop).
"""

from __future__ import annotations

from _common import SCALE, make_case_study_dataset, save_text
from repro.baselines import FLAMLSystem
from repro.bench import SCALED_THRESHOLDS, per_learner_best
from repro.metrics import get_metric

DATASET = "adult-large"
BUDGET = 10.0 * SCALE


def run_search():
    data = make_case_study_dataset(DATASET).shuffled(0)
    metric = get_metric("auto", task=data.task)
    system = FLAMLSystem(init_sample_size=1000, **SCALED_THRESHOLDS)
    return system.search(data, metric, time_budget=BUDGET, seed=1)


def render(result) -> str:
    lines = [f"### Figure 4: ECI-based prioritisation on '{DATASET}'"]
    lines.append("\n--- best error per learner vs automl time (top panel) ---")
    for learner, curve in per_learner_best(result.trials).items():
        pts = "  ".join(f"({t:.2f}s, {e:.4f})" for t, e in curve[:12])
        lines.append(f"{learner:<11}: {pts}")
    lines.append("\n--- ECI snapshots (sampling prob ∝ 1/ECI) ---")
    n = len(result.trials)
    for idx in sorted({0, n // 4, n // 2, 3 * n // 4, n - 1}):
        t = result.trials[idx]
        if not t.eci_snapshot:
            continue
        snap = "  ".join(
            f"{k}={v:.3g}" for k, v in sorted(t.eci_snapshot.items())
        )
        lines.append(f"t={t.automl_time:6.2f}s  {snap}")
    lines.append("\n--- per-learner trial trajectory (bottom panel) ---")
    for t in result.trials:
        lines.append(
            f"{t.automl_time:7.2f}s  {t.learner:<11} s={t.sample_size:<6} "
            f"err={t.error:.4f} {'*' if t.improved_global else ''}"
        )
    return "\n".join(lines)


def test_fig4_eci_prioritization(benchmark):
    result = benchmark.pedantic(run_search, rounds=1, iterations=1)
    save_text("fig4_eci.txt", render(result))
    # the ECI mechanism must have tried several learners but concentrated
    # most trials on the cheap/promising ones
    counts = {}
    for t in result.trials:
        counts[t.learner] = counts.get(t.learner, 0) + 1
    assert len(counts) >= 3
    assert max(counts.values()) > min(counts.values())
