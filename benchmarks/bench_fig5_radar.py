"""Figure 5: scaled scores of all AutoML systems on the benchmark suite,
per task type and per budget (the paper's radar charts, rendered as
tables).

Quick mode runs 9 representative datasets x 2 budgets x 6 systems; set
REPRO_BENCH_FULL=1 for all 53 datasets x 3 budgets.
"""

from __future__ import annotations

import numpy as np

from _common import get_comparison_records, save_text
from repro.bench import format_radar_table, score_table


def test_fig5_comparative_study(benchmark):
    records = benchmark.pedantic(get_comparison_records, rounds=1, iterations=1)
    text = []
    for task in ("binary", "multiclass", "regression"):
        text.append(format_radar_table(records, task=task))
    save_text("fig5_radar.txt", "\n\n".join(text))

    # Reproduction shape at the largest equal budget.  The paper's "clear
    # majority with large margins" needs the full-scale regime (LightGBM-
    # speed trials, 1m-1h budgets); at quick scale we assert the robust
    # core of the claim: FLAML is never far behind the per-dataset best,
    # wins some datasets outright, and never collapses.
    table = score_table(records)
    top_budget = max(table)
    wins = 0
    gaps = []
    flaml_scores, best_scores = [], []
    for dataset, scores in table[top_budget].items():
        if "FLAML" not in scores:
            continue
        best_other = max(v for k, v in scores.items() if k != "FLAML")
        gaps.append(best_other - scores["FLAML"])
        flaml_scores.append(scores["FLAML"])
        best_scores.append(max(best_other, scores["FLAML"]))
        # 0.02 tolerance: single-fold scaled scores carry that much noise
        # (the paper averages 10 OpenML folds; quick mode runs 1)
        if scores["FLAML"] >= best_other - 0.02:
            wins += 1
    assert flaml_scores, "no FLAML records"
    assert wins >= 2, f"FLAML won/tied only {wins} datasets at {top_budget}s"
    # median gap to the per-dataset best is small
    assert float(np.median(gaps)) < 0.15, f"median gap {np.median(gaps):.3f}"
    # FLAML never collapses (a scaled score near 0 = constant predictor)
    assert min(flaml_scores) > 0.2, f"collapse: {min(flaml_scores):.3f}"
    # every system produced finite scores
    assert all(
        np.isfinite(v)
        for ds in table.values()
        for scores in ds.values()
        for v in scores.values()
    )
