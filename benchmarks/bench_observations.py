"""Empirical validation of the paper's §3.2 Observations 1-3.

FLAML's whole design is derived from three claimed relations among
sample size, resampling strategy, hyperparameters, error and cost.  The
paper cites prior work for them; this bench *measures* them on our
substrate, because every shape claim in EXPERIMENTS.md silently assumes
they transfer to the reimplemented learners:

* **Observation 1** — test error (and the validation-test gap) shrinks
  as sample size grows; the gap is smaller for cross-validation than
  holdout.
* **Observation 2** — the error-minimising model complexity grows with
  sample size (small samples want more regularisation).
* **Observation 3** — trial cost is ~proportional to sample size and to
  cost-related hyperparameters (tree_num); 5-fold CV costs roughly
  (k-1)/(1-rho) ~ 4.4x holdout.
"""

from __future__ import annotations

import time

import numpy as np

from _common import save_text
from repro.core.evaluate import evaluate_config
from repro.data import make_classification
from repro.learners import LGBMLikeClassifier
from repro.metrics import get_metric

CONFIG = dict(tree_num=20, leaf_num=12, learning_rate=0.2, min_child_weight=1.0)
SIZES = (500, 1000, 2000, 4000, 8000)


def _data(n=80_000, seed=0):
    return make_classification(
        n, 12, structure="nonlinear", class_sep=0.9, seed=seed, name="obs"
    ).shuffled(seed)


def _test_error(model, data, metric, n_test=4000):
    test = data.subset(np.arange(data.n - n_test, data.n))
    return metric.error(test.y, model.predict_proba(test.X))


def run_observations():
    data = _data()
    metric = get_metric("roc_auc")
    out = {"obs1": [], "obs2": {}, "obs3": {}}

    # --- Observation 1: error & val-test gap vs sample size, CV vs holdout.
    # The paper's setting treats the sample as the whole training dataset,
    # so resampling is applied to data.head(s) (a 10% holdout of s rows vs
    # 5-fold CV over s rows); gaps are averaged over seeds because the
    # claim is about estimator reliability, not one draw.
    for s in SIZES:
        row = {"s": s}
        sub = data.head(s)
        for resampling in ("cv", "holdout"):
            vals, gaps = [], []
            for seed in range(3):
                o = evaluate_config(
                    sub, LGBMLikeClassifier, CONFIG, sample_size=s,
                    resampling=resampling, metric=metric, seed=seed,
                )
                model = LGBMLikeClassifier(**CONFIG, seed=seed).fit(
                    sub.X, sub.y
                )
                test_err = _test_error(model, data, metric)
                vals.append(o.error)
                gaps.append(abs(o.error - test_err))
            row[resampling] = {
                "val": float(np.mean(vals)),
                "test": test_err,
                "gap": float(np.mean(gaps)),
            }
        out["obs1"].append(row)

    # --- Observation 2: best complexity per sample size
    complexities = (4, 16, 64, 256)
    for s in (600, 8000):
        errs = []
        for leaves in complexities:
            cfg = dict(CONFIG, leaf_num=leaves, tree_num=40,
                       min_child_weight=0.5)
            model = LGBMLikeClassifier(**cfg, seed=0).fit(data.X[:s], data.y[:s])
            errs.append(_test_error(model, data, metric))
        out["obs2"][s] = dict(zip(complexities, errs))

    # --- Observation 3: cost vs sample size / tree_num / resampling.
    # Substrate caveat: the pure-Python tree grower has a per-node
    # constant the C++ libraries lack, so the row-proportional term only
    # dominates at larger s — the sweep spans 4K-64K rows for that reason
    # (documented in EXPERIMENTS.md).
    heavy = dict(CONFIG, tree_num=60, leaf_num=32)
    costs_s = {}
    for s in (4000, 8000, 16000, 32000, 64000):
        t0 = time.perf_counter()
        LGBMLikeClassifier(**heavy, seed=0).fit(data.X[:s], data.y[:s])
        costs_s[s] = time.perf_counter() - t0
    out["obs3"]["cost_vs_s"] = costs_s
    costs_t = {}
    for trees in (10, 20, 40, 80):
        cfg = dict(CONFIG, tree_num=trees)
        t0 = time.perf_counter()
        LGBMLikeClassifier(**cfg, seed=0).fit(data.X[:4000], data.y[:4000])
        costs_t[trees] = time.perf_counter() - t0
    out["obs3"]["cost_vs_trees"] = costs_t
    cv = evaluate_config(data, LGBMLikeClassifier, CONFIG, sample_size=4000,
                         resampling="cv", metric=metric, seed=0)
    ho = evaluate_config(data, LGBMLikeClassifier, CONFIG, sample_size=4000,
                         resampling="holdout", metric=metric, seed=0)
    out["obs3"]["cv_over_holdout"] = cv.cost / max(ho.cost, 1e-9)
    return out


def test_observations(benchmark):
    out = benchmark.pedantic(run_observations, rounds=1, iterations=1)
    lines = ["=== Observation 1: sample size + resampling -> error ===",
             f"{'s':>6}  {'cv val':>8} {'cv test':>8} {'cv gap':>8}  "
             f"{'ho val':>8} {'ho test':>8} {'ho gap':>8}"]
    for row in out["obs1"]:
        c, h = row["cv"], row["holdout"]
        lines.append(
            f"{row['s']:>6}  {c['val']:8.4f} {c['test']:8.4f} {c['gap']:8.4f}  "
            f"{h['val']:8.4f} {h['test']:8.4f} {h['gap']:8.4f}"
        )
    lines.append("\n=== Observation 2: best complexity per sample size ===")
    for s, errs in out["obs2"].items():
        best = min(errs, key=errs.get)
        lines.append(f"  s={s:<6} " + "  ".join(
            f"leaves={k}:{v:.4f}" for k, v in errs.items()
        ) + f"  -> best leaves={best}")
    lines.append("\n=== Observation 3: quantifiable impact on cost ===")
    lines.append("  cost vs s      : " + "  ".join(
        f"{s}:{c:.3f}s" for s, c in out["obs3"]["cost_vs_s"].items()))
    lines.append("  cost vs trees  : " + "  ".join(
        f"{t}:{c:.3f}s" for t, c in out["obs3"]["cost_vs_trees"].items()))
    lines.append(f"  cv/holdout cost: {out['obs3']['cv_over_holdout']:.2f}x "
                 "(paper predicts (k-1)/(1-rho) = 4.4x)")
    save_text("observations.txt", "\n".join(lines))

    # Observation 1 shape: test error shrinks with s (first vs last size);
    # mean CV gap <= mean holdout gap
    first, last = out["obs1"][0], out["obs1"][-1]
    assert last["cv"]["test"] <= first["cv"]["test"] + 0.005
    gaps_cv = np.mean([r["cv"]["gap"] for r in out["obs1"]])
    gaps_ho = np.mean([r["holdout"]["gap"] for r in out["obs1"]])
    assert gaps_cv <= gaps_ho * 1.25
    # Observation 2 shape: the small sample's best complexity is <= the
    # large sample's
    small = min(out["obs2"][600], key=out["obs2"][600].get)
    large = min(out["obs2"][8000], key=out["obs2"][8000].get)
    assert small <= large
    # Observation 3 shape: cost grows with s — x16 data costs at least
    # x2.5 once the per-node Python constant is amortised — and ~linearly
    # with trees
    cs = out["obs3"]["cost_vs_s"]
    assert cs[64000] >= cs[4000] * 2.5
    sizes = sorted(cs)
    assert all(cs[a] <= cs[b] * 1.15 for a, b in zip(sizes, sizes[1:]))
    ct = out["obs3"]["cost_vs_trees"]
    assert ct[80] >= ct[10] * 2.5
    # CV costs several times holdout (paper: ~4.4x)
    assert out["obs3"]["cv_over_holdout"] >= 2.0


if __name__ == "__main__":  # pragma: no cover
    class _Noop:
        def pedantic(self, fn, rounds=1, iterations=1):
            return fn()

    test_observations(_Noop())
