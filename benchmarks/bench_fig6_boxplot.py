"""Figure 6: distribution of scaled-score differences between FLAML and
each baseline, under equal budgets (top row) and with FLAML using a
smaller budget (bottom row)."""

from __future__ import annotations

from _common import BUDGETS, get_comparison_records, save_text
from repro.bench import format_boxplot_summary, summarize_score_differences


def test_fig6_score_differences(benchmark):
    records = benchmark.pedantic(get_comparison_records, rounds=1, iterations=1)
    sections = []
    # equal budgets (paper top row)
    for b in BUDGETS:
        stats = summarize_score_differences(records, ref_budget=b, other_budget=b)
        sections.append(format_boxplot_summary(stats, f"{b:g}s vs. {b:g}s"))
    # smaller FLAML budget (paper bottom row)
    pairs = [(BUDGETS[i], BUDGETS[j]) for i in range(len(BUDGETS))
             for j in range(i + 1, len(BUDGETS))]
    for small, large in pairs:
        stats = summarize_score_differences(
            records, ref_budget=small, other_budget=large
        )
        sections.append(format_boxplot_summary(stats, f"{small:g}s vs. {large:g}s"))
    save_text("fig6_boxplot.txt", "\n\n".join(sections))

    # reproduction shape: under the largest equal budget the median
    # difference vs every baseline stays within a small band of 0 or above
    # (the paper's large positive margins need the full-scale regime;
    # quick-scale medians hover around 0)
    top = BUDGETS[-1]
    stats = summarize_score_differences(records, ref_budget=top, other_budget=top)
    medians = [st["median"] for st in stats.values()]
    assert medians, "no comparisons produced"
    assert sum(m >= -0.1 for m in medians) >= len(medians) * 0.8, medians
