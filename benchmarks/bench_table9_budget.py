"""Table 9: % of tasks where FLAML has better-or-matching score than each
baseline while using a *smaller* time budget (0.1% tolerance, as in the
paper's appendix)."""

from __future__ import annotations

from _common import BUDGETS, get_comparison_records, save_text
from repro.bench import format_budget_table


def test_table9_smaller_budget_wins(benchmark):
    records = benchmark.pedantic(get_comparison_records, rounds=1, iterations=1)
    pairs = [(BUDGETS[i], BUDGETS[j]) for i in range(len(BUDGETS))
             for j in range(i + 1, len(BUDGETS))]
    text = format_budget_table(records, pairs)
    save_text("table9_budget.txt", text)
    # shape check: the table rendered one row per baseline
    baselines = {r.system for r in records} - {"FLAML"}
    assert len(text.strip().splitlines()) >= 2 + len(baselines)
