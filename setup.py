"""Setup shim: the environment has no `wheel` package, so editable installs
must go through the legacy ``setup.py develop`` path. Metadata lives here;
tool config stays in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of FLAML: A Fast and Lightweight AutoML Library (MLSys 2021)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy"],
)
