"""Setup shim: the environment has no `wheel` package, so editable installs
must go through the legacy ``setup.py develop`` path. Metadata lives here;
tool config stays in pyproject.toml.

The native kernels (``repro/native/_kernels.c``) are *not* declared as a
setuptools Extension on purpose: they compile on first use into a
per-user cache (see ``repro.native._build``), so a plain ``pip install``
— or a box with no compiler at all — always succeeds and the system
degrades to the pure-numpy fallback.  The install commands below just
attempt the compile eagerly so install-time is where the one-off cost
lands; any failure is non-fatal by design.  ``_build.py`` is loaded
standalone (stdlib-only module) rather than via ``import repro`` so the
hook also works under PEP-517 build isolation, where numpy is absent.
"""

import importlib.util
from pathlib import Path

from setuptools import find_packages, setup
from setuptools.command.build_py import build_py as _build_py
from setuptools.command.develop import develop as _develop

_BUILD_PY_PATH = Path(__file__).parent / "src" / "repro" / "native" / "_build.py"


def _prebuild_native_kernels() -> None:
    """Best-effort eager compile of the native kernels."""
    try:
        spec = importlib.util.spec_from_file_location(
            "_repro_native_build", _BUILD_PY_PATH
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        so = mod.build()
        print(f"repro.native: kernels compiled to {so}")
    except Exception as exc:  # no compiler/headers: fallback mode
        print(f"repro.native: kernel prebuild skipped ({exc}); "
              "the pure-numpy fallback will be used")


class build_py(_build_py):
    def run(self):
        super().run()
        _prebuild_native_kernels()


class develop(_develop):
    def run(self):
        super().run()
        _prebuild_native_kernels()


setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of FLAML: A Fast and Lightweight AutoML Library (MLSys 2021)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.native": ["*.c"]},
    install_requires=["numpy", "scipy"],
    cmdclass={"build_py": build_py, "develop": develop},
)
