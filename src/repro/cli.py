"""Top-level command-line interface: fit / predict / datasets / portfolio.

The library's whole point is "AutoML as a cheap subroutine"; this CLI is
the no-code form of that loop::

    python -m repro fit train.csv --label y --budget 30 --out model.json
    python -m repro predict model.json test.csv --out preds.csv
    python -m repro fit series.csv --task forecast --horizon 12 \
        --seasonal-period 12 --artifact fc.json
    python -m repro datasets --task binary
    python -m repro portfolio build corpus1.csv corpus2.csv --out pf.json
    python -m repro fit train.csv --register models/ --name churn
    python -m repro serve --registry models/ --port 8000
    python -m repro registry list models/

``fit`` writes a self-contained JSON model file (winning learner name,
its config, the task and the label encoding) plus the trial log, and
``predict`` re-trains that configuration on the stored training data
reference — models here are configuration + data recipes, mirroring how
FLAML deployments retrain the chosen config on refreshed data (§1's
selectivity-estimation loop).  For byte-identical model reuse, use
``--pickle`` to serialise the fitted estimator object instead.

(Benchmark sweeps live under ``python -m repro.bench``.)
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys

import numpy as np

from .core.automl import AutoML
from .data.io import from_csv
from .data.suite import SUITE, suite_names

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro`` argument parser."""
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="Fast and lightweight AutoML (FLAML reproduction).",
    )
    sub = p.add_subparsers(dest="command", required=True)

    fit = sub.add_parser("fit", help="search for a model on a CSV dataset")
    fit.add_argument("train_csv", help="headered CSV with features + label")
    fit.add_argument("--label", default="-1",
                     help="label column name or index (default: last)")
    fit.add_argument("--task", default=None,
                     choices=["classification", "binary", "multiclass",
                              "regression", "forecast"],
                     help="default: inferred from the label column")
    fit.add_argument("--horizon", type=int, default=1,
                     help="forecast horizon H (task=forecast; default 1)")
    fit.add_argument("--seasonal-period", type=int, default=None,
                     help="seasonal period m of the series (task=forecast): "
                          "adds a seasonal lag feature and sets the MASE "
                          "scale and naive baseline")
    fit.add_argument("--budget", type=float, default=60.0,
                     help="time budget in seconds (default 60)")
    fit.add_argument("--metric", default="auto",
                     help="metric name (default: auto per task)")
    fit.add_argument("--estimators", nargs="*", default=None,
                     help="estimator subset, e.g. lgbm xgboost")
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument("--max-iters", type=int, default=None)
    fit.add_argument("--n-workers", type=int, default=1,
                     help="concurrent trials (default 1: sequential search)")
    fit.add_argument("--backend", default=None,
                     choices=["serial", "thread", "process", "virtual"],
                     help="trial-execution backend (default: serial, or "
                          "thread when --n-workers > 1)")
    fit.add_argument("--retries", type=int, default=0,
                     help="retry crashed/timed-out trials up to this many "
                          "times each, with exponential backoff "
                          "(default 0: no retries)")
    fit.add_argument("--retry-budget", type=int, default=None,
                     help="cap on total retries across the whole search "
                          "(default: unlimited when --retries > 0)")
    fit.add_argument("--out", default="model.json",
                     help="model file to write (default model.json)")
    fit.add_argument("--pickle", action="store_true",
                     help="also write <out>.pkl with the fitted estimator")
    fit.add_argument("--save-model", action="store_true",
                     help="also write <out>.model.json (pickle-free "
                          "estimator dump, preferred over --pickle)")
    fit.add_argument("--log", default=None,
                     help="optional trial-log JSON path")
    fit.add_argument("--artifact", default=None, metavar="PATH",
                     help="also export a self-contained pipeline artifact "
                          "(preprocessing + model; servable via `serve`)")
    fit.add_argument("--register", default=None, metavar="REGISTRY_DIR",
                     help="register the fitted pipeline into this model "
                          "registry directory")
    fit.add_argument("--name", default=None,
                     help="model name used with --register "
                          "(default: the training CSV's stem)")
    fit.add_argument("--trace", default=None, metavar="JSONL",
                     help="enable span tracing for the search and write "
                          "the spans to this JSONL file (summarize with "
                          "`python -m repro trace summarize`)")
    fit.add_argument("--verbose", action="store_true",
                     help="print extra diagnostics (native-kernel status, "
                          "failed trials)")

    pred = sub.add_parser("predict", help="predict with a fitted model file")
    pred.add_argument("model", help="model.json written by `fit`")
    pred.add_argument("test_csv", help="CSV with the same feature columns")
    pred.add_argument("--out", default=None,
                      help="write predictions to this CSV (default: stdout)")
    pred.add_argument("--proba", action="store_true",
                      help="class probabilities instead of labels")
    pred.add_argument("--horizon", type=int, default=None,
                      help="forecast horizon (forecast models; default: the "
                           "horizon the model was fitted with)")

    ds = sub.add_parser("datasets", help="list the benchmark suite")
    ds.add_argument("--task", default=None,
                    choices=["binary", "multiclass", "regression",
                             "forecast"])
    ds.add_argument("--describe", default=None, metavar="NAME",
                    help="load one suite dataset and print its statistics")
    ds.add_argument("--export", default=None, metavar="NAME",
                    help="generate one suite/forecast dataset and write it "
                         "as CSV (requires --out)")
    ds.add_argument("--out", default=None,
                    help="CSV path for --export")

    srv = sub.add_parser(
        "serve", help="serve registered models over HTTP with micro-batching"
    )
    srv.add_argument("--registry", default=None, metavar="DIR",
                     help="model registry directory to serve")
    srv.add_argument("--artifact", default=None, metavar="PATH",
                     help="serve a single artifact file instead of a registry")
    srv.add_argument("--name", default="model",
                     help="model name for --artifact mode (default: model)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8000,
                     help="listen port; 0 picks a free one (default 8000)")
    srv.add_argument("--max-batch", type=int, default=32,
                     help="micro-batch size cap (default 32)")
    srv.add_argument("--max-delay-ms", type=float, default=2.0,
                     help="micro-batch coalescing window (default 2ms)")
    srv.add_argument("--no-batching", action="store_true",
                     help="predict every request directly (for comparison)")
    srv.add_argument("--max-horizon", type=int, default=1000,
                     help="cap on per-request forecast horizons "
                          "(default 1000)")
    srv.add_argument("--slow-ms", type=float, default=500.0,
                     help="log requests slower than this many milliseconds "
                          "with their request id; 0 disables (default 500)")
    srv.add_argument("--max-inflight", type=int, default=None,
                     help="admission control: cap on concurrently accepted "
                          "predict requests; excess requests get 429 "
                          "Retry-After (default: unbounded)")
    srv.add_argument("--deadline-ms", type=float, default=None,
                     help="per-request deadline; requests whose prediction "
                          "finishes after it get 503 (default: none)")
    srv.add_argument("--max-queue", type=int, default=None,
                     help="cap on rows queued in each model's micro-batcher; "
                          "a full queue sheds with 503 Retry-After "
                          "(default: unbounded)")
    srv.add_argument("--fit", action="store_true",
                     help="mount the multi-tenant fit service under /fit: "
                          "tenants POST training payloads, searches "
                          "multiplex one shared worker pool, winners "
                          "register as <tenant>.<name> (requires "
                          "--registry)")
    srv.add_argument("--fit-workers", type=int, default=4,
                     help="worker slots in the shared fit pool (default 4)")
    srv.add_argument("--fit-max-searches", type=int, default=4,
                     help="searches in progress at once; more queue "
                          "(default 4)")
    srv.add_argument("--fit-cache-size", type=int, default=16384,
                     help="entries in the cross-search trial cache; 0 "
                          "disables sharing (default 16384)")
    srv.add_argument("--fit-tenant-budget", type=float, default=None,
                     help="per-tenant cumulative trial-compute budget in "
                          "seconds; exhausted tenants are refused "
                          "(default: unmetered)")
    srv.add_argument("--fit-max-concurrent", type=int, default=None,
                     help="default cap on one search's concurrently running "
                          "trials (default: the pool size)")
    srv.add_argument("--fit-max-rows", type=int, default=200_000,
                     help="largest training payload accepted per fit "
                          "(default 200000 rows)")
    srv.add_argument("--fit-budget-cap", type=float, default=300.0,
                     help="hard cap on any single job's time_budget in "
                          "seconds (default 300)")

    tr = sub.add_parser(
        "trace", help="work with span traces (see fit --trace)"
    )
    tr_sub = tr.add_subparsers(dest="trace_command", required=True)
    tr_sum = tr_sub.add_parser(
        "summarize",
        help="per-phase time attribution table from a JSONL trace",
    )
    tr_sum.add_argument("trace_file", help="JSONL span trace (fit --trace, "
                                           "bench_hotpath.py --trace)")
    tr_sum.add_argument("--json", action="store_true",
                        help="print the raw attribution dict as JSON "
                             "instead of the table")

    reg = sub.add_parser("registry", help="inspect / manage a model registry")
    reg_sub = reg.add_subparsers(dest="reg_command", required=True)
    reg_add = reg_sub.add_parser("add", help="register an artifact file")
    reg_add.add_argument("registry_dir")
    reg_add.add_argument("name")
    reg_add.add_argument("artifact", help="artifact JSON written by "
                                          "save_model / fit --artifact")
    reg_list = reg_sub.add_parser("list", help="list models and versions")
    reg_list.add_argument("registry_dir")
    reg_list.add_argument("name", nargs="?", default=None)
    reg_promote = reg_sub.add_parser(
        "promote", help="point a stage alias (e.g. production) at a version"
    )
    reg_promote.add_argument("registry_dir")
    reg_promote.add_argument("name")
    reg_promote.add_argument("version", type=int)
    reg_promote.add_argument("stage")
    reg_rollback = reg_sub.add_parser(
        "rollback", help="undo the last promote of a stage alias"
    )
    reg_rollback.add_argument("registry_dir")
    reg_rollback.add_argument("name")
    reg_rollback.add_argument("stage")

    chaos = sub.add_parser(
        "chaos",
        help="deterministic chaos drill: run a small search + serving "
             "session under seeded fault injection and verify recovery",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed; same seed => same faults, "
                            "same retries, same best config (default 0)")
    chaos.add_argument("--budget", default="30s",
                       help="wall-clock budget for the drill, e.g. 30s, "
                            "2m (default 30s)")
    chaos.add_argument("--backend", default="process",
                       choices=["serial", "thread", "process"],
                       help="trial-execution backend to stress "
                            "(default process)")
    chaos.add_argument("--skip-serving", action="store_true",
                       help="skip the serving overload/quarantine phase")
    chaos.add_argument("--json", action="store_true",
                       help="print the drill report as JSON")

    pf = sub.add_parser("portfolio", help="meta-learning portfolio tools")
    pf_sub = pf.add_subparsers(dest="pf_command", required=True)
    pf_build = pf_sub.add_parser("build", help="build a portfolio from CSVs")
    pf_build.add_argument("corpus_csvs", nargs="+")
    pf_build.add_argument("--label", default="-1")
    pf_build.add_argument("--budget", type=float, default=5.0,
                          help="per-corpus-task budget (default 5s)")
    pf_build.add_argument("--out", default="portfolio.json")
    return p


def _label_arg(raw: str) -> str | int:
    try:
        return int(raw)
    except ValueError:
        return raw


def _cmd_fit(args) -> int:
    data = from_csv(args.train_csv, label=_label_arg(args.label),
                    task=args.task)
    automl = AutoML(seed=args.seed)
    forecast_kw = {}
    if data.task == "forecast" or args.horizon != 1 or args.seasonal_period:
        # pass through even when the task is not forecast, so AutoML.fit
        # raises its clear error instead of a forgotten `--task forecast`
        # silently training a shuffled regression on the series
        forecast_kw = dict(horizon=args.horizon,
                           seasonal_period=args.seasonal_period)
    trace_cleanup = None
    if args.trace:
        from .obs.trace import set_trace_sink, set_tracing

        prev_sink = set_trace_sink(args.trace)
        prev_on = set_tracing(True)

        def trace_cleanup() -> None:
            set_tracing(prev_on)
            set_trace_sink(prev_sink)

    try:
        automl.fit(
            data.X, data.y,
            task=data.task,
            time_budget=args.budget,
            metric=args.metric,
            estimator_list=args.estimators,
            max_iters=args.max_iters,
            n_workers=args.n_workers,
            backend=args.backend,
            log_file=args.log,
            retries=args.retries,
            retry_budget=args.retry_budget,
            **forecast_kw,
        )
    finally:
        if trace_cleanup is not None:
            trace_cleanup()
    model = {
        "task": data.task,
        "label": args.label,
        "n_features": data.d,
        "learner": automl.best_estimator,
        "config": automl.best_config,
        "best_error": automl.best_loss,
        "metric": args.metric,
        "seed": args.seed,
        "train_csv": args.train_csv,
        "n_trials": automl.search_result.n_trials,
        **forecast_kw,
    }
    with open(args.out, "w") as f:
        json.dump(model, f, indent=1, default=float)
    if args.pickle:
        with open(args.out + ".pkl", "wb") as f:
            pickle.dump(automl.model, f)
    if args.save_model:
        automl.save_model(args.out + ".model.json")
    if args.artifact:
        automl.export_artifact().save(args.artifact)
        print(f"artifact     : {args.artifact}")
    if args.register:
        import os as _os

        from .serve import ModelRegistry

        name = args.name or _os.path.splitext(
            _os.path.basename(args.train_csv))[0]
        version = ModelRegistry(args.register).register(
            name, automl.export_artifact(),
            metadata={"train_csv": args.train_csv},
        )
        print(f"registered   : {name} v{version} -> {args.register}")
    result = automl.search_result
    print(f"best learner : {automl.best_estimator}")
    print(f"best error   : {automl.best_loss:.4f}")
    if data.task == "forecast" and args.metric in ("auto", "mase"):
        from .data.timeseries import seasonal_naive_cv_error

        baseline = seasonal_naive_cv_error(
            data.y, horizon=args.horizon, m=args.seasonal_period or 1,
        )
        verdict = "beats" if automl.best_loss < baseline else "DOES NOT beat"
        print(f"seasonal-naive MASE under the same rolling-origin CV: "
              f"{baseline:.4f} ({verdict} the baseline)")
    print(f"trials       : {result.n_trials} "
          f"({result.cache_hits} cache hits, backend={result.backend} "
          f"x{result.n_workers})")
    if args.verbose:
        from .native import native_status

        ns = native_status()
        reason = f" ({ns['reason']})" if ns["reason"] else ""
        print(f"native       : {ns['mode']}{reason}")
        retried = sum(
            max(0, getattr(t, "attempts", 1) - 1) for t in result.trials
        )
        if retried:
            print(f"retries      : {retried}")
        failures = result.failures
        if failures:
            print(f"failed trials: {len(failures)}")
            for t in failures[:5]:
                last_line = t.failure.strip().splitlines()[-1]
                attempts = getattr(t, "attempts", 1)
                tries = f" ({attempts} attempts)" if attempts > 1 else ""
                print(f"  iter {t.iteration} {t.learner}{tries}: "
                      f"{last_line}")
    if args.trace:
        print(f"trace        : {args.trace} "
              "(python -m repro trace summarize)")
    print(f"model        : {args.out}")
    return 0


def _cmd_predict(args) -> int:
    with open(args.model) as f:
        model = json.load(f)
    try:
        # preference order: pickle-free pipeline artifact (new format or
        # legacy estimator dump), then pickle, then retrain
        estimator = AutoML.load_model(args.model + ".model.json")
    except FileNotFoundError:
        estimator = None
    if estimator is None:
        try:
            with open(args.model + ".pkl", "rb") as f:
                estimator = pickle.load(f)
        except FileNotFoundError:
            estimator = None
    if estimator is None:
        # retrain the stored configuration on the stored training data
        train = from_csv(model["train_csv"], label=_label_arg(model["label"]),
                         task=model["task"])
        automl = AutoML(seed=model["seed"])
        forecast_kw = {}
        if model["task"] == "forecast":
            forecast_kw = dict(horizon=model.get("horizon", 1),
                               seasonal_period=model.get("seasonal_period"))
        automl.fit(train.X, train.y, task=model["task"],
                   time_budget=1e9, max_iters=1,
                   estimator_list=[model["learner"]],
                   starting_points={model["learner"]: model["config"]},
                   **forecast_kw)
        estimator = automl.model
    if model["task"] == "forecast":
        # the test CSV is the recent raw history of the series; answer
        # with the next --horizon values
        if args.proba:
            raise ValueError("--proba is not defined for forecast models")
        history = from_csv(args.test_csv, label=_label_arg(model["label"]),
                           task="forecast").y
        out = estimator.predict(history, horizon=args.horizon)
        return _emit_predictions(out, args.out)
    if _has_label(args.test_csv, model):
        X = from_csv(args.test_csv, label=_label_arg(model["label"]),
                     task=model["task"]).X
    else:
        # label column absent: all columns are features
        import csv as _csv

        with open(args.test_csv, newline="") as f:
            rows = list(_csv.reader(f))
        X = np.array([[float(c or "nan") for c in r] for r in rows[1:]])
    out = (estimator.predict_proba(X) if args.proba else
           estimator.predict(X))
    return _emit_predictions(out, args.out)


def _emit_predictions(out, path: str | None) -> int:
    """Write predictions (one row per line) to ``path`` or stdout."""
    lines = [",".join(map(str, np.atleast_1d(row))) for row in out]
    text = "\n".join(lines)
    if path:
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"wrote {len(lines)} predictions to {path}")
    else:
        print(text)
    return 0


def _has_label(path: str, model: dict) -> bool:
    """Whether the prediction CSV still carries the training label column.

    Named labels are matched against the header; positional labels are
    resolved by width (train had n_features + 1 columns; a feature-only
    file has exactly n_features).
    """
    with open(path) as f:
        header = f.readline().strip().split(",")
    label = _label_arg(model["label"])
    if isinstance(label, str):
        return label in header
    n_features = model.get("n_features")
    if n_features is None:  # legacy model file: assume the label is there
        return True
    return len(header) > n_features


def _load_any_dataset(name: str):
    """A suite dataset or a synthetic forecasting regime, by name."""
    from .data.timeseries import TIMESERIES_REGIMES, load_forecast_dataset

    if name in TIMESERIES_REGIMES:
        return load_forecast_dataset(name)
    if name in SUITE:
        return SUITE[name].load()
    raise ValueError(
        f"unknown dataset {name!r}; see `datasets` for names"
    )


def _cmd_datasets(args) -> int:
    from .data.io import to_csv
    from .data.timeseries import TIMESERIES_REGIMES, forecast_suite_names

    if args.describe is not None:
        for k, v in _load_any_dataset(args.describe).describe().items():
            print(f"{k:<15} {v}")
        return 0
    if args.export is not None:
        if not args.out:
            raise ValueError("--export requires --out PATH")
        data = _load_any_dataset(args.export)
        to_csv(data, args.out)
        print(f"wrote {data.name} ({data.n} rows, task={data.task}) "
              f"to {args.out}")
        return 0
    if args.task != "forecast":
        for name in suite_names(args.task):
            s = SUITE[name]
            print(f"{name:<24} {s.task:<11} n={s.n:<7} d={s.d:<4} "
                  f"(paper: {s.orig_n} x {s.orig_d})")
    if args.task in (None, "forecast"):
        for name in forecast_suite_names():
            p = TIMESERIES_REGIMES[name]
            parts = [f"n={p['n']:<7}"]
            if p.get("seasonal_period"):
                parts.append(f"m={p['seasonal_period']}")
            if p.get("trend"):
                parts.append(f"trend={p['trend']}")
            if p.get("ar"):
                parts.append(f"ar={p['ar']}")
            print(f"{name:<24} {'forecast':<11} {' '.join(parts)}")
    return 0


def _cmd_serve(args) -> int:
    from .serve import (
        FitService,
        ModelRegistry,
        ModelServer,
        PipelineArtifact,
        serve,
    )

    if (args.registry is None) == (args.artifact is None):
        raise ValueError("serve needs exactly one of --registry / --artifact")
    if args.fit and args.registry is None:
        raise ValueError(
            "serve --fit needs --registry: fitted winners must land "
            "somewhere durable"
        )
    common = dict(
        max_batch=args.max_batch, max_delay_ms=args.max_delay_ms,
        batching=not args.no_batching, max_horizon=args.max_horizon,
        slow_request_ms=args.slow_ms, max_inflight=args.max_inflight,
        deadline_ms=args.deadline_ms, max_queue=args.max_queue,
    )
    if args.registry is not None:
        registry = ModelRegistry(args.registry)
        fit_service = None
        if args.fit:
            fit_service = FitService(
                registry=registry,
                n_workers=args.fit_workers,
                max_searches=args.fit_max_searches,
                cache_size=args.fit_cache_size,
                tenant_time_budget=args.fit_tenant_budget,
                default_max_concurrent=args.fit_max_concurrent,
                max_fit_rows=args.fit_max_rows,
                time_budget_cap=args.fit_budget_cap,
            )
        model_server = ModelServer(
            registry=registry, fit_service=fit_service, **common
        )
    else:
        model_server = ModelServer(
            artifacts={args.name: PipelineArtifact.load(args.artifact)},
            **common,
        )
    serve(model_server, host=args.host, port=args.port)
    return 0


def _cmd_trace(args) -> int:
    from .obs.summarize import summarize_file

    att, table = summarize_file(args.trace_file)
    if args.json:
        print(json.dumps(att, indent=1))
    else:
        print(table)
    return 0


def _cmd_registry(args) -> int:
    from .serve import ModelRegistry, PipelineArtifact

    registry = ModelRegistry(args.registry_dir)
    if args.reg_command == "add":
        version = registry.register(
            args.name, PipelineArtifact.load(args.artifact)
        )
        print(f"registered {args.name} v{version}")
        return 0
    if args.reg_command == "promote":
        registry.promote(args.name, args.version, args.stage)
        print(f"{args.name}: {args.stage} -> v{args.version}")
        return 0
    if args.reg_command == "rollback":
        version = registry.rollback(args.name, args.stage)
        print(f"{args.name}: {args.stage} rolled back to v{version}")
        return 0
    # list
    names = [args.name] if args.name else registry.models()
    for name in names:
        aliases = registry.aliases(name)
        by_version = {}
        for alias, v in aliases.items():
            by_version.setdefault(v, []).append(alias)
        print(name)
        for entry in registry.versions(name):
            marks = ",".join(sorted(by_version.get(entry["version"], [])))
            quarantined = (" QUARANTINED"
                           if entry.get("quarantined") else "")
            print(f"  v{entry['version']:<3} task={entry['task']:<11} "
                  f"sha256={entry['sha256'][:12]} "
                  f"{('[' + marks + ']') if marks else ''}{quarantined}")
    return 0


def _cmd_portfolio(args) -> int:
    from .core.metalearning import build_portfolio

    corpus = []
    for path in args.corpus_csvs:
        ds = from_csv(path, label=_label_arg(args.label))
        corpus.append((path, ds.shuffled(0)))
    portfolio = build_portfolio(corpus, time_budget=args.budget)
    portfolio.save(args.out)
    print(f"portfolio with {len(portfolio)} entries -> {args.out}")
    for e in portfolio.entries:
        print(f"  {e.dataset:<30} best={e.best_learner:<10} "
              f"error={e.best_error:.4f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "fit":
            return _cmd_fit(args)
        if args.command == "predict":
            return _cmd_predict(args)
        if args.command == "datasets":
            return _cmd_datasets(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "registry":
            return _cmd_registry(args)
        if args.command == "chaos":
            from .faults.chaos import run_drill

            return run_drill(args)
        if args.command == "portfolio":
            return _cmd_portfolio(args)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        # registry/serving errors (RegistryError et al.) exit cleanly too
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
