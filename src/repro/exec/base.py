"""Trial-execution interface: what a trial *is* and how backends run one.

The controllers (``repro.core.controller`` / ``repro.core.parallel``)
describe each trial as a :class:`TrialSpec` — the χ = (learner,
hyperparameters, sample size, resampling) of the paper plus the
evaluation context — and submit it to a :class:`TrialExecutor`.  The
executor decides *where* the trial runs:

* :class:`~repro.exec.serial.SerialExecutor` — inline, in the caller;
* :class:`~repro.exec.threaded.ThreadExecutor` — a thread pool;
* :class:`~repro.exec.process.ProcessExecutor` — a process pool (true
  multi-core parallelism with crash isolation).

``submit`` returns a :class:`TrialHandle`; ``handle.result()`` blocks
until the :class:`~repro.core.evaluate.TrialOutcome` is available.  The
scheduler-facing conveniences (trial caching, inf-error conversion of
crashes and timeouts) live one layer up in
:class:`~repro.exec.engine.ExecutionEngine`.
"""

from __future__ import annotations

import abc
import concurrent.futures
from dataclasses import dataclass, field

import numpy as np

from ..core.evaluate import TrialOutcome, evaluate_config
from ..data.dataset import Dataset
from ..metrics.registry import Metric

__all__ = [
    "TrialSpec",
    "TrialHandle",
    "ImmediateHandle",
    "FutureHandle",
    "TrialExecutor",
    "run_spec",
    "make_executor",
]


def _freeze(value):
    """Make one config value hashable for cache keys."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, (list, tuple, np.ndarray)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass
class TrialSpec:
    """One trial χ = (learner, config, sample size, resampling) + context.

    ``train_time_limit`` is advisory: learners that accept it stop
    training when it elapses.  Hard per-trial limits are enforced by the
    engine at ``result()`` time instead.
    """

    learner: str
    estimator_cls: type
    config: dict
    sample_size: int
    resampling: str
    metric: Metric
    n_splits: int = 5
    holdout_ratio: float = 0.1
    seed: int = 0
    train_time_limit: float | None = None
    labels: np.ndarray | None = field(default=None, repr=False)
    # forecast-trial context (resampling == "temporal" only): the
    # rolling-origin validation width and the series' seasonal period
    horizon: int = 1
    seasonal_period: int | None = None

    def cache_key(self) -> tuple:
        """Identity of the trial's *result* (excludes time limits, which
        only bound how long training may take, not what it computes)."""
        cfg = tuple(sorted((k, _freeze(v)) for k, v in self.config.items()))
        return (
            self.learner,
            cfg,
            int(self.sample_size),
            self.resampling,
            self.metric.name,
            int(self.n_splits),
            float(self.holdout_ratio),
            int(self.seed),
            int(self.horizon),
            int(self.seasonal_period or 0),
        )


class TrialHandle(abc.ABC):
    """A submitted trial; ``result`` blocks until the outcome is ready."""

    @abc.abstractmethod
    def result(self, timeout: float | None = None) -> TrialOutcome:
        """Return the outcome, raising on worker crash or timeout."""

    @abc.abstractmethod
    def done(self) -> bool:
        """Whether the outcome is already available."""


class ImmediateHandle(TrialHandle):
    """Handle for a trial that already ran (serial backend, cache hits)."""

    def __init__(self, outcome: TrialOutcome) -> None:
        self._outcome = outcome

    def result(self, timeout: float | None = None) -> TrialOutcome:
        return self._outcome

    def done(self) -> bool:
        return True


class FutureHandle(TrialHandle):
    """Handle wrapping a ``concurrent.futures.Future`` (thread/process)."""

    def __init__(self, future: concurrent.futures.Future) -> None:
        self.future = future

    def result(self, timeout: float | None = None) -> TrialOutcome:
        return self.future.result(timeout=timeout)

    def done(self) -> bool:
        return self.future.done()


def run_spec(data: Dataset, spec: TrialSpec) -> TrialOutcome:
    """Execute one TrialSpec against a dataset (the backend work unit)."""
    return evaluate_config(
        data,
        spec.estimator_cls,
        spec.config,
        sample_size=spec.sample_size,
        resampling=spec.resampling,
        metric=spec.metric,
        n_splits=spec.n_splits,
        holdout_ratio=spec.holdout_ratio,
        seed=spec.seed,
        train_time_limit=spec.train_time_limit,
        labels=spec.labels,
        horizon=spec.horizon,
        seasonal_period=spec.seasonal_period,
    )


class TrialExecutor(abc.ABC):
    """Pluggable backend that turns TrialSpecs into TrialOutcomes.

    An executor is bound to one dataset for its lifetime so parallel
    backends can ship the (potentially large) arrays to workers once
    instead of once per trial.
    """

    backend: str = "abstract"

    def __init__(self, data: Dataset, n_workers: int = 1) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.data = data
        self.n_workers = int(n_workers)

    @abc.abstractmethod
    def submit(self, spec: TrialSpec) -> TrialHandle:
        """Schedule one trial; returns a handle to its future outcome."""

    def shutdown(self) -> None:
        """Release worker resources; pending handles may be abandoned."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def make_executor(backend: str, data: Dataset, n_workers: int = 1,
                  warmup: dict | None = None) -> TrialExecutor:
    """Build an executor by name: 'serial' | 'thread' | 'process'.

    ``warmup`` is the plane-warmup context for process workers (see
    :class:`~repro.exec.process.ProcessExecutor`); the in-process
    backends ignore it — they share the caller's plane, which the first
    trial warms inline.
    """
    from .process import ProcessExecutor
    from .serial import SerialExecutor
    from .threaded import ThreadExecutor

    factory = {
        "serial": SerialExecutor,
        "thread": ThreadExecutor,
        "process": ProcessExecutor,
    }.get(backend)
    if factory is None:
        raise ValueError(
            f"unknown backend {backend!r}; known: serial, thread, process"
        )
    if factory is ProcessExecutor:
        return factory(data, n_workers=n_workers, warmup=warmup)
    return factory(data, n_workers=n_workers)
