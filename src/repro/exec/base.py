"""Trial-execution interface: what a trial *is* and how backends run one.

The controllers (``repro.core.controller`` / ``repro.core.parallel``)
describe each trial as a :class:`TrialSpec` — the χ = (learner,
hyperparameters, sample size, resampling) of the paper plus the
evaluation context — and submit it to a :class:`TrialExecutor`.  The
executor decides *where* the trial runs:

* :class:`~repro.exec.serial.SerialExecutor` — inline, in the caller;
* :class:`~repro.exec.threaded.ThreadExecutor` — a thread pool;
* :class:`~repro.exec.process.ProcessExecutor` — a process pool (true
  multi-core parallelism with crash isolation).

``submit`` returns a :class:`TrialHandle`; ``handle.result()`` blocks
until the :class:`~repro.core.evaluate.TrialOutcome` is available.  The
scheduler-facing conveniences (trial caching, inf-error conversion of
crashes and timeouts) live one layer up in
:class:`~repro.exec.engine.ExecutionEngine`.
"""

from __future__ import annotations

import abc
import concurrent.futures
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from ..core.evaluate import TrialOutcome, evaluate_config
from ..data.dataset import Dataset
from ..faults import InjectedCrash, InjectedFault, fault_hook
from ..metrics.registry import Metric

__all__ = [
    "TrialSpec",
    "TrialHandle",
    "ImmediateHandle",
    "FutureHandle",
    "TrialExecutor",
    "PoolBrokenError",
    "run_spec",
    "make_executor",
]


class PoolBrokenError(RuntimeError):
    """An executor's worker substrate is broken beyond its own repair
    budget (e.g. a process pool that keeps dying on rebuild).  The
    engine reacts by degrading to the next backend down the
    process → thread → serial ladder."""


def _freeze(value):
    """Make one config value hashable for cache keys."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, (list, tuple, np.ndarray)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass
class TrialSpec:
    """One trial χ = (learner, config, sample size, resampling) + context.

    ``train_time_limit`` is advisory: learners that accept it stop
    training when it elapses.  Hard per-trial limits are enforced by the
    engine at ``result()`` time instead.
    """

    learner: str
    estimator_cls: type
    config: dict
    sample_size: int
    resampling: str
    metric: Metric
    n_splits: int = 5
    holdout_ratio: float = 0.1
    seed: int = 0
    train_time_limit: float | None = None
    labels: np.ndarray | None = field(default=None, repr=False)
    # forecast-trial context (resampling == "temporal" only): the
    # rolling-origin validation width and the series' seasonal period
    horizon: int = 1
    seasonal_period: int | None = None
    #: retry attempt number (0 = first attempt).  Excluded from the
    #: cache key — a retried trial computes the same result — but part
    #: of fault-injection keys, so a retry re-rolls its fault dice
    #: instead of deterministically re-hitting the same injected fault
    attempt: int = 0

    def cache_key(self) -> tuple:
        """Identity of the trial's *result* (excludes time limits, which
        only bound how long training may take, not what it computes)."""
        cfg = tuple(sorted((k, _freeze(v)) for k, v in self.config.items()))
        return (
            self.learner,
            cfg,
            int(self.sample_size),
            self.resampling,
            self.metric.name,
            int(self.n_splits),
            float(self.holdout_ratio),
            int(self.seed),
            int(self.horizon),
            int(self.seasonal_period or 0),
        )


class TrialHandle(abc.ABC):
    """A submitted trial; ``result`` blocks until the outcome is ready."""

    @abc.abstractmethod
    def result(self, timeout: float | None = None) -> TrialOutcome:
        """Return the outcome, raising on worker crash or timeout."""

    @abc.abstractmethod
    def done(self) -> bool:
        """Whether the outcome is already available."""

    def cancel(self) -> bool:
        """Best-effort cancellation of a trial the caller has abandoned.

        Returns ``True`` when the backend could actually stop the work.
        Only a *queued, not yet started* thread/process task is truly
        cancellable; a trial already running on a thread cannot be
        killed (Python threads are not interruptible) and keeps burning
        its worker slot until its advisory ``train_time_limit`` stops
        training — callers must treat such slots as busy until the
        underlying call returns (see ``EngineHandle.worker_done``).
        """
        return False


class ImmediateHandle(TrialHandle):
    """Handle for a trial that already ran (serial backend, cache hits).

    ``error`` carries an exception raised while running the trial
    inline; it is re-raised at :meth:`result` time so the serial backend
    surfaces infrastructure failures exactly like the pooled backends do
    (at resolve time, where the engine classifies them as crashes) —
    not at submit time.
    """

    def __init__(self, outcome: TrialOutcome | None = None,
                 error: BaseException | None = None) -> None:
        if (outcome is None) == (error is None):
            raise ValueError("exactly one of outcome/error is required")
        self._outcome = outcome
        self._error = error

    def result(self, timeout: float | None = None) -> TrialOutcome:
        if self._error is not None:
            raise self._error
        return self._outcome

    def done(self) -> bool:
        return True


class FutureHandle(TrialHandle):
    """Handle wrapping a ``concurrent.futures.Future`` (thread/process)."""

    def __init__(self, future: concurrent.futures.Future) -> None:
        self.future = future

    def result(self, timeout: float | None = None) -> TrialOutcome:
        return self.future.result(timeout=timeout)

    def done(self) -> bool:
        return self.future.done()

    def cancel(self) -> bool:
        return self.future.cancel()


def _check_trial_faults(spec: TrialSpec) -> None:
    """Consult the trial-level fault sites (no-ops without a plan).

    Keys include the spec's cache key *and* its attempt number: the same
    trial re-rolls independently per retry, so a plan with p < 1 is
    absorbed by retries rather than failing the same trial forever.
    """
    key = (spec.cache_key(), spec.attempt)
    rule = fault_hook("worker.hang", key=key)
    if rule is not None:
        time.sleep(rule.param if rule.param is not None else 30.0)
    rule = fault_hook("worker.crash", key=key)
    if rule is not None:
        if rule.hard:
            from . import process as _process_mod

            # a real worker death (skips atexit/finally, like a
            # segfault) — but only inside an actual pool worker: on an
            # in-process backend os._exit would take the driver down,
            # so there the rule degrades to the soft crash below
            if (multiprocessing.parent_process() is not None
                    and _process_mod._WORKER_DATA is not None):
                os._exit(13)
        raise InjectedCrash(
            f"injected worker.crash (trial {spec.learner!r} "
            f"attempt {spec.attempt})"
        )
    rule = fault_hook("trial.exception", key=key)
    if rule is not None:
        raise InjectedFault(
            f"injected trial.exception (trial {spec.learner!r} "
            f"attempt {spec.attempt})"
        )


def run_spec(data: Dataset, spec: TrialSpec) -> TrialOutcome:
    """Execute one TrialSpec against a dataset (the backend work unit)."""
    try:
        _check_trial_faults(spec)
    except InjectedFault:
        # mirrors evaluate_config's failed-trial convention: an in-trial
        # exception becomes an inf-error outcome with its traceback
        return TrialOutcome(
            error=float("inf"), cost=0.0, model=None,
            failure=traceback.format_exc(),
        )
    return evaluate_config(
        data,
        spec.estimator_cls,
        spec.config,
        sample_size=spec.sample_size,
        resampling=spec.resampling,
        metric=spec.metric,
        n_splits=spec.n_splits,
        holdout_ratio=spec.holdout_ratio,
        seed=spec.seed,
        train_time_limit=spec.train_time_limit,
        labels=spec.labels,
        horizon=spec.horizon,
        seasonal_period=spec.seasonal_period,
    )


class TrialExecutor(abc.ABC):
    """Pluggable backend that turns TrialSpecs into TrialOutcomes.

    An executor is bound to one dataset for its lifetime so parallel
    backends can ship the (potentially large) arrays to workers once
    instead of once per trial.
    """

    backend: str = "abstract"

    def __init__(self, data: Dataset, n_workers: int = 1) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.data = data
        self.n_workers = int(n_workers)

    @abc.abstractmethod
    def submit(self, spec: TrialSpec) -> TrialHandle:
        """Schedule one trial; returns a handle to its future outcome."""

    def shutdown(self) -> None:
        """Release worker resources; pending handles may be abandoned."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def make_executor(backend: str, data: Dataset, n_workers: int = 1,
                  warmup: dict | None = None) -> TrialExecutor:
    """Build an executor by name: 'serial' | 'thread' | 'process'.

    ``warmup`` is the plane-warmup context for process workers (see
    :class:`~repro.exec.process.ProcessExecutor`); the in-process
    backends ignore it — they share the caller's plane, which the first
    trial warms inline.
    """
    from .process import ProcessExecutor
    from .serial import SerialExecutor
    from .threaded import ThreadExecutor

    factory = {
        "serial": SerialExecutor,
        "thread": ThreadExecutor,
        "process": ProcessExecutor,
    }.get(backend)
    if factory is None:
        raise ValueError(
            f"unknown backend {backend!r}; known: serial, thread, process"
        )
    if factory is ProcessExecutor:
        return factory(data, n_workers=n_workers, warmup=warmup)
    return factory(data, n_workers=n_workers)
