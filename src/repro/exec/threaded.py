"""Thread-pool backend.

Trials share the interpreter (the learners are numpy-heavy, so much of a
trial's time releases the GIL inside BLAS/ufunc calls) and share the
dataset by reference — no serialisation cost at all.  Best for
overlapping many short trials or when the dataset is too large to ship
to worker processes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from ..data.dataset import Dataset
from .base import FutureHandle, TrialExecutor, TrialSpec, run_spec

__all__ = ["ThreadExecutor"]


class ThreadExecutor(TrialExecutor):
    """Run trials on a ``ThreadPoolExecutor`` of ``n_workers`` threads."""

    backend = "thread"

    def __init__(self, data: Dataset, n_workers: int = 2) -> None:
        super().__init__(data, n_workers=n_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-trial"
        )

    def submit(self, spec: TrialSpec) -> FutureHandle:
        """Queue the trial onto the thread pool."""
        return FutureHandle(self._pool.submit(run_spec, self.data, spec))

    def shutdown(self) -> None:
        """Stop the pool without waiting on abandoned trials."""
        self._pool.shutdown(wait=False, cancel_futures=True)
