"""LRU trial cache: repeated proposals are free.

FLOW2 on integer/categorical domains frequently rounds distinct unit-cube
points to the *same* configuration, warm restarts re-propose configs an
earlier run already evaluated, and parallel search threads can race to
identical proposals.  Since a trial is a pure function of
``(learner, config, sample size, resampling, seed)`` — see
:meth:`~repro.exec.base.TrialSpec.cache_key` — its outcome can be reused
instead of re-trained.

The cache stores model-free outcomes (models can be arbitrarily large;
the search only needs (error, cost)) and keeps hit/miss counters that the
controllers surface on :class:`~repro.core.controller.SearchResult`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..core.evaluate import TrialOutcome

__all__ = ["TrialCache"]


class TrialCache:
    """Bounded LRU map from trial cache keys to TrialOutcomes."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[tuple, TrialOutcome] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: tuple) -> TrialOutcome | None:
        """Look up a trial outcome; counts a hit or a miss."""
        with self._lock:
            out = self._store.get(key)
            if out is None:
                self.misses += 1
                return None
            self._store.move_to_end(key)
            self.hits += 1
            return out

    def put(self, key: tuple, outcome: TrialOutcome) -> None:
        """Store a finished trial (model stripped), evicting the LRU entry."""
        slim = TrialOutcome(error=outcome.error, cost=outcome.cost, model=None)
        with self._lock:
            self._store[key] = slim
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._store.clear()
