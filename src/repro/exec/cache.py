"""LRU trial cache: repeated proposals are free.

FLOW2 on integer/categorical domains frequently rounds distinct unit-cube
points to the *same* configuration, warm restarts re-propose configs an
earlier run already evaluated, and parallel search threads can race to
identical proposals.  Since a trial is a pure function of
``(learner, config, sample size, resampling, seed)`` — see
:meth:`~repro.exec.base.TrialSpec.cache_key` — its outcome can be reused
instead of re-trained.

The cache stores model-free outcomes (models can be arbitrarily large;
the search only needs the measurement) but keeps every other field —
``attempts`` and ``failure`` in particular, so a cache-hit replay reports
the same retry history the original trial had.

Since the cross-search promotion (multi-tenant fit service) one store may
be shared by many concurrent searches: keys are dataset-scoped by the
caller (:func:`~repro.exec.engine.dataset_token` prefixes every key) and
the ``hits``/``misses`` counters here are **store-wide aggregates** over
all callers.  Per-search attribution — what
:class:`~repro.core.controller.SearchResult` surfaces as ``cache_hits`` —
lives in each caller's own :class:`~repro.exec.engine.ExecutionEngine`
counters, never here, so concurrent searches cannot misattribute each
other's lookups.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict

from ..core.evaluate import TrialOutcome

__all__ = ["TrialCache"]


class TrialCache:
    """Bounded LRU map from trial cache keys to TrialOutcomes."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[tuple, TrialOutcome] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: tuple) -> TrialOutcome | None:
        """Look up a trial outcome; counts a store-wide hit or miss.

        Callers that need *per-search* attribution (``SearchResult.
        cache_hits`` with a shared store) must count on their side —
        these counters aggregate over every engine sharing the store.
        """
        with self._lock:
            out = self._store.get(key)
            if out is None:
                self.misses += 1
                return None
            self._store.move_to_end(key)
            self.hits += 1
            return out

    def put(self, key: tuple, outcome: TrialOutcome) -> None:
        """Store a finished trial, evicting the LRU entry when full.

        Only the heavyweight payloads are stripped (the model, plus any
        unmerged observability buffers); every measurement field —
        ``error``, ``cost``, ``attempts``, ``failure`` — survives the
        round trip, so a replayed hit reports the retry history of the
        original execution instead of silently resetting it.
        """
        slim = dataclasses.replace(outcome, model=None, trace=None,
                                   metrics=None)
        with self._lock:
            self._store[key] = slim
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._store.clear()
