"""ExecutionEngine: the scheduler-facing facade over executor + cache.

Controllers never talk to a backend directly; they submit
:class:`~repro.exec.base.TrialSpec`s here.  The engine adds the policies
every scheduler wants regardless of backend:

* **trial caching** — a spec whose cache key was already evaluated
  resolves instantly with the stored error (cost = the lookup time);
* **crash isolation** — a worker that raises, dies, or cannot even be
  submitted to yields an inf-error outcome instead of an exception
  (matching ``evaluate_config``'s own failed-trial convention);
* **hard per-trial time limits** — ``outcome()`` bounds how long the
  caller waits; an overdue trial is cancelled if still queued, else
  abandoned (its worker keeps running into its advisory
  ``train_time_limit``) and recorded as inf-error;
* **retries** — with a :class:`RetryPolicy`, a crashed or timed-out
  trial is re-submitted (exponential backoff, deterministic jitter,
  bounded by a per-search retry budget) before an inf-error is
  committed.  Retries happen synchronously inside ``outcome()``, so
  launch-order commit determinism is preserved;
* **backend degradation** — an executor whose substrate is broken
  beyond repair (:class:`~repro.exec.base.PoolBrokenError`, e.g. a
  process pool that dies on every rebuild) is swapped for the next
  backend down the ``process → thread → serial`` ladder with one loud
  log line, mirroring the native→numpy kernel degradation contract.
"""

from __future__ import annotations

import dataclasses
import logging
import time
import traceback

import numpy as np

from ..core.evaluate import TrialOutcome
from ..data.dataset import Dataset
from ..faults import stable_unit
from ..obs.metrics import REGISTRY
from ..obs.trace import ingest_spans
from .base import PoolBrokenError, TrialExecutor, TrialSpec
from .cache import TrialCache

__all__ = ["ExecutionEngine", "EngineHandle", "RetryPolicy"]

_log = logging.getLogger("repro.exec")

_TIMEOUT_EXCS = (TimeoutError,)
try:  # concurrent.futures.TimeoutError aliases TimeoutError on 3.11+
    from concurrent.futures import TimeoutError as _CFTimeoutError

    _TIMEOUT_EXCS = (TimeoutError, _CFTimeoutError)
except ImportError:  # pragma: no cover
    pass

#: backend degradation ladder (mirrors native→numpy: degrade once,
#: loudly, instead of thrashing a broken substrate forever)
_DEGRADE_LADDER = {"process": "thread", "thread": "serial"}


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How the engine retries crashed / timed-out trials.

    ``max_attempts`` counts total executions (1 = retries disabled).
    Backoff before attempt ``k`` (k >= 1) is ``min(backoff_base *
    backoff_factor**(k-1), backoff_max)`` scaled by a deterministic
    jitter in ``[1 - jitter, 1]`` derived from the trial's identity —
    reproducible across runs and backends, unlike ``random.random()``.
    ``retry_budget`` bounds the *total* retries one engine (one search)
    may spend, so a systematically broken substrate cannot multiply the
    budget away; ``retry_on`` names the terminal statuses worth
    retrying (failed trials are deterministic learner errors and are
    not retried by default).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    retry_budget: int | None = None
    retry_on: tuple[str, ...] = ("crash", "timeout")

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_for(self, attempt: int, key) -> float:
        """Deterministic backoff (seconds) before retry ``attempt``
        (1-based) of the trial identified by ``key``."""
        raw = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        if not self.jitter:
            return raw
        u = stable_unit(("retry-backoff", key, attempt))
        return raw * (1.0 - self.jitter * u)


class EngineHandle:
    """One submitted trial, resolvable exactly once via :meth:`outcome`."""

    def __init__(self, engine: "ExecutionEngine", spec: TrialSpec,
                 handle=None, outcome: TrialOutcome | None = None,
                 cache_hit: bool = False) -> None:
        self.spec = spec
        self.cache_hit = cache_hit
        self.timed_out = False
        self.attempt = 0
        self.backoffs: list[float] = []
        self.submit_time = time.perf_counter()
        self._first_submit_time = self.submit_time
        self._engine = engine
        self._handle = handle
        self._outcome = outcome
        #: handles of timed-out attempts whose workers may still run
        self._abandoned: list = []

    def done(self) -> bool:
        """Whether :meth:`outcome` would return without blocking."""
        return self._outcome is not None or self._handle.done()

    def worker_done(self) -> bool:
        """Whether every backend call this handle issued has finished —
        distinct from :meth:`done` for timed-out attempts, whose
        abandoned workers may still be running and occupying slots."""
        if any(not h.done() for h in self._abandoned):
            return False
        return self._handle is None or self._handle.done()

    # ------------------------------------------------------------------
    def _resolve_once(self, timeout: float | None) -> tuple[str, TrialOutcome]:
        """Wait for the current attempt; classify its terminal status."""
        try:
            out = self._handle.result(timeout=timeout)
        except KeyboardInterrupt:
            raise
        except _TIMEOUT_EXCS:
            limit = f" ({timeout:.3g}s)" if timeout is not None else ""
            # a queued-but-unstarted task can be truly cancelled, freeing
            # its worker slot; a running one is merely abandoned (see
            # TrialHandle.cancel for where true cancellation is
            # impossible) and tracked so worker_done() reports it busy
            if not self._handle.cancel():
                self._abandoned.append(self._handle)
            return "timeout", TrialOutcome(
                error=float("inf"),
                cost=time.perf_counter() - self.submit_time,
                model=None,
                failure="trial abandoned: exceeded the engine trial time "
                        f"limit{limit}",
            )
        except Exception:
            # worker crash / broken pool / unpicklable payload: isolate it
            return "crash", TrialOutcome(
                error=float("inf"),
                cost=time.perf_counter() - self.submit_time,
                model=None,
                failure=traceback.format_exc(),
            )
        status = "failed" if out.failure is not None else "ok"
        return status, out

    def outcome(self, timeout: float | None = None) -> TrialOutcome:
        """Resolve the trial (blocking up to ``timeout`` seconds per
        attempt).

        Never raises for trial-level failures: a crashed worker or an
        expired timeout is retried under the engine's
        :class:`RetryPolicy` (if any) and, once attempts or budget run
        out, produces an inf-error outcome — the search moves on.  The
        resolved outcome is memoised, so calling again is free and
        idempotent.
        """
        if self._outcome is not None:
            return self._outcome
        engine = self._engine
        while True:
            status, out = self._resolve_once(timeout)
            if status in ("ok", "failed"):
                break
            policy = engine.retry_policy
            if policy is None or self.attempt + 1 >= policy.max_attempts:
                break
            if not engine._take_retry_token(status):
                break
            delay = engine.retry_policy.backoff_for(
                self.attempt + 1, self.spec.cache_key()
            )
            self.backoffs.append(delay)
            if delay > 0:
                time.sleep(delay)
            self.attempt += 1
            retry_spec = dataclasses.replace(self.spec, attempt=self.attempt)
            try:
                self._handle = engine._backend_submit(retry_spec)
            except KeyboardInterrupt:
                raise
            except Exception:
                status = "crash"
                out = TrialOutcome(
                    error=float("inf"),
                    cost=time.perf_counter() - self.submit_time,
                    model=None,
                    failure=traceback.format_exc(),
                )
                break
            self.submit_time = time.perf_counter()
            # retry attempts each get the engine-wide per-trial limit
            # (the caller's ``timeout`` bounded only the first attempt)
            timeout = engine.trial_time_limit
        self.timed_out = status == "timeout"
        if self.attempt > 0:
            out = dataclasses.replace(out, attempts=self.attempt + 1)
            if out.failure is not None:
                waits = ", ".join(f"{b:.3f}s" for b in self.backoffs)
                out = dataclasses.replace(
                    out,
                    failure=out.failure.rstrip("\n")
                    + f"\n[retries: {out.attempts} attempts, "
                      f"backoff: {waits}]",
                )
        if status in ("ok", "failed"):
            out = engine._absorb(self.spec, out)
        engine._observe(self, out, status)
        self._outcome = out
        return out


def dataset_token(data: Dataset) -> tuple:
    """Cheap fingerprint identifying a dataset for cache keys.

    A :class:`TrialCache` may outlive one search (warm restarts,
    re-tuning on refreshed data), so cached outcomes must be scoped to
    the data they were measured on — shape/task plus a CRC of a row
    sample (the same probe the binned plane uses for staleness) catches
    both different datasets and refreshed rows.
    """
    from ..data.binned import row_sample_crc

    return (
        data.name, data.task, int(data.n), int(data.d), row_sample_crc(data)
    )


class ExecutionEngine:
    """Submit trials through a backend with caching + failure policies."""

    def __init__(self, executor: TrialExecutor,
                 cache: TrialCache | None = None,
                 trial_time_limit: float | None = None,
                 own_executor: bool = True,
                 retry_policy: RetryPolicy | None = None,
                 tenant: str | None = None) -> None:
        self.executor = executor
        self.cache = cache
        self.trial_time_limit = trial_time_limit
        self.retry_policy = retry_policy
        self.retries_used = 0
        self.degradations: list[tuple[str, str]] = []
        #: tenant owning this search (multi-tenant fit service); labels
        #: the ``repro_tenant_*`` / ``repro_trial_cache_*`` series
        self.tenant = tenant
        self._own_executor = bool(own_executor)
        self._data_token = (
            dataset_token(executor.data) if cache is not None else None
        )
        # per-engine (= per-search) cache attribution: the TrialCache may
        # be shared across concurrent searches, whose store-wide counters
        # would misattribute hits between tenants
        self._cache_hits = 0
        self._cache_misses = 0
        tenant_labels = {"tenant": tenant} if tenant else {}
        self._m_cache_hit = REGISTRY.counter(
            "repro_trial_cache_total",
            "Trial-cache lookups by result.", result="hit", **tenant_labels,
        )
        self._m_cache_miss = REGISTRY.counter(
            "repro_trial_cache_total",
            "Trial-cache lookups by result.", result="miss", **tenant_labels,
        )
        self._bind_backend_metrics()

    def _bind_backend_metrics(self) -> None:
        """(Re-)resolve the per-backend series; called again after a
        backend degradation so the labels stay truthful."""
        backend = self.executor.backend
        self._m_queue_wait = REGISTRY.histogram(
            "repro_exec_queue_wait_seconds",
            "Time a trial spent queued before its worker ran it "
            "(resolve wall minus measured trial cost).",
            backend=backend,
        )
        self._m_trial_seconds = REGISTRY.histogram(
            "repro_trial_seconds",
            "Measured per-trial evaluation cost.", backend=backend,
        )

    def _trials_counter(self, status: str):
        return REGISTRY.counter(
            "repro_trials_total",
            "Trials resolved by the engine, by terminal status.",
            status=status, backend=self.backend,
        )

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Name of the underlying executor backend."""
        return self.executor.backend

    @property
    def n_workers(self) -> int:
        """Worker count of the underlying executor."""
        return self.executor.n_workers

    @property
    def cache_hits(self) -> int:
        """Trials *this engine* short-circuited via the cache — not the
        store-wide total, which aggregates every search sharing it."""
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        """This engine's cache lookups that fell through to the executor."""
        return self._cache_misses

    # -- retry / degradation policies ----------------------------------
    def _take_retry_token(self, status: str) -> bool:
        """Whether a trial that ended with ``status`` may retry now;
        consumes one unit of the per-search retry budget if so."""
        policy = self.retry_policy
        if policy is None or status not in policy.retry_on:
            return False
        if (
            policy.retry_budget is not None
            and self.retries_used >= policy.retry_budget
        ):
            return False
        self.retries_used += 1
        REGISTRY.counter(
            "repro_trial_retries_total",
            "Trial retries issued by the engine, by the status that "
            "triggered them.",
            cause=status, backend=self.backend,
        ).inc()
        return True

    def _degrade(self, reason: str) -> None:
        """Swap the broken executor for the next backend down the
        ladder (process → thread → serial), exactly once per step."""
        from .base import make_executor

        old = self.executor
        target = _DEGRADE_LADDER.get(old.backend, "serial")
        _log.error(
            "execution backend %r is broken beyond repair (%s); "
            "degrading to %r for the rest of this search",
            old.backend, reason, target,
        )
        REGISTRY.counter(
            "repro_backend_degradations_total",
            "Engine backend degradations (process→thread→serial ladder).",
            **{"from": old.backend, "to": target},
        ).inc()
        self.degradations.append((old.backend, target))
        data, n_workers = old.data, old.n_workers
        try:
            old.shutdown()  # unlinks shm segments even when not owned:
            # the substrate is broken, keeping it can only leak
        except Exception:  # pragma: no cover - defensive
            _log.exception("shutdown of the broken %r executor failed",
                           old.backend)
        self.executor = make_executor(
            target, data,
            n_workers=n_workers if target != "serial" else 1,
        )
        self._own_executor = True
        self._bind_backend_metrics()

    def _backend_submit(self, spec: TrialSpec):
        """Submit to the executor, riding the degradation ladder when
        the substrate reports itself broken beyond repair."""
        while True:
            try:
                return self.executor.submit(spec)
            except PoolBrokenError as exc:
                self._degrade(str(exc))

    # ------------------------------------------------------------------
    def _key(self, spec: TrialSpec) -> tuple:
        return self._data_token + spec.cache_key()

    def _store(self, spec: TrialSpec, outcome: TrialOutcome) -> None:
        # failed trials are never cached: an inf error usually reflects
        # circumstance (budget truncation, a dying worker), and replaying
        # it from the cache would poison every later run that shares it
        if self.cache is not None and np.isfinite(outcome.error):
            self.cache.put(self._key(spec), outcome)

    def _absorb(self, spec: TrialSpec, outcome: TrialOutcome) -> TrialOutcome:
        """Fold a resolved trial's observability payloads into this
        process — worker-shipped span buffers into the tracer ring,
        metric diffs into the registry — then strip them from the
        outcome so the memoised/cached copy is lean and a cache replay
        can never double-merge them."""
        if outcome.trace:
            ingest_spans(outcome.trace)
        if outcome.metrics:
            REGISTRY.merge(outcome.metrics)
        if outcome.trace is not None or outcome.metrics is not None:
            outcome = dataclasses.replace(outcome, trace=None, metrics=None)
        self._store(spec, outcome)
        return outcome

    def _observe(self, handle: "EngineHandle", outcome: TrialOutcome,
                 status: str) -> None:
        """Record per-trial engine metrics at resolve time."""
        wait = (time.perf_counter() - handle.submit_time) - outcome.cost
        self._m_queue_wait.observe(max(0.0, wait))
        self._m_trial_seconds.observe(max(0.0, outcome.cost))
        self._trials_counter(status).inc()
        self._tenant_observe(status, outcome.cost)

    def _tenant_observe(self, status: str, cost: float) -> None:
        """Per-tenant accounting for the multi-tenant fit service; inert
        for engines without a tenant label."""
        if not self.tenant:
            return
        REGISTRY.counter(
            "repro_tenant_trials_total",
            "Trials resolved per tenant, by terminal status.",
            tenant=self.tenant, status=status,
        ).inc()
        REGISTRY.histogram(
            "repro_tenant_trial_seconds",
            "Measured per-trial evaluation cost, per tenant.",
            tenant=self.tenant,
        ).observe(max(0.0, cost))

    def submit(self, spec: TrialSpec) -> EngineHandle:
        """Schedule one trial, consulting the cache first.

        A cache hit returns an already-done handle whose outcome carries
        the stored error at (near-)zero cost — the "repeated proposals
        are free" contract.
        """
        if self.cache is not None:
            t0 = time.perf_counter()
            hit = self.cache.get(self._key(spec))
            if hit is not None:
                self._cache_hits += 1
                self._m_cache_hit.inc()
                self._trials_counter("cache-hit").inc()
                self._tenant_observe("cache-hit", 0.0)
                # replay everything but the cost (this lookup was nearly
                # free): in particular `attempts`/`failure` survive, so a
                # replayed trial reports the retry history of the run
                # that actually executed it
                out = dataclasses.replace(
                    hit, cost=max(time.perf_counter() - t0, 1e-9),
                )
                return EngineHandle(self, spec, outcome=out, cache_hit=True)
            self._cache_misses += 1
            self._m_cache_miss.inc()
        try:
            handle = self._backend_submit(spec)
        except KeyboardInterrupt:
            raise
        except Exception:
            # a spec the backend cannot even accept (e.g. unpicklable
            # payload) becomes a failed trial, not a dead search
            self._trials_counter("submit-error").inc()
            out = TrialOutcome(error=float("inf"), cost=0.0, model=None,
                               failure=traceback.format_exc())
            return EngineHandle(self, spec, outcome=out)
        return EngineHandle(self, spec, handle=handle)

    def run(self, spec: TrialSpec) -> TrialOutcome:
        """Submit and synchronously resolve one trial (honours the
        engine-wide ``trial_time_limit``)."""
        return self.submit(spec).outcome(timeout=self.trial_time_limit)

    def shutdown(self) -> None:
        """Release the executor if this engine owns it."""
        if self._own_executor:
            self.executor.shutdown()
