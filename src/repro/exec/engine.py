"""ExecutionEngine: the scheduler-facing facade over executor + cache.

Controllers never talk to a backend directly; they submit
:class:`~repro.exec.base.TrialSpec`s here.  The engine adds the policies
every scheduler wants regardless of backend:

* **trial caching** — a spec whose cache key was already evaluated
  resolves instantly with the stored error (cost = the lookup time);
* **crash isolation** — a worker that raises, dies, or cannot even be
  submitted to yields an inf-error outcome instead of an exception
  (matching ``evaluate_config``'s own failed-trial convention);
* **hard per-trial time limits** — ``outcome()`` bounds how long the
  caller waits; an overdue trial is recorded as inf-error and abandoned
  (its worker keeps running into its advisory ``train_time_limit``).
"""

from __future__ import annotations

import dataclasses
import time
import traceback

import numpy as np

from ..core.evaluate import TrialOutcome
from ..data.dataset import Dataset
from ..obs.metrics import REGISTRY
from ..obs.trace import ingest_spans
from .base import TrialExecutor, TrialSpec
from .cache import TrialCache

__all__ = ["ExecutionEngine", "EngineHandle"]

_TIMEOUT_EXCS = (TimeoutError,)
try:  # concurrent.futures.TimeoutError aliases TimeoutError on 3.11+
    from concurrent.futures import TimeoutError as _CFTimeoutError

    _TIMEOUT_EXCS = (TimeoutError, _CFTimeoutError)
except ImportError:  # pragma: no cover
    pass


class EngineHandle:
    """One submitted trial, resolvable exactly once via :meth:`outcome`."""

    def __init__(self, engine: "ExecutionEngine", spec: TrialSpec,
                 handle=None, outcome: TrialOutcome | None = None,
                 cache_hit: bool = False) -> None:
        self.spec = spec
        self.cache_hit = cache_hit
        self.timed_out = False
        self.submit_time = time.perf_counter()
        self._engine = engine
        self._handle = handle
        self._outcome = outcome

    def done(self) -> bool:
        """Whether :meth:`outcome` would return without blocking."""
        return self._outcome is not None or self._handle.done()

    def worker_done(self) -> bool:
        """Whether the backend call itself has finished — distinct from
        :meth:`done` for a handle resolved as a timeout, whose abandoned
        worker may still be running."""
        return self._handle is None or self._handle.done()

    def outcome(self, timeout: float | None = None) -> TrialOutcome:
        """Resolve the trial (blocking up to ``timeout`` seconds).

        Never raises for trial-level failures: a crashed worker or an
        expired timeout produces an inf-error outcome, and the search
        moves on.  The resolved outcome is memoised, so calling again is
        free and idempotent.
        """
        if self._outcome is not None:
            return self._outcome
        status = "ok"
        try:
            out = self._handle.result(timeout=timeout)
        except KeyboardInterrupt:
            raise
        except _TIMEOUT_EXCS:
            self.timed_out = True
            status = "timeout"
            limit = f" ({timeout:.3g}s)" if timeout is not None else ""
            out = TrialOutcome(
                error=float("inf"),
                cost=time.perf_counter() - self.submit_time,
                model=None,
                failure="trial abandoned: exceeded the engine trial time "
                        f"limit{limit}",
            )
        except Exception:
            # worker crash / broken pool / unpicklable payload: isolate it
            status = "crash"
            out = TrialOutcome(
                error=float("inf"),
                cost=time.perf_counter() - self.submit_time,
                model=None,
                failure=traceback.format_exc(),
            )
        else:
            out = self._engine._absorb(self.spec, out)
            if out.failure is not None:
                status = "failed"
        self._engine._observe(self, out, status)
        self._outcome = out
        return out


def dataset_token(data: Dataset) -> tuple:
    """Cheap fingerprint identifying a dataset for cache keys.

    A :class:`TrialCache` may outlive one search (warm restarts,
    re-tuning on refreshed data), so cached outcomes must be scoped to
    the data they were measured on — shape/task plus a CRC of a row
    sample (the same probe the binned plane uses for staleness) catches
    both different datasets and refreshed rows.
    """
    from ..data.binned import row_sample_crc

    return (
        data.name, data.task, int(data.n), int(data.d), row_sample_crc(data)
    )


class ExecutionEngine:
    """Submit trials through a backend with caching + failure policies."""

    def __init__(self, executor: TrialExecutor,
                 cache: TrialCache | None = None,
                 trial_time_limit: float | None = None,
                 own_executor: bool = True) -> None:
        self.executor = executor
        self.cache = cache
        self.trial_time_limit = trial_time_limit
        self._own_executor = bool(own_executor)
        self._data_token = (
            dataset_token(executor.data) if cache is not None else None
        )
        backend = executor.backend
        self._m_cache_hit = REGISTRY.counter(
            "repro_trial_cache_total",
            "Trial-cache lookups by result.", result="hit",
        )
        self._m_cache_miss = REGISTRY.counter(
            "repro_trial_cache_total",
            "Trial-cache lookups by result.", result="miss",
        )
        self._m_queue_wait = REGISTRY.histogram(
            "repro_exec_queue_wait_seconds",
            "Time a trial spent queued before its worker ran it "
            "(resolve wall minus measured trial cost).",
            backend=backend,
        )
        self._m_trial_seconds = REGISTRY.histogram(
            "repro_trial_seconds",
            "Measured per-trial evaluation cost.", backend=backend,
        )

    def _trials_counter(self, status: str):
        return REGISTRY.counter(
            "repro_trials_total",
            "Trials resolved by the engine, by terminal status.",
            status=status, backend=self.backend,
        )

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Name of the underlying executor backend."""
        return self.executor.backend

    @property
    def n_workers(self) -> int:
        """Worker count of the underlying executor."""
        return self.executor.n_workers

    @property
    def cache_hits(self) -> int:
        """Trials short-circuited by the cache so far."""
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        """Cache lookups that fell through to the executor."""
        return self.cache.misses if self.cache is not None else 0

    # ------------------------------------------------------------------
    def _key(self, spec: TrialSpec) -> tuple:
        return self._data_token + spec.cache_key()

    def _store(self, spec: TrialSpec, outcome: TrialOutcome) -> None:
        # failed trials are never cached: an inf error usually reflects
        # circumstance (budget truncation, a dying worker), and replaying
        # it from the cache would poison every later run that shares it
        if self.cache is not None and np.isfinite(outcome.error):
            self.cache.put(self._key(spec), outcome)

    def _absorb(self, spec: TrialSpec, outcome: TrialOutcome) -> TrialOutcome:
        """Fold a resolved trial's observability payloads into this
        process — worker-shipped span buffers into the tracer ring,
        metric diffs into the registry — then strip them from the
        outcome so the memoised/cached copy is lean and a cache replay
        can never double-merge them."""
        if outcome.trace:
            ingest_spans(outcome.trace)
        if outcome.metrics:
            REGISTRY.merge(outcome.metrics)
        if outcome.trace is not None or outcome.metrics is not None:
            outcome = dataclasses.replace(outcome, trace=None, metrics=None)
        self._store(spec, outcome)
        return outcome

    def _observe(self, handle: "EngineHandle", outcome: TrialOutcome,
                 status: str) -> None:
        """Record per-trial engine metrics at resolve time."""
        wait = (time.perf_counter() - handle.submit_time) - outcome.cost
        self._m_queue_wait.observe(max(0.0, wait))
        self._m_trial_seconds.observe(max(0.0, outcome.cost))
        self._trials_counter(status).inc()

    def submit(self, spec: TrialSpec) -> EngineHandle:
        """Schedule one trial, consulting the cache first.

        A cache hit returns an already-done handle whose outcome carries
        the stored error at (near-)zero cost — the "repeated proposals
        are free" contract.
        """
        if self.cache is not None:
            t0 = time.perf_counter()
            hit = self.cache.get(self._key(spec))
            if hit is not None:
                self._m_cache_hit.inc()
                self._trials_counter("cache-hit").inc()
                out = TrialOutcome(
                    error=hit.error,
                    cost=max(time.perf_counter() - t0, 1e-9),
                    model=None,
                )
                return EngineHandle(self, spec, outcome=out, cache_hit=True)
            self._m_cache_miss.inc()
        try:
            handle = self.executor.submit(spec)
        except KeyboardInterrupt:
            raise
        except Exception:
            # a spec the backend cannot even accept (e.g. unpicklable
            # payload) becomes a failed trial, not a dead search
            self._trials_counter("submit-error").inc()
            out = TrialOutcome(error=float("inf"), cost=0.0, model=None,
                               failure=traceback.format_exc())
            return EngineHandle(self, spec, outcome=out)
        return EngineHandle(self, spec, handle=handle)

    def run(self, spec: TrialSpec) -> TrialOutcome:
        """Submit and synchronously resolve one trial (honours the
        engine-wide ``trial_time_limit``)."""
        return self.submit(spec).outcome(timeout=self.trial_time_limit)

    def shutdown(self) -> None:
        """Release the executor if this engine owns it."""
        if self._own_executor:
            self.executor.shutdown()
