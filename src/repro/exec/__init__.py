"""Pluggable trial-execution engine (serial / thread / process).

The search layer describes trials (:class:`TrialSpec`) and this package
runs them: a :class:`TrialExecutor` backend picks the substrate, a
:class:`TrialCache` makes repeated proposals free, and
:class:`ExecutionEngine` wraps both with crash isolation and per-trial
time limits.  See README.md §"Execution engine" for the design.
"""

from .base import (
    FutureHandle,
    ImmediateHandle,
    PoolBrokenError,
    TrialExecutor,
    TrialHandle,
    TrialSpec,
    make_executor,
    run_spec,
)
from .cache import TrialCache
from .engine import EngineHandle, ExecutionEngine, RetryPolicy
from .multiplex import LeasedExecutor, SharedWorkerPool, TicketHandle
from .process import ProcessExecutor
from .serial import SerialExecutor
from .threaded import ThreadExecutor

__all__ = [
    "TrialSpec",
    "TrialHandle",
    "ImmediateHandle",
    "FutureHandle",
    "TrialExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedWorkerPool",
    "LeasedExecutor",
    "TicketHandle",
    "PoolBrokenError",
    "TrialCache",
    "ExecutionEngine",
    "EngineHandle",
    "RetryPolicy",
    "make_executor",
    "run_spec",
]
