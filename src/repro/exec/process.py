"""Process-pool backend: true multi-core parallelism with crash isolation.

Workers are initialised once with the dataset (pickled a single time per
worker, or inherited for free under the default fork start method), so a
submitted trial only ships its config and evaluation context.  Trial
payloads must be picklable:

* estimator classes must be importable module-level classes (all
  built-in learners are; a class defined inside a function is not);
* registry metrics are sent *by name* and re-resolved in the worker, so
  the lambda-based built-ins work; custom :class:`Metric` objects are
  pickled directly and must therefore avoid closures/lambdas.

Fitted models stay in the worker (``TrialOutcome.model`` is ``None``):
the search only consumes (error, cost), and the winning configuration is
retrained by the caller anyway.

If a worker dies hard (segfault, ``os._exit``), the pool is rebuilt on
the next submit; the in-flight trials surface ``BrokenProcessPool``,
which the engine converts into inf-error outcomes — one bad trial never
kills the search.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..core.evaluate import TrialOutcome
from ..data.dataset import Dataset
from .base import FutureHandle, TrialExecutor, TrialSpec, run_spec

__all__ = ["ProcessExecutor"]

#: the dataset each worker process evaluates against (set by the
#: initializer; module-global so trials don't re-ship the arrays)
_WORKER_DATA: Dataset | None = None


def _init_worker(data: Dataset) -> None:
    global _WORKER_DATA
    _WORKER_DATA = data


def _metric_to_ref(metric):
    """Registry metrics travel by name (their error_fns may be lambdas)."""
    from ..metrics.registry import _REGISTRY

    if _REGISTRY.get(metric.name) is metric:
        return ("registry", metric.name)
    return ("object", metric)


def _metric_from_ref(ref):
    kind, value = ref
    if kind == "registry":
        from ..metrics.registry import get_metric

        return get_metric(value)
    return value


def _spec_payload(spec: TrialSpec) -> dict:
    """The picklable wire form of a spec: every TrialSpec field, with the
    metric replaced by its registry reference.

    Built by field introspection rather than a hand-written key list so
    a field added to :class:`TrialSpec` (e.g. the forecast context)
    cannot be silently dropped on its way to a worker process — the
    pickle-regression tests assert this exhaustiveness.
    """
    payload = {
        f.name: getattr(spec, f.name) for f in dataclasses.fields(TrialSpec)
    }
    payload["metric_ref"] = _metric_to_ref(payload.pop("metric"))
    return payload


def _spec_from_payload(payload: dict) -> TrialSpec:
    """Inverse of :func:`_spec_payload` (worker side)."""
    payload = dict(payload)
    payload["metric"] = _metric_from_ref(payload.pop("metric_ref"))
    return TrialSpec(**payload)


def _run_remote(payload: dict) -> TrialOutcome:
    """Worker-side trial: rebuild the spec and evaluate against the
    process-local dataset.  The model never crosses the pipe."""
    out = run_spec(_WORKER_DATA, _spec_from_payload(payload))
    return TrialOutcome(error=out.error, cost=out.cost, model=None)


class ProcessExecutor(TrialExecutor):
    """Run trials on a ``ProcessPoolExecutor`` of ``n_workers`` processes."""

    backend = "process"

    def __init__(self, data: Dataset, n_workers: int = 2,
                 mp_context: str | None = None) -> None:
        super().__init__(data, n_workers=n_workers)
        self._mp_context = mp_context
        self._pool = self._make_pool()

    def _make_pool(self) -> ProcessPoolExecutor:
        ctx = (
            multiprocessing.get_context(self._mp_context)
            if self._mp_context
            else None
        )
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self.data,),
        )

    def submit(self, spec: TrialSpec) -> FutureHandle:
        """Queue the trial onto the process pool (rebuilding it if a
        previous worker crash broke the pool)."""
        payload = _spec_payload(spec)
        try:
            return FutureHandle(self._pool.submit(_run_remote, payload))
        except BrokenProcessPool:
            self._pool = self._make_pool()
            return FutureHandle(self._pool.submit(_run_remote, payload))

    def shutdown(self) -> None:
        """Terminate the pool without waiting on abandoned trials."""
        self._pool.shutdown(wait=False, cancel_futures=True)
