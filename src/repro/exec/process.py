"""Process-pool backend: true multi-core parallelism with crash isolation.

Worker initialisation is **zero-copy**: the dataset's arrays are
exported once into POSIX shared memory
(:mod:`multiprocessing.shared_memory`) and each worker attaches by
name, so the init payload is O(1) metadata — segment names, shapes,
dtypes — instead of a pickle of the full feature matrix.  This

* removes the per-worker serialisation cost under the ``spawn`` start
  method (under ``fork`` it also deduplicates the physical pages);
* sidesteps pickling limits on huge arrays entirely;
* keeps rebuilt pools cheap after a worker crash (the segments
  outlive the pool and are reattached, not re-shipped).

Each worker wraps its shared-memory-backed dataset in the process-local
:class:`~repro.data.binned.BinnedDataset` plane, so split indices and
histogram bin codes are computed once per worker, not once per trial.

Datasets whose labels are object-dtype (no stable buffer) fall back to
the legacy pickled-dataset init.

Trial payloads must be picklable:

* estimator classes must be importable module-level classes (all
  built-in learners are; a class defined inside a function is not);
* registry metrics are sent *by name* and re-resolved in the worker, so
  the lambda-based built-ins work; custom :class:`Metric` objects are
  pickled directly and must therefore avoid closures/lambdas.

Fitted models stay in the worker (``TrialOutcome.model`` is ``None``):
the search only consumes (error, cost), and the winning configuration is
retrained by the caller anyway.

If a worker dies hard (segfault, ``os._exit``), the pool is rebuilt on
the next submit; the in-flight trials surface ``BrokenProcessPool``,
which the engine converts into inf-error outcomes — one bad trial never
kills the search.

``shutdown()`` unlinks every segment; a ``weakref.finalize`` backstop
unlinks them if an executor is dropped without shutdown, so repeated
fits never accumulate ``/dev/shm`` blocks.
"""

from __future__ import annotations

import dataclasses
import logging
import multiprocessing
import os
import uuid
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

import numpy as np

from ..core.evaluate import TrialOutcome
from ..data.binned import BinnedDataset, plane_enabled, plane_for
from ..data.dataset import Dataset
from ..faults import InjectedShmError, active as active_fault_plan, \
    install as install_fault_plan
from ..learners.histogram import code_dtype
from ..obs.metrics import REGISTRY, snapshot_diff
from ..obs.trace import drain_spans, set_tracing, tracing_enabled
from .base import FutureHandle, PoolBrokenError, TrialExecutor, TrialSpec, \
    run_spec

__all__ = ["ProcessExecutor"]

_log = logging.getLogger("repro.exec")

#: prefix of every shared-memory segment this backend creates (leak
#: checks grep ``/dev/shm`` for it)
SHM_PREFIX = "repro-ds-"

# bytes placed in shared memory for workers, by payload kind — the
# observable record of what the data plane actually ships ("codes"
# instead of "X" is the large-n memory win the bench asserts)
_HELP_SHIP = "Bytes exported into worker shared memory, by array kind."
_m_ship = {
    kind: REGISTRY.counter("repro_shm_shipped_bytes_total", _HELP_SHIP,
                           kind=kind)
    for kind in ("X", "y", "codes")
}
_m_segments = REGISTRY.counter(
    "repro_shm_segments_total",
    "Shared-memory segments created for worker datasets.",
)


def _maybe_shm_fault(stage: str, key) -> None:
    """Consult the ``shm.attach`` fault site for one export/attach.

    The rule's ``mode`` scopes which stage it hits: ``"export"`` fails
    only the parent-side segment creation (exercising the immediate
    pickle fallback), ``"attach"`` fails only the worker-side attach
    (exercising the rebuild circuit breaker, since workers die during
    pool spin-up), and ``None`` hits both.
    """
    plan = active_fault_plan()
    if plan is None:
        return
    rule = plan.rules.get("shm.attach")
    if rule is None or (rule.mode is not None and rule.mode != stage):
        return
    if plan.decide("shm.attach", key=key) is not None:
        raise InjectedShmError(f"injected fault at shm.attach ({stage})")


def _shm_fallback_counter(stage: str):
    """Pickle-fallback events by stage: parent-side ``export`` failures
    vs worker-side ``attach`` failures surfaced via pool rebuilds."""
    return REGISTRY.counter(
        "repro_shm_fallback_total",
        "Shared-memory dataset shipping degraded to the pickled-dataset "
        "init, by failing stage.",
        stage=stage,
    )

#: the dataset each worker process evaluates against (set by the
#: initializer; module-global so trials don't re-ship the arrays)
_WORKER_DATA: Dataset | None = None
#: attached segments, kept alive for as long as the worker uses the
#: arrays mapped onto their buffers
_WORKER_SEGMENTS: list[shared_memory.SharedMemory] = []


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment.

    Pre-3.13 ``SharedMemory(name=...)`` registers with the resource
    tracker even on attach — harmless here: every multiprocessing start
    method (fork, forkserver *and* spawn, which ships the tracker fd in
    its preparation data) shares the parent's tracker process, where
    registration is an idempotent set-add that the owner's ``unlink()``
    clears exactly once.  Unregistering on the worker side would instead
    strip the owner's entry and make the final unlink trip a KeyError in
    the tracker.  3.13+ can skip the add entirely via ``track=False``.
    """
    _maybe_shm_fault("attach", ("attach", name))
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= is 3.13+
        return shared_memory.SharedMemory(name=name)


def _init_worker(payload: dict) -> None:
    """Build the worker's dataset from O(1) shared-memory metadata.

    The arrays are read-only views over the shared segments — a learner
    mutating its input would corrupt every sibling worker, so that must
    fail loudly.

    When the payload carries a ``warmup`` context (the search's
    resampling/ratio/seed/initial sample size), the worker's binned-data
    plane is pre-populated here, so the first trial it runs pays no
    cold-cache cost — the splits and codes are computed during pool
    spin-up instead of inside the first trial's measured wall-clock.
    Warmup is strictly best-effort: any failure leaves a cold (correct)
    plane.
    """
    global _WORKER_DATA
    # the parent's fault plan (if any) rides the init payload so sites
    # consulted inside workers — shm.attach below, the trial sites in
    # run_spec — fire with the same seeded determinism as in-process
    if payload.get("faults") is not None:
        install_fault_plan(payload["faults"])
    if "dataset" in payload:  # legacy pickle path (object-dtype labels)
        _WORKER_DATA = payload["dataset"]
    elif "codes" in payload:
        # codes-only plane: attach the pre-binned uint8/uint16 base-code
        # matrix and y; the float feature matrix never crosses.  X is a
        # zero-byte broadcast stub (a single NaN strided to (n, d)) that
        # only carries the shape — every trial gathers from the adopted
        # codes, and evaluate_config fails loudly if anything tries to
        # read raw features
        arrays = {}
        for field in ("codes", "y"):
            meta = payload[field]
            shm = _attach_segment(meta["shm"])
            _WORKER_SEGMENTS.append(shm)
            arr = np.ndarray(
                meta["shape"], dtype=np.dtype(meta["dtype"]), buffer=shm.buf
            )
            arr.flags.writeable = False
            arrays[field] = arr
        n, d = payload["x_shape"]
        stub = np.lib.stride_tricks.as_strided(
            np.full(1, np.nan), shape=(int(n), int(d)), strides=(0, 0)
        )
        stub.flags.writeable = False
        _WORKER_DATA = Dataset(
            payload["name"], stub, arrays["y"], payload["task"],
            tuple(payload["categorical"]),
        )
        _WORKER_DATA._codes_only = True
        plane_for(_WORKER_DATA).adopt_global_codes(
            payload["base"], payload["counts"], payload["defaults"],
            payload["bundles"], arrays["codes"],
        )
    else:
        arrays = {}
        for field in ("X", "y"):
            meta = payload[field]
            shm = _attach_segment(meta["shm"])
            _WORKER_SEGMENTS.append(shm)
            arr = np.ndarray(
                meta["shape"], dtype=np.dtype(meta["dtype"]), buffer=shm.buf
            )
            arr.flags.writeable = False
            arrays[field] = arr
        _WORKER_DATA = Dataset(
            payload["name"], arrays["X"], arrays["y"], payload["task"],
            tuple(payload["categorical"]),
        )
    warmup = payload.get("warmup")
    if warmup:
        from ..data.binned import warm_plane

        try:
            warmup = dict(warmup)
            warmup.pop("plane_learners_only", None)
            warm_plane(_WORKER_DATA, **warmup)
        except Exception:  # pragma: no cover - warmup must never kill init
            pass


def _metric_to_ref(metric):
    """Registry metrics travel by name (their error_fns may be lambdas)."""
    from ..metrics.registry import _REGISTRY

    if _REGISTRY.get(metric.name) is metric:
        return ("registry", metric.name)
    return ("object", metric)


def _metric_from_ref(ref):
    kind, value = ref
    if kind == "registry":
        from ..metrics.registry import get_metric

        return get_metric(value)
    return value


def _spec_payload(spec: TrialSpec) -> dict:
    """The picklable wire form of a spec: every TrialSpec field, with the
    metric replaced by its registry reference.

    Built by field introspection rather than a hand-written key list so
    a field added to :class:`TrialSpec` (e.g. the forecast context)
    cannot be silently dropped on its way to a worker process — the
    pickle-regression tests assert this exhaustiveness.
    """
    payload = {
        f.name: getattr(spec, f.name) for f in dataclasses.fields(TrialSpec)
    }
    payload["metric_ref"] = _metric_to_ref(payload.pop("metric"))
    return payload


def _spec_from_payload(payload: dict) -> TrialSpec:
    """Inverse of :func:`_spec_payload` (worker side)."""
    payload = dict(payload)
    payload["metric"] = _metric_from_ref(payload.pop("metric_ref"))
    return TrialSpec(**payload)


def _run_remote(payload: dict) -> TrialOutcome:
    """Worker-side trial: rebuild the spec and evaluate against the
    process-local dataset.  The model never crosses the pipe.

    Observability rides along: the parent's tracing flag travels with
    each trial (runtime ``set_tracing`` in the parent does not reach
    live workers), and when it is on, the worker drains its span ring
    and ships it — plus its metrics-registry delta — on the outcome for
    the engine to merge.  Metric deltas are diffed per trial, so a
    worker running many trials never re-ships old counts.
    """
    trace_on = bool(payload.get("trace"))
    set_tracing(trace_on)
    before = REGISTRY.snapshot() if trace_on else None
    out = run_spec(_WORKER_DATA, _spec_from_payload(payload["spec"]))
    spans = None
    metrics = None
    if trace_on:
        spans = drain_spans() or None
        metrics = snapshot_diff(before, REGISTRY.snapshot()) or None
    return TrialOutcome(error=out.error, cost=out.cost, model=None,
                        failure=out.failure, trace=spans, metrics=metrics)


def _unlink_segments(segments: list) -> None:
    """Close + unlink owned segments; idempotent (shared finalizer)."""
    while segments:
        shm = segments.pop()
        try:
            shm.close()
        except Exception:  # pragma: no cover - already closed
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ProcessExecutor(TrialExecutor):
    """Run trials on a ``ProcessPoolExecutor`` of ``n_workers`` processes."""

    backend = "process"

    #: consecutive pool rebuilds before the worker init payload degrades
    #: to the pickled-dataset form (the usual culprit for a pool that
    #: dies during spin-up is a failing shared-memory attach)
    REBUILDS_TO_PICKLE = 2
    #: consecutive pool rebuilds before this executor declares its
    #: substrate broken (:class:`PoolBrokenError`) so the engine can
    #: degrade the backend instead of thrashing rebuilds forever
    REBUILDS_TO_BROKEN = 4

    def __init__(self, data: Dataset, n_workers: int = 2,
                 mp_context: str | None = None,
                 warmup: dict | None = None,
                 ship_codes: bool | None = None) -> None:
        """``warmup`` is an optional plane-warmup context forwarded to
        :func:`repro.data.binned.warm_plane` in every worker initializer
        (keys: resampling, holdout_ratio, seed, n_splits, sample_size,
        plus the advisory ``plane_learners_only`` flag) so first trials
        start against warm split/code caches.

        ``ship_codes`` selects the worker data plane: ``True`` exports
        the pre-binned uint8/uint16 sketch-grid code matrix instead of
        the float64 feature matrix (~8x fewer bytes; workers then can
        only run binned-plane-aware learners), ``False`` always ships
        floats, and ``None`` (default) ships codes automatically when
        the dataset is past the exact-binning limit, the plane is
        enabled, and the warmup context says every searched learner is
        plane-aware.  Object-dtype labels always fall back to the
        pickled-dataset init regardless."""
        super().__init__(data, n_workers=n_workers)
        self._mp_context = mp_context
        self._warmup = dict(warmup) if warmup else None
        self._ship_codes = ship_codes
        #: how the dataset went out: "codes", "float" or "pickle"
        self.ship_mode: str = "float"
        #: pool rebuilds since the last trial that completed cleanly —
        #: the circuit-breaker input (reset by a healthy future)
        self.consecutive_rebuilds = 0
        self._segments: list[shared_memory.SharedMemory] = []
        # backstop: unlink on garbage collection / interpreter exit if the
        # owner forgot shutdown(); shares the mutable list with shutdown,
        # so whichever runs first empties it and the other no-ops.
        # Registered *before* any segment exists so a half-finished export
        # (e.g. /dev/shm ENOSPC on the second array) still gets cleaned up.
        self._segment_finalizer = weakref.finalize(
            self, _unlink_segments, self._segments
        )
        try:
            self._init_payload = self._export_dataset(data)
        except OSError as exc:
            # /dev/shm exhausted (ENOSPC) or an injected shm failure:
            # recover by shipping the pickled dataset instead of failing
            # the search, and unlink whatever half-export exists so the
            # fallback leaves zero segments behind
            _log.warning(
                "shared-memory export failed (%s: %s); falling back to "
                "pickled-dataset worker init", type(exc).__name__, exc,
            )
            _shm_fallback_counter("export").inc()
            _unlink_segments(self._segments)
            self._init_payload = self._pickle_payload()
        try:
            self._pool = self._make_pool()
        except BaseException:
            _unlink_segments(self._segments)
            raise

    # ------------------------------------------------------------------
    def _export_array(self, arr: np.ndarray, kind: str = "X") -> dict:
        _maybe_shm_fault("export", ("export", kind))
        arr = np.ascontiguousarray(arr)
        shm = shared_memory.SharedMemory(
            create=True,
            size=max(1, arr.nbytes),
            name=f"{SHM_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:12]}",
        )
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[...] = arr
        self._segments.append(shm)
        _m_segments.inc()
        _m_ship.get(kind, _m_ship["X"]).inc(int(arr.nbytes))
        return {"shm": shm.name, "shape": arr.shape, "dtype": arr.dtype.str}

    def _resolve_ship_codes(self, data: Dataset, y: np.ndarray) -> bool:
        """Decide the codes-vs-floats plane (see ``__init__``)."""
        if self._ship_codes is False or y.dtype.hasobject:
            return False
        if not plane_enabled():
            return False
        if self._ship_codes is True:
            return True
        warm = self._warmup or {}
        return (
            bool(warm.get("plane_learners_only"))
            and warm.get("resampling") in ("holdout", "cv")
            and data.n > BinnedDataset.EXACT_ROW_LIMIT
        )

    def _export_codes(self, data: Dataset) -> dict:
        """Export the sketch-grid base-code matrix + grid state.

        The code segment is filled chunk-wise straight from the plane,
        so the parent never materialises a second full-size array; the
        grid itself (base binner, counts, defaults, bundles) is tiny
        and rides the pickled init payload.
        """
        _maybe_shm_fault("export", ("export", "codes"))
        plane = plane_for(data)
        st = plane.sketch_state()
        base = st["base"]
        dtype = code_dtype(int(base.n_bins_.max()))
        shape = (data.n, data.d)
        shm = shared_memory.SharedMemory(
            create=True,
            size=max(1, shape[0] * shape[1] * dtype.itemsize),
            name=f"{SHM_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:12]}",
        )
        self._segments.append(shm)
        out = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        plane.fill_base_codes(out)
        _m_segments.inc()
        _m_ship["codes"].inc(int(out.nbytes))
        return {
            "codes": {"shm": shm.name, "shape": shape, "dtype": dtype.str},
            "x_shape": shape,
            "base": base,
            "counts": st["counts"],
            "defaults": st["defaults"],
            "bundles": st["bundles"],
        }

    def _export_dataset(self, data: Dataset) -> dict:
        y = np.asarray(data.y)
        if y.dtype.hasobject:
            # object labels have no fixed-size buffer; ship the pickle
            payload = {"dataset": data}
            self.ship_mode = "pickle"
        elif self._resolve_ship_codes(data, y):
            payload = {
                "name": data.name,
                "task": data.task,
                "categorical": tuple(data.categorical),
                "y": self._export_array(y, kind="y"),
            }
            payload.update(self._export_codes(data))
            self.ship_mode = "codes"
        else:
            payload = {
                "name": data.name,
                "task": data.task,
                "categorical": tuple(data.categorical),
                "X": self._export_array(np.asarray(data.X, dtype=np.float64),
                                        kind="X"),
                "y": self._export_array(y, kind="y"),
            }
            self.ship_mode = "float"
        if self._warmup:
            payload["warmup"] = self._warmup
        return payload

    def _pickle_payload(self) -> dict:
        """The legacy pickled-dataset init payload (fallback plane)."""
        payload: dict = {"dataset": self.data}
        if self._warmup:
            payload["warmup"] = self._warmup
        self.ship_mode = "pickle"
        return payload

    @property
    def shipped_bytes(self) -> int:
        """Total bytes currently held in this executor's shm segments."""
        return sum(int(shm.size) for shm in self._segments)

    def _make_pool(self) -> ProcessPoolExecutor:
        ctx = (
            multiprocessing.get_context(self._mp_context)
            if self._mp_context
            else None
        )
        # refresh the shipped fault plan at every (re)build so a plan
        # installed between builds reaches the new workers
        plan = active_fault_plan()
        self._init_payload["faults"] = plan.spec() if plan else None
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self._init_payload,),
        )

    # -- pool supervision ----------------------------------------------
    def _on_trial_done(self, future) -> None:
        """Done-callback closing the circuit breaker: any trial that
        completes without an infrastructure exception proves the pool
        healthy again."""
        if not future.cancelled() and future.exception() is None:
            self.consecutive_rebuilds = 0

    def _note_rebuild(self, exc: BaseException) -> None:
        """Account one pool death; escalate per the breaker thresholds.

        ``REBUILDS_TO_PICKLE`` consecutive deaths degrade the worker
        init to the pickled-dataset payload (a failing shared-memory
        attach kills workers *during spin-up*, so the pool itself never
        reports which stage died — swapping the init plane is the
        recovery that covers it) and unlink the now-unused segments.
        ``REBUILDS_TO_BROKEN`` consecutive deaths raise
        :class:`PoolBrokenError` so the engine degrades the backend.
        """
        self.consecutive_rebuilds += 1
        REGISTRY.counter(
            "repro_pool_rebuilds_total",
            "Process-pool rebuilds after the pool broke.",
        ).inc()
        if self.consecutive_rebuilds >= self.REBUILDS_TO_BROKEN:
            raise PoolBrokenError(
                f"process pool died {self.consecutive_rebuilds} times in a "
                f"row (last: {type(exc).__name__}: {exc}); giving up on "
                "this substrate"
            ) from exc
        if (
            self.consecutive_rebuilds >= self.REBUILDS_TO_PICKLE
            and self.ship_mode != "pickle"
        ):
            _log.warning(
                "process pool died %d times in a row with the %r data "
                "plane; degrading worker init to the pickled-dataset "
                "payload and unlinking shared-memory segments",
                self.consecutive_rebuilds, self.ship_mode,
            )
            _shm_fallback_counter("attach").inc()
            self._init_payload = self._pickle_payload()
            _unlink_segments(self._segments)

    def submit(self, spec: TrialSpec) -> FutureHandle:
        """Queue the trial onto the process pool, rebuilding it if a
        previous worker crash broke it (the shared segments outlive the
        pool, so a rebuild re-ships only metadata).

        Rebuilds are supervised: consecutive deaths first degrade the
        worker init to the pickled-dataset plane, then raise
        :class:`PoolBrokenError` (see :meth:`_note_rebuild`); a healthy
        completed trial resets the breaker.
        """
        payload = {"spec": _spec_payload(spec), "trace": tracing_enabled()}
        while True:
            try:
                future = self._pool.submit(_run_remote, payload)
            except BrokenProcessPool as exc:
                self._note_rebuild(exc)  # may raise PoolBrokenError
                self._pool = self._make_pool()
                continue
            future.add_done_callback(self._on_trial_done)
            return FutureHandle(future)

    def shutdown(self) -> None:
        """Terminate the pool without waiting on abandoned trials and
        unlink every shared-memory segment this executor created.

        Unlinking while a straggler worker is still attached is safe on
        POSIX: the mapping stays valid until the worker exits; the name
        just disappears immediately.
        """
        self._pool.shutdown(wait=False, cancel_futures=True)
        _unlink_segments(self._segments)
