"""Shared-pool multiplexing: many concurrent searches, one worker pool.

The 2021-era engine ran one search per pool — "AutoML for millions of
users" would mean millions of pools.  This module inverts that: a
:class:`SharedWorkerPool` owns the worker slots once, and every search
holds a :class:`LeasedExecutor` — a :class:`~repro.exec.base.TrialExecutor`
facade bound to that search's dataset — whose ``submit`` enqueues a
ticket into the lease's FIFO queue instead of running anything itself.
A weighted round-robin dispatcher then grants pool slots across leases:

* **fair share** — each lease gets ``weight`` consecutive grants per
  turn before the pointer moves on, so a tenant with weight 2 receives
  ~2x the trial throughput of a weight-1 tenant under contention while
  an idle tenant costs nothing (classic WRR, skipped turns are free);
* **per-tenant caps** — a lease never has more than its
  ``max_concurrent`` trials running, regardless of free slots, so one
  greedy search cannot occupy the whole pool between scheduler turns;
* **per-search determinism survives** — tickets of one lease dispatch
  in FIFO order and the controllers commit outcomes in launch order, so
  a search's trial log is independent of how its trials interleave with
  other tenants' (the N-search equivalence tests pin this down).

The substrate is a thread pool running
:func:`~repro.exec.base.run_spec` in-process: unlike the process
backend — whose workers are bound to one shm-exported dataset at fork —
threads can serve many tenants' datasets concurrently, and the learner
hot loops release the GIL in numpy/native kernels.  A lease-backed
engine still degrades *per search*: the ladder swaps in a private
serial executor for that search only, leaving the pool and every other
lease untouched.

Budget accounting (``trial_seconds``) is tracked per lease; enforcement
— refusing new searches for an over-budget tenant — lives one layer up
in :class:`~repro.serve.fitservice.FitService`, which owns tenancy.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor

from ..data.dataset import Dataset
from ..obs.metrics import REGISTRY
from .base import TrialExecutor, TrialHandle, TrialSpec, run_spec

__all__ = ["LeasedExecutor", "SharedWorkerPool", "TicketHandle"]

_log = logging.getLogger("repro.exec")


class TicketHandle(TrialHandle):
    """Handle for a trial queued (or running) on the shared pool.

    ``result`` blocks through both phases — waiting for a slot grant and
    then for the trial itself — exactly like a thread-pool future whose
    queue time counts toward its timeout.
    """

    def __init__(self, ticket: "_Ticket") -> None:
        self._ticket = ticket

    def result(self, timeout: float | None = None):
        return self._ticket.future.result(timeout=timeout)

    def done(self) -> bool:
        return self._ticket.future.done()

    def cancel(self) -> bool:
        """True cancellation while still queued (the slot is never
        granted); a dispatched trial cannot be stopped and reports
        ``False`` like every thread-backed handle."""
        return self._ticket.lease.pool._cancel_ticket(self._ticket)


class _Ticket:
    """One queued trial: its spec, owning lease, and outer future."""

    __slots__ = ("spec", "lease", "future", "dispatched")

    def __init__(self, spec: TrialSpec, lease: "LeasedExecutor") -> None:
        self.spec = spec
        self.lease = lease
        self.future: Future = Future()
        self.dispatched = False


class LeasedExecutor(TrialExecutor):
    """One search's slice of a :class:`SharedWorkerPool`.

    Looks like any other executor to the engine (``data``,
    ``n_workers``, ``submit``, ``shutdown``) but owns no workers:
    ``submit`` queues a ticket and the pool's dispatcher grants slots in
    weighted round-robin order.  ``shutdown`` releases the lease —
    queued tickets are cancelled, running trials finish, and the pool
    lives on for the other tenants.
    """

    backend = "shared"

    def __init__(self, pool: "SharedWorkerPool", data: Dataset,
                 tenant: str | None, weight: int,
                 max_concurrent: int) -> None:
        super().__init__(data, n_workers=max_concurrent)
        self.pool = pool
        self.tenant = tenant
        self.weight = max(1, int(weight))
        self.max_concurrent = int(max_concurrent)
        #: trials currently occupying pool slots (dispatcher-maintained)
        self.running = 0
        #: cumulative wall seconds of this lease's dispatched trials —
        #: the raw material for per-tenant budget enforcement upstream
        self.trial_seconds = 0.0
        self.queue: deque[_Ticket] = deque()
        self.closed = False

    def submit(self, spec: TrialSpec) -> TicketHandle:
        return self.pool._submit(self, spec)

    def shutdown(self) -> None:
        self.pool.release(self)


class SharedWorkerPool:
    """One thread pool multiplexed across many searches' trial queues.

    ``lease(data, ...)`` hands out per-search facade executors;
    dispatch happens inline under the pool lock on every submit and
    every trial completion (no dedicated scheduler thread), walking the
    lease ring with a classic weighted-round-robin turn budget.
    """

    def __init__(self, n_workers: int = 4, run_fn=None) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        #: the work function, injectable for scheduler tests
        self._run_fn = run_fn if run_fn is not None else run_spec
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-fit-pool"
        )
        self._lock = threading.Lock()
        self._ring: list[LeasedExecutor] = []
        self._ring_idx = -1  # the lease whose WRR turn is in progress
        self._ring_budget = 0  # grants left in that turn
        self._active = 0  # trials currently occupying pool slots
        self._closed = False

    # -- lease lifecycle ------------------------------------------------
    def lease(self, data: Dataset, tenant: str | None = None,
              weight: int = 1,
              max_concurrent: int | None = None) -> LeasedExecutor:
        """Join the pool: a new per-search executor facade.

        ``weight`` scales the tenant's share of slot grants under
        contention; ``max_concurrent`` caps this search's simultaneously
        running trials (default: the whole pool).
        """
        cap = self.n_workers if max_concurrent is None \
            else max(1, min(int(max_concurrent), self.n_workers))
        lease = LeasedExecutor(self, data, tenant, weight, cap)
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedWorkerPool is shut down")
            self._ring.append(lease)
        return lease

    def release(self, lease: LeasedExecutor) -> None:
        """Detach a lease: cancel its queued tickets (their futures
        resolve as cancelled), let running trials finish, keep the pool
        serving everyone else.  Idempotent."""
        with self._lock:
            if lease.closed:
                return
            lease.closed = True
            pending = list(lease.queue)
            lease.queue.clear()
            if lease in self._ring:
                self._ring.remove(lease)
        for ticket in pending:
            ticket.future.cancel()

    # -- submission / dispatch ------------------------------------------
    def _submit(self, lease: LeasedExecutor, spec: TrialSpec) -> TicketHandle:
        ticket = _Ticket(spec, lease)
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedWorkerPool is shut down")
            if lease.closed:
                raise RuntimeError(
                    "lease is closed (its search ended or was cancelled)"
                )
            lease.queue.append(ticket)
            self._dispatch_locked()
        return TicketHandle(ticket)

    def _cancel_ticket(self, ticket: _Ticket) -> bool:
        with self._lock:
            if not ticket.dispatched:
                try:
                    ticket.lease.queue.remove(ticket)
                except ValueError:
                    pass
                return ticket.future.cancel()
        # dispatched: the pool thread may not have started it yet, in
        # which case the future itself can still be cancelled
        return ticket.future.cancel()

    def _dispatch_locked(self) -> None:
        """Grant free slots to queued tickets in WRR order (lock held).

        Each lease's turn is worth ``weight`` grants; a lease that
        cannot dispatch (empty queue or at its concurrency cap) forfeits
        the rest of its turn, so idle tenants never block busy ones.
        """
        while not self._closed and self._active < self.n_workers:
            n = len(self._ring)
            if n == 0:
                return
            dispatched = False
            for _ in range(n + 1):
                if self._ring_budget <= 0:
                    self._ring_idx = (self._ring_idx + 1) % n
                    self._ring_budget = self._ring[self._ring_idx].weight
                lease = self._ring[self._ring_idx % n]
                if lease.queue and lease.running < lease.max_concurrent:
                    ticket = lease.queue.popleft()
                    ticket.dispatched = True
                    lease.running += 1
                    self._active += 1
                    self._ring_budget -= 1
                    self._pool.submit(self._run_ticket, ticket)
                    dispatched = True
                    break
                self._ring_budget = 0  # forfeit the rest of the turn
            if not dispatched:
                return

    def _run_ticket(self, ticket: _Ticket) -> None:
        lease = ticket.lease
        t0 = time.perf_counter()
        try:
            if ticket.future.set_running_or_notify_cancel():
                try:
                    out = self._run_fn(lease.data, ticket.spec)
                except BaseException as exc:
                    ticket.future.set_exception(exc)
                else:
                    ticket.future.set_result(out)
                REGISTRY.counter(
                    "repro_tenant_pool_trials_total",
                    "Trials executed on the shared worker pool, per "
                    "tenant.",
                    tenant=lease.tenant or "-",
                ).inc()
        finally:
            elapsed = time.perf_counter() - t0
            with self._lock:
                self._active -= 1
                lease.running -= 1
                lease.trial_seconds += elapsed
                self._dispatch_locked()

    # -- introspection / lifecycle --------------------------------------
    def stats(self) -> dict:
        """Pool utilisation + per-lease queue/running/consumption view
        (what the fit service reports under ``/health``)."""
        with self._lock:
            return {
                "n_workers": self.n_workers,
                "active": self._active,
                "leases": [
                    {
                        "tenant": lease.tenant,
                        "weight": lease.weight,
                        "max_concurrent": lease.max_concurrent,
                        "queued": len(lease.queue),
                        "running": lease.running,
                        "trial_seconds": round(lease.trial_seconds, 3),
                    }
                    for lease in self._ring
                ],
            }

    def shutdown(self) -> None:
        """Release every lease and stop the worker threads (running
        trials finish first).  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            leases = list(self._ring)
        for lease in leases:
            # release() tolerates the closed pool: it only flips flags
            # and cancels queued tickets
            lease.closed = False  # re-arm so release() does the work
            self.release(lease)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SharedWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
