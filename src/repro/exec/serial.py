"""Serial backend: trials run inline in the submitting thread.

This is the reference backend — zero concurrency, zero overhead, and the
exact behaviour of the pre-engine controllers.  ``submit`` evaluates the
trial before returning, so the handle is always already done.
"""

from __future__ import annotations

from .base import ImmediateHandle, TrialExecutor, TrialSpec, run_spec

__all__ = ["SerialExecutor"]


class SerialExecutor(TrialExecutor):
    """Run every trial synchronously in the caller."""

    backend = "serial"

    def submit(self, spec: TrialSpec) -> ImmediateHandle:
        """Evaluate the trial now; the returned handle is already done.

        An infrastructure exception escaping the trial body (e.g. an
        injected worker crash) is captured and re-raised at
        ``result()`` time, matching where the pooled backends surface
        it — so the engine classifies it as a *crash* on every backend.
        """
        try:
            return ImmediateHandle(run_spec(self.data, spec))
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            return ImmediateHandle(error=exc)
