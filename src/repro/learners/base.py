"""Common estimator protocol for the ML layer.

All learners follow a minimal scikit-learn-style contract:

* ``fit(X, y)`` — trains in place, returns ``self``;
* ``predict(X)`` — labels (classification) or values (regression);
* ``predict_proba(X)`` — class probabilities, classifiers only;
* ``get_params()`` / constructor kwargs round-trip.

Classifiers handle arbitrary label values by encoding them to
``0..K-1`` internally and exposing ``classes_``.
"""

from __future__ import annotations

import numpy as np

from .histogram import BinnedMatrix

__all__ = ["BaseEstimator", "BaseClassifierMixin", "validate_data"]


def validate_data(X: np.ndarray, y: np.ndarray | None = None):
    """Coerce to float64 2-D X (and 1-D y), with basic shape checks.

    A :class:`~repro.learners.histogram.BinnedMatrix` passes through
    unchanged (it already is a validated 2-D view of dataset rows, and
    coercing it to a dense array would defeat the shared binned plane).
    """
    if isinstance(X, BinnedMatrix):
        if y is None:
            return X
        y = np.asarray(y)
        if y.ndim != 1:
            y = y.ravel()
        if y.shape[0] != X.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        return X, y
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y is None:
        return X
    y = np.asarray(y)
    if y.ndim != 1:
        y = y.ravel()
    if y.shape[0] != X.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    return X, y


class BaseEstimator:
    """Parameter-bag base class: every constructor kwarg is a parameter."""

    def __init__(self, **params) -> None:
        self._params = dict(params)
        for k, v in params.items():
            setattr(self, k, v)

    def get_params(self) -> dict:
        """Return constructor parameters (copy)."""
        return dict(self._params)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._params.items()))
        return f"{type(self).__name__}({inner})"

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseEstimator":
        """Train on (X, y); returns self."""
        raise NotImplementedError

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels (classification) or values (regression)."""
        raise NotImplementedError


class BaseClassifierMixin:
    """Label-encoding helpers shared by all classifiers."""

    classes_: np.ndarray

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        self.classes_, encoded = np.unique(y, return_inverse=True)
        if self.classes_.size < 2:
            raise ValueError("classification requires at least 2 classes in y")
        return encoded

    def _decode_labels(self, encoded: np.ndarray) -> np.ndarray:
        return self.classes_[encoded]

    @property
    def n_classes_(self) -> int:
        """Number of distinct classes seen at fit time."""
        return int(self.classes_.size)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels (classification) or values (regression)."""
        proba = self.predict_proba(X)
        return self._decode_labels(np.argmax(proba, axis=1))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover
        """Class-probability matrix of shape (n, K)."""
        raise NotImplementedError
