"""Loss functions (value / gradient / hessian) for gradient boosting.

Each loss maps raw model scores to gradients and hessians with respect to
the scores, plus a link function turning scores into predictions.  Both the
LightGBM-like and XGBoost-like engines consume these.

Scores are ``(n,)`` for regression/binary and ``(n, K)`` for multiclass.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Loss",
    "SquaredLoss",
    "LogisticLoss",
    "SoftmaxLoss",
    "get_loss",
    "sigmoid",
    "softmax",
]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softmax(scores: np.ndarray) -> np.ndarray:
    """Row-wise softmax of an (n, K) score matrix."""
    z = scores - scores.max(axis=1, keepdims=True)
    np.exp(z, out=z)
    z /= z.sum(axis=1, keepdims=True)
    return z


class Loss:
    """Base class: subclasses define gradients w.r.t. raw scores."""

    #: number of score columns per boosting iteration (K for softmax)
    n_scores: int = 1

    def init_score(self, y: np.ndarray) -> np.ndarray:
        """Constant initial score(s) minimising the loss on y."""
        raise NotImplementedError

    def grad_hess(self, y: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample (gradient, hessian) of the loss w.r.t. scores."""
        raise NotImplementedError

    def value(self, y: np.ndarray, scores: np.ndarray) -> float:
        """Mean loss of the scores against y."""
        raise NotImplementedError


class SquaredLoss(Loss):
    """0.5 * (y - score)^2 — regression."""

    def init_score(self, y: np.ndarray) -> np.ndarray:
        """Constant initial score(s) minimising the loss on y."""
        return np.full(1, float(np.mean(y)))

    def grad_hess(self, y, scores):
        """Per-sample (gradient, hessian) of the loss w.r.t. scores."""
        return scores - y, np.ones_like(y, dtype=np.float64)

    def value(self, y, scores):
        """Mean loss of the scores against y."""
        return float(0.5 * np.mean((y - scores) ** 2))


class LogisticLoss(Loss):
    """Binary cross-entropy on raw logits; y in {0, 1}."""

    def init_score(self, y: np.ndarray) -> np.ndarray:
        """Constant initial score(s) minimising the loss on y."""
        p = float(np.clip(np.mean(y), 1e-12, 1 - 1e-12))
        return np.full(1, np.log(p / (1 - p)))

    def grad_hess(self, y, scores):
        """Per-sample (gradient, hessian) of the loss w.r.t. scores."""
        p = sigmoid(scores)
        return p - y, np.maximum(p * (1 - p), 1e-12)

    def value(self, y, scores):
        """Mean loss of the scores against y."""
        p = np.clip(sigmoid(scores), 1e-12, 1 - 1e-12)
        return float(-np.mean(y * np.log(p) + (1 - y) * np.log(1 - p)))


class SoftmaxLoss(Loss):
    """Multiclass cross-entropy on raw (n, K) scores; y in {0..K-1}."""

    def __init__(self, n_classes: int) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.n_classes = int(n_classes)
        self.n_scores = self.n_classes

    def init_score(self, y: np.ndarray) -> np.ndarray:
        """Constant initial score(s) minimising the loss on y."""
        counts = np.bincount(y.astype(np.int64), minlength=self.n_classes)
        p = np.clip(counts / counts.sum(), 1e-12, None)
        return np.log(p)

    def grad_hess(self, y, scores):
        """Per-sample (gradient, hessian) of the loss w.r.t. scores."""
        p = softmax(scores)
        grad = p.copy()
        grad[np.arange(y.size), y.astype(np.int64)] -= 1.0
        hess = np.maximum(p * (1 - p), 1e-12)
        return grad, hess

    def value(self, y, scores):
        """Mean loss of the scores against y."""
        p = softmax(scores)
        idx = np.arange(y.size)
        return float(-np.mean(np.log(np.clip(p[idx, y.astype(np.int64)], 1e-12, None))))


def get_loss(task: str, n_classes: int = 0) -> Loss:
    """Return the loss for a task string: 'regression' | 'binary' | 'multiclass'."""
    if task == "regression":
        return SquaredLoss()
    if task == "binary":
        return LogisticLoss()
    if task == "multiclass":
        return SoftmaxLoss(n_classes)
    raise ValueError(f"unknown task {task!r}")
