"""Gaussian naive Bayes.

The cheapest learner in the ML layer: one pass over the data to collect
per-class means/variances, O(n*d) prediction.  Registered as an *extra*
learner (``gaussian_nb``) — a useful low-cost anchor when exercising the
ECI machinery with learners of wildly different trial costs, and a
realistic example of plugging a non-tree model into ``add_learner``.
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifierMixin, BaseEstimator, validate_data

__all__ = ["GaussianNB"]


class GaussianNB(BaseClassifierMixin, BaseEstimator):
    """Gaussian naive Bayes with variance smoothing.

    ``var_smoothing`` adds a fraction of the largest feature variance to
    every per-class variance, exactly as scikit-learn does, which keeps
    log-densities finite on constant features.
    """

    def __init__(self, var_smoothing: float = 1e-9, seed: int = 0,
                 train_time_limit: float | None = None) -> None:
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be >= 0")
        super().__init__(
            var_smoothing=float(var_smoothing),
            seed=seed,
            train_time_limit=train_time_limit,
        )

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "GaussianNB":
        """Estimate per-class Gaussian parameters (optionally weighted);
        returns self."""
        X, y = validate_data(X, y)
        encoded = self._encode_labels(y)
        K = self.n_classes_
        d = X.shape[1]
        w = (
            np.ones(X.shape[0])
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        self._theta = np.empty((K, d))
        self._var = np.empty((K, d))
        self._log_prior = np.empty(K)
        eps = self.var_smoothing * float(X.var(axis=0).max() or 1.0)
        for c in range(K):
            mask = encoded == c
            Xc, wc = X[mask], w[mask]
            tot = wc.sum()
            mean = (Xc * wc[:, None]).sum(axis=0) / tot
            var = ((Xc - mean) ** 2 * wc[:, None]).sum(axis=0) / tot
            self._theta[c] = mean
            self._var[c] = var + eps
            self._log_prior[c] = np.log(tot / w.sum())
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        X = validate_data(X)
        # (n, K): log P(c) + sum_j log N(x_j | theta_cj, var_cj)
        diff = X[:, None, :] - self._theta[None, :, :]
        ll = -0.5 * (
            np.log(2.0 * np.pi * self._var)[None, :, :] + diff**2 / self._var[None, :, :]
        ).sum(axis=2)
        return ll + self._log_prior[None, :]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix via the normalised joint likelihood."""
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)
