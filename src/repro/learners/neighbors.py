"""k-nearest-neighbour learners.

FLAML's open-source release grew a ``kneighbor`` estimator beyond the six
learners of the paper's Table 5; this module provides the equivalent so
the registry's *extra learners* (``repro.core.registry.EXTRA_LEARNERS``)
can exercise the ``add_learner``/``estimator_list`` code paths with a
model family whose cost profile differs sharply from trees: training is
O(1) (store the data), prediction is O(n_train * n_test * d).

Distances are computed in vectorised chunks via the expansion
``|a - b|^2 = |a|^2 + |b|^2 - 2 a.b`` so no Python-level loop runs per
test point.  Features are standardised with the training statistics —
kNN is scale-sensitive and the rest of the ML layer is scale-free, so
this keeps the learner competitive out of the box.
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifierMixin, BaseEstimator, validate_data

__all__ = ["KNeighborsClassifier", "KNeighborsRegressor"]

#: cap on the pairwise-distance block, in floats (~32 MB of float64)
_BLOCK_ELEMS = 4_000_000


class _KNeighborsBase(BaseEstimator):
    """Shared fit/neighbour machinery for the two kNN estimators."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform",
                 seed: int = 0, train_time_limit: float | None = None) -> None:
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights {weights!r}")
        super().__init__(
            n_neighbors=int(n_neighbors),
            weights=weights,
            seed=seed,
            train_time_limit=train_time_limit,
        )

    def _fit_store(self, X: np.ndarray, y: np.ndarray,
                   sample_weight: np.ndarray | None = None) -> None:
        X, y = validate_data(X, y)
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self._fit_weight = (
            None if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        self._mu = X.mean(axis=0)
        sd = X.std(axis=0)
        self._sd = np.where(sd > 0, sd, 1.0)
        self._X = (X - self._mu) / self._sd
        self._sq = (self._X**2).sum(axis=1)
        self._y = y

    def _neighbors(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(indices, distances) of the k nearest training rows per query row."""
        X = validate_data(X)
        Xq = (X - self._mu) / self._sd
        k = min(self.n_neighbors, self._X.shape[0])
        rows_per_block = max(1, _BLOCK_ELEMS // max(1, self._X.shape[0]))
        idx_out = np.empty((Xq.shape[0], k), dtype=np.intp)
        dist_out = np.empty((Xq.shape[0], k), dtype=np.float64)
        qsq = (Xq**2).sum(axis=1)
        for start in range(0, Xq.shape[0], rows_per_block):
            stop = min(start + rows_per_block, Xq.shape[0])
            block = Xq[start:stop]
            d2 = qsq[start:stop, None] + self._sq[None, :] - 2.0 * (block @ self._X.T)
            np.maximum(d2, 0.0, out=d2)
            part = np.argpartition(d2, k - 1, axis=1)[:, :k]
            pd = np.take_along_axis(d2, part, axis=1)
            order = np.argsort(pd, axis=1)
            idx_out[start:stop] = np.take_along_axis(part, order, axis=1)
            dist_out[start:stop] = np.sqrt(np.take_along_axis(pd, order, axis=1))
        return idx_out, dist_out

    def _vote_weights(self, dist: np.ndarray,
                      idx: np.ndarray | None = None) -> np.ndarray:
        w = (
            np.ones_like(dist)
            if self.weights == "uniform"
            else 1.0 / np.maximum(dist, 1e-10)
        )
        if idx is not None and getattr(self, "_fit_weight", None) is not None:
            w = w * self._fit_weight[idx]
        return w


class KNeighborsClassifier(BaseClassifierMixin, _KNeighborsBase):
    """kNN classification by (optionally distance-weighted) majority vote."""

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "KNeighborsClassifier":
        """Store the standardised training set; returns self.  Sample
        weights multiply each training row's vote mass."""
        X, y = validate_data(X, y)
        encoded = self._encode_labels(y)
        self._fit_store(X, encoded, sample_weight)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix: normalised neighbour vote mass."""
        idx, dist = self._neighbors(X)
        w = self._vote_weights(dist, idx)
        labels = self._y[idx]
        K = self.n_classes_
        proba = np.zeros((idx.shape[0], K), dtype=np.float64)
        for c in range(K):
            proba[:, c] = np.where(labels == c, w, 0.0).sum(axis=1)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba


class KNeighborsRegressor(_KNeighborsBase):
    """kNN regression by (optionally distance-weighted) neighbour mean."""

    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "KNeighborsRegressor":
        """Store the standardised training set; returns self.  Sample
        weights multiply each training row's contribution to the mean."""
        X, y = validate_data(X, y)
        self._fit_store(X, y.astype(np.float64), sample_weight)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Weighted mean of the k nearest training targets."""
        idx, dist = self._neighbors(X)
        w = self._vote_weights(dist, idx)
        return (self._y[idx] * w).sum(axis=1) / w.sum(axis=1)
