"""Pickle-free model persistence (LightGBM-style model files).

Production AutoML deployments ship the *model*, not a Python pickle: a
JSON document that any process (or language) can load without importing
arbitrary code.  This module dumps fitted estimators of the ML layer to
plain dict/JSON and reconstructs them exactly:

* GBDT family (``LGBMLike*``, ``XGBLike*``, ``XGBLimitDepth*``) — binner
  edges, base score, learning rate and every tree's arrays;
* forests (``RandomForest*``, ``ExtraTrees*``) — binner + bagged trees;
* CatBoost-like — binner, base score and the oblivious trees' per-level
  (feature, threshold) pairs + leaf tables;
* linear family (``LogisticRegressionL1/L2``, ``RidgeRegressor``,
  ``LassoRegressor``) — coefficients + standardisation statistics;
* ``GaussianNB`` — per-class Gaussians; ``KNeighbors*`` — the
  standardised training set itself;
* ``StackedEnsemble`` — every base model plus the linear meta-learner,
  dumped recursively;
* ``ForecastModel`` — the wrapped regressor (recursively) plus its lag
  featurization config and training tail.

Round-trip contract (tested): ``load_model(dump_model(m))`` predicts
bit-identically to ``m``.
"""

from __future__ import annotations

import json

import numpy as np

from .boosting import (
    GBDTEngine,
    LGBMLikeClassifier,
    LGBMLikeRegressor,
    XGBLikeClassifier,
    XGBLikeRegressor,
    XGBLimitDepthClassifier,
    XGBLimitDepthRegressor,
)
from .catboost_like import (
    CatBoostLikeClassifier,
    CatBoostLikeRegressor,
    ObliviousTree,
    _CatBoostEngine,
)
from .forest import (
    ExtraTreesClassifier,
    ExtraTreesRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from .linear import (
    LassoRegressor,
    LogisticRegressionL1,
    LogisticRegressionL2,
    RidgeRegressor,
)
from .losses import get_loss
from .naive_bayes import GaussianNB
from .neighbors import KNeighborsClassifier, KNeighborsRegressor
from .tree import Tree

__all__ = ["dump_model", "load_model", "save_model", "load_model_file"]

_GBDT_CLASSES = {
    cls.__name__: cls
    for cls in (
        LGBMLikeClassifier, LGBMLikeRegressor,
        XGBLikeClassifier, XGBLikeRegressor,
        XGBLimitDepthClassifier, XGBLimitDepthRegressor,
    )
}
_LINEAR_CLASSES = {
    cls.__name__: cls
    for cls in (LogisticRegressionL1, LogisticRegressionL2,
                RidgeRegressor, LassoRegressor)
}
_KNN_CLASSES = {
    cls.__name__: cls for cls in (KNeighborsClassifier, KNeighborsRegressor)
}
_FOREST_CLASSES = {
    cls.__name__: cls
    for cls in (RandomForestClassifier, RandomForestRegressor,
                ExtraTreesClassifier, ExtraTreesRegressor)
}
_CATBOOST_CLASSES = {
    cls.__name__: cls for cls in (CatBoostLikeClassifier, CatBoostLikeRegressor)
}

_FORMAT_VERSION = 1


def _arr(a) -> list:
    return np.asarray(a).tolist()


def _dump_tree(tree: Tree) -> dict:
    return {
        "feature": [int(f) for f in tree.feature],
        "threshold": [int(t) for t in tree.threshold],
        "left": [int(v) for v in tree.left],
        "right": [int(v) for v in tree.right],
        "value": [_arr(v) for v in tree.value],
        "n_values": tree.n_values,
    }


def _load_tree(obj: dict) -> Tree:
    # Trees serialise from their list storage (the canonical form); the
    # packed FlatEnsemble/FlatOblivious traversal arrays are derived
    # caches keyed on the engine's trees_ list identity, so a loaded
    # model rebuilds them lazily on first predict (or eagerly via
    # warm_inference) from these exact node arrays — bitwise round-trip.
    tree = Tree(n_values=obj["n_values"])
    tree.feature = list(obj["feature"])
    tree.threshold = list(obj["threshold"])
    tree.left = list(obj["left"])
    tree.right = list(obj["right"])
    tree.value = [np.asarray(v, dtype=np.float64) for v in obj["value"]]
    tree.freeze()
    return tree


def _dump_binner(binner) -> dict:
    return {
        "max_bins": binner.max_bins,
        "bin_edges": [_arr(e) for e in binner.bin_edges_],
        "n_bins": _arr(binner.n_bins_),
    }


def _load_binner(obj: dict):
    from .histogram import Binner

    binner = Binner(max_bins=obj["max_bins"])
    binner.bin_edges_ = [np.asarray(e, dtype=np.float64) for e in obj["bin_edges"]]
    binner.n_bins_ = np.asarray(obj["n_bins"], dtype=np.int64)
    return binner


def _classes_payload(model) -> dict:
    classes = getattr(model, "classes_", None)
    if classes is None:
        return {}
    return {
        "classes": _arr(classes),
        "classes_dtype": str(np.asarray(classes).dtype),
    }


def _restore_classes(model, obj: dict) -> None:
    if "classes" in obj:
        model.classes_ = np.asarray(obj["classes"], dtype=obj["classes_dtype"])


# ---------------------------------------------------------------- dump --
def dump_model(model) -> dict:
    """Serialise a fitted estimator to a JSON-safe dict."""
    name = type(model).__name__
    if name == "StackedEnsemble":
        # core.ensemble imports the learners layer, so match by name and
        # dump recursively: every base model and the linear meta-learner
        # are themselves model_io-serialisable
        return {
            "format_version": _FORMAT_VERSION,
            "kind": "ensemble",
            "class": name,
            "task": model.task,
            **_classes_payload(model),
            "base_models": [dump_model(m) for m in model.base_models],
            "meta_model": dump_model(model.meta_model),
        }
    if name == "ForecastModel":
        # data.timeseries imports nothing from this layer; match by name
        # (like StackedEnsemble) and dump the wrapped regressor + the
        # featurizer config + the training tail the recursion starts from
        if model.tail_ is None:
            raise TypeError("cannot serialise an unfitted ForecastModel")
        return {
            "format_version": _FORMAT_VERSION,
            "kind": "forecast",
            "class": name,
            "horizon": int(model.horizon),
            "featurizer": model.featurizer.to_dict(),
            "tail": _arr(model.tail_),
            "base": dump_model(model.base),
        }
    if name in _GBDT_CLASSES:
        engine: GBDTEngine = model.engine_
        return {
            "format_version": _FORMAT_VERSION,
            "kind": "gbdt",
            "class": name,
            "params": model.get_params(),
            **_classes_payload(model),
            "engine": {
                "learning_rate": engine.learning_rate,
                "base_score": _arr(engine.base_score_),
                "n_scores": engine.loss.n_scores,
                "binner": _dump_binner(engine.binner_),
                "trees": [
                    [_dump_tree(t) for t in round_trees]
                    for round_trees in engine.trees_
                ],
            },
        }
    if name in _LINEAR_CLASSES:
        state = {
            "coef": _arr(model.coef_),
            "mu": _arr(model._mu),
            "sd": _arr(model._sd),
        }
        if hasattr(model, "_ymu"):  # ridge / lasso center the target
            state["ymu"] = float(model._ymu)
        if hasattr(model, "_K"):  # logistic
            state["K"] = int(model._K)
        return {
            "format_version": _FORMAT_VERSION,
            "kind": "linear",
            "class": name,
            "params": model.get_params(),
            **_classes_payload(model),
            "state": state,
        }
    if name == "GaussianNB":
        return {
            "format_version": _FORMAT_VERSION,
            "kind": "gaussian_nb",
            "class": name,
            "params": model.get_params(),
            **_classes_payload(model),
            "state": {
                "theta": _arr(model._theta),
                "var": _arr(model._var),
                "log_prior": _arr(model._log_prior),
            },
        }
    if name in _KNN_CLASSES:
        return {
            "format_version": _FORMAT_VERSION,
            "kind": "knn",
            "class": name,
            "params": model.get_params(),
            **_classes_payload(model),
            "state": {
                "mu": _arr(model._mu),
                "sd": _arr(model._sd),
                "X": _arr(model._X),
                "y": _arr(model._y),
                "y_dtype": str(np.asarray(model._y).dtype),
            },
        }
    if name in _FOREST_CLASSES:
        return {
            "format_version": _FORMAT_VERSION,
            "kind": "forest",
            "class": name,
            "params": model.get_params(),
            **_classes_payload(model),
            "state": {
                "binner": _dump_binner(model.binner_),
                "trees": [_dump_tree(t) for t in model.trees_],
            },
        }
    if name in _CATBOOST_CLASSES:
        engine = model.engine_
        return {
            "format_version": _FORMAT_VERSION,
            "kind": "catboost",
            "class": name,
            "params": model.get_params(),
            **_classes_payload(model),
            "engine": {
                "learning_rate": engine.learning_rate,
                "base_score": _arr(engine.base_score_),
                "n_scores": engine.loss.n_scores,
                "binner": _dump_binner(engine.binner_),
                "trees": [
                    [
                        {
                            "features": _arr(t.features),
                            "thresholds": _arr(t.thresholds),
                            "leaf_values": _arr(t.leaf_values),
                        }
                        for t in round_trees
                    ]
                    for round_trees in engine.trees_
                ],
            },
        }
    raise TypeError(
        f"{name} does not support pickle-free serialisation; use pickle, "
        "or store the configuration and retrain (the CLI's default)"
    )


# ---------------------------------------------------------------- load --
def load_model(obj: dict):
    """Reconstruct the estimator serialised by :func:`dump_model`."""
    version = obj.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {version!r}")
    name = obj["class"]
    kind = obj["kind"]
    if kind == "ensemble":
        from ..core.ensemble import StackedEnsemble

        classes = (np.asarray(obj["classes"], dtype=obj["classes_dtype"])
                   if "classes" in obj else None)
        return StackedEnsemble(
            [load_model(m) for m in obj["base_models"]],
            load_model(obj["meta_model"]),
            obj["task"],
            classes,
        )
    if kind == "forecast":
        from ..data.timeseries import ForecastModel, LagFeaturizer

        model = ForecastModel(
            load_model(obj["base"]),
            LagFeaturizer.from_dict(obj["featurizer"]),
            horizon=int(obj["horizon"]),
        )
        model.tail_ = np.asarray(obj["tail"], dtype=np.float64)
        return model
    if kind == "gbdt":
        cls = _GBDT_CLASSES[name]
        model = cls(**obj["params"])
        _restore_classes(model, obj)
        e = obj["engine"]
        if "classes" in obj:
            task = "binary" if e["n_scores"] == 1 else "multiclass"
            loss = get_loss(task, len(obj["classes"]))
        else:
            loss = get_loss("regression")
        engine = GBDTEngine(loss, learning_rate=e["learning_rate"])
        engine.base_score_ = np.asarray(e["base_score"], dtype=np.float64)
        engine.binner_ = _load_binner(e["binner"])
        engine.trees_ = [
            [_load_tree(t) for t in round_trees] for round_trees in e["trees"]
        ]
        model.engine_ = engine
        return model
    if kind == "linear":
        cls = _LINEAR_CLASSES[name]
        model = cls(**obj["params"])
        st = obj["state"]
        coef = np.asarray(st["coef"], dtype=np.float64)
        model.coef_ = coef
        model._mu = np.asarray(st["mu"], dtype=np.float64)
        model._sd = np.asarray(st["sd"], dtype=np.float64)
        if "ymu" in st:
            model._ymu = st["ymu"]
        if "K" in st:
            model._K = st["K"]
        _restore_classes(model, obj)
        return model
    if kind == "gaussian_nb":
        model = GaussianNB(**obj["params"])
        st = obj["state"]
        model._theta = np.asarray(st["theta"], dtype=np.float64)
        model._var = np.asarray(st["var"], dtype=np.float64)
        model._log_prior = np.asarray(st["log_prior"], dtype=np.float64)
        _restore_classes(model, obj)
        return model
    if kind == "knn":
        cls = _KNN_CLASSES[name]
        model = cls(**obj["params"])
        st = obj["state"]
        model._mu = np.asarray(st["mu"], dtype=np.float64)
        model._sd = np.asarray(st["sd"], dtype=np.float64)
        model._X = np.asarray(st["X"], dtype=np.float64)
        model._sq = (model._X**2).sum(axis=1)
        model._y = np.asarray(st["y"], dtype=st["y_dtype"])
        _restore_classes(model, obj)
        return model
    if kind == "forest":
        cls = _FOREST_CLASSES[name]
        model = cls(**obj["params"])
        st = obj["state"]
        model.binner_ = _load_binner(st["binner"])
        model.trees_ = [_load_tree(t) for t in st["trees"]]
        _restore_classes(model, obj)
        return model
    if kind == "catboost":
        cls = _CATBOOST_CLASSES[name]
        model = cls(**obj["params"])
        _restore_classes(model, obj)
        e = obj["engine"]
        if "classes" in obj:
            task = "binary" if e["n_scores"] == 1 else "multiclass"
            loss = get_loss(task, len(obj["classes"]))
        else:
            loss = get_loss("regression")
        engine = _CatBoostEngine(
            loss, n_estimators=0, learning_rate=e["learning_rate"],
            early_stopping_rounds=1, depth=1, reg_lambda=1.0,
            min_child_weight=0.0, train_time_limit=None, seed=0,
        )
        engine.base_score_ = np.asarray(e["base_score"], dtype=np.float64)
        engine.binner_ = _load_binner(e["binner"])
        engine.trees_ = [
            [
                ObliviousTree(
                    np.asarray(t["features"], dtype=np.int32),
                    np.asarray(t["thresholds"], dtype=np.int64),
                    np.asarray(t["leaf_values"], dtype=np.float64),
                )
                for t in round_trees
            ]
            for round_trees in e["trees"]
        ]
        model.engine_ = engine
        return model
    raise ValueError(f"unknown model kind {kind!r}")


def save_model(model, path: str) -> None:
    """Dump a fitted estimator to a JSON file."""
    with open(path, "w") as f:
        json.dump(dump_model(model), f)


def load_model_file(path: str):
    """Load an estimator from a file written by :func:`save_model`."""
    with open(path) as f:
        return load_model(json.load(f))
