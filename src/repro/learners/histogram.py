"""Feature binning for histogram-based tree learners.

All tree learners in this package (GBDT, random forest, extra-trees,
oblivious trees) operate on *binned* data: each feature column is mapped to
small integer codes via quantile binning.  This mirrors the design of
LightGBM/XGBoost-hist and keeps split finding a pure ``np.bincount``
operation, which is the fastest primitive available in NumPy for this job.

Missing values (NaN) are mapped to a dedicated bin (code 0).  Splits are of
the form ``code <= t`` so missing values always travel left; this is a
simplification of LightGBM's learned default direction that preserves the
cost/error trade-off FLAML's search exploits.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Binner", "BinnedMatrix", "MISSING_BIN"]

#: Bin code reserved for missing values.
MISSING_BIN = 0


class Binner:
    """Quantile binner mapping float features to uint8/uint16 codes.

    Parameters
    ----------
    max_bins:
        Maximum number of *non-missing* bins per feature (2..65534).  The
        total number of codes per feature is ``n_bins(j) + 1`` because code
        0 is reserved for missing values.
    rng:
        Generator used for subsampling rows when computing quantiles on
        large inputs.
    subsample:
        If the input has more rows than this, quantiles are estimated on a
        random subset (standard practice; exactness is irrelevant here).
    """

    def __init__(
        self,
        max_bins: int = 255,
        rng: np.random.Generator | None = None,
        subsample: int = 200_000,
    ) -> None:
        if not 2 <= max_bins <= 65_534:
            raise ValueError(f"max_bins must be in [2, 65534], got {max_bins}")
        self.max_bins = int(max_bins)
        self._rng = rng or np.random.default_rng(0)
        self._subsample = int(subsample)
        self.bin_edges_: list[np.ndarray] | None = None
        self.n_bins_: np.ndarray | None = None  # per-feature #codes incl. missing

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "Binner":
        """Compute per-feature quantile bin edges from ``X`` (n, d) floats."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n, d = X.shape
        if n == 0:
            raise ValueError("cannot fit Binner on empty data")
        if n > self._subsample:
            idx = self._rng.choice(n, self._subsample, replace=False)
            Xs = X[idx]
        else:
            Xs = X
        edges: list[np.ndarray] = []
        n_bins = np.empty(d, dtype=np.int64)
        # Midpoint-of-unique-quantiles binning, one feature at a time.  The
        # Python loop over features is fine: d is small and each iteration is
        # a vectorised percentile computation.
        qs = np.linspace(0, 100, self.max_bins + 1)[1:-1]
        for j in range(d):
            col = Xs[:, j]
            col = col[~np.isnan(col)]
            if col.size == 0:
                edges.append(np.empty(0))
                n_bins[j] = 1
                continue
            uniq = np.unique(col)
            if uniq.size <= self.max_bins:
                e = (uniq[1:] + uniq[:-1]) / 2.0
            else:
                e = np.unique(np.percentile(col, qs, method="linear"))
            edges.append(e)
            n_bins[j] = e.size + 1
        self.bin_edges_ = edges
        self.n_bins_ = n_bins + 1  # +1 for the missing bin (code 0)
        return self

    # ------------------------------------------------------------------
    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map ``X`` to integer codes; code 0 = missing, 1.. = value bins."""
        if self.bin_edges_ is None:
            raise RuntimeError("Binner.transform called before fit")
        X = np.asarray(X, dtype=np.float64)
        n, d = X.shape
        if d != len(self.bin_edges_):
            raise ValueError(
                f"X has {d} features, binner was fit with {len(self.bin_edges_)}"
            )
        dtype = np.uint16 if int(self.n_bins_.max()) > 255 else np.uint8
        codes = np.empty((n, d), dtype=dtype)
        for j in range(d):
            col = X[:, j]
            c = np.searchsorted(self.bin_edges_[j], col, side="left") + 1
            c[np.isnan(col)] = MISSING_BIN
            codes[:, j] = c
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit the bin edges and return the codes for X."""
        return self.fit(X).transform(X)

    @property
    def total_bins(self) -> int:
        """Maximum code count over features (histogram allocation size)."""
        if self.n_bins_ is None:
            raise RuntimeError("Binner not fitted")
        return int(self.n_bins_.max())


# ----------------------------------------------------------------------
class BinnedMatrix:
    """A row-subset of a dataset with a handle to shared pre-binned codes.

    The trial path hands this to histogram learners in place of the raw
    float matrix (they opt in via a ``_uses_binned_plane`` class marker).
    Instead of re-running :meth:`Binner.fit_transform` inside every
    ``fit``, the learner asks for

    * :meth:`binned` — codes for *these* rows under a binner fit on
      *these* rows, memoized in the owning
      :class:`~repro.data.binned.BinnedDataset` so the second trial that
      needs the same (rows, max_bins) pays a dict lookup; and
    * :meth:`codes_with` — these rows transformed by an already-fit
      binner (the validation side of a split), memoized likewise.

    The binner is fit on exactly the rows the learner would have fit it
    on, so trial errors are bit-for-bit identical to the unshared path.
    Anything that is not plane-aware can call :func:`numpy.asarray` on
    this object (or :meth:`raw`) and sees a plain float matrix copy.
    """

    ndim = 2

    def __init__(self, plane, rows: np.ndarray, rows_key: tuple) -> None:
        self._plane = plane
        self._rows = np.asarray(rows)
        self.rows_key = rows_key

    # -- array-likeness -------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """(n_rows, n_features) of the underlying slice."""
        return (int(self._rows.size), int(self._plane.data.d))

    def __len__(self) -> int:
        return int(self._rows.size)

    def raw(self) -> np.ndarray:
        """The raw float rows (a fresh copy, like ``X[rows]``)."""
        return self._plane.data.X[self._rows]

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        out = self.raw()
        return out if dtype is None else out.astype(dtype)

    # -- the binned plane -----------------------------------------------
    @property
    def rows(self) -> np.ndarray:
        """Row indices into the plane's dataset."""
        return self._rows

    def binned(self, max_bins: int):
        """(codes, n_bins, binner) with the binner fit on these rows."""
        return self._plane.binned_for(self._rows, self.rows_key, max_bins)

    def codes_with(self, binner: Binner) -> np.ndarray:
        """These rows transformed by an already-fit ``binner``."""
        return self._plane.transform_with(binner, self._rows, self.rows_key)
