"""Feature binning for histogram-based tree learners.

All tree learners in this package (GBDT, random forest, extra-trees,
oblivious trees) operate on *binned* data: each feature column is mapped to
small integer codes via quantile binning.  This mirrors the design of
LightGBM/XGBoost-hist and keeps split finding a pure ``np.bincount``
operation, which is the fastest primitive available in NumPy for this job.

Missing values (NaN) are mapped to a dedicated bin (code 0).  Splits are of
the form ``code <= t`` so missing values always travel left; this is a
simplification of LightGBM's learned default direction that preserves the
cost/error trade-off FLAML's search exploits.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Binner",
    "BinnedMatrix",
    "DerivedBinner",
    "MISSING_BIN",
    "SketchBinner",
    "code_dtype",
]

#: Bin code reserved for missing values.
MISSING_BIN = 0


def code_dtype(n_codes: int) -> np.dtype:
    """Smallest unsigned dtype holding codes ``0 .. n_codes - 1``.

    ``n_codes`` counts *codes* (the missing bin included), so uint8 is
    correct up to 256 codes — the maximum code is then 255.  Getting
    this boundary right matters at scale: the default 255-bin binner
    produces exactly 256 codes per feature, and promoting it to uint16
    doubles every code matrix, cache entry, and shared-memory segment.
    """
    return np.dtype(np.uint16 if int(n_codes) > 256 else np.uint8)


class Binner:
    """Quantile binner mapping float features to uint8/uint16 codes.

    Parameters
    ----------
    max_bins:
        Maximum number of *non-missing* bins per feature (2..65534).  The
        total number of codes per feature is ``n_bins(j) + 1`` because code
        0 is reserved for missing values.
    rng:
        Generator used for subsampling rows when computing quantiles on
        large inputs.
    subsample:
        If the input has more rows than this, quantiles are estimated on a
        random subset (standard practice; exactness is irrelevant here).
    """

    def __init__(
        self,
        max_bins: int = 255,
        rng: np.random.Generator | None = None,
        subsample: int = 200_000,
    ) -> None:
        if not 2 <= max_bins <= 65_534:
            raise ValueError(f"max_bins must be in [2, 65534], got {max_bins}")
        self.max_bins = int(max_bins)
        self._rng = rng or np.random.default_rng(0)
        self._subsample = int(subsample)
        self.bin_edges_: list[np.ndarray] | None = None
        self.n_bins_: np.ndarray | None = None  # per-feature #codes incl. missing

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "Binner":
        """Compute per-feature quantile bin edges from ``X`` (n, d) floats."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n, d = X.shape
        if n == 0:
            raise ValueError("cannot fit Binner on empty data")
        if n > self._subsample:
            idx = self._rng.choice(n, self._subsample, replace=False)
            Xs = X[idx]
        else:
            Xs = X
        edges: list[np.ndarray] = []
        n_bins = np.empty(d, dtype=np.int64)
        # Midpoint-of-unique-quantiles binning, one feature at a time.  The
        # Python loop over features is fine: d is small and each iteration is
        # a vectorised percentile computation.
        qs = np.linspace(0, 100, self.max_bins + 1)[1:-1]
        for j in range(d):
            col = Xs[:, j]
            col = col[~np.isnan(col)]
            if col.size == 0:
                edges.append(np.empty(0))
                n_bins[j] = 1
                continue
            uniq = np.unique(col)
            if uniq.size <= self.max_bins:
                e = (uniq[1:] + uniq[:-1]) / 2.0
            else:
                e = np.unique(np.percentile(col, qs, method="linear"))
            edges.append(e)
            n_bins[j] = e.size + 1
        self.bin_edges_ = edges
        self.n_bins_ = n_bins + 1  # +1 for the missing bin (code 0)
        return self

    # ------------------------------------------------------------------
    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map ``X`` to integer codes; code 0 = missing, 1.. = value bins."""
        if self.bin_edges_ is None:
            raise RuntimeError("Binner.transform called before fit")
        X = np.asarray(X, dtype=np.float64)
        n, d = X.shape
        if d != len(self.bin_edges_):
            raise ValueError(
                f"X has {d} features, binner was fit with {len(self.bin_edges_)}"
            )
        codes = np.empty((n, d), dtype=code_dtype(int(self.n_bins_.max())))
        for j in range(d):
            col = X[:, j]
            c = np.searchsorted(self.bin_edges_[j], col, side="left") + 1
            c[np.isnan(col)] = MISSING_BIN
            codes[:, j] = c
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit the bin edges and return the codes for X."""
        return self.fit(X).transform(X)

    def transform_column(self, col: np.ndarray, j: int) -> np.ndarray:
        """Codes for a single feature column ``j`` (same mapping as
        :meth:`transform`, without materialising the other columns)."""
        if self.bin_edges_ is None:
            raise RuntimeError("Binner.transform_column called before fit")
        col = np.asarray(col, dtype=np.float64)
        c = np.searchsorted(self.bin_edges_[j], col, side="left") + 1
        c[np.isnan(col)] = MISSING_BIN
        return c.astype(code_dtype(int(self.n_bins_[j])), copy=False)

    @property
    def total_bins(self) -> int:
        """Maximum code count over features (histogram allocation size)."""
        if self.n_bins_ is None:
            raise RuntimeError("Binner not fitted")
        return int(self.n_bins_.max())


# ----------------------------------------------------------------------
class SketchBinner(Binner):
    """Quantile binner whose edges come from a *seeded row sketch*.

    The base :class:`Binner` also subsamples huge inputs, but from an
    RNG the legacy trial path seeds per trial — two fits over different
    row subsets disagree.  The sketch binner instead draws its rows as a
    pure function of ``(n, sketch_size, seed)``, so the fitted edges are
    a property of the *dataset*: any process that fits it (or receives
    it pickled) maps every row subset to byte-identical codes.  That
    fold-independence is what legalises shipping one pre-binned code
    matrix over shared memory (:mod:`repro.exec.process`) and slicing
    it per fold (:mod:`repro.data.binned`).

    When ``sketch_size >= n`` the sketch is the full data and the fit
    equals ``Binner(max_bins).fit(X)`` exactly (property-tested).
    """

    def __init__(self, max_bins: int = 255, sketch_size: int = 131_072,
                 seed: int = 0) -> None:
        super().__init__(max_bins=max_bins)
        if sketch_size < 2:
            raise ValueError(f"sketch_size must be >= 2, got {sketch_size}")
        self.sketch_size = int(sketch_size)
        self.sketch_seed = int(seed)

    def sketch_rows(self, n: int) -> np.ndarray:
        """The (sorted) row indices the sketch draws from an ``n``-row
        input — deterministic in ``(n, sketch_size, seed)``."""
        n = int(n)
        if n <= self.sketch_size:
            return np.arange(n)
        rng = np.random.default_rng(self.sketch_seed)
        return np.sort(rng.choice(n, self.sketch_size, replace=False))

    def fit(self, X: np.ndarray) -> "SketchBinner":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        rows = self.sketch_rows(X.shape[0])
        sub = X if rows.size == X.shape[0] else X[rows]
        # the parent never re-subsamples: sub has at most sketch_size
        # (== self._subsample) rows by construction
        self._subsample = max(self._subsample, sub.shape[0])
        return Binner.fit(self, sub)

    def codes_from_base(self, base_codes: np.ndarray) -> np.ndarray:
        """The sketch binner *is* the base grid — identity."""
        return base_codes


class DerivedBinner(Binner):
    """A coarser grid derived from an already-fit base binner.

    Group boundaries are chosen equi-depth from per-base-bin occupancy
    counts (taken on the base binner's sketch), so the derived grid
    adapts to the data like a direct quantile fit would while remaining
    a pure function of ``(base edges, counts, max_bins)`` — both sides
    of a shared-memory boundary derive byte-identical grids without
    touching raw floats.

    The fitted state is a plain :class:`Binner` (``bin_edges_`` is a
    per-feature *subset* of the base edges, so the inherited float
    ``transform`` applies unchanged) plus per-feature ``remaps_`` that
    gather base codes straight to derived codes — provably equivalent
    to transforming the raw value, because no base edge lies strictly
    inside a base bin.
    """

    def __init__(self, base: Binner, counts: list[np.ndarray],
                 max_bins: int) -> None:
        super().__init__(max_bins=max_bins)
        if base.bin_edges_ is None:
            raise RuntimeError("DerivedBinner needs a fitted base binner")
        self.base = base
        mb = int(max_bins)
        edges: list[np.ndarray] = []
        n_bins = np.empty(len(base.bin_edges_), dtype=np.int64)
        remaps: list[np.ndarray] = []
        for j, be in enumerate(base.bin_edges_):
            cut = _equidepth_cuts(np.asarray(counts[j]), be.size, mb)
            e = be if cut is None else be[cut]
            edges.append(e)
            n_bins[j] = e.size + 1
            # base bin b (1..be.size+1) is represented by its right edge
            # (inf for the open top bin); searchsorted of that
            # representative against the derived edge subset is the
            # derived code every value in the bin maps to
            rep = np.append(be, np.inf)
            remap = np.zeros(be.size + 2, dtype=np.int64)
            remap[1:] = np.searchsorted(e, rep, side="left") + 1
            remaps.append(remap.astype(code_dtype(int(e.size + 2))))
        self.bin_edges_ = edges
        self.n_bins_ = n_bins + 1
        self.remaps_ = remaps

    def codes_from_base(self, base_codes: np.ndarray) -> np.ndarray:
        """Gather derived codes straight from *base* codes (no floats)."""
        out = np.empty(base_codes.shape,
                       dtype=code_dtype(int(self.n_bins_.max())))
        for j, remap in enumerate(self.remaps_):
            out[:, j] = remap[base_codes[:, j]]
        return out


def _equidepth_cuts(counts: np.ndarray, n_edges: int,
                    max_bins: int) -> np.ndarray | None:
    """Indices into the base edge array where the derived grid keeps an
    edge, placed equi-depth by base-bin occupancy; ``None`` = identity
    (the base already has at most ``max_bins`` value bins).

    ``counts`` is the per-code occupancy (index 0 = missing bin) of the
    ``n_edges + 1`` value bins the base edges delimit.
    """
    n_value_bins = n_edges + 1
    if n_value_bins <= max_bins:
        return None
    vc = np.asarray(counts[1:n_value_bins + 1], dtype=np.float64)
    if vc.size < n_value_bins:  # defensive: pad truncated counts
        vc = np.pad(vc, (0, n_value_bins - vc.size))
    if vc.sum() <= 0:  # sketch saw only NaN: fall back to uniform groups
        vc = np.ones(n_value_bins)
    csum = np.cumsum(vc)
    targets = csum[-1] * np.arange(1, max_bins) / max_bins
    cuts = np.searchsorted(csum, targets, side="left")
    return np.unique(np.clip(cuts, 0, n_edges - 1))


# ----------------------------------------------------------------------
class BinnedMatrix:
    """A row-subset of a dataset with a handle to shared pre-binned codes.

    The trial path hands this to histogram learners in place of the raw
    float matrix (they opt in via a ``_uses_binned_plane`` class marker).
    Instead of re-running :meth:`Binner.fit_transform` inside every
    ``fit``, the learner asks for

    * :meth:`binned` — codes for *these* rows under a binner fit on
      *these* rows, memoized in the owning
      :class:`~repro.data.binned.BinnedDataset` so the second trial that
      needs the same (rows, max_bins) pays a dict lookup; and
    * :meth:`codes_with` — these rows transformed by an already-fit
      binner (the validation side of a split), memoized likewise.

    The binner is fit on exactly the rows the learner would have fit it
    on, so trial errors are bit-for-bit identical to the unshared path.
    Anything that is not plane-aware can call :func:`numpy.asarray` on
    this object (or :meth:`raw`) and sees a plain float matrix copy.
    """

    ndim = 2

    def __init__(self, plane, rows: np.ndarray, rows_key: tuple) -> None:
        self._plane = plane
        self._rows = np.asarray(rows)
        self.rows_key = rows_key

    # -- array-likeness -------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """(n_rows, n_features) of the underlying slice."""
        return (int(self._rows.size), int(self._plane.data.d))

    def __len__(self) -> int:
        return int(self._rows.size)

    def raw(self) -> np.ndarray:
        """The raw float rows (a fresh copy, like ``X[rows]``)."""
        return self._plane.data.X[self._rows]

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        out = self.raw()
        return out if dtype is None else out.astype(dtype)

    # -- the binned plane -----------------------------------------------
    @property
    def rows(self) -> np.ndarray:
        """Row indices into the plane's dataset."""
        return self._rows

    def binned(self, max_bins: int):
        """(codes, n_bins, binner) with the binner fit on these rows."""
        return self._plane.binned_for(self._rows, self.rows_key, max_bins)

    def codes_with(self, binner: Binner) -> np.ndarray:
        """These rows transformed by an already-fit ``binner``."""
        return self._plane.transform_with(binner, self._rows, self.rows_key)
