"""CatBoost-like learner: oblivious (symmetric) tree boosting.

The paper's Table 5 searches exactly two hyperparameters for CatBoost —
``early_stop_rounds`` ∈ [10, 150] and ``learning_rate`` ∈ [0.005, 0.2] —
with a fixed, large iteration cap.  The defining structural property of
CatBoost is the *oblivious* tree: every level of the tree uses one shared
(feature, threshold) pair, so a depth-``D`` tree has 2^D leaves addressed
by a D-bit code.  We reproduce that, plus internal-holdout early stopping,
which is what gives the learner its "high constant cost, few knobs"
profile (ECI constant 15 in the appendix).
"""

from __future__ import annotations

import time

import numpy as np

from ..native import active_kernels
from .base import BaseClassifierMixin, BaseEstimator, validate_data
from .histogram import BinnedMatrix, Binner
from .losses import Loss, get_loss, sigmoid, softmax

__all__ = [
    "CatBoostLikeClassifier",
    "CatBoostLikeRegressor",
    "FlatOblivious",
    "ObliviousTree",
]

#: CatBoost bins at a fixed width (not a searched hyperparameter);
#: exposed on the learners as ``_plane_max_bins`` so plane warmup
#: (repro.data.binned.warm_plane) pre-bins at the width fit() will use
_MAX_BINS = 128


class ObliviousTree:
    """Depth-D symmetric tree: per-level (feature, threshold) + 2^D leaf values."""

    def __init__(self, features: np.ndarray, thresholds: np.ndarray,
                 leaf_values: np.ndarray) -> None:
        self.features = np.asarray(features, dtype=np.int32)
        self.thresholds = np.asarray(thresholds, dtype=np.int64)
        self.leaf_values = np.asarray(leaf_values, dtype=np.float64)

    def leaf_index(self, codes: np.ndarray) -> np.ndarray:
        """D-bit leaf index per row from the level comparisons."""
        idx = np.zeros(codes.shape[0], dtype=np.int64)
        for lvl, (f, t) in enumerate(zip(self.features, self.thresholds)):
            idx |= (codes[:, f] > t).astype(np.int64) << lvl
        return idx

    def predict(self, codes: np.ndarray) -> np.ndarray:
        """Leaf values / predictions for each row."""
        return self.leaf_values[self.leaf_index(codes)]


class FlatOblivious:
    """Packed per-level split vectors + leaf tables of many oblivious
    trees, for the batched lookup kernel.

    Tree ``t``'s shared per-depth (feature, threshold) pairs occupy
    levels ``level_offset[t]:level_offset[t+1]`` of the int64
    ``features``/``thresholds`` vectors and its ``2**depth`` leaf table
    starts at ``leaf_offset[t]`` in the flat float64 ``leaf_values``;
    ``tree_class[t]`` is the output column the tree accumulates into
    (oblivious trees always carry scalar leaves).  The traversal kernel
    (:mod:`repro.native` ``oblivious_predict``) reproduces
    :meth:`ObliviousTree.leaf_index` + the historical per-tree
    ``out += lr * tree.predict(codes)`` accumulate bit for bit.
    """

    __slots__ = ("features", "thresholds", "level_offset", "leaf_values",
                 "leaf_offset", "tree_class", "n_trees")

    def __init__(self, trees: list, tree_class=None) -> None:
        if not trees:
            raise ValueError("FlatOblivious needs at least one tree")
        lo = np.zeros(len(trees) + 1, dtype=np.int64)
        fo = np.zeros(len(trees) + 1, dtype=np.int64)
        for i, t in enumerate(trees):
            lo[i + 1] = lo[i] + t.features.size
            fo[i + 1] = fo[i] + t.leaf_values.size
        self.features = np.concatenate(
            [t.features.astype(np.int64) for t in trees]
        )
        self.thresholds = np.ascontiguousarray(
            np.concatenate([t.thresholds for t in trees]), dtype=np.int64
        )
        self.leaf_values = np.ascontiguousarray(
            np.concatenate([t.leaf_values for t in trees])
        )
        self.level_offset = lo
        self.leaf_offset = fo
        self.tree_class = (
            np.zeros(len(trees), dtype=np.int64)
            if tree_class is None
            else np.ascontiguousarray(tree_class, dtype=np.int64)
        )
        self.n_trees = len(trees)

    def predict_into(self, codes: np.ndarray, lr: float, out: np.ndarray,
                     kernels=None) -> np.ndarray:
        """Accumulate ``lr *`` (every tree's prediction) into the
        C-contiguous float64 ``(n, K)`` matrix ``out``, in place."""
        if kernels is None:
            kernels = active_kernels()
        return kernels.oblivious_predict(
            codes, self.features, self.thresholds, self.level_offset,
            self.leaf_values, self.leaf_offset, self.tree_class,
            float(lr), out,
        )


def _grow_oblivious(codes, grad, hess, n_bins, depth, reg_lambda, min_child_weight,
                    rng, feature_fraction=1.0, kernels=None):
    """Grow one oblivious tree greedily, level by level.

    At each level the (feature, threshold) pair maximising the *summed*
    regularised gain over all current nodes is chosen; nodes where the
    split violates ``min_child_weight`` contribute zero gain and keep
    their samples together.

    The whole-level scoring loop lives in the kernels layer
    (:mod:`repro.native`): the numpy reference scores every candidate
    feature from **one** flat ``np.bincount`` over joint ``(node,
    feature, bin)`` keys, and the compiled kernel fuses the same
    accumulation below the interpreter.  Both are bitwise identical —
    every bucket accumulates the same rows in the same order — asserted
    against the per-feature reference in
    ``tests/learners/test_catboost_like.py`` and fuzzed in
    ``tests/native/test_kernel_parity.py``.  ``kernels`` is resolved
    once per tree (never per level) when not handed in by the engine.
    """
    n, d = codes.shape
    node = np.zeros(n, dtype=np.int64)
    features, thresholds = [], []
    cand_features = np.arange(d)
    if feature_fraction < 1.0:
        k = max(1, int(round(feature_fraction * d)))
        cand_features = rng.choice(d, size=k, replace=False)
    F = cand_features.size
    nbmax = int(n_bins[cand_features].max()) if F else 0
    if nbmax < 2:  # no splittable feature: the root is the only leaf
        G = np.bincount(node, weights=grad, minlength=1)
        H = np.bincount(node, weights=hess, minlength=1)
        return ObliviousTree(np.empty(0, dtype=np.int32),
                             np.empty(0, dtype=np.int64), -G / (H + reg_lambda))
    if kernels is None:
        kernels = active_kernels()
    scorer = kernels.ObliviousLevelScorer(
        codes, cand_features, n_bins, grad, hess, min_child_weight,
        reg_lambda,
    )
    for lvl in range(depth):
        gain, j, t = scorer.score_level(node, lvl)
        if j < 0:
            break
        f = int(cand_features[j])
        features.append(f)
        thresholds.append(int(t))
        node |= (codes[:, f] > t).astype(np.int64) << lvl
    n_leaves = 1 << len(features)
    G = np.bincount(node, weights=grad, minlength=n_leaves)
    H = np.bincount(node, weights=hess, minlength=n_leaves)
    leaf_values = -G / (H + reg_lambda)
    return ObliviousTree(np.array(features, dtype=np.int32),
                         np.array(thresholds, dtype=np.int64), leaf_values)


class _CatBoostEngine:
    """Boosting loop over oblivious trees with internal-holdout early stop."""

    def __init__(self, loss: Loss, n_estimators: int, learning_rate: float,
                 early_stopping_rounds: int, depth: int, reg_lambda: float,
                 min_child_weight: float, train_time_limit: float | None,
                 seed: int) -> None:
        self.loss = loss
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.early_stopping_rounds = early_stopping_rounds
        self.depth = depth
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.train_time_limit = train_time_limit
        self.seed = seed

    def fit(self, X, y, sample_weight=None):
        """Grow the oblivious-tree ensemble on binned (X, y); optional
        per-row weights scale the training gradients."""
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        kernels = active_kernels()  # one dispatch per fit, not per tree
        n = X.shape[0]
        sw = (
            None if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        # Internal 80/20 holdout for early stopping (CatBoost behaviour when
        # an eval set exists; here we always carve one out).
        perm = rng.permutation(n)
        n_val = max(1, int(0.2 * n))
        val_idx, tr_idx = perm[:n_val], perm[n_val:]
        if tr_idx.size == 0:
            tr_idx = perm
        if isinstance(X, BinnedMatrix):
            # CatBoost bins its full input (the internal holdout is
            # carved out *after* binning), so the shared plane's codes
            # for these rows are exactly what fit_transform produces
            codes_all, _, self.binner_ = X.binned(_MAX_BINS)
        else:
            self.binner_ = Binner(max_bins=_MAX_BINS, rng=rng)
            codes_all = self.binner_.fit_transform(X)
        codes, codes_val = codes_all[tr_idx], codes_all[val_idx]
        y_tr, y_val = y[tr_idx], y[val_idx]
        w_tr = None if sw is None else sw[tr_idx]
        K = self.loss.n_scores
        self.base_score_ = self.loss.init_score(y_tr)
        scores = (
            np.tile(self.base_score_, (tr_idx.size, 1))
            if K > 1
            else np.full(tr_idx.size, self.base_score_[0])
        )
        val_scores = (
            np.tile(self.base_score_, (val_idx.size, 1))
            if K > 1
            else np.full(val_idx.size, self.base_score_[0])
        )
        # 2-D views for the flat traversal kernels (same memory: in-place
        # adds through them are the historical per-column adds)
        scores2d = scores if K > 1 else scores.reshape(-1, 1)
        val2d = val_scores if K > 1 else val_scores.reshape(-1, 1)
        self.trees_: list[list[ObliviousTree]] = []
        best_val, best_iter = np.inf, 0
        for it in range(self.n_estimators):
            grad, hess = self.loss.grad_hess(y_tr, scores)
            if w_tr is not None:
                grad = grad * (w_tr[:, None] if grad.ndim == 2 else w_tr)
                hess = hess * (w_tr[:, None] if hess.ndim == 2 else w_tr)
            round_trees = []
            for k in range(K):
                g = grad[:, k] if K > 1 else grad
                h = hess[:, k] if K > 1 else hess
                tree = _grow_oblivious(
                    codes, g, h, self.binner_.n_bins_, self.depth,
                    self.reg_lambda, self.min_child_weight, rng,
                    kernels=kernels,
                )
                round_trees.append(tree)
                flat = FlatOblivious([tree], [k])
                flat.predict_into(codes, self.learning_rate, scores2d,
                                  kernels)
                flat.predict_into(codes_val, self.learning_rate, val2d,
                                  kernels)
            self.trees_.append(round_trees)
            vloss = self.loss.value(y_val, val_scores)
            if vloss < best_val - 1e-12:
                best_val, best_iter = vloss, it + 1
            elif it + 1 - best_iter >= self.early_stopping_rounds:
                break
            if (
                self.train_time_limit is not None
                and time.perf_counter() - start > self.train_time_limit
            ):
                break
        # use_best_model on *every* exit (CatBoost's behaviour with an
        # eval set): the iteration-cap and time-limit exits used to keep
        # every round grown after the holdout optimum — only the
        # early-stop branch truncated.  Intended semantic change (PR 6);
        # the golden trial fixtures turned out insensitive (every pinned
        # catboost trial early-stops well before its cap), so no re-pin
        # was needed.
        if len(self.trees_) > best_iter:
            self.trees_ = self.trees_[:best_iter]
        return self

    def raw_predict(self, X):
        """Raw (margin) predictions on X."""
        codes = (
            X.codes_with(self.binner_)
            if isinstance(X, BinnedMatrix)
            else self.binner_.transform(X)
        )
        K = self.loss.n_scores
        scores = (
            np.tile(self.base_score_, (X.shape[0], 1))
            if K > 1
            else np.full(X.shape[0], self.base_score_[0])
        )
        if self.trees_:
            self._flat().predict_into(
                codes, self.learning_rate,
                scores if K > 1 else scores.reshape(-1, 1),
                active_kernels(),
            )
        return scores

    def _flat(self) -> FlatOblivious:
        """Packed lookup arrays of the whole fitted ensemble (lazily
        built; rebuilt when ``trees_`` is rebound or resized, e.g. by
        :mod:`repro.learners.model_io` on load)."""
        trees = [t for rt in self.trees_ for t in rt]
        key = (
            id(self.trees_), len(trees),
            sum(t.leaf_values.size for t in trees),
        )
        cached = getattr(self, "_flat_cache", None)
        if cached is None or cached[0] != key:
            classes = [k for rt in self.trees_ for k in range(len(rt))]
            self._flat_cache = (key, FlatOblivious(trees, classes))
        return self._flat_cache[1]


class _CatBoostBase(BaseEstimator):
    _is_classifier = False
    #: the trial path may pass a BinnedMatrix instead of raw floats
    _uses_binned_plane = True
    #: fixed binning width (no ``max_bin`` knob); read by plane warmup
    _plane_max_bins = _MAX_BINS

    def __init__(
        self,
        early_stop_rounds: int = 30,
        learning_rate: float = 0.1,
        n_estimators: int = 1000,
        depth: int = 6,
        reg_lambda: float = 3.0,
        min_child_weight: float = 1e-3,
        train_time_limit: float | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(
            early_stop_rounds=early_stop_rounds,
            learning_rate=learning_rate,
            n_estimators=n_estimators,
            depth=depth,
            reg_lambda=reg_lambda,
            min_child_weight=min_child_weight,
            train_time_limit=train_time_limit,
            seed=seed,
        )

    def _engine(self, loss: Loss) -> _CatBoostEngine:
        return _CatBoostEngine(
            loss,
            n_estimators=max(1, int(round(self.n_estimators))),
            learning_rate=float(self.learning_rate),
            early_stopping_rounds=max(1, int(round(self.early_stop_rounds))),
            depth=int(self.depth),
            reg_lambda=float(self.reg_lambda),
            min_child_weight=float(self.min_child_weight),
            train_time_limit=self.train_time_limit,
            seed=int(self.seed),
        )

    def fit(self, X, y, X_val=None, y_val=None, sample_weight=None):
        """Boost on (X, y); the eval set drives early stopping."""
        # The engine carves its own early-stopping holdout; external val
        # data is ignored (accepted for API uniformity).
        X, y = validate_data(X, y)
        if self._is_classifier:
            yk = self._encode_labels(y)
            task = "binary" if self.n_classes_ == 2 else "multiclass"
            loss = get_loss(task, self.n_classes_)
            y_fit = yk.astype(np.float64) if task == "binary" else yk
        else:
            loss = get_loss("regression")
            y_fit = y.astype(np.float64)
        self.engine_ = self._engine(loss).fit(X, y_fit,
                                              sample_weight=sample_weight)
        return self

    def warm_inference(self) -> None:
        """Pre-build the packed lookup arrays the predict kernel uses
        (otherwise built lazily on the first predict)."""
        engine = getattr(self, "engine_", None)
        if engine is not None and engine.trees_:
            engine._flat()


class CatBoostLikeClassifier(BaseClassifierMixin, _CatBoostBase):
    """Oblivious-tree boosting classifier with early stopping."""

    _is_classifier = True

    def predict_proba(self, X):
        """Class-probability matrix of shape (n, K)."""
        X = validate_data(X)
        raw = self.engine_.raw_predict(X)
        if self.n_classes_ == 2:
            p1 = sigmoid(raw)
            return np.column_stack([1 - p1, p1])
        return softmax(raw)


class CatBoostLikeRegressor(_CatBoostBase):
    """Oblivious-tree boosting regressor with early stopping."""

    def predict(self, X):
        """Leaf values / predictions for each row."""
        X = validate_data(X)
        return self.engine_.raw_predict(X)
