"""Linear learners: L1/L2 logistic regression and ridge/lasso regression.

``lrl1`` in the paper's Table 5 is sklearn's L1-penalised logistic
regression with inverse-regularisation ``C``.  We solve the same objective

    min_w  (1/n) Σ log-loss(w; x_i, y_i) + ||w||_1 / (C·n)

with FISTA (accelerated proximal gradient).  Features are standardised
internally and the intercept is unpenalised, matching sklearn behaviour
closely enough for search-cost/error trade-off purposes: the learner is
cheap per pass, high bias, and has one searched hyperparameter — exactly
the role it plays in FLAML's learner pool.
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifierMixin, BaseEstimator, validate_data
from .losses import sigmoid, softmax

__all__ = [
    "LogisticRegressionL1",
    "LogisticRegressionL2",
    "RidgeRegressor",
    "LassoRegressor",
]


def _standardize_fit(X: np.ndarray, w: np.ndarray | None = None):
    """Column means/stds; weighted statistics when ``w`` is given so that
    an integer weight equals row duplication."""
    if w is None:
        mu = X.mean(axis=0)
        sd = X.std(axis=0)
    else:
        tot = w.sum()
        mu = (X * w[:, None]).sum(axis=0) / tot
        sd = np.sqrt(((X - mu) ** 2 * w[:, None]).sum(axis=0) / tot)
    sd[sd < 1e-12] = 1.0
    return mu, sd


def _spectral_norm_sq(X: np.ndarray, n_iter: int = 20, seed: int = 0) -> float:
    """Estimate sigma_max(X)^2 by power iteration on X^T X."""
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(X.shape[1])
    v /= np.linalg.norm(v) + 1e-12
    s = 1.0
    for _ in range(n_iter):
        u = X.T @ (X @ v)
        s = np.linalg.norm(u)
        if s < 1e-12:
            return 1e-12
        v = u / s
    return float(s)


def _soft(w: np.ndarray, t: float) -> np.ndarray:
    return np.sign(w) * np.maximum(np.abs(w) - t, 0.0)


class _LogisticBase(BaseClassifierMixin, BaseEstimator):
    """FISTA solver shared by the L1 and L2 logistic learners."""

    _penalty = "l1"

    def __init__(self, C: float = 1.0, max_iter: int = 200, tol: float = 1e-6,
                 seed: int = 0) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        super().__init__(C=C, max_iter=max_iter, tol=tol, seed=seed)

    # -- gradient of the smooth part -----------------------------------
    def _grad(self, Xs, Y, W):
        P = softmax(Xs @ W) if self._K > 2 else sigmoid(Xs @ W)
        R = P - Y
        R = R * (self._w[:, None] if R.ndim == 2 else self._w)
        G = Xs.T @ R / self._n_eff
        if self._penalty == "l2":
            G = G + self._lam * self._mask * W
        return G

    def fit(self, X, y, X_val=None, y_val=None, sample_weight=None):
        """Solve the regularised objective on (X, y); returns self.

        ``sample_weight`` scales each row's loss term — integer weights
        are equivalent to row duplication.
        """
        X, y = validate_data(X, y)
        yk = self._encode_labels(y)
        K = self.n_classes_
        self._K = K
        w = (
            np.ones(X.shape[0])
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        self._w = w
        self._n_eff = float(w.sum())
        self._mu, self._sd = _standardize_fit(
            X, None if sample_weight is None else w
        )
        Xs = (X - self._mu) / self._sd
        Xs = np.column_stack([Xs, np.ones(X.shape[0])])  # intercept column
        n, d = Xs.shape
        lam = 1.0 / (self.C * self._n_eff)
        self._lam = lam
        # Lipschitz constant of the smooth part: sigma^2/(4n) binary,
        # sigma^2/(2n) multiclass (weighted rows enter as sqrt(w)·x).
        L = _spectral_norm_sq(
            Xs * np.sqrt(w)[:, None], seed=self.seed
        ) / ((4.0 if K == 2 else 2.0) * self._n_eff)
        L = max(L, 1e-8)
        ncols = 1 if K == 2 else K
        Y = (
            yk.astype(np.float64)
            if K == 2
            else np.eye(K)[yk]
        )
        W = np.zeros((d, ncols)) if K > 2 else np.zeros(d)
        mask = np.ones_like(W)
        if W.ndim == 1:
            mask[-1] = 0.0  # unpenalised intercept
        else:
            mask[-1, :] = 0.0
        self._mask = mask
        Z, t_k = W.copy(), 1.0
        step = 1.0 / L
        for _ in range(int(self.max_iter)):
            G = self._grad(Xs, Y, Z)
            W_new = Z - step * G
            if self._penalty == "l1":
                W_new = np.where(mask > 0, _soft(W_new, step * lam), W_new)
            t_new = (1 + np.sqrt(1 + 4 * t_k**2)) / 2
            Z = W_new + ((t_k - 1) / t_new) * (W_new - W)
            delta = float(np.max(np.abs(W_new - W)))
            W, t_k = W_new, t_new
            if delta < self.tol:
                break
        self.coef_ = W
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape (n, K)."""
        X = validate_data(X)
        Xs = (X - self._mu) / self._sd
        Xs = np.column_stack([Xs, np.ones(X.shape[0])])
        if self._K == 2:
            p1 = sigmoid(Xs @ self.coef_)
            return np.column_stack([1 - p1, p1])
        return softmax(Xs @ self.coef_)


class LogisticRegressionL1(_LogisticBase):
    """``lrl1`` — L1-penalised logistic regression, hyperparameter ``C``."""

    _penalty = "l1"


class LogisticRegressionL2(_LogisticBase):
    """L2-penalised logistic regression, hyperparameter ``C``."""

    _penalty = "l2"


class RidgeRegressor(BaseEstimator):
    """Closed-form ridge regression; the regression stand-in for ``lr``.

    Uses ``alpha = 1/C`` so the searched ``C`` keeps Table 5 semantics
    (large C = weak regularisation).
    """

    def __init__(self, C: float = 1.0, seed: int = 0) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        super().__init__(C=C, seed=seed)

    def fit(self, X, y, X_val=None, y_val=None, sample_weight=None):
        """Solve the (optionally weighted) regularised objective on
        (X, y); returns self."""
        X, y = validate_data(X, y)
        w = (
            None if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        self._mu, self._sd = _standardize_fit(X, w)
        Xs = (X - self._mu) / self._sd
        if w is None:
            self._ymu = float(y.mean())
        else:
            self._ymu = float((y * w).sum() / w.sum())
        yc = y - self._ymu
        d = Xs.shape[1]
        alpha = 1.0 / self.C
        Xw = Xs if w is None else Xs * w[:, None]
        A = Xw.T @ Xs + alpha * np.eye(d)
        b = Xw.T @ yc
        self.coef_ = np.linalg.solve(A, b)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Linear predictions on X."""
        X = validate_data(X)
        return ((X - self._mu) / self._sd) @ self.coef_ + self._ymu


class LassoRegressor(BaseEstimator):
    """L1-penalised least squares via FISTA; hyperparameter ``C``."""

    def __init__(self, C: float = 1.0, max_iter: int = 300, tol: float = 1e-7,
                 seed: int = 0) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        super().__init__(C=C, max_iter=max_iter, tol=tol, seed=seed)

    def fit(self, X, y, X_val=None, y_val=None, sample_weight=None):
        """Solve the (optionally weighted) regularised objective on
        (X, y); returns self."""
        X, y = validate_data(X, y)
        sw = (
            None if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        self._mu, self._sd = _standardize_fit(X, sw)
        Xs = (X - self._mu) / self._sd
        if sw is None:
            self._ymu = float(y.mean())
            n_eff = float(Xs.shape[0])
        else:
            n_eff = float(sw.sum())
            self._ymu = float((y * sw).sum() / n_eff)
        yc = y - self._ymu
        n, d = Xs.shape
        lam = 1.0 / (self.C * n_eff)
        Xl = Xs if sw is None else Xs * np.sqrt(sw)[:, None]
        L = max(_spectral_norm_sq(Xl, seed=self.seed) / n_eff, 1e-8)
        w = np.zeros(d)
        z, t_k = w.copy(), 1.0
        step = 1.0 / L
        for _ in range(int(self.max_iter)):
            resid = Xs @ z - yc
            if sw is not None:
                resid = resid * sw
            g = Xs.T @ resid / n_eff
            w_new = _soft(z - step * g, step * lam)
            t_new = (1 + np.sqrt(1 + 4 * t_k**2)) / 2
            z = w_new + ((t_k - 1) / t_new) * (w_new - w)
            delta = float(np.max(np.abs(w_new - w)))
            w, t_k = w_new, t_new
            if delta < self.tol:
                break
        self.coef_ = w
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Linear predictions on X."""
        X = validate_data(X)
        return ((X - self._mu) / self._sd) @ self.coef_ + self._ymu
