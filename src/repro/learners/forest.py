"""Random forest and extra-trees learners (classification + regression).

These reproduce the two sklearn ensemble learners FLAML searches
(Table 5: ``tree_num``, ``max_features``, ``split criterion``) and also
provide the *tuned random forest* used by the AutoML benchmark to
calibrate scaled scores (score 1 reference point).

Classification trees split on gini/entropy impurity
(:class:`~repro.learners.tree.ClassTreeGrower`); regression trees reuse the
gradient grower with ``grad = -y, hess = 1`` which makes the regularised
gain reduce to variance reduction and leaf values to the sample mean.
"""

from __future__ import annotations

import time

import numpy as np

from ..native import active_kernels
from .base import BaseClassifierMixin, BaseEstimator, validate_data
from .histogram import BinnedMatrix, Binner
from .tree import ClassTreeGrower, FlatEnsemble, GradTreeGrower, Tree

__all__ = [
    "RandomForestClassifier",
    "RandomForestRegressor",
    "ExtraTreesClassifier",
    "ExtraTreesRegressor",
    "tuned_random_forest",
]


class _ForestBase(BaseEstimator):
    """Shared bagging loop."""

    _extra_random = False
    _bootstrap = True
    _is_classifier = False
    #: the trial path may pass a BinnedMatrix instead of raw floats
    _uses_binned_plane = True

    def __init__(
        self,
        tree_num: int = 100,
        max_features: float = 1.0,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_bin: int = 64,
        train_time_limit: float | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(
            tree_num=tree_num,
            max_features=max_features,
            criterion=criterion,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_bin=max_bin,
            train_time_limit=train_time_limit,
            seed=seed,
        )

    def _grow_one(self, codes, y, n_bins, rng, idx, kernels) -> Tree:
        raise NotImplementedError

    def _flat(self) -> FlatEnsemble:
        """Packed traversal arrays of the whole fitted forest (lazily
        built; rebuilt when ``trees_`` is rebound or resized, e.g. by
        :mod:`repro.learners.model_io` on load)."""
        trees = self.trees_
        key = (id(trees), len(trees), sum(t.n_nodes for t in trees))
        cached = getattr(self, "_flat_cache", None)
        if cached is None or cached[0] != key:
            trees[0]._ensure_frozen()
            # class trees carry probability-vector leaves: route the
            # whole row (-1); regression trees add their scalar leaf
            cls = -1 if trees[0]._value.shape[1] > 1 else 0
            self._flat_cache = (
                key, FlatEnsemble(trees, [cls] * len(trees))
            )
        return self._flat_cache[1]

    def warm_inference(self) -> None:
        """Pre-build the packed traversal arrays the predict kernels use
        (otherwise built lazily on the first predict)."""
        if getattr(self, "trees_", None):
            self._flat()

    def fit(self, X, y, X_val=None, y_val=None, sample_weight=None):
        """Fit the bagged ensemble on (X, y); returns self.

        ``sample_weight`` scales each row's contribution to split gains
        and leaf values (weighted impurity for classification, weighted
        squared loss for regression).
        """
        # X_val/y_val accepted for API uniformity with GBDT learners; forests
        # do not use early stopping.
        X, y = validate_data(X, y)
        self._sample_weight = (
            None if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        if self._is_classifier:
            y = self._encode_labels(y)
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        if isinstance(X, BinnedMatrix):
            codes, _, self.binner_ = X.binned(max(2, int(self.max_bin)))
        else:
            self.binner_ = Binner(max_bins=max(2, int(self.max_bin)), rng=rng)
            codes = self.binner_.fit_transform(X)
        n = X.shape[0]
        kernels = active_kernels()  # one dispatch per fit, not per tree
        self.trees_: list[Tree] = []
        for _ in range(max(1, int(round(self.tree_num)))):
            idx = rng.integers(0, n, size=n) if self._bootstrap else None
            self.trees_.append(
                self._grow_one(codes, y, self.binner_.n_bins_, rng, idx,
                               kernels)
            )
            if (
                self.train_time_limit is not None
                and time.perf_counter() - start > self.train_time_limit
                and self.trees_
            ):
                break
        return self


class _ForestImportanceMixin:
    @property
    def feature_importances_(self) -> np.ndarray:
        """Split-count feature importances, normalised to sum to 1."""
        d = len(self.binner_.bin_edges_)
        counts = np.zeros(d)
        for tree in self.trees_:
            counts += tree.split_feature_counts(d)
        total = counts.sum()
        return counts / total if total > 0 else counts


class RandomForestClassifier(BaseClassifierMixin, _ForestImportanceMixin,
                             _ForestBase):
    """Bagged gini/entropy trees; ``predict_proba`` averages leaf frequencies."""

    _is_classifier = True

    def _grow_one(self, codes, y, n_bins, rng, idx, kernels):
        grower = ClassTreeGrower(
            n_classes=self.n_classes_,
            criterion=self.criterion,
            max_depth=self.max_depth if self.max_depth is not None else 16,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            extra_random=self._extra_random,
            rng=rng,
            kernels=kernels,
        )
        return grower.grow(codes, y, n_bins, sample_idx=idx,
                           sample_weight=getattr(self, "_sample_weight", None))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of per-tree leaf class frequencies."""
        X = validate_data(X)
        codes = (
            X.codes_with(self.binner_)
            if isinstance(X, BinnedMatrix)
            else self.binner_.transform(X)
        )
        # one flat traversal over all trees; lr=1.0 multiplies each leaf
        # vector by exactly 1.0, so every cell sees the same adds (in the
        # same order) as the historical `acc += tree.predict(codes)` loop
        acc = np.zeros((X.shape[0], self.n_classes_))
        self._flat().predict_into(codes, 1.0, acc)
        acc /= len(self.trees_)
        return acc


class ExtraTreesClassifier(RandomForestClassifier):
    """Extra-trees: random thresholds, no bootstrap."""

    _extra_random = True
    _bootstrap = False


class RandomForestRegressor(_ForestImportanceMixin, _ForestBase):
    """Bagged variance-reduction trees; ``predict`` averages leaf means."""

    def _grow_one(self, codes, y, n_bins, rng, idx, kernels):
        w = getattr(self, "_sample_weight", None)
        if w is None:
            w = np.ones(len(y))
        grower = GradTreeGrower(
            max_leaves=len(y),  # effectively unbounded; depth/min-leaf bound growth
            max_depth=self.max_depth if self.max_depth is not None else 16,
            min_child_weight=0.0,
            reg_lambda=1e-9,
            leaf_wise=False,
            colsample_bylevel=self.max_features,
            extra_random=self._extra_random,
            min_samples_leaf=max(1, self.min_samples_leaf),
            rng=rng,
            kernels=kernels,
        )
        return grower.grow(codes, -y.astype(np.float64) * w, w, n_bins,
                           sample_idx=idx)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Average of per-tree leaf means."""
        X = validate_data(X)
        codes = (
            X.codes_with(self.binner_)
            if isinstance(X, BinnedMatrix)
            else self.binner_.transform(X)
        )
        acc = np.zeros(X.shape[0])
        self._flat().predict_into(codes, 1.0, acc.reshape(-1, 1))
        return acc / len(self.trees_)


class ExtraTreesRegressor(RandomForestRegressor):
    """Extra-trees regression: random thresholds, no bootstrap."""

    _extra_random = True
    _bootstrap = False


def tuned_random_forest(task: str, seed: int = 0, tree_num: int = 200,
                        train_time_limit: float | None = None):
    """The AutoML-benchmark calibration baseline (scaled score = 1).

    The benchmark tunes a random forest with many trees and default depth;
    we use the same recipe scaled to this substrate.  ``max_depth`` is
    bounded to keep single-fit cost sane on 1 core.
    """
    cls = RandomForestRegressor if task == "regression" else RandomForestClassifier
    return cls(
        tree_num=tree_num,
        max_features=0.5,
        criterion="gini",
        max_depth=14,
        min_samples_leaf=2,
        train_time_limit=train_time_limit,
        seed=seed,
    )
