"""Histogram-based decision trees.

Two growers share the same array-backed :class:`Tree` structure:

* :class:`GradTreeGrower` — regression trees on (gradient, hessian) pairs
  with L1/L2-regularised leaf values and gain, exactly as in
  XGBoost/LightGBM.  Supports *leaf-wise* (best-first, LightGBM style) and
  *depth-wise* growth, per-tree/per-level column subsampling, and an
  *extra-random* mode (random thresholds, for extra-trees).
* :class:`ClassTreeGrower` — classification trees on class labels with
  gini/entropy impurity (for the random-forest / extra-trees learners whose
  ``split criterion`` is a searched hyperparameter in Table 5).

Split finding is vectorised: per (node, feature) histograms are built with
``np.bincount`` and all candidate thresholds are scored at once — or, when
the native kernels are enabled (:mod:`repro.native`), by the compiled
bitwise-identical equivalents.  A grower binds its kernels object once at
construction; per-node code never re-dispatches.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..native import active_kernels
from ..native.fallback import _EPS  # the kernels' gain tie-break epsilon
from ..native.fallback import soft_threshold as _soft_threshold

__all__ = ["Tree", "FlatEnsemble", "GradTreeGrower", "ClassTreeGrower"]

#: cap on histograms parked on pending tree nodes for the
#: sibling-subtraction trick; beyond it children rebuild from scratch
_HIST_CACHE_BYTES = 32 << 20


class Tree:
    """Array-backed binary tree over binned features.

    Navigation rule at an internal node: go left iff
    ``codes[:, feature] <= threshold``.  Leaf payloads are rows of
    ``value`` (scalar for boosting trees, class-probability vector for
    classification trees).
    """

    def __init__(self, n_values: int = 1) -> None:
        self.feature: list[int] = []
        self.threshold: list[int] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list[np.ndarray] = []
        self.n_values = n_values

    # -- construction ---------------------------------------------------
    def add_node(self, value: np.ndarray) -> int:
        """Append a leaf and return its node id."""
        nid = len(self.feature)
        self.feature.append(-1)
        self.threshold.append(0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(np.atleast_1d(np.asarray(value, dtype=np.float64)))
        return nid

    def set_split(self, nid: int, feature: int, threshold: int, left: int, right: int) -> None:
        """Turn leaf ``nid`` into an internal node."""
        self.feature[nid] = feature
        self.threshold[nid] = threshold
        self.left[nid] = left
        self.right[nid] = right

    def freeze(self) -> None:
        """Convert list storage to arrays for fast prediction."""
        self._feature = np.asarray(self.feature, dtype=np.int32)
        self._threshold = np.asarray(self.threshold, dtype=np.int64)
        self._left = np.asarray(self.left, dtype=np.int32)
        self._right = np.asarray(self.right, dtype=np.int32)
        self._value = np.stack(self.value).astype(np.float64)

    def _ensure_frozen(self) -> None:
        """Freeze on first prediction if the growers/loaders haven't.

        Hand-built trees (``add_node``/``set_split`` without ``freeze``)
        used to die with a bare ``AttributeError: '_feature'`` here; an
        empty tree has nothing to predict with, so that stays an error —
        but an actionable one.
        """
        if not hasattr(self, "_feature"):
            if not self.feature:
                raise RuntimeError(
                    "cannot predict with an empty Tree: add at least one "
                    "leaf (add_node) or grow the tree before predicting"
                )
            self.freeze()

    # -- inference ------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total node count (internal + leaves)."""
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        """Leaf count."""
        return int(sum(1 for f in self.feature if f < 0))

    def predict_leaf(self, codes: np.ndarray) -> np.ndarray:
        """Return the leaf node id reached by each row of ``codes``."""
        self._ensure_frozen()
        node = np.zeros(codes.shape[0], dtype=np.int32)
        while True:
            act = np.nonzero(self._feature[node] >= 0)[0]
            if act.size == 0:
                return node
            cur = node[act]
            goleft = codes[act, self._feature[cur]] <= self._threshold[cur]
            node[act] = np.where(goleft, self._left[cur], self._right[cur])

    def predict(self, codes: np.ndarray) -> np.ndarray:
        """Return leaf values, shape (n,) if scalar payload else (n, K)."""
        # freeze before the subscript: `self._value[...]` resolves the
        # attribute *before* predict_leaf gets a chance to freeze
        self._ensure_frozen()
        out = self._value[self.predict_leaf(codes)]
        return out[:, 0] if out.shape[1] == 1 else out

    def predict_at(self, leaves: np.ndarray) -> np.ndarray:
        """Leaf values for known leaf ids (``grow(out_leaf=...)``) —
        skips the tree walk of :meth:`predict`."""
        self._ensure_frozen()
        out = self._value[leaves]
        return out[:, 0] if out.shape[1] == 1 else out

    def split_feature_counts(self, n_features: int) -> np.ndarray:
        """How many internal nodes split on each feature (importance proxy)."""
        counts = np.zeros(n_features, dtype=np.float64)
        for f in self.feature:
            if f >= 0:
                counts[f] += 1
        return counts


# ----------------------------------------------------------------------
class FlatEnsemble:
    """Packed node arrays of many frozen trees, for batched traversal.

    All trees' ``feature``/``threshold``/``left``/``right``/``value``
    buffers are concatenated into one contiguous int64/float64 array
    each, with child ids rewritten to be **absolute** indices into the
    pack (leaves keep ``feature < 0``), so the traversal kernels
    (:mod:`repro.native` ``ensemble_predict``) descend every tree for
    every row without per-tree Python dispatch or re-basing.

    ``tree_class[t]`` routes tree ``t``'s leaf values: ``k >= 0`` adds
    ``value[leaf, 0]`` into output column ``k`` (boosting trees, one per
    loss score), ``-1`` adds the whole ``value[leaf]`` row (forest
    class-probability trees).  The accumulate itself — one ``lr *
    value`` product + one add per touched cell, trees in order — is
    bitwise identical to the historical per-tree
    ``out += lr * tree.predict(codes)`` loop.
    """

    __slots__ = ("feature", "threshold", "left", "right", "value",
                 "tree_offset", "tree_class", "n_trees")

    def __init__(self, trees: list, tree_class=None) -> None:
        if not trees:
            raise ValueError("FlatEnsemble needs at least one tree")
        offs = np.zeros(len(trees) + 1, dtype=np.int64)
        for i, t in enumerate(trees):
            t._ensure_frozen()
            offs[i + 1] = offs[i] + t.n_nodes
        feature, threshold, left, right = [], [], [], []
        for off, t in zip(offs, trees):
            f = t._feature.astype(np.int64)
            lc = t._left.astype(np.int64)
            rc = t._right.astype(np.int64)
            internal = f >= 0
            lc[internal] += off
            rc[internal] += off
            feature.append(f)
            threshold.append(t._threshold)
            left.append(lc)
            right.append(rc)
        self.feature = np.concatenate(feature)
        self.threshold = np.ascontiguousarray(
            np.concatenate(threshold), dtype=np.int64
        )
        self.left = np.concatenate(left)
        self.right = np.concatenate(right)
        self.value = np.ascontiguousarray(
            np.concatenate([t._value for t in trees], axis=0)
        )
        self.tree_offset = offs
        self.tree_class = (
            np.zeros(len(trees), dtype=np.int64)
            if tree_class is None
            else np.ascontiguousarray(tree_class, dtype=np.int64)
        )
        self.n_trees = len(trees)

    def predict_into(self, codes: np.ndarray, lr: float, out: np.ndarray,
                     kernels=None) -> np.ndarray:
        """Accumulate ``lr *`` (every tree's prediction) into the
        C-contiguous float64 ``(n, K)`` matrix ``out``, in place."""
        if kernels is None:
            kernels = active_kernels()
        return kernels.ensemble_predict(
            codes, self.feature, self.threshold, self.left, self.right,
            self.value, self.tree_offset, self.tree_class, float(lr), out,
        )


# ----------------------------------------------------------------------
class GradTreeGrower:
    """Grow one regression tree from per-sample gradients/hessians.

    Parameters mirror the GBDT hyperparameters in the paper's Table 5.

    Parameters
    ----------
    max_leaves:
        Leaf budget (``leaf_num``).  Leaf-wise growth stops when reached.
    max_depth:
        Optional depth cap (used by depth-wise growth; None = unlimited).
    min_child_weight:
        Minimum hessian sum per child.
    reg_alpha, reg_lambda:
        L1 / L2 regularisation of leaf values.
    leaf_wise:
        True = best-first growth (LightGBM); False = level-order (XGBoost
        classic / forests).
    colsample_bytree, colsample_bylevel:
        Fractions of features considered per tree / per split.
    extra_random:
        If True, score a single random threshold per feature (extra-trees).
    min_samples_leaf:
        Minimum sample count per child (forests).
    hist_subtraction:
        Derive the larger child's histograms as parent − sibling instead
        of re-counting (LightGBM's trick; on by default).  Gains then
        differ from scratch builds at float-rounding level, which can
        flip the argmax between *exactly tied* candidate splits — set
        False to reproduce scratch-build trees bit-for-bit.
    kernels:
        Histogram/split kernels to use (the compiled-native or numpy
        module from :mod:`repro.native`); resolved once here via
        :func:`~repro.native.active_kernels` when not given, so the
        per-node hot path never re-dispatches.
    """

    def __init__(
        self,
        max_leaves: int = 31,
        max_depth: int | None = None,
        min_child_weight: float = 1e-3,
        reg_alpha: float = 0.0,
        reg_lambda: float = 1.0,
        min_gain: float = 0.0,
        leaf_wise: bool = True,
        colsample_bytree: float = 1.0,
        colsample_bylevel: float = 1.0,
        extra_random: bool = False,
        min_samples_leaf: int = 1,
        hist_subtraction: bool = True,
        rng: np.random.Generator | None = None,
        kernels=None,
    ) -> None:
        if max_leaves < 2:
            raise ValueError(f"max_leaves must be >= 2, got {max_leaves}")
        self.max_leaves = int(max_leaves)
        self.max_depth = max_depth
        self.min_child_weight = float(min_child_weight)
        self.reg_alpha = float(reg_alpha)
        self.reg_lambda = float(reg_lambda)
        self.min_gain = float(min_gain)
        self.leaf_wise = bool(leaf_wise)
        self.colsample_bytree = float(colsample_bytree)
        self.colsample_bylevel = float(colsample_bylevel)
        self.extra_random = bool(extra_random)
        self.min_samples_leaf = int(min_samples_leaf)
        self.hist_subtraction = bool(hist_subtraction)
        self.rng = rng or np.random.default_rng(0)
        self.kernels = kernels if kernels is not None else active_kernels()

    # ------------------------------------------------------------------
    def _leaf_value(self, G: float, H: float) -> float:
        # scalar soft-threshold in plain python: the ufunc chain of
        # _soft_threshold costs ~7 numpy dispatches per leaf, and leaves
        # are created once per node; plain float ops run the identical
        # IEEE arithmetic (sign/abs/subtract/divide), bit for bit
        a = abs(G) - self.reg_alpha
        if a != a:  # NaN gradients must poison the leaf, as the ufunc
            return -a / (H + self.reg_lambda)  # chain did (trial -> inf)
        if a < 0.0:
            a = 0.0
        num = a if G > 0.0 else (-a if G < 0.0 else 0.0)
        return -num / (H + self.reg_lambda)

    def _score(self, G, H):
        return _soft_threshold(G, self.reg_alpha) ** 2 / (H + self.reg_lambda)

    def _build_hists(
        self,
        codes: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        idx: np.ndarray,
        features: np.ndarray,
        n_bins: np.ndarray,
        nbmax: int,
        need_cnt: bool,
        all_features: bool = False,
    ):
        """(grad, hess, count) per-(feature, bin) histograms of one node.

        ``g``/``h`` are already gathered to ``idx`` order; ``all_features``
        says ``features`` is every column in order (enables the plain-row
        gather).  The count histogram is only materialised when
        ``min_samples_leaf`` needs it (``need_cnt``).

        The result is **one** stacked array of shape ``(P, F, nbmax)``
        with ``P = 3 if need_cnt else 2`` (grad, hess[, count] parts) —
        every (part, feature, bin) bucket accumulates its rows in ``idx``
        order, whichever kernel implementation runs (the numpy reference
        in :mod:`repro.native.fallback` and the C extension are bitwise
        identical).  The stacking lets the scorer run *one* cumulative
        sum over every part and the sibling-subtraction trick derive a
        whole node in one subtraction.
        """
        return self.kernels.build_hists(
            codes, g, h, idx, features, n_bins, nbmax, need_cnt,
            all_features=all_features,
        )

    def _best_split(
        self,
        codes: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        idx: np.ndarray,
        features: np.ndarray,
        n_bins: np.ndarray,
        hists=None,
        all_features: bool = False,
        nbf: np.ndarray | None = None,
        t_valid: np.ndarray | None = None,
    ):
        """Return (gain, feature, threshold, hists) for the best split.

        Scores every (feature, threshold) pair; thresholds are bin codes,
        split sends ``code <= t`` left (missing bin 0 always goes left).
        ``hists`` lets :meth:`grow` hand in histograms it already holds
        (the sibling-subtraction trick); the histograms actually used are
        returned so the caller can derive the children's from them.
        ``all_features``/``nbf`` (= ``n_bins[features]``)/``t_valid`` are
        per-tree constants :meth:`grow` hoists out of this per-node call.

        The histogram build and the scan run on the grower's bound
        kernels (compiled or numpy — bitwise identical either way); the
        extra-random mode hands the scan its RNG, which keeps that mode
        on the numpy reference path.
        """
        g, h = grad[idx], hess[idx]
        G, H = float(g.sum()), float(h.sum())
        parent = self._score(G, H)
        if self.colsample_bylevel < 1.0:
            k = max(1, int(round(self.colsample_bylevel * features.size)))
            features = self.rng.choice(features, size=k, replace=False)
            all_features, nbf, t_valid = False, None, None
        if nbf is None:
            nbf = n_bins[features]
        nbmax = int(nbf.max())
        if nbmax < 2:
            return 0.0, -1, -1, None
        need_cnt = self.min_samples_leaf > 1
        if hists is None:
            hists = self._build_hists(
                codes, g, h, idx, features, n_bins, nbmax, need_cnt,
                all_features=all_features,
            )
        gain, j, t = self.kernels.best_split_scan(
            hists, nbf, idx.size, G, H, parent,
            self.min_child_weight, self.reg_alpha, self.reg_lambda,
            self.min_samples_leaf,
            rng=self.rng if self.extra_random else None,
            t_valid=t_valid,
        )
        if j < 0 or gain <= _EPS:
            return 0.0, -1, -1, hists
        return gain, int(features[j]), int(t), hists

    # ------------------------------------------------------------------
    def grow(
        self,
        codes: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        n_bins: np.ndarray,
        sample_idx: np.ndarray | None = None,
        out_leaf: np.ndarray | None = None,
    ) -> Tree:
        """Grow and return a frozen :class:`Tree`.

        Uses the histogram **sibling-subtraction trick** where valid:
        after a node splits, only the smaller child's histograms are
        rebuilt with ``np.bincount``; the larger child's are derived as
        ``parent − sibling``, halving (or better) the bincount work per
        depth level.  Requires every node to score the same feature set,
        so per-level column sampling (``colsample_bylevel < 1``) and
        extra-random threshold draws fall back to scratch builds; the
        retained parent histograms are capped at
        :data:`_HIST_CACHE_BYTES` and degrade to scratch builds beyond
        it.

        ``out_leaf`` (int32, one entry per ``codes`` row) is filled with
        each grown row's leaf node id — callers that train on every row
        (boosting without subsampling) read predictions straight off it
        instead of re-walking the finished tree.
        """
        n, d = codes.shape
        idx0 = np.arange(n) if sample_idx is None else np.asarray(sample_idx)
        features = np.arange(d)
        if self.colsample_bytree < 1.0:
            k = max(1, int(round(self.colsample_bytree * d)))
            features = np.sort(self.rng.choice(d, size=k, replace=False))

        subtract = (
            self.hist_subtraction
            and self.colsample_bylevel >= 1.0
            and not self.extra_random
        )
        nbmax = int(n_bins[features].max()) if features.size else 0
        need_cnt = self.min_samples_leaf > 1
        hist_bytes = 0  # histograms currently parked on pending nodes
        # per-tree constants of the per-node split scoring
        all_features = features.size == d
        nbf = n_bins[features] if self.colsample_bylevel >= 1.0 else None
        t_valid = (
            np.arange(nbmax - 1) < (nbf - 1)[:, None]
            if nbf is not None and nbmax >= 2
            else None
        )

        tree = Tree()
        root_val = self._leaf_value(float(grad[idx0].sum()), float(hess[idx0].sum()))
        root = tree.add_node(root_val)
        if out_leaf is not None:
            out_leaf[idx0] = root
        n_leaves = 1
        counter = 0  # heap tie-breaker

        def splittable(idx: np.ndarray, depth: int) -> bool:
            if self.max_depth is not None and depth >= self.max_depth:
                return False
            return idx.size >= 2 * self.min_samples_leaf and idx.size >= 2

        def try_split(nid: int, idx: np.ndarray, depth: int, hists=None):
            nonlocal counter, hist_bytes
            if not splittable(idx, depth):
                return None
            gain, f, t, hists = self._best_split(
                codes, grad, hess, idx, features, n_bins, hists=hists,
                all_features=all_features, nbf=nbf, t_valid=t_valid,
            )
            if f < 0 or gain <= self.min_gain:
                return None
            keep = None
            if subtract and hists is not None:
                if hist_bytes + hists.nbytes <= _HIST_CACHE_BYTES:
                    keep, hist_bytes = hists, hist_bytes + hists.nbytes
            counter += 1
            return (-gain, counter, nid, idx, depth, f, t, keep)

        heap: list = []
        first = try_split(root, idx0, 0)
        if first is not None:
            heapq.heappush(heap, first)
        while heap and n_leaves < self.max_leaves:
            if self.leaf_wise:
                _, _, nid, idx, depth, f, t, phists = heapq.heappop(heap)
            else:
                _, _, nid, idx, depth, f, t, phists = heap.pop(0)  # FIFO
            if phists is not None:
                hist_bytes -= phists.nbytes
            goleft = codes[idx, f] <= t
            li, ri = idx[goleft], idx[~goleft]
            lval = self._leaf_value(float(grad[li].sum()), float(hess[li].sum()))
            rval = self._leaf_value(float(grad[ri].sum()), float(hess[ri].sum()))
            lid, rid = tree.add_node(lval), tree.add_node(rval)
            tree.set_split(nid, f, t, lid, rid)
            if out_leaf is not None:
                out_leaf[li] = lid
                out_leaf[ri] = rid
            n_leaves += 1
            lh = rh = None
            if phists is not None:
                # bincount the smaller child only; the larger child's
                # histograms are parent − sibling
                small_is_left = li.size <= ri.size
                small = li if small_is_left else ri
                small_ok = splittable(small, depth + 1)
                big_ok = splittable(ri if small_is_left else li, depth + 1)
                if small_ok or big_ok:
                    sh = self._build_hists(
                        codes, grad[small], hess[small], small, features,
                        n_bins, nbmax, need_cnt, all_features=all_features,
                    )
                    bh = phists - sh if big_ok else None
                    lh, rh = (sh, bh) if small_is_left else (bh, sh)
            for cid, cidx, chists in ((lid, li, lh), (rid, ri, rh)):
                if n_leaves >= self.max_leaves:
                    break
                item = try_split(cid, cidx, depth + 1, hists=chists)
                if item is not None:
                    if self.leaf_wise:
                        heapq.heappush(heap, item)
                    else:
                        heap.append(item)
        tree.freeze()
        return tree


# ----------------------------------------------------------------------
class ClassTreeGrower:
    """Grow one classification tree using gini/entropy impurity.

    Leaf payloads are class-probability vectors; used by the forest
    learners where ``split criterion`` ∈ {gini, entropy} is part of the
    searched space (Table 5).
    """

    def __init__(
        self,
        n_classes: int,
        criterion: str = "gini",
        max_leaves: int | None = None,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features: float = 1.0,
        extra_random: bool = False,
        rng: np.random.Generator | None = None,
        kernels=None,
    ) -> None:
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"criterion must be gini|entropy, got {criterion!r}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.n_classes = int(n_classes)
        self.criterion = criterion
        self.max_leaves = max_leaves
        self.max_depth = max_depth
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = float(max_features)
        self.extra_random = bool(extra_random)
        self.rng = rng or np.random.default_rng(0)
        self.kernels = kernels if kernels is not None else active_kernels()

    def _impurity(self, counts: np.ndarray) -> np.ndarray:
        """Impurity of count vectors along the last axis, times total count.

        Returning ``impurity * n`` (the "weighted" impurity) makes the gain
        computation a simple subtraction.
        """
        tot = counts.sum(axis=-1)
        safe = np.maximum(tot, _EPS)
        p = counts / safe[..., None]
        if self.criterion == "gini":
            np.power(p, 2, out=p)  # in place: p is ours, and p**2 == p·p
            per = 1.0 - p.sum(axis=-1)
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                logp = np.where(p > 0, np.log2(np.maximum(p, _EPS)), 0.0)
            per = -(p * logp).sum(axis=-1)
        per *= tot
        return per

    def _best_split(self, codes, y, idx, n_bins, w=None):
        d = codes.shape[1]
        all_features = self.max_features >= 1.0
        features = np.arange(d)
        if not all_features:
            k = max(1, int(round(self.max_features * d)))
            features = self.rng.choice(d, size=k, replace=False)
        yk = y[idx].astype(np.int64)
        K = self.n_classes
        w_idx = None if w is None else w[idx]
        total = np.bincount(yk, weights=w_idx, minlength=K).astype(np.float64)
        parent = float(self._impurity(total))
        # joint (class, feature, bin) histogram on the grower's bound
        # kernels — the numpy reference is the old ONE-flat-bincount
        # body moved verbatim into repro.native.fallback, and the C
        # kernel is its bitwise-identical row-major loop
        F = features.size
        nbmax = int(n_bins[features].max())
        if nbmax < 2:
            return 0.0, -1, -1
        joint = self.kernels.build_class_hists(
            codes, yk, idx, w_idx, features, K, nbmax,
            all_features=all_features,
        )
        joint = joint.reshape(K * F, nbmax)
        CL = joint.cumsum(axis=1).reshape(K, F, nbmax)[:, :, :-1]  # (K, F, T)
        CL = np.moveaxis(CL, 0, -1)  # (F, T, K)
        CR = total[None, None, :] - CL
        nl = CL.sum(axis=2)
        nr = idx.size - nl
        valid = (nl >= self.min_samples_leaf) & (nr >= self.min_samples_leaf)
        valid &= np.arange(nbmax - 1) < (n_bins[features] - 1)[:, None]
        if self.extra_random:
            keep = np.zeros_like(valid)
            for j in range(F):
                cand = np.nonzero(valid[j])[0]
                if cand.size:
                    keep[j, int(self.rng.choice(cand))] = True
            valid = keep
        if not valid.any():
            return 0.0, -1, -1
        # same association as parent − imp(CL) − imp(CR), built in place
        gains = self._impurity(CL)
        np.subtract(parent, gains, out=gains)
        gains -= self._impurity(CR)
        gains = np.where(valid, gains, -np.inf)
        k = int(gains.argmax())
        j, t = divmod(k, gains.shape[1])
        best_gain = float(gains[j, t])
        if best_gain <= _EPS:
            return 0.0, -1, -1
        return best_gain, int(features[j]), int(t)

    def _leaf_value(self, y, idx, w=None):
        counts = np.bincount(
            y[idx].astype(np.int64),
            weights=None if w is None else w[idx],
            minlength=self.n_classes,
        ).astype(np.float64)
        total = counts.sum()
        return counts / (total if total > 0 else 1.0)

    def grow(self, codes: np.ndarray, y: np.ndarray, n_bins: np.ndarray,
             sample_idx: np.ndarray | None = None,
             sample_weight: np.ndarray | None = None) -> Tree:
        """Grow and return a frozen Tree.  ``sample_weight`` (aligned with
        ``codes``) scales each row's contribution to impurities and leaf
        frequencies; the ``min_samples_leaf`` guard then applies to
        *weighted* counts."""
        n = codes.shape[0]
        idx0 = np.arange(n) if sample_idx is None else np.asarray(sample_idx)
        w = (
            None if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        tree = Tree(n_values=self.n_classes)
        root = tree.add_node(self._leaf_value(y, idx0, w))
        max_leaves = self.max_leaves or np.inf
        n_leaves = 1
        stack = [(root, idx0, 0)]
        while stack and n_leaves < max_leaves:
            nid, idx, depth = stack.pop(0)
            if self.max_depth is not None and depth >= self.max_depth:
                continue
            if idx.size < 2 * self.min_samples_leaf:
                continue
            if np.all(y[idx] == y[idx[0]]):
                continue  # pure node
            gain, f, t = self._best_split(codes, y, idx, n_bins, w)
            if f < 0 or gain <= 0:
                continue
            goleft = codes[idx, f] <= t
            li, ri = idx[goleft], idx[~goleft]
            lid = tree.add_node(self._leaf_value(y, li, w))
            rid = tree.add_node(self._leaf_value(y, ri, w))
            tree.set_split(nid, f, t, lid, rid)
            n_leaves += 1
            stack.append((lid, li, depth + 1))
            stack.append((rid, ri, depth + 1))
        tree.freeze()
        return tree
