"""The ML layer: learners searched by the AutoML layer.

Everything here is implemented from scratch on NumPy (the execution
environment has no sklearn/LightGBM/XGBoost/CatBoost); see DESIGN.md §2
for the substitution rationale.
"""

from .base import BaseClassifierMixin, BaseEstimator, validate_data
from .boosting import (
    GBDTEngine,
    LGBMLikeClassifier,
    LGBMLikeRegressor,
    XGBLikeClassifier,
    XGBLikeRegressor,
    XGBLimitDepthClassifier,
    XGBLimitDepthRegressor,
)
from .catboost_like import CatBoostLikeClassifier, CatBoostLikeRegressor
from .forest import (
    ExtraTreesClassifier,
    ExtraTreesRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
    tuned_random_forest,
)
from .histogram import Binner
from .linear import (
    LassoRegressor,
    LogisticRegressionL1,
    LogisticRegressionL2,
    RidgeRegressor,
)
from .losses import LogisticLoss, SoftmaxLoss, SquaredLoss, get_loss
from .model_io import dump_model, load_model, load_model_file, save_model
from .naive_bayes import GaussianNB
from .neighbors import KNeighborsClassifier, KNeighborsRegressor
from .tree import ClassTreeGrower, GradTreeGrower, Tree

__all__ = [
    "BaseClassifierMixin",
    "BaseEstimator",
    "Binner",
    "CatBoostLikeClassifier",
    "CatBoostLikeRegressor",
    "ClassTreeGrower",
    "ExtraTreesClassifier",
    "ExtraTreesRegressor",
    "GaussianNB",
    "GBDTEngine",
    "GradTreeGrower",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "LassoRegressor",
    "LGBMLikeClassifier",
    "LGBMLikeRegressor",
    "LogisticLoss",
    "LogisticRegressionL1",
    "LogisticRegressionL2",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "RidgeRegressor",
    "SoftmaxLoss",
    "SquaredLoss",
    "Tree",
    "XGBLikeClassifier",
    "XGBLikeRegressor",
    "XGBLimitDepthClassifier",
    "XGBLimitDepthRegressor",
    "dump_model",
    "get_loss",
    "load_model",
    "load_model_file",
    "save_model",
    "tuned_random_forest",
    "validate_data",
]
