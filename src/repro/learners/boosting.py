"""Gradient-boosted decision trees (LightGBM-like and XGBoost-like).

One shared engine implements histogram GBDT with leaf-wise tree growth;
the two public learner families expose the hyperparameter surfaces that
the paper's Table 5 searches:

* ``LGBMLike*`` — ``tree_num, leaf_num, min_child_weight, learning_rate,
  subsample, reg_alpha, reg_lambda, max_bin, colsample_bytree``
* ``XGBLike*`` — same minus ``max_bin`` plus ``colsample_bylevel``; uses
  second-order (Newton) boosting like XGBoost.

Training cost is linear in ``tree_num × n_rows`` which is precisely the
cost structure FLAML's ECI estimation relies on (Observation 3).
"""

from __future__ import annotations

import time

import numpy as np

from ..native import active_kernels
from .base import BaseClassifierMixin, BaseEstimator, validate_data
from .histogram import BinnedMatrix, Binner
from .losses import Loss, get_loss, sigmoid, softmax
from .tree import FlatEnsemble, GradTreeGrower, Tree

__all__ = [
    "GBDTEngine",
    "LGBMLikeClassifier",
    "LGBMLikeRegressor",
    "XGBLikeClassifier",
    "XGBLikeRegressor",
    "XGBLimitDepthClassifier",
    "XGBLimitDepthRegressor",
]


class GBDTEngine:
    """Reusable boosting loop over :class:`GradTreeGrower` trees."""

    def __init__(
        self,
        loss: Loss,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_leaves: int = 31,
        max_depth: int | None = None,
        min_child_weight: float = 1e-3,
        subsample: float = 1.0,
        reg_alpha: float = 0.0,
        reg_lambda: float = 1.0,
        max_bin: int = 255,
        colsample_bytree: float = 1.0,
        colsample_bylevel: float = 1.0,
        early_stopping_rounds: int | None = None,
        train_time_limit: float | None = None,
        leaf_wise: bool = True,
        seed: int = 0,
    ) -> None:
        self.loss = loss
        self.leaf_wise = bool(leaf_wise)
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_leaves = int(max_leaves)
        self.max_depth = max_depth
        self.min_child_weight = float(min_child_weight)
        self.subsample = float(subsample)
        self.reg_alpha = float(reg_alpha)
        self.reg_lambda = float(reg_lambda)
        self.max_bin = int(max_bin)
        self.colsample_bytree = float(colsample_bytree)
        self.colsample_bylevel = float(colsample_bylevel)
        self.early_stopping_rounds = early_stopping_rounds
        self.train_time_limit = train_time_limit
        self.seed = int(seed)
        self.trees_: list[list[Tree]] = []
        self.binner_: Binner | None = None
        self.base_score_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        X_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        sample_weight: np.ndarray | None = None,
    ) -> "GBDTEngine":
        """Run the boosting loop; optional eval set enables early stopping.

        ``sample_weight`` scales each row's gradient/hessian contribution —
        an integer weight w is exactly equivalent to duplicating the row w
        times (up to row-subsampling randomness).
        """
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        kernels = active_kernels()  # one dispatch per fit, not per tree
        w = (
            None if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        if isinstance(X, BinnedMatrix):
            # shared binned plane: codes were computed once per
            # (row-subset, max_bins) and are bit-identical to what the
            # in-learner fit below would produce
            codes, n_bins, self.binner_ = X.binned(self.max_bin)
        else:
            self.binner_ = Binner(max_bins=self.max_bin, rng=rng)
            codes = self.binner_.fit_transform(X)
            n_bins = self.binner_.n_bins_
        n = X.shape[0]
        K = self.loss.n_scores

        self.base_score_ = self.loss.init_score(y)
        scores = np.tile(self.base_score_, (n, 1)) if K > 1 else np.full(
            n, self.base_score_[0]
        )
        # 2-D views for the flat traversal kernels (same memory: in-place
        # adds through them are the historical per-column adds)
        scores2d = scores if K > 1 else scores.reshape(-1, 1)
        if X_val is not None:
            codes_val = (
                X_val.codes_with(self.binner_)
                if isinstance(X_val, BinnedMatrix)
                else self.binner_.transform(X_val)
            )
            val_scores = (
                np.tile(self.base_score_, (X_val.shape[0], 1))
                if K > 1
                else np.full(X_val.shape[0], self.base_score_[0])
            )
            val2d = val_scores if K > 1 else val_scores.reshape(-1, 1)
            best_val, best_iter = np.inf, 0

        self.trees_ = []
        # when every row is grown (no row subsampling), each row's leaf is
        # known at grow time — read the update off the partition instead
        # of re-walking the finished tree (identical leaves by definition)
        leaf_buf = np.empty(n, dtype=np.int32)
        for it in range(self.n_estimators):
            grad, hess = self.loss.grad_hess(y, scores)
            if w is not None:
                grad = grad * (w[:, None] if grad.ndim == 2 else w)
                hess = hess * (w[:, None] if hess.ndim == 2 else w)
            if self.subsample < 1.0:
                m = max(1, int(round(self.subsample * n)))
                sample_idx = rng.choice(n, size=m, replace=False)
            else:
                sample_idx = None
            round_trees: list[Tree] = []
            for k in range(K):
                g = grad[:, k] if K > 1 else grad
                h = hess[:, k] if K > 1 else hess
                grower = GradTreeGrower(
                    max_leaves=self.max_leaves,
                    max_depth=self.max_depth,
                    min_child_weight=self.min_child_weight,
                    reg_alpha=self.reg_alpha,
                    reg_lambda=self.reg_lambda,
                    leaf_wise=self.leaf_wise,
                    colsample_bytree=self.colsample_bytree,
                    colsample_bylevel=self.colsample_bylevel,
                    rng=rng,
                    kernels=kernels,
                )
                if sample_idx is None:
                    tree = grower.grow(codes, g, h, n_bins, out_leaf=leaf_buf)
                    upd = self.learning_rate * tree.predict_at(leaf_buf)
                    if K > 1:
                        scores[:, k] += upd
                    else:
                        scores += upd
                else:
                    # subsampled rows: the grown partition doesn't cover
                    # every row, so walk the tree — via the flat kernel
                    tree = grower.grow(codes, g, h, n_bins,
                                       sample_idx=sample_idx)
                    FlatEnsemble([tree], [k]).predict_into(
                        codes, self.learning_rate, scores2d, kernels
                    )
                round_trees.append(tree)
            self.trees_.append(round_trees)

            if X_val is not None:
                # score the whole round's trees on the eval set in one
                # flat traversal (tree k only touches column k: per-cell
                # arithmetic is the historical per-tree loop)
                FlatEnsemble(round_trees, list(range(K))).predict_into(
                    codes_val, self.learning_rate, val2d, kernels
                )
                vloss = self.loss.value(y_val, val_scores)
                if vloss < best_val - 1e-12:
                    best_val, best_iter = vloss, it + 1
                elif (
                    self.early_stopping_rounds is not None
                    and it + 1 - best_iter >= self.early_stopping_rounds
                ):
                    self.trees_ = self.trees_[:best_iter]
                    break
            if (
                self.train_time_limit is not None
                and time.perf_counter() - start > self.train_time_limit
            ):
                break
        return self

    # ------------------------------------------------------------------
    def _flat(self) -> FlatEnsemble:
        """Packed traversal arrays of the whole fitted ensemble.

        Built lazily and cached; the cache key notices ``trees_`` being
        rebound or resized (early-stop truncation rebinds the list, and
        :mod:`repro.learners.model_io` assigns a fresh list on load) and
        rebuilds the pack.
        """
        trees = [t for rt in self.trees_ for t in rt]
        key = (id(self.trees_), len(trees), sum(t.n_nodes for t in trees))
        cached = getattr(self, "_flat_cache", None)
        if cached is None or cached[0] != key:
            classes = [k for rt in self.trees_ for k in range(len(rt))]
            self._flat_cache = (key, FlatEnsemble(trees, classes))
        return self._flat_cache[1]

    def raw_predict(self, X: np.ndarray) -> np.ndarray:
        """Raw additive scores before the link function."""
        if self.binner_ is None:
            raise RuntimeError("engine not fitted")
        codes = (
            X.codes_with(self.binner_)
            if isinstance(X, BinnedMatrix)
            else self.binner_.transform(X)
        )
        K = self.loss.n_scores
        n = X.shape[0]
        scores = np.tile(self.base_score_, (n, 1)) if K > 1 else np.full(
            n, self.base_score_[0]
        )
        if self.trees_:
            self._flat().predict_into(
                codes, self.learning_rate,
                scores if K > 1 else scores.reshape(-1, 1),
                active_kernels(),
            )
        return scores


# ----------------------------------------------------------------------
class _GBDTBase(BaseEstimator):
    """Shared fit/predict plumbing for the public GBDT learners."""

    #: the trial path may pass a BinnedMatrix instead of raw floats
    _uses_binned_plane = True

    #: parameters forwarded to :class:`GBDTEngine`
    _engine_keys = (
        "learning_rate",
        "min_child_weight",
        "subsample",
        "reg_alpha",
        "reg_lambda",
        "colsample_bytree",
        "colsample_bylevel",
        "early_stopping_rounds",
        "train_time_limit",
        "seed",
    )
    _is_classifier = False

    def __init__(
        self,
        tree_num: int = 100,
        leaf_num: int = 31,
        learning_rate: float = 0.1,
        min_child_weight: float = 1e-3,
        subsample: float = 1.0,
        reg_alpha: float = 1e-10,
        reg_lambda: float = 1.0,
        max_bin: int = 255,
        colsample_bytree: float = 1.0,
        colsample_bylevel: float = 1.0,
        early_stopping_rounds: int | None = None,
        train_time_limit: float | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(
            tree_num=tree_num,
            leaf_num=leaf_num,
            learning_rate=learning_rate,
            min_child_weight=min_child_weight,
            subsample=subsample,
            reg_alpha=reg_alpha,
            reg_lambda=reg_lambda,
            max_bin=max_bin,
            colsample_bytree=colsample_bytree,
            colsample_bylevel=colsample_bylevel,
            early_stopping_rounds=early_stopping_rounds,
            train_time_limit=train_time_limit,
            seed=seed,
        )

    def _make_engine(self, loss: Loss) -> GBDTEngine:
        kwargs = {k: getattr(self, k) for k in self._engine_keys}
        return GBDTEngine(
            loss,
            n_estimators=max(1, int(round(self.tree_num))),
            max_leaves=max(2, int(round(self.leaf_num))),
            max_bin=max(2, int(round(self.max_bin))),
            **kwargs,
        )

    def warm_inference(self) -> None:
        """Pre-build the packed traversal arrays the predict kernels use
        (otherwise built lazily on the first predict)."""
        engine = getattr(self, "engine_", None)
        if engine is not None and engine.trees_:
            engine._flat()

    def fit(self, X, y, X_val=None, y_val=None, sample_weight=None):
        """Run the boosting loop; optional eval set enables early stopping;
        ``sample_weight`` scales per-row gradient contributions."""
        X, y = validate_data(X, y)
        if self._is_classifier:
            y_enc = self._encode_labels(y)
            task = "binary" if self.n_classes_ == 2 else "multiclass"
            loss = get_loss(task, self.n_classes_)
            if y_val is not None:
                lut = {c: i for i, c in enumerate(self.classes_)}
                y_val = np.asarray([lut[v] for v in np.asarray(y_val)])
            self.engine_ = self._make_engine(loss).fit(
                X, y_enc.astype(np.float64) if task == "binary" else y_enc,
                X_val, y_val, sample_weight=sample_weight,
            )
        else:
            loss = get_loss("regression")
            self.engine_ = self._make_engine(loss).fit(
                X, y.astype(np.float64), X_val, y_val,
                sample_weight=sample_weight,
            )
        return self


class _GBDTBaseWithImportance(_GBDTBase):
    @property
    def feature_importances_(self) -> "np.ndarray":
        """Split-count feature importances, normalised to sum to 1."""
        import numpy as np

        d = len(self.engine_.binner_.bin_edges_)
        counts = np.zeros(d)
        for round_trees in self.engine_.trees_:
            for tree in round_trees:
                counts += tree.split_feature_counts(d)
        total = counts.sum()
        return counts / total if total > 0 else counts


class _GBDTClassifier(BaseClassifierMixin, _GBDTBaseWithImportance):
    _is_classifier = True

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape (n, K)."""
        X = validate_data(X)
        raw = self.engine_.raw_predict(X)
        if self.n_classes_ == 2:
            p1 = sigmoid(raw)
            return np.column_stack([1 - p1, p1])
        return softmax(raw)


class _GBDTRegressor(_GBDTBaseWithImportance):
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Regression predictions on X."""
        X = validate_data(X)
        return self.engine_.raw_predict(X)


class LGBMLikeClassifier(_GBDTClassifier):
    """LightGBM-style classifier (leaf-wise histogram GBDT)."""


class LGBMLikeRegressor(_GBDTRegressor):
    """LightGBM-style regressor (leaf-wise histogram GBDT)."""


class XGBLikeClassifier(_GBDTClassifier):
    """XGBoost-style classifier (Newton boosting, per-level col sampling)."""


class XGBLikeRegressor(_GBDTRegressor):
    """XGBoost-style regressor (Newton boosting, per-level col sampling)."""


class _LimitDepthMixin:
    """Depth-wise growth with a ``max_depth`` cap (classic XGBoost mode).

    FLAML's open-source release later added an ``xgb_limitdepth``
    estimator alongside the leaf-wise one; the leaf budget is implied by
    the depth (2**max_depth) and growth proceeds level-order instead of
    best-first, which changes the cost/regularisation trade-off the
    search sees.
    """

    def __init__(self, tree_num: int = 100, max_depth: int = 6, **kw) -> None:
        depth = max(1, int(round(max_depth)))
        kw.pop("leaf_num", None)  # derived from depth; tolerate round-trips
        super().__init__(
            tree_num=tree_num, leaf_num=min(2**depth, 4096), **kw
        )
        self._params["max_depth"] = depth
        self.max_depth = depth

    def _make_engine(self, loss: Loss) -> GBDTEngine:
        engine = super()._make_engine(loss)
        engine.max_depth = self.max_depth
        engine.leaf_wise = False
        return engine


class XGBLimitDepthClassifier(_LimitDepthMixin, _GBDTClassifier):
    """Depth-wise XGBoost-style classifier (``max_depth`` instead of
    ``leaf_num``)."""


class XGBLimitDepthRegressor(_LimitDepthMixin, _GBDTRegressor):
    """Depth-wise XGBoost-style regressor (``max_depth`` instead of
    ``leaf_num``)."""
