"""Low-overhead span tracer: where do a trial's milliseconds go?

The rest of the stack answers *what* happened (errors, costs, counters);
this module answers *where the time went*.  A span is one timed region::

    with trace_span("trial.fit", learner="lgbm"):
        model.fit(Xtr, ytr)

Spans nest per thread (each span records its parent and shares its
root's trace id), carry the pid and thread name, and land in a bounded
in-process ring buffer — optionally teeing every completed span to a
JSONL sink for offline analysis (``python -m repro trace summarize``).

Tracing is **off by default** and the disabled path is a true no-op:
``trace_span`` returns a shared singleton context manager without
allocating a span object, so instrumented hot loops cost one branch
when tracing is off (asserted by ``tests/obs/test_tracer.py`` via the
:func:`spans_started` counter).

Toggles: ``REPRO_TRACE=1`` in the environment, or :func:`set_tracing`
at runtime (returns the previous setting, for try/finally use).

Cross-process collection: tracing state does not propagate to live
worker processes by itself, so the process backend ships the flag with
each trial, drains the worker-side ring after the trial
(:func:`drain_spans`), and the engine merges the buffer back here via
:func:`ingest_spans` — span ids embed the pid, so merged records keep
their identity and parent links.

Everything here is stdlib-only and safe to import from any layer.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = [
    "NOOP_SPAN",
    "clear_spans",
    "drain_spans",
    "ingest_spans",
    "set_trace_sink",
    "set_tracing",
    "snapshot_spans",
    "spans_started",
    "trace_context",
    "trace_span",
    "tracer_stats",
    "tracing_enabled",
]

_ENV_FLAG = "REPRO_TRACE"

#: ring capacity: at ~10 spans per trial this holds several thousand
#: trials; overflow drops the *oldest* spans and counts them
_RING_CAPACITY = 65536


def _env_enabled() -> bool:
    return os.environ.get(_ENV_FLAG, "0").lower() in ("1", "true", "on")


_enabled = _env_enabled()
_lock = threading.RLock()
_ring: deque = deque(maxlen=_RING_CAPACITY)
_dropped = 0
_ingested = 0
_sink = None
_sink_path: str | None = None
#: every locally *started* span consumes one id — the counter the
#: disabled-is-a-no-op tests assert against
_ids = itertools.count(1)
_started = 0
_tls = threading.local()


class _NoopSpan:
    """The shared disabled-mode span: enter/exit/set all do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


#: singleton returned by :func:`trace_span` while tracing is disabled
NOOP_SPAN = _NoopSpan()


class _Span:
    """One live timed region (use via ``with trace_span(...)``)."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "trace_id",
                 "t_wall", "_t0")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_Span":
        """Attach attributes mid-span (e.g. a result computed inside)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        global _started
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        _started += 1
        self.span_id = f"{os.getpid()}-{next(_ids)}"
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
        else:
            self.parent_id = None
            self.trace_id = getattr(_tls, "trace_id", None) or self.span_id
        stack.append(self)
        # clock reads go last so nested spans exclude their own setup
        self.t_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        stack = getattr(_tls, "stack", None)
        if stack and stack[-1] is self:
            stack.pop()
        elif stack is not None:  # unbalanced exit: best-effort unwind
            try:
                stack.remove(self)
            except ValueError:
                pass
        rec = {
            "name": self.name,
            "t": self.t_wall,
            "dur": dur,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
            "span": self.span_id,
            "parent": self.parent_id,
            "trace": self.trace_id,
        }
        if exc_type is not None:
            rec["error"] = exc_type.__name__
        if self.attrs:
            rec["attrs"] = self.attrs
        _record(rec)
        return False


def trace_span(name: str, **attrs):
    """A context manager timing one named region.

    With tracing disabled this returns the shared :data:`NOOP_SPAN`
    without allocating anything — the hot-path contract.
    """
    if not _enabled:
        return NOOP_SPAN
    return _Span(name, attrs)


@contextmanager
def trace_context(trace_id: str):
    """Tag every root span opened in this thread inside the ``with``
    block with ``trace_id`` (e.g. a serving request id)."""
    prev = getattr(_tls, "trace_id", None)
    _tls.trace_id = trace_id
    try:
        yield
    finally:
        _tls.trace_id = prev


def _record(rec: dict) -> None:
    global _dropped
    with _lock:
        if len(_ring) == _ring.maxlen:
            _dropped += 1
        _ring.append(rec)
        if _sink is not None:
            _sink.write(json.dumps(rec, default=str) + "\n")


# ----------------------------------------------------------------------
def tracing_enabled() -> bool:
    """Whether :func:`trace_span` currently records real spans."""
    return _enabled


def set_tracing(on: bool) -> bool:
    """Enable/disable tracing; returns the previous setting."""
    global _enabled
    with _lock:
        prev, _enabled = _enabled, bool(on)
    return prev


def set_trace_sink(path: str | None) -> str | None:
    """Tee completed spans to a JSONL file (append); ``None`` closes the
    sink.  Returns the previous sink path."""
    global _sink, _sink_path
    with _lock:
        prev = _sink_path
        if _sink is not None:
            try:
                _sink.flush()
                _sink.close()
            except OSError:  # pragma: no cover - best-effort close
                pass
            _sink = None
        _sink_path = None
        if path is not None:
            _sink = open(path, "a", encoding="utf-8")
            _sink_path = str(path)
    return prev


def drain_spans() -> list[dict]:
    """Return and clear every buffered span (oldest first)."""
    with _lock:
        out = list(_ring)
        _ring.clear()
    return out


def snapshot_spans() -> list[dict]:
    """A copy of the buffered spans without clearing them."""
    with _lock:
        return list(_ring)


def clear_spans() -> None:
    """Drop the buffered spans (the started/dropped counters persist)."""
    with _lock:
        _ring.clear()


def ingest_spans(spans: list[dict]) -> int:
    """Merge a shipped span buffer (e.g. from a worker process) into
    this process's ring and sink; returns how many were merged."""
    global _ingested
    if not spans:
        return 0
    with _lock:
        for rec in spans:
            _record(rec)
        _ingested += len(spans)
    return len(spans)


def spans_started() -> int:
    """How many spans this process has *started* (never decreases; the
    disabled-mode no-op assertion reads this)."""
    return _started


def tracer_stats() -> dict:
    """Counters for tests and diagnostics."""
    with _lock:
        return {
            "enabled": _enabled,
            "buffered": len(_ring),
            "started": _started,
            "ingested": _ingested,
            "dropped": _dropped,
            "sink": _sink_path,
        }


def _reset_for_tests() -> None:
    """Forget all tracer state and re-read the environment flag."""
    global _enabled, _dropped, _ingested, _started
    with _lock:
        set_trace_sink(None)
        _ring.clear()
        _dropped = 0
        _ingested = 0
        _started = 0
        _enabled = _env_enabled()
