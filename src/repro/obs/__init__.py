"""Unified observability plane (stdlib-only): spans, counters, exposition.

Three small modules answer the questions a production AutoML system
gets asked about itself:

* :mod:`repro.obs.trace` — a low-overhead span tracer
  (``trace_span(name, **attrs)``), thread/process-aware, **off by
  default** (``REPRO_TRACE=1`` / :func:`set_tracing`), ring-buffered
  with an optional JSONL sink.  Process workers ship their span
  buffers back with each trial result and the execution engine merges
  them, so a multi-process search yields one coherent trace.
* :mod:`repro.obs.metrics` — a registry of monotonic counters and
  bucketed latency histograms, merge-able across processes, with
  Prometheus text exposition (served by ``/metrics`` alongside the
  JSON view).
* :mod:`repro.obs.summarize` — per-phase time attribution
  (bin / construct / fit / score / metric) from a JSONL trace;
  ``python -m repro trace summarize`` is its CLI.

Nothing here imports numpy or any other repro subpackage, so every
layer (data plane, native kernels, engine, serving) can instrument
itself without import cycles, and the disabled-mode cost is one branch
per span site.
"""

from .metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
    render_prometheus,
    snapshot_diff,
)
from .summarize import attribute, format_table, load_spans, summarize_file
from .trace import (
    clear_spans,
    drain_spans,
    ingest_spans,
    set_trace_sink,
    set_tracing,
    snapshot_spans,
    spans_started,
    trace_context,
    trace_span,
    tracer_stats,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "attribute",
    "clear_spans",
    "drain_spans",
    "format_table",
    "get_registry",
    "ingest_spans",
    "load_spans",
    "render_prometheus",
    "set_trace_sink",
    "set_tracing",
    "snapshot_diff",
    "snapshot_spans",
    "spans_started",
    "summarize_file",
    "trace_context",
    "trace_span",
    "tracer_stats",
    "tracing_enabled",
]
