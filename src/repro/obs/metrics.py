"""Metrics registry: monotonic counters + bucketed latency histograms.

The numeric complement of :mod:`repro.obs.trace`: cheap, always-on
counters that answer "how many / how long" across the whole stack —
trial-cache hits, native-kernel dispatches, binned-plane cache traffic,
HTTP requests — without any sampling or tracing overhead.

Design constraints (all stdlib):

* **labelled families** — ``REGISTRY.counter("repro_trials_total",
  status="ok")`` get-or-creates one series per label set; callers on
  hot paths fetch the series object once and call ``inc()``/
  ``observe()`` directly;
* **merge-able across processes** — :meth:`MetricsRegistry.snapshot`
  is plain JSON-safe data; a worker ships ``snapshot_diff(before,
  after)`` with each trial result and the engine folds it back in via
  :meth:`MetricsRegistry.merge`, so multi-process searches aggregate
  into one registry;
* **Prometheus text exposition** — :func:`render_prometheus` emits the
  ``text/plain; version=0.0.4`` format (cumulative histogram buckets,
  escaped labels) the serving ``/metrics`` endpoint speaks alongside
  its JSON view.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "render_prometheus",
    "snapshot_diff",
]

#: default latency buckets (seconds): sub-millisecond serving predicts
#: up to multi-second trials
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """A monotonic counter (one labelled series of a counter family)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0; counters only go up)."""
        with self._lock:
            self.value += n


class Gauge:
    """A settable instantaneous value (queue depths, in-flight counts).

    Unlike :class:`Counter` it may go down; snapshots carry the current
    value and :meth:`MetricsRegistry.merge` *overwrites* rather than
    adds (the last writer's instantaneous truth wins — summing gauges
    across snapshots would be meaningless).
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self.value = float(value)

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (may be negative)."""
        with self._lock:
            self.value += n

    def dec(self, n: float = 1) -> None:
        """Subtract ``n``."""
        self.inc(-n)


class Histogram:
    """A bucketed histogram: per-bucket counts plus sum and count.

    ``buckets`` are ascending inclusive upper bounds (Prometheus ``le``
    semantics); one extra overflow bucket catches values above the last
    bound.  Counts are stored per-bucket and cumulated only at export.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "_lock")

    def __init__(self, buckets=DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be distinct and ascending")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        i = bisect_left(self.buckets, v)  # first bound with v <= bound
        with self._lock:
            self.counts[i] += 1
            self.sum += v
            self.count += 1

    def state(self) -> dict:
        """JSON-safe internal state (non-cumulative counts)."""
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
            }


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named, labelled metric families with snapshot/merge/diff."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> {"type", "help", "series": {label_key: metric}}
        self._families: dict[str, dict] = {}

    # -- creation ------------------------------------------------------
    def _series(self, name: str, kind: str, help: str, labels: dict,
                factory):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = {"type": kind, "help": help, "series": {}}
                self._families[name] = family
            if family["type"] != kind:
                raise ValueError(
                    f"metric {name!r} is a {family['type']}, not a {kind}"
                )
            if help and not family["help"]:
                family["help"] = help
            metric = family["series"].get(key)
            if metric is None:
                metric = family["series"][key] = factory()
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Get-or-create the counter series for this label set."""
        return self._series(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """Get-or-create the gauge series for this label set."""
        return self._series(name, "gauge", help, labels, Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets=DEFAULT_BUCKETS, **labels) -> Histogram:
        """Get-or-create the histogram series for this label set."""
        return self._series(
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> dict:
        """Plain JSON-safe copy of every family and series."""
        with self._lock:
            families = {
                name: (fam["type"], fam["help"], list(fam["series"].items()))
                for name, fam in self._families.items()
            }
        out = {}
        for name, (kind, help, series) in families.items():
            rows = []
            for key, metric in series:
                labels = dict(key)
                if kind in ("counter", "gauge"):
                    rows.append({"labels": labels, "value": metric.value})
                else:
                    rows.append({"labels": labels, **metric.state()})
            out[name] = {"type": kind, "help": help, "series": rows}
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (typically a worker's diff) into this
        registry, adding counts into the live series."""
        for name, fam in snapshot.items():
            kind = fam.get("type")
            help = fam.get("help", "")
            for row in fam.get("series", ()):
                labels = row.get("labels", {})
                if kind == "counter":
                    self.counter(name, help, **labels).inc(int(row["value"]))
                elif kind == "gauge":
                    # instantaneous truth: overwrite, never sum
                    self.gauge(name, help, **labels).set(float(row["value"]))
                elif kind == "histogram":
                    hist = self.histogram(
                        name, help, buckets=row["buckets"], **labels
                    )
                    if list(hist.buckets) != [float(b)
                                              for b in row["buckets"]]:
                        raise ValueError(
                            f"histogram {name!r}{labels} bucket layouts "
                            "differ; cannot merge"
                        )
                    with hist._lock:
                        for i, c in enumerate(row["counts"]):
                            hist.counts[i] += int(c)
                        hist.sum += float(row["sum"])
                        hist.count += int(row["count"])

    def reset(self) -> None:
        """Drop every family (tests only)."""
        with self._lock:
            self._families.clear()


def snapshot_diff(before: dict, after: dict) -> dict:
    """``after - before`` for two snapshots of the same registry;
    all-zero series and empty families are omitted (the wire form a
    process worker ships per trial)."""

    def _index(snap: dict, name: str) -> dict:
        fam = snap.get(name)
        if fam is None:
            return {}
        return {_label_key(row["labels"]): row for row in fam["series"]}

    out = {}
    for name, fam in after.items():
        base = _index(before, name)
        rows = []
        for row in fam["series"]:
            prev = base.get(_label_key(row["labels"]))
            if fam["type"] == "counter":
                delta = row["value"] - (prev["value"] if prev else 0)
                if delta:
                    rows.append({"labels": row["labels"], "value": delta})
            elif fam["type"] == "gauge":
                # gauges ship their current value when it changed; merge
                # overwrites, so the receiver sees the newest truth
                if prev is None or row["value"] != prev["value"]:
                    rows.append({"labels": row["labels"],
                                 "value": row["value"]})
            else:
                pc = prev["counts"] if prev else [0] * len(row["counts"])
                counts = [c - p for c, p in zip(row["counts"], pc)]
                if any(counts):
                    rows.append({
                        "labels": row["labels"],
                        "buckets": row["buckets"],
                        "counts": counts,
                        "sum": row["sum"] - (prev["sum"] if prev else 0.0),
                        "count": row["count"] - (prev["count"] if prev else 0),
                    })
        if rows:
            out[name] = {"type": fam["type"], "help": fam["help"],
                         "series": rows}
    return out


# -- Prometheus text exposition ----------------------------------------
def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels_text(labels: dict, extra: dict | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _fmt(v: float) -> str:
    if isinstance(v, int) or float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def render_prometheus(*snapshots: dict) -> str:
    """Render snapshot dicts as Prometheus text exposition 0.0.4.

    Histogram buckets are emitted cumulatively with the mandatory
    ``le="+Inf"`` bucket equal to ``_count``.  Family names must be
    unique across the given snapshots.
    """
    lines: list[str] = []
    seen: set[str] = set()
    for snap in snapshots:
        for name in sorted(snap):
            if name in seen:
                raise ValueError(f"duplicate metric family {name!r}")
            seen.add(name)
            fam = snap[name]
            if fam.get("help"):
                lines.append(f"# HELP {name} {fam['help']}")
            lines.append(f"# TYPE {name} {fam['type']}")
            for row in fam["series"]:
                labels = row.get("labels", {})
                if fam["type"] in ("counter", "gauge"):
                    lines.append(
                        f"{name}{_labels_text(labels)} {_fmt(row['value'])}"
                    )
                    continue
                cum = 0
                for bound, count in zip(row["buckets"], row["counts"]):
                    cum += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(labels, {'le': _fmt(bound)})} {cum}"
                    )
                lines.append(
                    f"{name}_bucket{_labels_text(labels, {'le': '+Inf'})} "
                    f"{_fmt(row['count'])}"
                )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} {_fmt(row['sum'])}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {_fmt(row['count'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


#: the process-wide default registry every instrumented module uses
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return REGISTRY
