"""Per-phase time attribution from a JSONL span trace.

Turns a trace produced by :mod:`repro.obs.trace` (e.g. via
``bench_hotpath.py --trace`` or ``python -m repro fit --trace``) into
the table that answers "where do a trial's milliseconds go":

* **self-time accounting** — every span is charged its own duration
  minus its direct children's, so a plane code-build that happens
  lazily *inside* ``model.fit`` is attributed to the ``bin`` phase,
  not double-counted under ``fit``;
* **phase roll-up** — span names map onto the five trial phases
  (``bin`` / ``construct`` / ``fit`` / ``score`` / ``metric``); the
  remainder of the trial wall (controller/evaluate glue, RNG setup)
  shows up honestly as ``(other)``;
* **coverage** — the fraction of total trial wall the named phases
  explain, the number the acceptance gate reads.

``python -m repro trace summarize TRACE.jsonl`` prints the table;
:func:`attribute` returns the raw dict for programmatic use.
"""

from __future__ import annotations

import json

__all__ = ["PHASES", "attribute", "format_table", "load_spans",
           "summarize_file"]

#: trial phases in pipeline order
PHASES = ("bin", "construct", "fit", "score", "metric")

#: span name -> phase.  ``plane.*`` spans fire inside the binned-data
#: plane on cache misses (possibly nested under ``trial.fit`` when a
#: learner materialises its codes lazily) — self-time accounting
#: charges them to ``bin`` either way.
PHASE_OF = {
    "trial.bin": "bin",
    "plane.split": "bin",
    "plane.codes": "bin",
    "plane.transform": "bin",
    "trial.construct": "construct",
    "trial.fit": "fit",
    "trial.score": "score",
    "trial.metric": "metric",
}


def load_spans(path: str) -> list[dict]:
    """Parse a JSONL trace file (blank lines ignored)."""
    spans = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def _self_times(spans: list[dict]) -> list[tuple[dict, float]]:
    """(span, self_duration) with direct children's time subtracted."""
    child_sum: dict[str, float] = {}
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None:
            child_sum[parent] = child_sum.get(parent, 0.0) + rec["dur"]
    return [
        (rec, max(0.0, rec["dur"] - child_sum.get(rec.get("span"), 0.0)))
        for rec in spans
    ]


def attribute(spans: list[dict]) -> dict:
    """Per-phase attribution over the ``trial`` spans in a trace.

    Returns a dict with per-phase ``{seconds, calls, share}`` (share of
    total trial wall), the unattributed ``other`` remainder, the
    ``coverage`` fraction the named phases explain, and bookkeeping
    (span/trial counts, distinct pids — worker-shipped buffers show up
    here).
    """
    trials = [rec for rec in spans if rec.get("name") == "trial"]
    wall = sum(rec["dur"] for rec in trials)
    phase_s = {p: 0.0 for p in PHASES}
    phase_n = {p: 0 for p in PHASES}
    # spans outside any trial (e.g. http.request) are grouped separately
    trial_ids = {rec.get("span") for rec in trials}
    extra: dict[str, dict] = {}
    for rec, self_dur in _self_times(spans):
        name = rec.get("name")
        phase = PHASE_OF.get(name)
        if phase is not None:
            phase_s[phase] += self_dur
            phase_n[phase] += 1
        elif name != "trial":
            slot = extra.setdefault(name, {"seconds": 0.0, "calls": 0})
            slot["seconds"] += self_dur
            slot["calls"] += 1
    attributed = sum(phase_s.values())
    return {
        "trials": len(trials),
        "spans": len(spans),
        "pids": len({rec.get("pid") for rec in spans}),
        "wall_s": wall,
        "phases": {
            p: {
                "seconds": phase_s[p],
                "calls": phase_n[p],
                "share": (phase_s[p] / wall) if wall else 0.0,
            }
            for p in PHASES
        },
        "other_s": max(0.0, wall - attributed),
        "coverage": (attributed / wall) if wall else 0.0,
        "extra": extra,
        "trial_span_ids": len(trial_ids),
    }


def format_table(att: dict) -> str:
    """Render an :func:`attribute` result as an aligned text table."""
    lines = [
        f"{'phase':<14} {'calls':>7} {'total_s':>10} {'% of trial wall':>16}",
        "-" * 50,
    ]
    for p in PHASES:
        row = att["phases"][p]
        lines.append(
            f"{p:<14} {row['calls']:>7} {row['seconds']:>10.3f} "
            f"{100.0 * row['share']:>15.1f}%"
        )
    wall = att["wall_s"]
    other_share = (att["other_s"] / wall) if wall else 0.0
    lines.append(
        f"{'(other)':<14} {'':>7} {att['other_s']:>10.3f} "
        f"{100.0 * other_share:>15.1f}%"
    )
    lines.append("-" * 50)
    lines.append(
        f"{'trial wall':<14} {att['trials']:>7} {wall:>10.3f} "
        f"{'(coverage ' + format(100.0 * att['coverage'], '.1f') + '%)':>16}"
    )
    for name, row in sorted(att["extra"].items()):
        lines.append(
            f"{name:<14} {row['calls']:>7} {row['seconds']:>10.3f} "
            f"{'(outside trials)':>16}"
        )
    lines.append(
        f"spans: {att['spans']}  pids: {att['pids']}"
    )
    return "\n".join(lines)


def summarize_file(path: str) -> tuple[dict, str]:
    """Load, attribute, and format a JSONL trace file."""
    att = attribute(load_spans(path))
    return att, format_table(att)
