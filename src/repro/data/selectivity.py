"""Selectivity-estimation substrate (paper §5.3, Table 4).

Reproduces the experimental setup of Dutt et al. (2019): learn a
regression model that maps a multi-dimensional range predicate to its
selectivity on a table.  The paper's tables (Forest, Power, Higgs,
Weather, TPC-H) are replaced by synthetic data distributions with the
skew/correlation character of each original (DESIGN.md §2); queries are
random range boxes and the label is the *exact* selectivity computed
against the generated table.

Features of a query over ``dim`` columns are ``[lo_1, hi_1, ..., lo_d,
hi_d]`` (the representation used by Dutt et al.); the regression target is
``log(selectivity)``, and q-error is evaluated after exponentiation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import Dataset

__all__ = [
    "SelectivityWorkload",
    "make_table",
    "make_workload",
    "SELECTIVITY_DATASETS",
    "load_selectivity",
    "selectivity_to_dataset",
    "MANUAL_CONFIG",
]

#: Table-4's "Manual" configuration: XGBoost with 16 trees and 16 leaves.
MANUAL_CONFIG = {"tree_num": 16, "leaf_num": 16}


def make_table(kind: str, dim: int, n: int = 20_000, seed: int = 0) -> np.ndarray:
    """Generate a data table with the named distribution character.

    * ``forest`` — smooth correlated multimodal (mixture of gaussians);
    * ``power``  — heavy-tailed, strongly skewed (lognormal mixture);
    * ``higgs``  — physics-like: symmetric heavy tails + derived columns;
    * ``weather``— seasonal/periodic correlations;
    * ``tpch``   — business-like: a few dominant discrete clusters.
    """
    rng = np.random.default_rng(seed)
    if kind == "forest":
        k = 6
        centers = rng.standard_normal((k, dim)) * 2.0
        comp = rng.integers(0, k, n)
        A = rng.standard_normal((dim, dim)) * 0.4
        X = centers[comp] + rng.standard_normal((n, dim)) @ A
    elif kind == "power":
        base = rng.lognormal(mean=0.0, sigma=1.2, size=(n, dim))
        mix = rng.random(n) < 0.3
        base[mix] *= 5.0
        corr = np.cumsum(base * 0.2, axis=1)  # correlated tails
        X = base + corr
    elif kind == "higgs":
        Z = rng.standard_normal((n, max(dim, 2)))
        X = np.empty((n, dim))
        for j in range(dim):
            if j % 3 == 2:
                X[:, j] = Z[:, j % Z.shape[1]] ** 2 + 0.3 * Z[:, (j + 1) % Z.shape[1]]
            else:
                X[:, j] = Z[:, j % Z.shape[1]] * (1.0 + 0.2 * j)
    elif kind == "weather":
        t = rng.random(n) * 4 * np.pi
        X = np.empty((n, dim))
        for j in range(dim):
            X[:, j] = (
                np.sin(t * (1 + 0.3 * j) + j)
                + 0.3 * rng.standard_normal(n)
                + 0.1 * j * t / np.pi
            )
    elif kind == "tpch":
        k = 4
        levels = rng.random((k, dim)) * 10
        comp = rng.choice(k, size=n, p=np.array([0.55, 0.25, 0.15, 0.05]))
        X = levels[comp] + rng.random((n, dim)) * 0.8
    else:
        raise ValueError(f"unknown table kind {kind!r}")
    return X


@dataclass
class SelectivityWorkload:
    """Queries + exact selectivity labels over a generated table."""

    name: str
    table: np.ndarray
    queries: np.ndarray  # (m, 2*dim): lo/hi per dimension
    selectivity: np.ndarray  # (m,) in (0, 1]

    @property
    def dim(self) -> int:
        """Dimensionality of the table (number of predicate columns)."""
        return self.table.shape[1]


def _true_selectivity(table: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Exact selectivity of each (lo, hi) box, vectorised over queries in
    blocks to bound memory."""
    m = lo.shape[0]
    out = np.empty(m)
    block = max(1, int(2e7 // table.size)) if table.size else m
    for s in range(0, m, block):
        e = min(m, s + block)
        # (q, n, d) broadcast comparison collapsed over d then n
        inside = (table[None, :, :] >= lo[s:e, None, :]) & (
            table[None, :, :] <= hi[s:e, None, :]
        )
        out[s:e] = inside.all(axis=2).mean(axis=1)
    return out


def make_workload(
    kind: str,
    dim: int,
    n_rows: int = 20_000,
    n_queries: int = 2_000,
    seed: int = 0,
    name: str | None = None,
) -> SelectivityWorkload:
    """Generate a (table, queries, labels) workload.

    Query boxes are centred on sampled data points (so most queries have
    non-trivial selectivity, as in workload-driven training-data generation
    of Dutt et al.) with log-uniform widths per dimension; queries with
    zero selectivity are assigned the 1/n floor.
    """
    rng = np.random.default_rng(seed)
    table = make_table(kind, dim, n_rows, seed)
    span = table.max(axis=0) - table.min(axis=0)
    span[span <= 0] = 1.0
    centers = table[rng.integers(0, n_rows, n_queries)]
    # width relative to span, log-uniform in [0.01, 1]
    widths = span[None, :] * 10 ** rng.uniform(-2, 0, (n_queries, dim))
    lo = centers - widths / 2
    hi = centers + widths / 2
    sel = _true_selectivity(table, lo, hi)
    sel = np.maximum(sel, 1.0 / n_rows)
    queries = np.empty((n_queries, 2 * dim))
    queries[:, 0::2] = lo
    queries[:, 1::2] = hi
    wl_name = name or f"{dim}D-{kind.capitalize()}"
    return SelectivityWorkload(wl_name, table, queries, sel)


def selectivity_to_dataset(wl: SelectivityWorkload) -> Dataset:
    """Regression task: query features -> log(selectivity)."""
    return Dataset(wl.name, wl.queries, np.log(wl.selectivity), "regression")


#: Table 4's ten datasets: name -> (kind, dim, seed)
SELECTIVITY_DATASETS: dict[str, tuple[str, int, int]] = {
    "2D-Forest": ("forest", 2, 1),
    "2D-Power": ("power", 2, 2),
    "2D-TPCH": ("tpch", 2, 3),
    "4D-Forest1": ("forest", 4, 4),
    "4D-Forest2": ("forest", 4, 5),
    "4D-Power": ("power", 4, 6),
    "7D-Higgs": ("higgs", 7, 7),
    "7D-Power": ("power", 7, 8),
    "7D-Weather": ("weather", 7, 9),
    "10D-Forest": ("forest", 10, 10),
}


def load_selectivity(
    name: str, n_rows: int = 20_000, n_queries: int = 2_000
) -> SelectivityWorkload:
    """Load one of Table 4's workloads by name."""
    try:
        kind, dim, seed = SELECTIVITY_DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown selectivity dataset {name!r}; see SELECTIVITY_DATASETS"
        ) from None
    return make_workload(kind, dim, n_rows, n_queries, seed, name=name)
