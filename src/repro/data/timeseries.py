"""Time-series forecasting substrate: featurization, models, generators.

The AutoML layer treats forecasting as *reduction to regression*: a raw
univariate series ``y[0..n)`` becomes a supervised matrix whose row ``t``
holds lag values ``y[t-1..t-L]``, an optional seasonal lag ``y[t-m]``,
and optional rolling statistics — and whose target is ``y[t]``.  A
:class:`LagFeaturizer` owns that mapping and :class:`ForecastModel`
wraps any regression estimator of the ML layer behind it, producing
multi-step forecasts by recursive one-step prediction.

The featurization itself is *searchable*: ``fc_lags`` / ``fc_window`` /
``fc_diff`` ride along in each trial's config next to the learner's own
hyperparameters (see :func:`split_forecast_config` and
``repro.core.space.add_forecast_domains``), so the economical search
tunes how the series is framed, not just how it is fitted.

Temporal-leakage safety lives one layer up: trials with
``resampling="temporal"`` are evaluated under
:class:`repro.core.resampling.TemporalSplitter`'s rolling-origin folds,
where no training index ever follows a validation index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import Dataset

__all__ = [
    "LagFeaturizer",
    "ForecastModel",
    "FORECAST_CONFIG_KEYS",
    "split_forecast_config",
    "featurizer_from_config",
    "make_timeseries",
    "TIMESERIES_REGIMES",
    "forecast_suite_names",
    "load_forecast_dataset",
    "seasonal_naive_forecast",
    "seasonal_naive_cv_error",
]

#: trial-config keys owned by the featurizer, not the base estimator
FORECAST_CONFIG_KEYS = ("fc_lags", "fc_window", "fc_diff")


def split_forecast_config(config: dict) -> tuple[dict, dict]:
    """Split one trial config into (estimator config, featurizer config).

    The search proposes both in a single flat dict; the ``fc_`` keys
    parameterise the :class:`LagFeaturizer` and everything else goes to
    the base learner's constructor.
    """
    base = {k: v for k, v in config.items() if k not in FORECAST_CONFIG_KEYS}
    fc = {k: config[k] for k in FORECAST_CONFIG_KEYS if k in config}
    return base, fc


def featurizer_from_config(fc_config: dict,
                           seasonal_period: int | None = None) -> "LagFeaturizer":
    """Build a :class:`LagFeaturizer` from the ``fc_*`` part of a trial
    config plus the fit-level seasonal period."""
    return LagFeaturizer(
        n_lags=int(fc_config.get("fc_lags", 3)),
        rolling_window=int(fc_config.get("fc_window", 0)),
        difference=bool(fc_config.get("fc_diff", 0)),
        seasonal_period=int(seasonal_period or 0),
    )


@dataclass
class LagFeaturizer:
    """Lag / rolling-window / seasonal featurization of a univariate series.

    ``n_lags`` consecutive lags, an optional seasonal lag at
    ``seasonal_period`` (0 disables), an optional rolling mean over
    ``rolling_window`` trailing values (0 disables), and optional
    first-differencing (``difference``), under which the model predicts
    increments that :class:`ForecastModel` integrates back.

    The featurizer is pure configuration — no fitted state — so it
    serialises to a plain dict (:meth:`to_dict`) and is shared freely
    across CV folds.
    """

    n_lags: int = 3
    rolling_window: int = 0
    seasonal_period: int = 0
    difference: bool = False

    def __post_init__(self) -> None:
        self.n_lags = int(self.n_lags)
        self.rolling_window = int(self.rolling_window)
        self.seasonal_period = int(self.seasonal_period)
        self.difference = bool(self.difference)
        if self.n_lags < 1:
            raise ValueError(f"n_lags must be >= 1, got {self.n_lags}")
        if self.rolling_window < 0 or self.seasonal_period < 0:
            raise ValueError("rolling_window/seasonal_period must be >= 0")

    # ------------------------------------------------------------------
    @property
    def context(self) -> int:
        """Trailing working-series values one feature row looks back at."""
        return max(self.n_lags, self.seasonal_period, self.rolling_window)

    @property
    def min_history(self) -> int:
        """Raw-series values required to produce one feature row."""
        return self.context + (1 if self.difference else 0)

    @property
    def n_features(self) -> int:
        """Width of the supervised feature matrix."""
        return (
            self.n_lags
            + (1 if self.seasonal_period else 0)
            + (1 if self.rolling_window else 0)
        )

    # ------------------------------------------------------------------
    def _working(self, y: np.ndarray) -> np.ndarray:
        """The series the model actually regresses on (diffed or raw)."""
        return np.diff(y) if self.difference else y

    def make_supervised(self, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Turn a raw series into (features, one-step-ahead targets).

        Row ``i`` of the result describes working-series index
        ``context + i`` using strictly earlier values only — the
        within-row counterpart of the rolling-origin leakage invariant.
        """
        y = np.asarray(y, dtype=np.float64).ravel()
        z = self._working(y)
        p = self.context
        if z.size - p < 1:
            raise ValueError(
                f"series of length {y.size} is too short for lag config "
                f"{self.to_dict()} (needs > {self.min_history} points)"
            )
        idx = np.arange(p, z.size)
        cols = [z[idx - k] for k in range(1, self.n_lags + 1)]
        if self.seasonal_period:
            cols.append(z[idx - self.seasonal_period])
        if self.rolling_window:
            w = self.rolling_window
            csum = np.concatenate([[0.0], np.cumsum(z)])
            cols.append((csum[idx] - csum[idx - w]) / w)
        return np.column_stack(cols), z[idx]

    def feature_row(self, z_tail: np.ndarray) -> np.ndarray:
        """One feature vector predicting the step *after* ``z_tail``
        (working-series values, at least ``context`` of them)."""
        z = np.asarray(z_tail, dtype=np.float64).ravel()
        if z.size < self.context:
            raise ValueError(
                f"need at least {self.context} trailing values, got {z.size}"
            )
        row = [z[-k] for k in range(1, self.n_lags + 1)]
        if self.seasonal_period:
            row.append(z[-self.seasonal_period])
        if self.rolling_window:
            row.append(float(z[-self.rolling_window:].mean()))
        return np.asarray(row, dtype=np.float64)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe parameter dict (artifact / model_io embedding)."""
        return {
            "n_lags": self.n_lags,
            "rolling_window": self.rolling_window,
            "seasonal_period": self.seasonal_period,
            "difference": self.difference,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "LagFeaturizer":
        """Rebuild a featurizer serialised by :meth:`to_dict`."""
        return cls(
            n_lags=int(obj["n_lags"]),
            rolling_window=int(obj["rolling_window"]),
            seasonal_period=int(obj["seasonal_period"]),
            difference=bool(obj["difference"]),
        )


class ForecastModel:
    """A regression estimator behind a :class:`LagFeaturizer`.

    ``fit`` consumes the raw series; ``forecast(h)`` rolls the one-step
    model forward recursively, feeding each prediction back into the lag
    window (and integrating increments when the featurizer differences).
    The training tail is kept so a fitted model can forecast with no
    explicit history; serving passes the client's recent history instead.
    """

    def __init__(self, base, featurizer: LagFeaturizer,
                 horizon: int = 1) -> None:
        if int(horizon) < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.base = base
        self.featurizer = featurizer
        self.horizon = int(horizon)
        self.tail_: np.ndarray | None = None

    def fit(self, y: np.ndarray, X=None) -> "ForecastModel":
        """Fit the base estimator on the lagged supervised matrix.

        ``X`` (exogenous features) is accepted for signature parity and
        ignored: the reduction is purely autoregressive.
        """
        y = np.asarray(y, dtype=np.float64).ravel()
        F, target = self.featurizer.make_supervised(y)
        self.base.fit(F, target)
        self.tail_ = y[-self.featurizer.min_history:].copy()
        return self

    def _require_fitted(self) -> None:
        if self.tail_ is None:
            raise RuntimeError("ForecastModel is not fitted; call fit(y) first")

    def forecast(self, horizon: int | None = None,
                 history=None) -> np.ndarray:
        """Predict the next ``horizon`` values after ``history``.

        ``history`` defaults to the training series tail; when given it
        must carry at least ``featurizer.min_history`` raw values.
        """
        self._require_fitted()
        h = self.horizon if horizon is None else int(horizon)
        if h < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        hist = self.tail_ if history is None else np.asarray(
            history, dtype=np.float64).ravel()
        need = self.featurizer.min_history
        if hist.size < need:
            raise ValueError(
                f"history has {hist.size} values but this model's lag "
                f"config needs at least {need} to start forecasting"
            )
        # cap the working buffer: recursion only ever looks `context` back
        y_ext = list(hist[-(need + h):])
        preds = np.empty(h, dtype=np.float64)
        for i in range(h):
            z = self.featurizer._working(np.asarray(y_ext, dtype=np.float64))
            f = self.featurizer.feature_row(z)
            z_next = float(np.asarray(self.base.predict(f[None, :])).ravel()[0])
            y_next = y_ext[-1] + z_next if self.featurizer.difference else z_next
            preds[i] = y_next
            y_ext.append(y_next)
        return preds

    def predict(self, rows, horizon: int | None = None) -> np.ndarray:
        """Alias used by the serving layer: ``rows`` is a raw history."""
        return self.forecast(horizon=horizon, history=np.asarray(rows).ravel())


# ------------------------------------------------------------ baselines --
def seasonal_naive_forecast(history, horizon: int, m: int = 1) -> np.ndarray:
    """Repeat the last seasonal cycle (``m=1``: repeat the last value)."""
    hist = np.asarray(history, dtype=np.float64).ravel()
    m = max(1, int(m))
    if hist.size < m:
        raise ValueError(
            f"history of length {hist.size} is shorter than the seasonal "
            f"period {m}"
        )
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    cycle = hist[-m:]
    reps = int(np.ceil(horizon / m))
    return np.tile(cycle, reps)[:horizon]


def seasonal_naive_cv_error(y, horizon: int, n_splits: int = 5, m: int = 1,
                            metric=None) -> float:
    """Rolling-origin CV error of the seasonal-naive baseline.

    Evaluated under the exact :class:`~repro.core.resampling.TemporalSplitter`
    folds the AutoML search uses, so ``AutoML.best_loss`` and this number
    are directly comparable ("does the searched model beat the naive
    baseline?").  ``metric`` defaults to MASE at period ``m``.
    """
    from ..core.resampling import TemporalSplitter
    from ..metrics.forecast import mase_metric

    y = np.asarray(y, dtype=np.float64).ravel()
    metric = mase_metric(m) if metric is None else metric
    h = max(1, int(horizon))
    k = min(int(n_splits), max(1, (y.size - max(1, int(m)) - 1) // h))
    splitter = TemporalSplitter(n_splits=k, horizon=h,
                                min_train=max(1, int(m)))
    errors = []
    for tr, va in splitter.split(y.size):
        pred = seasonal_naive_forecast(y[tr], va.size, m)
        errors.append(metric.error(y[va], pred, history=y[tr]))
    return float(np.mean(errors))


# ------------------------------------------------------------ generators --
def make_timeseries(
    n: int,
    trend: float = 0.0,
    seasonal_period: int = 0,
    seasonal_amp: float = 0.0,
    ar: float = 0.0,
    noise: float = 0.1,
    level: float = 10.0,
    seed: int = 0,
    name: str = "synthetic-ts",
) -> Dataset:
    """Generate a univariate series as a ``task="forecast"`` Dataset.

    ``y[t] = level + trend*t + seasonal + e[t]`` where the seasonal part
    is a two-harmonic cycle of period ``seasonal_period`` scaled by
    ``seasonal_amp`` and ``e`` is an AR(1) process with coefficient
    ``ar`` driven by Gaussian noise of scale ``noise``.  ``X`` is the
    time index (kept for CSV round-trips; the reduction ignores it).
    """
    if n < 3:
        raise ValueError(f"need n >= 3, got {n}")
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    y = level + trend * t
    if seasonal_period and seasonal_amp:
        phase = 2.0 * np.pi * t / seasonal_period
        y = y + seasonal_amp * (np.sin(phase) + 0.3 * np.cos(2.0 * phase))
    eps = noise * rng.standard_normal(n)
    e = np.empty(n)
    e[0] = eps[0]
    for i in range(1, n):
        e[i] = ar * e[i - 1] + eps[i]
    return Dataset(name, t.reshape(-1, 1), y + e, "forecast")


#: named trend/seasonality/noise regimes for the forecasting suite —
#: the forecasting counterpart of data.suite's synthetic stand-ins
TIMESERIES_REGIMES: dict[str, dict] = {
    "ts-seasonal": dict(n=400, seasonal_period=12, seasonal_amp=4.0,
                        ar=0.6, noise=0.4, seed=401),
    "ts-trend": dict(n=400, trend=0.05, ar=0.5, noise=0.4, seed=402),
    "ts-trend-seasonal": dict(n=480, trend=0.04, seasonal_period=24,
                              seasonal_amp=3.0, ar=0.5, noise=0.5, seed=403),
    "ts-noisy-ar": dict(n=400, ar=0.85, noise=1.0, seed=404),
    "ts-weekly": dict(n=364, seasonal_period=7, seasonal_amp=5.0, ar=0.4,
                      noise=0.6, seed=405),
}


def forecast_suite_names() -> list[str]:
    """Names of the synthetic forecasting regimes."""
    return list(TIMESERIES_REGIMES)


def load_forecast_dataset(name: str) -> Dataset:
    """Instantiate a forecasting regime by name."""
    try:
        params = TIMESERIES_REGIMES[name]
    except KeyError:
        raise ValueError(
            f"unknown forecast dataset {name!r}; known: "
            f"{forecast_suite_names()}"
        ) from None
    return make_timeseries(name=name, **params)
