"""Feature preprocessing (paper §3 footnote 2).

FLAML "does not innovate on featurization techniques, though the system
can easily support feature preprocessors."  This module provides the
support: simple, composable preprocessors with the fit/transform contract
and a :class:`Pipeline` that lets any learner consume raw mixed-type data.
The tree learners handle NaNs and ordinal categoricals natively, so these
are mainly useful for the linear learners and for user featurization.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Imputer",
    "StandardScaler",
    "OneHotEncoder",
    "Pipeline",
    "dump_preprocessor",
    "load_preprocessor",
]


class Imputer:
    """Replace NaNs with a per-column statistic ('mean', 'median', 'most_frequent')."""

    def __init__(self, strategy: str = "mean") -> None:
        if strategy not in ("mean", "median", "most_frequent"):
            raise ValueError(f"unknown imputation strategy {strategy!r}")
        self.strategy = strategy
        self.fill_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "Imputer":
        """Learn the transform statistics from X; returns self."""
        X = np.asarray(X, dtype=np.float64)
        d = X.shape[1]
        fill = np.zeros(d)
        for j in range(d):
            col = X[:, j]
            col = col[~np.isnan(col)]
            if col.size == 0:
                fill[j] = 0.0
            elif self.strategy == "mean":
                fill[j] = col.mean()
            elif self.strategy == "median":
                fill[j] = np.median(col)
            else:
                vals, counts = np.unique(col, return_counts=True)
                fill[j] = vals[np.argmax(counts)]
        self.fill_ = fill
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the fitted transform to X."""
        if self.fill_ is None:
            raise RuntimeError("Imputer not fitted")
        X = np.asarray(X, dtype=np.float64).copy()
        nan_r, nan_c = np.nonzero(np.isnan(X))
        X[nan_r, nan_c] = self.fill_[nan_c]
        return X

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on X and return the transformed X."""
        return self.fit(X).transform(X)


class StandardScaler:
    """Zero-mean / unit-variance scaling (NaN-aware statistics)."""

    def __init__(self) -> None:
        self.mu_: np.ndarray | None = None
        self.sd_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn the transform statistics from X; returns self."""
        X = np.asarray(X, dtype=np.float64)
        self.mu_ = np.nanmean(X, axis=0)
        sd = np.nanstd(X, axis=0)
        sd[sd < 1e-12] = 1.0
        self.sd_ = sd
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the fitted transform to X."""
        if self.mu_ is None:
            raise RuntimeError("StandardScaler not fitted")
        return (np.asarray(X, dtype=np.float64) - self.mu_) / self.sd_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on X and return the transformed X."""
        return self.fit(X).transform(X)


class OneHotEncoder:
    """One-hot encode the given columns; unseen categories map to all-zero.

    NaN is treated as its own category (missingness is informative).
    """

    def __init__(self, columns: tuple[int, ...]) -> None:
        self.columns = tuple(columns)
        self.categories_: dict[int, np.ndarray] | None = None

    @staticmethod
    def _canon(col: np.ndarray) -> np.ndarray:
        # NaN != NaN breaks unique/searchsorted; use a sentinel
        out = col.copy()
        out[np.isnan(out)] = np.inf
        return out

    def fit(self, X: np.ndarray) -> "OneHotEncoder":
        """Learn the transform statistics from X; returns self."""
        X = np.asarray(X, dtype=np.float64)
        self.categories_ = {
            j: np.unique(self._canon(X[:, j])) for j in self.columns
        }
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the fitted transform to X."""
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder not fitted")
        X = np.asarray(X, dtype=np.float64)
        keep = [j for j in range(X.shape[1]) if j not in self.columns]
        blocks = [X[:, keep]]
        for j in self.columns:
            cats = self.categories_[j]
            col = self._canon(X[:, j])
            onehot = (col[:, None] == cats[None, :]).astype(np.float64)
            blocks.append(onehot)
        return np.hstack(blocks)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on X and return the transformed X."""
        return self.fit(X).transform(X)

    def output_blocks(self, d_in: int) -> list[tuple[int, int, int]]:
        """Per encoded column: ``(source column, start, stop)`` spans in
        the transformed matrix, for an input of ``d_in`` columns.

        The transformed layout is the kept passthrough columns first,
        then one one-hot block per encoded column in ``self.columns``
        order.  The columns of one block are mutually exclusive by
        construction — exactly the shape the binned plane's exclusive
        feature bundling (:mod:`repro.data.bundling`) merges back into a
        single coded feature at scale.  Exposed so callers (and the
        bundling tests) can locate the blocks without re-deriving the
        layout.
        """
        if self.categories_ is None:
            raise RuntimeError("OneHotEncoder not fitted")
        offset = int(d_in) - len(self.columns)  # passthrough columns
        out = []
        for j in self.columns:
            width = int(self.categories_[j].size)
            out.append((int(j), offset, offset + width))
            offset += width
        return out


class Pipeline:
    """Chain preprocessors in front of an estimator.

    Implements the same fit/predict/predict_proba contract as the
    learners, so a Pipeline can be registered via ``AutoML.add_learner``.
    """

    def __init__(self, steps: list, estimator) -> None:
        if not steps:
            raise ValueError("Pipeline needs at least one preprocessing step")
        self.steps = list(steps)
        self.estimator = estimator

    def _transform(self, X: np.ndarray, fit: bool) -> np.ndarray:
        for step in self.steps:
            X = step.fit_transform(X) if fit else step.transform(X)
        return X

    def fit(self, X: np.ndarray, y: np.ndarray, **kw) -> "Pipeline":
        """Learn the transform statistics from X; returns self."""
        self.estimator.fit(self._transform(X, fit=True), y, **kw)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Transform X through the steps and predict with the estimator."""
        return self.estimator.predict(self._transform(X, fit=False))

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Transform X through the steps and return probabilities."""
        return self.estimator.predict_proba(self._transform(X, fit=False))

    @property
    def classes_(self):
        """Label values of the wrapped classifier."""
        return self.estimator.classes_


# -------------------------------------------------------- persistence --
# Fitted preprocessors serialise to JSON-safe dicts so a pipeline
# artifact (repro.serve.artifact) can embed its featurization and score
# raw rows after reload.  Mirrors learners.model_io's dump/load contract.

def dump_preprocessor(step) -> dict:
    """Serialise a fitted preprocessor to a JSON-safe dict."""
    if isinstance(step, Imputer):
        if step.fill_ is None:
            raise RuntimeError("Imputer not fitted")
        return {"class": "Imputer", "strategy": step.strategy,
                "fill": step.fill_.tolist()}
    if isinstance(step, StandardScaler):
        if step.mu_ is None:
            raise RuntimeError("StandardScaler not fitted")
        return {"class": "StandardScaler", "mu": step.mu_.tolist(),
                "sd": step.sd_.tolist()}
    if isinstance(step, OneHotEncoder):
        if step.categories_ is None:
            raise RuntimeError("OneHotEncoder not fitted")
        return {
            "class": "OneHotEncoder",
            "columns": list(step.columns),
            # NaN was canonicalised to +inf at fit time; json handles inf
            "categories": {str(j): c.tolist()
                           for j, c in step.categories_.items()},
        }
    raise TypeError(
        f"{type(step).__name__} does not support JSON serialisation; "
        "artifact export requires the built-in preprocessors "
        "(Imputer, StandardScaler, OneHotEncoder) or a custom class "
        "handled outside the artifact"
    )


def load_preprocessor(obj: dict):
    """Reconstruct the preprocessor serialised by :func:`dump_preprocessor`."""
    cls = obj["class"]
    if cls == "Imputer":
        step = Imputer(strategy=obj["strategy"])
        step.fill_ = np.asarray(obj["fill"], dtype=np.float64)
        return step
    if cls == "StandardScaler":
        step = StandardScaler()
        step.mu_ = np.asarray(obj["mu"], dtype=np.float64)
        step.sd_ = np.asarray(obj["sd"], dtype=np.float64)
        return step
    if cls == "OneHotEncoder":
        step = OneHotEncoder(columns=tuple(int(j) for j in obj["columns"]))
        step.categories_ = {
            int(j): np.asarray(c, dtype=np.float64)
            for j, c in obj["categories"].items()
        }
        return step
    raise ValueError(f"unknown preprocessor class {cls!r}")
